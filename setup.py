import setuptools; setuptools.setup()
