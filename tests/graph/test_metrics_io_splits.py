"""Unit tests for graph metrics, io round-trips, splits, and features."""

import numpy as np
import pytest

from repro.errors import DatasetError
from repro.graph import (average_clustering, clustering_variance_across,
                         community_features_and_labels, degree_gini,
                         from_edges, load_dataset, load_dataset_file,
                         load_graph, local_clustering_coefficients,
                         random_features_and_labels, save_dataset,
                         save_graph, split_vertices)


def complete_graph(n):
    src, dst = np.meshgrid(np.arange(n), np.arange(n))
    return from_edges(src.ravel(), dst.ravel(), n, symmetrize_edges=True)


class TestClustering:
    def test_complete_graph_coefficient_one(self):
        coeffs = local_clustering_coefficients(complete_graph(5))
        assert np.allclose(coeffs, 1.0)

    def test_star_graph_coefficient_zero(self):
        g = from_edges([0, 0, 0], [1, 2, 3], 4, symmetrize_edges=True)
        assert average_clustering(g) == 0.0

    def test_triangle_plus_pendant(self):
        # Triangle 0-1-2 plus pendant 3 attached to 0.
        g = from_edges([0, 1, 2, 0], [1, 2, 0, 3], 4, symmetrize_edges=True)
        coeffs = local_clustering_coefficients(g)
        assert coeffs[1] == pytest.approx(1.0)
        assert coeffs[0] == pytest.approx(1.0 / 3.0)
        assert coeffs[3] == 0.0

    def test_variance_across_subgraphs(self):
        dense = complete_graph(6)
        sparse = from_edges([0, 1, 2], [1, 2, 3], 6, symmetrize_edges=True)
        assert clustering_variance_across([dense, sparse]) > 0.2
        assert clustering_variance_across([dense, dense]) == 0.0

    def test_empty_graph(self):
        g = from_edges([], [], 0)
        assert average_clustering(g) == 0.0


class TestDegreeGini:
    def test_regular_graph_zero(self):
        g = from_edges([0, 1, 2], [1, 2, 0], 3, symmetrize_edges=True)
        assert degree_gini(g) == pytest.approx(0.0, abs=1e-9)

    def test_star_is_skewed(self):
        g = from_edges([0] * 20, list(range(1, 21)), 21,
                       symmetrize_edges=True)
        assert degree_gini(g) > 0.4


class TestSplits:
    def test_partition_property(self):
        split = split_vertices(997, np.random.default_rng(0))
        split.validate()

    def test_custom_ratio(self):
        split = split_vertices(1000, np.random.default_rng(0),
                               ratios=(0.5, 0.25, 0.25))
        assert len(split.train_ids) == 500

    def test_bad_ratios(self):
        with pytest.raises(DatasetError):
            split_vertices(10, np.random.default_rng(0), ratios=(0.5, 0.5))
        with pytest.raises(DatasetError):
            split_vertices(10, np.random.default_rng(0),
                           ratios=(0.9, 0.2, -0.1))


class TestFeatures:
    def test_community_features_shapes(self):
        comm = np.array([0, 0, 1, 1, 2])
        feats, labels = community_features_and_labels(
            comm, 16, 3, np.random.default_rng(0))
        assert feats.shape == (5, 16)
        assert feats.dtype == np.float32
        assert labels.dtype == np.int64

    def test_labels_follow_communities_without_noise(self):
        comm = np.array([0, 1, 2, 0, 1, 2])
        _, labels = community_features_and_labels(
            comm, 4, 3, np.random.default_rng(0), label_noise=0.0)
        assert np.array_equal(labels, comm)

    def test_community_signal_separates_centroids(self):
        comm = np.repeat(np.arange(4), 50)
        feats, _ = community_features_and_labels(
            comm, 32, 4, np.random.default_rng(0), noise=0.1)
        centroids = np.stack([feats[comm == c].mean(axis=0)
                              for c in range(4)])
        dists = np.linalg.norm(centroids[0] - centroids[1:], axis=1)
        assert np.all(dists > 1.0)

    def test_random_features(self):
        feats, labels = random_features_and_labels(
            100, 8, 5, np.random.default_rng(0))
        assert feats.shape == (100, 8)
        assert set(np.unique(labels)) <= set(range(5))

    def test_bad_dims(self):
        with pytest.raises(DatasetError):
            random_features_and_labels(10, 0, 5, np.random.default_rng(0))


class TestIO:
    def test_graph_roundtrip(self, tmp_path):
        g, _ = __import__("repro.graph", fromlist=["power_law_graph"]) \
            .power_law_graph(200, 8, np.random.default_rng(0))
        path = tmp_path / "g.npz"
        save_graph(g, path)
        loaded = load_graph(path)
        assert loaded == g
        assert loaded.is_symmetric == g.is_symmetric

    def test_dataset_roundtrip(self, tmp_path):
        ds = load_dataset("ogb-arxiv", scale=0.25)
        path = tmp_path / "ds.npz"
        save_dataset(ds, path)
        loaded = load_dataset_file(path)
        assert loaded.graph == ds.graph
        assert np.array_equal(loaded.features, ds.features)
        assert np.array_equal(loaded.labels, ds.labels)
        assert np.array_equal(loaded.split.train_mask, ds.split.train_mask)
