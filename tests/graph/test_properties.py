"""Property-based tests (hypothesis) for the graph substrate."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import from_edges, relabel, split_vertices


@st.composite
def edge_lists(draw, max_vertices=40, max_edges=120):
    n = draw(st.integers(min_value=1, max_value=max_vertices))
    m = draw(st.integers(min_value=0, max_value=max_edges))
    src = draw(st.lists(st.integers(0, n - 1), min_size=m, max_size=m))
    dst = draw(st.lists(st.integers(0, n - 1), min_size=m, max_size=m))
    return n, np.array(src, dtype=np.int64), np.array(dst, dtype=np.int64)


class TestCSRInvariants:
    @given(edge_lists())
    @settings(max_examples=60, deadline=None)
    def test_indptr_consistent(self, case):
        n, src, dst = case
        g = from_edges(src, dst, n)
        assert g.indptr[0] == 0
        assert g.indptr[-1] == g.num_edges
        assert np.all(np.diff(g.indptr) >= 0)
        assert g.out_degrees.sum() == g.num_edges

    @given(edge_lists())
    @settings(max_examples=60, deadline=None)
    def test_no_self_loops_no_duplicates(self, case):
        n, src, dst = case
        g = from_edges(src, dst, n)
        s, d = g.edges()
        assert not np.any(s == d)
        pairs = set(zip(s.tolist(), d.tolist()))
        assert len(pairs) == g.num_edges

    @given(edge_lists())
    @settings(max_examples=60, deadline=None)
    def test_symmetrize_produces_symmetric_adjacency(self, case):
        n, src, dst = case
        g = from_edges(src, dst, n, symmetrize_edges=True)
        s, d = g.edges()
        pairs = set(zip(s.tolist(), d.tolist()))
        assert all((b, a) in pairs for a, b in pairs)

    @given(edge_lists())
    @settings(max_examples=60, deadline=None)
    def test_in_degrees_sum_matches(self, case):
        n, src, dst = case
        g = from_edges(src, dst, n)
        assert g.in_degrees.sum() == g.num_edges
        # transpose twice = identity
        assert g.reverse().reverse() == g

    @given(edge_lists(), st.integers(0, 2**31 - 1))
    @settings(max_examples=40, deadline=None)
    def test_relabel_is_isomorphism(self, case, seed):
        n, src, dst = case
        g = from_edges(src, dst, n)
        perm = np.random.default_rng(seed).permutation(n)
        h = relabel(g, perm)
        assert h.num_edges == g.num_edges
        inverse = np.empty(n, dtype=np.int64)
        inverse[perm] = np.arange(n)
        assert relabel(h, inverse) == g


class TestSplitInvariants:
    @given(st.integers(3, 5000), st.integers(0, 2**31 - 1))
    @settings(max_examples=50, deadline=None)
    def test_masks_partition_vertices(self, n, seed):
        split = split_vertices(n, np.random.default_rng(seed))
        split.validate()
        assert (len(split.train_ids) + len(split.val_ids)
                + len(split.test_ids)) == n
