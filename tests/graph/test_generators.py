"""Unit tests for the synthetic graph generators."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph import (degree_gini, erdos_renyi_graph, flat_graph,
                         planted_partition_graph, power_law_graph,
                         power_law_weights)
from repro.graph.generators import assign_communities


class TestPowerLawGraph:
    def test_reaches_target_density(self):
        g, _ = power_law_graph(1000, 20, np.random.default_rng(0))
        avg = g.num_edges / g.num_vertices
        assert 15 <= avg <= 25

    def test_is_symmetric(self):
        g, _ = power_law_graph(300, 10, np.random.default_rng(1))
        src, dst = g.edges()
        reverse = set(zip(dst.tolist(), src.tolist()))
        assert set(zip(src.tolist(), dst.tolist())) == reverse

    def test_skewed_degrees(self):
        g, _ = power_law_graph(1500, 30, np.random.default_rng(2),
                               exponent=2.05)
        assert degree_gini(g) > 0.3

    def test_more_skew_with_lower_exponent(self):
        g_low, _ = power_law_graph(1500, 20, np.random.default_rng(3),
                                   exponent=1.9)
        g_high, _ = power_law_graph(1500, 20, np.random.default_rng(3),
                                    exponent=3.0)
        assert degree_gini(g_low) > degree_gini(g_high)

    def test_bad_exponent(self):
        with pytest.raises(GraphError):
            power_law_weights(10, 1.0, np.random.default_rng(0))

    def test_community_labels_match(self):
        g, comm = power_law_graph(500, 10, np.random.default_rng(4),
                                  num_communities=5)
        assert len(comm) == g.num_vertices
        assert set(np.unique(comm)) == set(range(5))


class TestFlatGraph:
    def test_flat_degrees(self):
        g, _ = flat_graph(1500, 20, np.random.default_rng(5))
        assert degree_gini(g) < 0.2

    def test_erdos_renyi(self):
        g = erdos_renyi_graph(800, 12, np.random.default_rng(6))
        avg = g.num_edges / g.num_vertices
        assert 9 <= avg <= 14


class TestCommunityStructure:
    def test_mixing_controls_intra_fraction(self):
        rng = np.random.default_rng(7)
        g, comm = planted_partition_graph(1200, 8, 20, rng, mixing=0.05)
        src, dst = g.edges()
        intra = (comm[src] == comm[dst]).mean()
        assert intra > 0.8

        rng = np.random.default_rng(7)
        g2, comm2 = planted_partition_graph(1200, 8, 20, rng, mixing=0.9)
        src2, dst2 = g2.edges()
        intra2 = (comm2[src2] == comm2[dst2]).mean()
        assert intra2 < 0.4

    def test_invalid_mixing(self):
        with pytest.raises(GraphError):
            flat_graph(100, 5, np.random.default_rng(0), mixing=1.5)

    def test_contiguous_assignment_blocks(self):
        comm = assign_communities(100, 4, np.random.default_rng(0))
        assert list(np.unique(comm)) == [0, 1, 2, 3]
        assert np.all(np.diff(comm) >= 0)  # blocks are contiguous

    def test_random_assignment(self):
        comm = assign_communities(1000, 4, np.random.default_rng(0),
                                  contiguous=False)
        counts = np.bincount(comm, minlength=4)
        assert counts.min() > 150  # roughly balanced

    def test_zero_communities_raises(self):
        with pytest.raises(GraphError):
            assign_communities(10, 0, np.random.default_rng(0))


class TestDeterminism:
    def test_same_seed_same_graph(self):
        g1, _ = power_law_graph(400, 10, np.random.default_rng(42))
        g2, _ = power_law_graph(400, 10, np.random.default_rng(42))
        assert g1 == g2

    def test_different_seed_different_graph(self):
        g1, _ = power_law_graph(400, 10, np.random.default_rng(1))
        g2, _ = power_law_graph(400, 10, np.random.default_rng(2))
        assert g1 != g2


class TestSanitizedConstruction:
    """Every generator family builds through ``from_edges``, whose
    sanitized CSR validation is armed suite-wide; assert it both ran
    and holds for each family's output."""

    @pytest.mark.parametrize("make", [
        lambda rng: power_law_graph(600, 12, rng)[0],
        lambda rng: flat_graph(600, 12, rng)[0],
        lambda rng: erdos_renyi_graph(600, 12, rng),
        lambda rng: planted_partition_graph(600, 4, 12, rng)[0],
    ])
    def test_generated_csr_well_formed(self, make):
        from repro.analysis.sanitize import check_csr
        from repro.perf import PERF

        before = PERF.counters.get("sanitize_csr_checks", 0)
        g = make(np.random.default_rng(9))
        after = PERF.counters.get("sanitize_csr_checks", 0)
        assert after > before  # from_edges ran its armed check
        # Re-validate the finished graph explicitly, including both
        # adjacency directions.
        check_csr(g.indptr, g.indices, g.num_vertices,
                  name="generator output", sorted_rows=True)
        in_indptr, in_indices = g.in_csr()
        check_csr(in_indptr, in_indices, g.num_vertices,
                  name="generator in-CSR")
