"""Unit tests for the dataset suite."""

import numpy as np
import pytest

from repro.errors import DatasetError
from repro.graph import (DATASET_SPECS, dataset_names, dataset_table,
                         degree_gini, load_dataset)


class TestRegistry:
    def test_nine_datasets_like_table2(self):
        assert len(dataset_names()) == 9

    def test_table2_feature_dims(self):
        assert DATASET_SPECS["reddit"].feature_dim == 602
        assert DATASET_SPECS["ogb-arxiv"].feature_dim == 128
        assert DATASET_SPECS["ogb-products"].feature_dim == 100
        assert DATASET_SPECS["amazon"].feature_dim == 200
        assert DATASET_SPECS["enwiki-links"].feature_dim == 600

    def test_table2_classes(self):
        assert DATASET_SPECS["reddit"].num_classes == 41
        assert DATASET_SPECS["ogb-papers"].num_classes == 172
        assert DATASET_SPECS["amazon"].num_classes == 107

    def test_papers_is_flat_everything_else_skewed(self):
        assert not DATASET_SPECS["ogb-papers"].power_law
        assert DATASET_SPECS["reddit"].power_law

    def test_livejournal_family_unlabeled(self):
        for name in ("livejournal", "lj-large", "lj-links", "enwiki-links"):
            assert not DATASET_SPECS[name].labeled

    def test_table_rows(self):
        rows = dataset_table()
        assert len(rows) == 9
        assert all(row["#hidden"] == 128 for row in rows)


class TestLoading:
    def test_unknown_name(self):
        with pytest.raises(DatasetError):
            load_dataset("imaginary")

    def test_case_insensitive(self):
        assert load_dataset("Reddit", scale=0.25).name == "reddit"

    def test_shapes_consistent(self):
        ds = load_dataset("ogb-arxiv", scale=0.5)
        n = ds.num_vertices
        assert ds.features.shape == (n, ds.spec.feature_dim)
        assert ds.labels.shape == (n,)
        assert ds.labels.min() >= 0
        assert ds.labels.max() < ds.num_classes
        ds.split.validate()

    def test_split_ratio(self):
        ds = load_dataset("ogb-products", scale=0.5)
        n = ds.num_vertices
        assert abs(len(ds.train_ids) / n - 0.65) < 0.02
        assert abs(len(ds.val_ids) / n - 0.10) < 0.02

    def test_cache_returns_same_object(self):
        a = load_dataset("amazon", scale=0.25)
        b = load_dataset("amazon", scale=0.25)
        assert a is b

    def test_no_cache_builds_fresh_equal_dataset(self):
        a = load_dataset("amazon", scale=0.25, cache=False)
        b = load_dataset("amazon", scale=0.25, cache=False)
        assert a is not b
        assert a.graph == b.graph
        assert np.array_equal(a.labels, b.labels)

    def test_scale_changes_size(self):
        small = load_dataset("reddit", scale=0.25)
        big = load_dataset("reddit", scale=0.5)
        assert big.num_vertices > small.num_vertices

    def test_degree_regimes(self):
        skewed = load_dataset("amazon", scale=0.5)
        flat = load_dataset("ogb-papers", scale=0.5)
        assert degree_gini(skewed.graph) > degree_gini(flat.graph) + 0.15

    def test_labeled_dataset_has_community_signal(self):
        ds = load_dataset("ogb-arxiv", scale=0.5)
        src, dst = ds.graph.edges()
        same_label = (ds.labels[src] == ds.labels[dst]).mean()
        # Far above the 1/40 chance rate: labels follow communities.
        assert same_label > 0.3

    def test_feature_bytes(self):
        ds = load_dataset("ogb-arxiv", scale=0.25)
        assert ds.feature_bytes([0, 1]) == 2 * ds.feature_dim * 4
        assert ds.feature_bytes() == ds.num_vertices * ds.feature_dim * 4
