"""Unit tests for CSR graph storage."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph import CSRGraph, from_edges


def triangle():
    # 0 -> 1, 1 -> 2, 2 -> 0
    return from_edges([0, 1, 2], [1, 2, 0], 3)


class TestConstruction:
    def test_basic_counts(self):
        g = triangle()
        assert g.num_vertices == 3
        assert g.num_edges == 3

    def test_empty_graph(self):
        g = from_edges([], [], 5)
        assert g.num_vertices == 5
        assert g.num_edges == 0
        assert np.array_equal(g.out_degrees, np.zeros(5, dtype=np.int64))

    def test_indptr_mismatch_raises(self):
        with pytest.raises(GraphError):
            CSRGraph(np.array([0, 1]), np.array([0]), num_vertices=3)

    def test_indices_out_of_range_raises(self):
        with pytest.raises(GraphError):
            CSRGraph(np.array([0, 1]), np.array([7]), num_vertices=1)

    def test_decreasing_indptr_raises(self):
        with pytest.raises(GraphError):
            CSRGraph(np.array([0, 2, 1]), np.array([0, 0]), num_vertices=2)

    def test_nonzero_first_indptr_raises(self):
        with pytest.raises(GraphError):
            CSRGraph(np.array([1, 2]), np.array([0, 0]), num_vertices=1)


class TestAdjacency:
    def test_out_neighbors(self):
        g = triangle()
        assert list(g.out_neighbors(0)) == [1]
        assert list(g.out_neighbors(2)) == [0]

    def test_in_neighbors_directed(self):
        g = triangle()
        assert list(g.in_neighbors(1)) == [0]
        assert list(g.in_neighbors(0)) == [2]

    def test_in_neighbors_symmetric_alias(self):
        g = from_edges([0, 1], [1, 2], 3, symmetrize_edges=True)
        assert sorted(g.in_neighbors(1)) == sorted(g.out_neighbors(1)) == [0, 2]

    def test_degrees(self):
        g = from_edges([0, 0, 1], [1, 2, 2], 3)
        assert list(g.out_degrees) == [2, 1, 0]
        assert list(g.in_degrees) == [0, 1, 2]

    def test_has_edge(self):
        g = triangle()
        assert g.has_edge(0, 1)
        assert not g.has_edge(1, 0)

    def test_edges_roundtrip(self):
        g = from_edges([0, 0, 2], [1, 2, 1], 3)
        src, dst = g.edges()
        rebuilt = from_edges(src, dst, 3)
        assert rebuilt == g


class TestDerived:
    def test_reverse(self):
        g = triangle()
        rev = g.reverse()
        assert rev.has_edge(1, 0)
        assert not rev.has_edge(0, 1)

    def test_reverse_symmetric_is_self(self):
        g = from_edges([0], [1], 2, symmetrize_edges=True)
        assert g.reverse() is g

    def test_induced_subgraph(self):
        g = from_edges([0, 1, 2, 3], [1, 2, 3, 0], 4)
        sub, ids = g.induced_subgraph([0, 1, 2])
        assert sub.num_vertices == 3
        # Edges 0->1 and 1->2 survive; 2->3 and 3->0 are cut.
        assert sub.num_edges == 2
        assert list(ids) == [0, 1, 2]

    def test_induced_subgraph_out_of_range(self):
        g = triangle()
        with pytest.raises(GraphError):
            g.induced_subgraph([0, 99])

    def test_repr(self):
        assert "n=3" in repr(triangle())
