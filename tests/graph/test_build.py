"""Unit tests for graph construction helpers."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph import from_edges, relabel, remove_self_loops, symmetrize


class TestFromEdges:
    def test_dedup(self):
        g = from_edges([0, 0, 0], [1, 1, 2], 3)
        assert g.num_edges == 2

    def test_keep_duplicates_when_disabled(self):
        g = from_edges([0, 0], [1, 1], 2, dedup=False)
        assert g.num_edges == 2

    def test_self_loops_dropped(self):
        g = from_edges([0, 1], [0, 0], 2)
        assert g.num_edges == 1

    def test_self_loops_kept_when_asked(self):
        g = from_edges([0], [0], 1, drop_self_loops=False)
        assert g.num_edges == 1
        assert g.has_edge(0, 0)

    def test_symmetrize_flag(self):
        g = from_edges([0], [1], 2, symmetrize_edges=True)
        assert g.is_symmetric
        assert g.has_edge(0, 1) and g.has_edge(1, 0)

    def test_length_mismatch(self):
        with pytest.raises(GraphError):
            from_edges([0, 1], [0], 2)

    def test_out_of_range(self):
        with pytest.raises(GraphError):
            from_edges([0], [5], 2)

    def test_negative_id(self):
        with pytest.raises(GraphError):
            from_edges([-1], [0], 2)

    def test_sorted_rows(self):
        g = from_edges([1, 0, 1, 0], [0, 2, 2, 1], 3)
        assert list(g.out_neighbors(0)) == [1, 2]
        assert list(g.out_neighbors(1)) == [0, 2]


class TestTransforms:
    def test_symmetrize(self):
        g = symmetrize(from_edges([0, 1], [1, 2], 3))
        assert g.is_symmetric
        assert g.num_edges == 4

    def test_symmetrize_idempotent(self):
        g = from_edges([0], [1], 2, symmetrize_edges=True)
        assert symmetrize(g) is g

    def test_remove_self_loops(self):
        g = from_edges([0, 0], [0, 1], 2, drop_self_loops=False)
        cleaned = remove_self_loops(g)
        assert cleaned.num_edges == 1
        assert not cleaned.has_edge(0, 0)

    def test_relabel(self):
        g = from_edges([0, 1], [1, 2], 3)
        swapped = relabel(g, [2, 1, 0])  # 0<->2
        assert swapped.has_edge(2, 1)
        assert swapped.has_edge(1, 0)

    def test_relabel_bad_permutation(self):
        g = from_edges([0], [1], 2)
        with pytest.raises(GraphError):
            relabel(g, [0, 0])

    def test_relabel_preserves_degree_multiset(self):
        rng = np.random.default_rng(3)
        src = rng.integers(0, 50, 300)
        dst = rng.integers(0, 50, 300)
        g = from_edges(src, dst, 50)
        perm = rng.permutation(50)
        h = relabel(g, perm)
        assert sorted(g.out_degrees) == sorted(h.out_degrees)
