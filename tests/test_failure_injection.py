"""Failure-injection tests: degenerate and adversarial inputs.

The library should either handle these gracefully or fail with its own
typed errors — never crash with a bare numpy/scipy exception.
"""

import numpy as np
import pytest

from repro import Trainer, TrainingConfig
from repro.errors import ReproError
from repro.graph import Dataset, from_edges, load_dataset, split_vertices
from repro.graph.datasets import DATASET_SPECS
from repro.nn import build_model, softmax_cross_entropy
from repro.partition import (HashPartitioner, MetisPartitioner,
                             StreamBPartitioner, metis_partition)
from repro.sampling import NeighborSampler


def make_dataset(graph, num_classes=4, feature_dim=8, seed=0):
    """Wrap an arbitrary graph as a Dataset with random labels."""
    rng = np.random.default_rng(seed)
    n = graph.num_vertices
    features = rng.normal(size=(n, feature_dim)).astype(np.float32)
    labels = rng.integers(0, num_classes, size=n)
    split = split_vertices(n, rng)
    spec = DATASET_SPECS["ogb-arxiv"]
    return Dataset(spec=spec, graph=graph, features=features,
                   labels=labels, split=split)


def disconnected_graph(num_components=3, component_size=40, degree=4):
    rng = np.random.default_rng(0)
    src, dst = [], []
    for c in range(num_components):
        offset = c * component_size
        for _edge in range(component_size * degree):
            src.append(offset + rng.integers(component_size))
            dst.append(offset + rng.integers(component_size))
    return from_edges(src, dst, num_components * component_size,
                      symmetrize_edges=True)


def star_graph(leaves=60):
    return from_edges([0] * leaves, list(range(1, leaves + 1)),
                      leaves + 1, symmetrize_edges=True)


class TestDegenerateGraphs:
    def test_metis_on_disconnected_graph(self):
        graph = disconnected_graph()
        assignment = metis_partition(graph, 3,
                                     rng=np.random.default_rng(0))
        assert len(assignment) == graph.num_vertices
        sizes = np.bincount(assignment, minlength=3)
        assert sizes.min() > 0

    def test_stream_b_on_disconnected_graph(self):
        graph = disconnected_graph()
        dataset = make_dataset(graph)
        result = StreamBPartitioner(block_size=8).partition(
            graph, 2, split=dataset.split, rng=np.random.default_rng(0))
        assert result.sizes().sum() == graph.num_vertices

    def test_sampling_star_graph(self):
        graph = star_graph()
        sampler = NeighborSampler((5, 5))
        subgraph = sampler.sample(graph, [0, 1, 2],
                                  np.random.default_rng(0))
        subgraph.validate()
        # The hub keeps at most 5 of its 60 neighbors.
        hub_row = np.flatnonzero(subgraph.blocks[-1].dst_nodes == 0)
        assert subgraph.blocks[-1].degrees()[hub_row[0]] <= 5

    def test_training_on_star_graph(self):
        dataset = make_dataset(star_graph(100))
        config = TrainingConfig(epochs=2, batch_size=16, fanout=(3, 3),
                                num_workers=2, partitioner="hash")
        result = Trainer(dataset, config).run()
        assert result.curve.num_epochs == 2

    def test_isolated_seed_vertices(self):
        # Vertices 5..9 have no edges at all.
        graph = from_edges([0, 1, 2], [1, 2, 3], 10,
                           symmetrize_edges=True)
        sampler = NeighborSampler((4, 4))
        subgraph = sampler.sample(graph, [5, 6, 7],
                                  np.random.default_rng(0))
        subgraph.validate()
        assert subgraph.total_edges == 0
        # The model still produces logits (self-loop aggregation).
        dataset = make_dataset(graph)
        model = build_model("gcn", dataset.features.shape[1], 4,
                            rng=np.random.default_rng(0))
        logits = model.forward(subgraph,
                               dataset.features[subgraph.input_nodes])
        assert logits.shape == (3, 4)
        loss = softmax_cross_entropy(logits,
                                     dataset.labels[subgraph.seeds])
        loss.backward()  # gradients flow without error

    def test_dense_clique_training(self):
        n = 30
        src, dst = np.meshgrid(np.arange(n), np.arange(n))
        graph = from_edges(src.ravel(), dst.ravel(), n,
                           symmetrize_edges=True)
        dataset = make_dataset(graph)
        config = TrainingConfig(epochs=2, batch_size=8, fanout=(3, 3),
                                num_workers=2, partitioner="metis-ve")
        result = Trainer(dataset, config).run()
        assert result.curve.num_epochs == 2


class TestDegenerateLabelsAndFeatures:
    def test_single_class_dataset(self):
        graph = disconnected_graph(2, 30)
        dataset = make_dataset(graph, num_classes=1)
        config = TrainingConfig(epochs=2, batch_size=16, fanout=(3, 3),
                                num_workers=1, partitioner="hash")
        result = Trainer(dataset, config).run()
        # One class: accuracy is trivially 1.0 once anything trains.
        assert result.best_val_accuracy == 1.0

    def test_extreme_feature_values(self):
        graph = disconnected_graph(2, 30)
        dataset = make_dataset(graph)
        dataset.features *= 1e4
        config = TrainingConfig(epochs=2, batch_size=16, fanout=(3, 3),
                                num_workers=1, partitioner="hash",
                                learning_rate=1e-5)
        result = Trainer(dataset, config).run()
        assert np.isfinite(result.curve.losses).all()

    def test_zero_features(self):
        graph = disconnected_graph(2, 30)
        dataset = make_dataset(graph)
        dataset.features[:] = 0.0
        config = TrainingConfig(epochs=2, batch_size=16, fanout=(3, 3),
                                num_workers=1, partitioner="hash")
        result = Trainer(dataset, config).run()
        assert np.isfinite(result.curve.losses).all()


class TestTinyScale:
    def test_minimum_dataset_scale(self):
        dataset = load_dataset("ogb-arxiv", scale=0.001)  # floor of 64
        assert dataset.num_vertices == 64
        config = TrainingConfig(epochs=2, batch_size=8, fanout=(2, 2),
                                num_workers=2, partitioner="hash")
        result = Trainer(dataset, config).run()
        assert result.curve.num_epochs == 2

    def test_two_vertex_graph_partition(self):
        graph = from_edges([0], [1], 2, symmetrize_edges=True)
        result = HashPartitioner().partition(graph, 2,
                                             rng=np.random.default_rng(0))
        assert sorted(result.assignment) == [0, 1]

    def test_all_errors_are_repro_errors(self):
        """The library's own failures derive from ReproError."""
        graph = from_edges([0], [1], 2, symmetrize_edges=True)
        with pytest.raises(ReproError):
            HashPartitioner().partition(graph, 5)
        with pytest.raises(ReproError):
            NeighborSampler(())
        with pytest.raises(ReproError):
            MetisPartitioner("nope")
