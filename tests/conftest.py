"""Suite-wide fixtures.

The entire test suite runs with the runtime sanitizers armed
(``FLAGS.sanitize = True``): every NaN/Inf scan, CSR structural check,
and shape/dtype contract is live for every test, so a kernel change
that corrupts an array fails loudly here before it can skew a
benchmark number.  Tests that specifically exercise the off behaviour
(zero-cost guarantees) drop the flag locally with
``perf_overrides(sanitize=False)``.
"""

import pytest

from repro.perf import FLAGS


@pytest.fixture(scope="session", autouse=True)
def _arm_sanitizers():
    saved = FLAGS.sanitize
    FLAGS.sanitize = True
    yield
    FLAGS.sanitize = saved
