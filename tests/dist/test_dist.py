"""Unit tests for the distributed runtime (comm meter, worker, engine)."""

import numpy as np
import pytest

from repro.dist import CommMeter, EpochStats, SyncEngine, Worker
from repro.errors import TrainingError, TransferError
from repro.graph import load_dataset
from repro.nn import Adam, build_model
from repro.partition import HashPartitioner, StreamVPartitioner
from repro.sampling import NeighborSampler
from repro.transfer import DEFAULT_SPEC, ZeroCopy


@pytest.fixture(scope="module")
def dataset():
    return load_dataset("ogb-arxiv", scale=0.25)


def build_engine(dataset, partitioner=None, num_parts=2, **kwargs):
    partitioner = partitioner or HashPartitioner()
    partition = partitioner.partition(dataset.graph, num_parts,
                                      split=dataset.split,
                                      rng=np.random.default_rng(0))
    model = build_model("gcn", dataset.feature_dim, dataset.num_classes,
                        rng=np.random.default_rng(1))
    optimizer = Adam(model.parameters(), lr=0.003)
    return SyncEngine(dataset, partition, NeighborSampler((5, 5)), model,
                      optimizer, spec=DEFAULT_SPEC, transfer=ZeroCopy(),
                      **kwargs)


class TestCommMeter:
    def test_record_and_totals(self):
        meter = CommMeter(3)
        meter.record(0, 1, 100)
        meter.record(2, 1, 50, messages=2)
        assert meter.received_bytes(1) == 150
        assert meter.sent_bytes(0) == 100
        assert meter.total_bytes == 150
        assert meter.total_messages == 3

    def test_local_traffic_free(self):
        meter = CommMeter(2)
        meter.record(0, 0, 1000)
        assert meter.total_bytes == 0

    def test_imbalance(self):
        meter = CommMeter(2)
        meter.record(0, 1, 100)
        assert meter.imbalance() == pytest.approx(2.0)  # all to machine 1

    def test_receive_time_uses_spec(self):
        meter = CommMeter(2)
        meter.record(0, 1, int(1.25e9))  # one second of bandwidth
        assert meter.receive_time(1, DEFAULT_SPEC) == pytest.approx(
            1.0 + DEFAULT_SPEC.network_latency, rel=1e-3)

    def test_invalid_machine_count(self):
        with pytest.raises(TransferError):
            CommMeter(0)

    def test_reset(self):
        meter = CommMeter(2)
        meter.record(0, 1, 10)
        meter.reset()
        assert meter.total_bytes == 0


class TestWorker:
    def test_epoch_batches_cover_train_ids(self):
        worker = Worker(0, np.arange(10))
        batches = worker.epoch_batches(4, np.random.default_rng(0))
        assert sorted(np.concatenate(batches)) == list(range(10))
        assert [len(b) for b in batches] == [4, 4, 2]

    def test_invalid_batch_size(self):
        worker = Worker(0, np.arange(4))
        with pytest.raises(TrainingError):
            worker.epoch_batches(0, np.random.default_rng(0))


class TestSyncEngine:
    def test_epoch_returns_stats(self, dataset):
        engine = build_engine(dataset)
        stats = engine.run_epoch(64, np.random.default_rng(0))
        assert isinstance(stats, EpochStats)
        assert stats.loss > 0
        assert stats.epoch_seconds > 0
        assert stats.involved_edges > 0
        assert stats.num_steps >= 1

    def test_loss_decreases_over_epochs(self, dataset):
        engine = build_engine(dataset)
        rng = np.random.default_rng(0)
        first = engine.run_epoch(64, rng).loss
        for _epoch in range(5):
            last = engine.run_epoch(64, rng).loss
        assert last < first

    def test_breakdown_sums_to_one(self, dataset):
        engine = build_engine(dataset)
        stats = engine.run_epoch(64, np.random.default_rng(0))
        assert sum(stats.breakdown().values()) == pytest.approx(1.0)

    def test_single_worker_no_allreduce(self, dataset):
        engine = build_engine(dataset, num_parts=1)
        stats = engine.run_epoch(64, np.random.default_rng(0))
        assert stats.allreduce_seconds == 0.0
        assert engine.comm.total_bytes == 0

    def test_multi_worker_comm_recorded(self, dataset):
        engine = build_engine(dataset, num_parts=2)
        engine.run_epoch(64, np.random.default_rng(0))
        assert engine.comm.total_bytes > 0

    def test_stream_v_reduces_comm(self, dataset):
        hash_engine = build_engine(dataset, num_parts=2)
        hash_engine.run_epoch(64, np.random.default_rng(0))
        stream_engine = build_engine(
            dataset, partitioner=StreamVPartitioner(hop_cap=None),
            num_parts=2)
        stream_engine.run_epoch(64, np.random.default_rng(0))
        assert (stream_engine.comm.total_bytes
                < 0.05 * hash_engine.comm.total_bytes)

    def test_cache_slot_mismatch(self, dataset):
        partition = HashPartitioner().partition(
            dataset.graph, 2, rng=np.random.default_rng(0))
        model = build_model("gcn", dataset.feature_dim,
                            dataset.num_classes,
                            rng=np.random.default_rng(1))
        with pytest.raises(TrainingError):
            SyncEngine(dataset, partition, NeighborSampler((5, 5)), model,
                       Adam(model.parameters(), lr=0.01),
                       spec=DEFAULT_SPEC, transfer=ZeroCopy(),
                       caches=[None])  # needs 2 slots

    def test_pipeline_mode_speeds_epoch(self, dataset):
        sequential = build_engine(dataset, pipeline_mode="none")
        pipelined = build_engine(dataset, pipeline_mode="bp+dt")
        seq_stats = sequential.run_epoch(64, np.random.default_rng(0))
        pipe_stats = pipelined.run_epoch(64, np.random.default_rng(0))
        assert pipe_stats.epoch_seconds <= seq_stats.epoch_seconds
