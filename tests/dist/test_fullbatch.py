"""Unit tests for full-batch distributed training and staleness."""

import numpy as np
import pytest

from repro.dist import FullBatchEngine, FullGraphGCN, full_aggregation_matrix
from repro.errors import TrainingError
from repro.graph import load_dataset
from repro.nn import Adam, Tensor
from repro.partition import HashPartitioner, MetisPartitioner
from repro.transfer import DEFAULT_SPEC


@pytest.fixture(scope="module")
def dataset():
    return load_dataset("ogb-arxiv", scale=0.25)


@pytest.fixture(scope="module")
def partition(dataset):
    return MetisPartitioner("ve").partition(
        dataset.graph, 3, split=dataset.split,
        rng=np.random.default_rng(0))


def build_engine(dataset, partition, staleness=0, seed=1, lr=0.01):
    model = FullGraphGCN(dataset.feature_dim, 64, dataset.num_classes, 2,
                         np.random.default_rng(seed))
    return FullBatchEngine(dataset, partition, model,
                           Adam(model.parameters(), lr=lr),
                           spec=DEFAULT_SPEC, staleness=staleness,
                           hidden_dim=64)


class TestAggregationMatrix:
    def test_rows_sum_to_one(self, dataset):
        matrix = full_aggregation_matrix(dataset.graph)
        sums = np.asarray(matrix.sum(axis=1)).ravel()
        assert np.allclose(sums, 1.0, atol=1e-5)

    def test_shape(self, dataset):
        matrix = full_aggregation_matrix(dataset.graph)
        n = dataset.num_vertices
        assert matrix.shape == (n, n)

    @pytest.mark.parametrize("self_loops", [True, False])
    def test_bit_identical_to_scipy_construction(self, dataset,
                                                 self_loops):
        """The numpy construction must reproduce the historical scipy
        ``diags(1/deg) @ (csr + identity)`` operator bit-for-bit —
        structure and float32 values — or full-batch training curves
        drift from every pinned golden result."""
        sp = pytest.importorskip("scipy.sparse")
        graph = dataset.graph
        n = graph.num_vertices
        in_indptr, in_indices = graph.in_csr()
        reference = sp.csr_matrix(
            (np.ones(len(in_indices), dtype=np.float32),
             in_indices.astype(np.int64), in_indptr.astype(np.int64)),
            shape=(n, n))
        if self_loops:
            reference = reference + sp.identity(
                n, dtype=np.float32, format="csr")
        degree = np.asarray(reference.sum(axis=1)).ravel()
        degree[degree == 0] = 1.0
        scale = sp.diags((1.0 / degree).astype(np.float32))
        reference = (scale @ reference).tocsr()

        matrix = full_aggregation_matrix(graph, self_loops=self_loops)
        assert matrix.shape == reference.shape
        assert np.array_equal(matrix.indptr, reference.indptr)
        assert np.array_equal(matrix.indices, reference.indices)
        assert np.array_equal(matrix.data, reference.data)


class TestFullBatchEngine:
    def test_one_update_per_epoch(self, dataset, partition):
        engine = build_engine(dataset, partition)
        stats = engine.run_epoch()
        assert stats.num_steps == 1
        assert stats.batch_size == len(dataset.train_ids)

    def test_learns(self, dataset, partition):
        engine = build_engine(dataset, partition)
        for _epoch in range(15):
            stats = engine.run_epoch()
        accuracy = engine.evaluate(dataset.val_ids)
        assert accuracy > 5.0 / dataset.num_classes

    def test_loss_decreases(self, dataset, partition):
        engine = build_engine(dataset, partition)
        first = engine.run_epoch().loss
        for _epoch in range(8):
            last = engine.run_epoch().loss
        assert last < first

    def test_boundary_sets_are_remote(self, dataset, partition):
        engine = build_engine(dataset, partition)
        for part, boundary in enumerate(engine.boundary):
            assert np.all(partition.assignment[boundary] != part)

    def test_single_machine_no_comm(self, dataset):
        solo = HashPartitioner().partition(dataset.graph, 1,
                                           rng=np.random.default_rng(0))
        engine = build_engine(dataset, solo)
        stats = engine.run_epoch()
        assert stats.dt_seconds == 0.0
        assert stats.allreduce_seconds == 0.0

    def test_negative_staleness_rejected(self, dataset, partition):
        with pytest.raises(TrainingError):
            build_engine(dataset, partition, staleness=-1)


class TestStaleness:
    def test_stale_epochs_skip_comm(self, dataset, partition):
        engine = build_engine(dataset, partition, staleness=2)
        fresh = engine.run_epoch()       # epoch 0: refresh
        stale = engine.run_epoch()       # epoch 1: stale
        assert stale.dt_seconds == 0.0
        assert fresh.dt_seconds > 0.0

    def test_refresh_cadence(self, dataset, partition):
        engine = build_engine(dataset, partition, staleness=1)
        dt = [engine.run_epoch().dt_seconds for _epoch in range(4)]
        # refresh, stale, refresh, stale
        assert dt[0] > 0 and dt[2] > 0
        assert dt[1] == 0 and dt[3] == 0

    def test_staleness_reduces_mean_epoch_time(self, dataset, partition):
        plain = build_engine(dataset, partition, staleness=0)
        stale = build_engine(dataset, partition, staleness=3)
        plain_time = np.mean([plain.run_epoch().epoch_seconds
                              for _epoch in range(8)])
        stale_time = np.mean([stale.run_epoch().epoch_seconds
                              for _epoch in range(8)])
        assert stale_time < plain_time

    def test_stale_training_still_learns(self, dataset, partition):
        engine = build_engine(dataset, partition, staleness=3)
        for _epoch in range(15):
            engine.run_epoch()
        accuracy = engine.evaluate(dataset.val_ids)
        assert accuracy > 5.0 / dataset.num_classes

    def test_stale_close_to_fresh_accuracy(self, dataset, partition):
        fresh = build_engine(dataset, partition, staleness=0, seed=2)
        stale = build_engine(dataset, partition, staleness=3, seed=2)
        for _epoch in range(15):
            fresh.run_epoch()
            stale.run_epoch()
        fresh_acc = fresh.evaluate(dataset.val_ids)
        stale_acc = stale.evaluate(dataset.val_ids)
        assert stale_acc > fresh_acc - 0.15


class TestNewTensorOps:
    def test_mask_rows_values(self):
        x = Tensor(np.arange(12.0).reshape(4, 3), requires_grad=True)
        replacement = np.zeros((4, 3))
        out = x.mask_rows([1, 3], replacement)
        assert np.allclose(out.data[[0, 2]], 0.0)
        assert np.allclose(out.data[1], [3, 4, 5])

    def test_mask_rows_gradient_routing(self):
        x = Tensor(np.ones((4, 3)), requires_grad=True)
        out = x.mask_rows([0, 2], np.zeros((4, 3)))
        out.sum().backward()
        assert np.allclose(x.grad[[0, 2]], 1.0)
        assert np.allclose(x.grad[[1, 3]], 0.0)

    def test_mask_rows_shape_mismatch(self):
        x = Tensor(np.ones((4, 3)))
        with pytest.raises(TrainingError):
            x.mask_rows([0], np.zeros((5, 3)))

    def test_assemble_rows_roundtrip(self):
        a = Tensor(np.ones((2, 3)), requires_grad=True)
        b = Tensor(2 * np.ones((2, 3)), requires_grad=True)
        out = Tensor.assemble_rows([a, b], [[0, 2], [1, 3]], 4)
        assert np.allclose(out.data[[0, 2]], 1.0)
        assert np.allclose(out.data[[1, 3]], 2.0)
        (out * 3.0).sum().backward()
        assert np.allclose(a.grad, 3.0)
        assert np.allclose(b.grad, 3.0)

    def test_assemble_rows_requires_partition(self):
        a = Tensor(np.ones((2, 3)))
        with pytest.raises(TrainingError):
            Tensor.assemble_rows([a], [[0, 0]], 2)
