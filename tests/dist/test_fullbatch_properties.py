"""Property-based tests for the full-batch engine's accounting."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dist import FullBatchEngine, FullGraphGCN
from repro.graph import power_law_graph, split_vertices
from repro.graph.datasets import DATASET_SPECS, Dataset
from repro.nn import Adam
from repro.partition import HashPartitioner
from repro.transfer import DEFAULT_SPEC


def build_case(n, degree, parts, seed):
    rng = np.random.default_rng(seed)
    graph, comm = power_law_graph(n, degree, rng, num_communities=4)
    features = rng.normal(size=(n, 8)).astype(np.float32)
    labels = rng.integers(0, 4, size=n)
    dataset = Dataset(spec=DATASET_SPECS["ogb-arxiv"], graph=graph,
                      features=features, labels=labels,
                      split=split_vertices(n, rng), communities=comm)
    partition = HashPartitioner().partition(
        graph, parts, rng=np.random.default_rng(seed))
    model = FullGraphGCN(8, 16, 4, 2, np.random.default_rng(seed),
                         dropout=0.0)
    engine = FullBatchEngine(dataset, partition, model,
                             Adam(model.parameters(), lr=0.01),
                             spec=DEFAULT_SPEC, hidden_dim=16)
    return dataset, partition, engine


@st.composite
def engine_cases(draw):
    n = draw(st.integers(min_value=30, max_value=120))
    degree = draw(st.integers(min_value=2, max_value=6))
    parts = draw(st.integers(min_value=1, max_value=3))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    return n, degree, parts, seed


class TestFullBatchInvariants:
    @given(engine_cases())
    @settings(max_examples=15, deadline=None)
    def test_edges_partition_across_machines(self, case):
        n, degree, parts, seed = case
        dataset, _partition, engine = build_case(n, degree, parts, seed)
        # Every aggregation row lives on exactly one machine, so the
        # per-machine edge counts sum to the full operator's nnz.
        assert engine.edges_per_machine.sum() == engine.adjacency.nnz

    @given(engine_cases())
    @settings(max_examples=15, deadline=None)
    def test_boundaries_are_strictly_remote(self, case):
        n, degree, parts, seed = case
        _dataset, partition, engine = build_case(n, degree, parts, seed)
        for part, boundary in enumerate(engine.boundary):
            assert np.all(partition.assignment[boundary] != part)

    @given(engine_cases())
    @settings(max_examples=10, deadline=None)
    def test_epoch_accounting_consistent(self, case):
        n, degree, parts, seed = case
        _dataset, _partition, engine = build_case(n, degree, parts, seed)
        stats = engine.run_epoch()
        assert stats.epoch_seconds == pytest.approx(
            stats.nn_seconds + stats.dt_seconds
            + stats.allreduce_seconds)
        assert stats.num_steps == 1
        assert np.isfinite(stats.loss)

    @given(engine_cases())
    @settings(max_examples=8, deadline=None)
    def test_owned_vertices_partition(self, case):
        n, degree, parts, seed = case
        _dataset, _partition, engine = build_case(n, degree, parts, seed)
        covered = np.concatenate(engine.owned)
        assert len(covered) == n
        assert len(np.unique(covered)) == n
