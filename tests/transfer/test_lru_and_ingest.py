"""Unit tests for the dynamic LRU cache and bring-your-own-data
ingestion."""

import numpy as np
import pytest

from repro import Trainer, TrainingConfig
from repro.errors import DatasetError, GraphError
from repro.graph import (dataset_from_arrays, load_dataset,
                         load_edge_list, power_law_graph)
from repro.transfer import LRUCache


@pytest.fixture(scope="module")
def graph():
    g, _comm = power_law_graph(300, 8, np.random.default_rng(0))
    return g


class TestLRUCache:
    def test_admits_misses(self, graph):
        cache = LRUCache(graph, 0.2)
        _hits, misses = cache.lookup([1, 2, 3])
        assert len(misses) == 3
        hits, misses = cache.lookup([1, 2, 3])
        assert len(hits) == 3 and len(misses) == 0

    def test_capacity_respected(self, graph):
        cache = LRUCache(graph, 0.1)
        rng = np.random.default_rng(0)
        for _round in range(20):
            cache.lookup(rng.integers(0, graph.num_vertices, 50))
        assert cache._bitmap.sum() <= cache.capacity

    def test_evicts_least_recently_used(self, graph):
        cache = LRUCache(graph, 2 / graph.num_vertices)  # capacity 2
        assert cache.capacity == 2
        cache.lookup([0])
        cache.lookup([1])
        cache.lookup([0])      # refresh 0
        cache.lookup([2])      # evicts 1 (LRU), not 0
        hits, _misses = cache.lookup([0])
        assert len(hits) == 1
        hits, _misses = cache.lookup([1])
        assert len(hits) == 0

    def test_hot_set_converges_to_high_hit_rate(self, graph):
        cache = LRUCache(graph, 0.3)
        rng = np.random.default_rng(1)
        hot = rng.choice(graph.num_vertices, 40, replace=False)
        for _round in range(30):
            cache.lookup(hot)
        cache.reset_stats()
        cache.lookup(hot)
        assert cache.hit_rate == 1.0

    def test_zero_capacity_never_hits(self, graph):
        cache = LRUCache(graph, 0.0)
        cache.lookup([0, 1])
        cache.lookup([0, 1])
        assert cache.hits == 0

    def test_trainer_with_lru_cache(self):
        dataset = load_dataset("ogb-arxiv", scale=0.25)
        config = TrainingConfig(epochs=2, batch_size=128, fanout=(4, 4),
                                num_workers=2, partitioner="hash",
                                cache_policy="lru", cache_ratio=0.3)
        plain = TrainingConfig(epochs=2, batch_size=128, fanout=(4, 4),
                               num_workers=2, partitioner="hash")
        cached = Trainer(dataset, config).run()
        baseline = Trainer(dataset, plain).run()
        assert cached.mean_epoch_seconds <= baseline.mean_epoch_seconds


class TestEdgeListIngestion:
    def test_parses_snap_style_file(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_text("# comment\n% other comment\n"
                        "10 20\n20 30\n10 30\n")
        graph, original = load_edge_list(path)
        assert graph.num_vertices == 3
        assert list(original) == [10, 20, 30]
        assert graph.is_symmetric
        assert graph.num_edges == 6  # three undirected edges

    def test_directed_mode(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_text("0 1\n1 2\n")
        graph, _original = load_edge_list(path, symmetrize_edges=False)
        assert graph.num_edges == 2

    def test_malformed_line(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_text("42\n")
        with pytest.raises(GraphError):
            load_edge_list(path)

    def test_empty_file(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_text("# nothing\n")
        with pytest.raises(GraphError):
            load_edge_list(path)


class TestDatasetFromArrays:
    def test_wraps_and_trains(self, graph):
        rng = np.random.default_rng(0)
        features = rng.normal(size=(graph.num_vertices, 16))
        labels = rng.integers(0, 5, size=graph.num_vertices)
        dataset = dataset_from_arrays(graph, features, labels,
                                      name="mine")
        assert dataset.name == "mine"
        assert dataset.num_classes == labels.max() + 1
        dataset.split.validate()
        config = TrainingConfig(epochs=2, batch_size=32, fanout=(3, 3),
                                num_workers=2, partitioner="hash")
        result = Trainer(dataset, config).run()
        assert result.curve.num_epochs == 2

    def test_shape_checks(self, graph):
        rng = np.random.default_rng(0)
        good_labels = rng.integers(0, 3, size=graph.num_vertices)
        with pytest.raises(DatasetError):
            dataset_from_arrays(graph, np.zeros((5, 4)), good_labels)
        with pytest.raises(DatasetError):
            dataset_from_arrays(graph,
                                np.zeros((graph.num_vertices, 4)),
                                np.zeros(3, dtype=int))

    def test_negative_labels_rejected(self, graph):
        features = np.zeros((graph.num_vertices, 4))
        labels = np.full(graph.num_vertices, -1)
        with pytest.raises(DatasetError):
            dataset_from_arrays(graph, features, labels)

    def test_end_to_end_from_file(self, tmp_path):
        """The advertised adoption path: edge list file -> dataset ->
        training."""
        rng = np.random.default_rng(3)
        lines = ["%% header"]
        for _edge in range(600):
            lines.append(f"{rng.integers(100)} {rng.integers(100)}")
        path = tmp_path / "mygraph.txt"
        path.write_text("\n".join(lines))
        graph, _original = load_edge_list(path)
        features = rng.normal(size=(graph.num_vertices, 8))
        labels = rng.integers(0, 4, size=graph.num_vertices)
        dataset = dataset_from_arrays(graph, features, labels)
        result = Trainer(dataset, TrainingConfig(
            epochs=2, batch_size=16, fanout=(3, 3), num_workers=2,
            partitioner="metis-ve")).run()
        assert 0.0 <= result.best_val_accuracy <= 1.0
