"""Unit tests for the GPU memory footprint model."""

import numpy as np
import pytest

from repro.errors import TransferError
from repro.graph import load_dataset
from repro.sampling import NeighborSampler
from repro.transfer import (DEFAULT_SPEC, estimate_batch_memory,
                            estimate_subgraph_memory, max_batch_size)


@pytest.fixture(scope="module")
def dataset():
    return load_dataset("reddit", scale=0.25)


class TestEstimates:
    def test_components_positive(self):
        estimate = estimate_batch_memory(512, (25, 10), 602)
        assert estimate.feature_bytes > 0
        assert estimate.activation_bytes > 0
        assert estimate.topology_bytes > 0
        assert estimate.model_bytes > 0
        assert estimate.total_bytes == (
            estimate.feature_bytes + estimate.activation_bytes
            + estimate.topology_bytes + estimate.model_bytes)

    def test_monotone_in_batch_size(self):
        small = estimate_batch_memory(64, (10, 10), 128)
        large = estimate_batch_memory(1024, (10, 10), 128)
        assert large.total_bytes > small.total_bytes

    def test_monotone_in_fanout(self):
        narrow = estimate_batch_memory(256, (5, 5), 128)
        wide = estimate_batch_memory(256, (25, 25), 128)
        assert wide.total_bytes > narrow.total_bytes

    def test_vertex_cap_limits_expansion(self):
        unbounded = estimate_batch_memory(1024, (25, 25), 128)
        capped = estimate_batch_memory(1024, (25, 25), 128,
                                       num_vertices=2000)
        assert capped.total_bytes < unbounded.total_bytes

    def test_invalid_args(self):
        with pytest.raises(TransferError):
            estimate_batch_memory(0, (5,), 16)
        with pytest.raises(TransferError):
            estimate_batch_memory(8, (), 16)
        with pytest.raises(TransferError):
            estimate_batch_memory(8, (5,), 16, dedup_factor=0.0)

    def test_exact_subgraph_estimate(self, dataset):
        sampler = NeighborSampler((10, 5))
        subgraph = sampler.sample(dataset.graph, dataset.train_ids[:128],
                                  np.random.default_rng(0))
        estimate = estimate_subgraph_memory(subgraph, dataset.feature_dim)
        expected_features = (len(subgraph.input_nodes)
                             * dataset.feature_dim * 4)
        assert estimate.feature_bytes == expected_features
        assert estimate.topology_bytes == 16 * subgraph.total_edges

    def test_fits_respects_headroom(self):
        estimate = estimate_batch_memory(512, (10, 10), 128)
        tiny_gpu = DEFAULT_SPEC.with_overrides(
            gpu_memory=estimate.total_bytes)
        assert not estimate.fits(tiny_gpu, headroom=0.1)
        assert estimate.fits(tiny_gpu, headroom=0.0)


class TestMaxBatchSize:
    def test_fits_what_it_claims(self):
        best = max_batch_size(DEFAULT_SPEC, (25, 10), 602)
        assert best >= 1
        estimate = estimate_batch_memory(best, (25, 10), 602)
        assert estimate.fits(DEFAULT_SPEC)

    def test_next_size_does_not_fit(self):
        small_gpu = DEFAULT_SPEC.with_overrides(gpu_memory=2_000_000_000)
        best = max_batch_size(small_gpu, (25, 10), 602)
        over = estimate_batch_memory(best + max(1, best // 16),
                                     (25, 10), 602)
        assert best == 0 or not over.fits(small_gpu) or best >= 1_048_576 // 2

    def test_bigger_gpu_bigger_batches(self):
        small = max_batch_size(
            DEFAULT_SPEC.with_overrides(gpu_memory=1_000_000_000),
            (25, 10), 602)
        large = max_batch_size(
            DEFAULT_SPEC.with_overrides(gpu_memory=32_000_000_000),
            (25, 10), 602)
        assert large > small

    def test_zero_when_nothing_fits(self):
        doll_gpu = DEFAULT_SPEC.with_overrides(gpu_memory=1000)
        assert max_batch_size(doll_gpu, (25, 10), 602) == 0

    def test_paper_scale_sanity(self):
        """A T4 (16 GB) fits the paper's default batch 6000 at fanout
        (25, 10) on the widest features (602) — consistent with the
        paper actually running that configuration."""
        best = max_batch_size(DEFAULT_SPEC, (25, 10), 602,
                              num_vertices=233_000)
        assert best >= 6000
