"""Unit tests for the multi-tier feature cache and its cost model.

Covers the ISSUE's invariants: no row resident in two tiers, per-tier
capacities respected under arbitrary lookup sequences, bit-identical
hit/miss sequences under a fixed seed, zero-cost pass-through when
disabled — plus the new :class:`HardwareSpec` storage constants and the
tier-by-tier transfer-method billing.
"""

import numpy as np
import pytest

from repro.errors import TransferError
from repro.graph import power_law_graph
from repro.sampling import NeighborSampler
from repro.transfer import (DEFAULT_SPEC, BatchStats, ExtractLoad,
                            HardwareSpec, HybridTransfer, LRUCache,
                            TieredCache, TierLookup, ZeroCopy,
                            make_tiered_cache, select_lowest)

TIER_POLICIES_DYNAMIC = ("lru", "lfu")


@pytest.fixture(scope="module")
def graph():
    g, _comm = power_law_graph(400, 8, np.random.default_rng(0))
    return g


def zipf_stream(num_vertices, batches, size, seed, skew=1.0):
    rng = np.random.default_rng(seed)
    ranks = np.arange(1, num_vertices + 1, dtype=np.float64)
    weights = ranks ** -skew
    weights /= weights.sum()
    population = rng.permutation(num_vertices)
    return [rng.choice(population, size=size, p=weights)
            for _ in range(batches)]


class TestHardwareSpecStorage:
    def test_new_constants_have_defaults(self):
        spec = HardwareSpec()
        assert spec.host_cache_bandwidth > spec.pcie_bandwidth
        assert spec.disk_bandwidth < spec.pcie_bandwidth
        assert spec.disk_latency > 0

    @pytest.mark.parametrize("field", ["host_cache_bandwidth",
                                       "disk_bandwidth"])
    def test_rejects_nonpositive_bandwidth(self, field):
        with pytest.raises(TransferError):
            HardwareSpec(**{field: 0.0})

    def test_rejects_negative_disk_latency(self):
        with pytest.raises(TransferError):
            HardwareSpec(disk_latency=-1e-6)

    def test_disk_time_charges_latency_per_read(self):
        spec = HardwareSpec()
        one = spec.disk_time(1000)
        assert one == pytest.approx(1000 / spec.disk_bandwidth
                                    + spec.disk_latency)
        assert spec.disk_time(1000, reads=3) == pytest.approx(
            1000 / spec.disk_bandwidth + 3 * spec.disk_latency)
        assert spec.disk_time(0) == 0.0

    def test_host_cache_faster_than_gather(self):
        spec = HardwareSpec()
        assert spec.host_cache_time(1 << 20) < spec.gather_time(1 << 20)


class TestSelectLowest:
    def test_picks_lowest_scores(self):
        ids = np.array([10, 20, 30, 40])
        scores = np.array([3, 1, 2, 4])
        assert sorted(select_lowest(ids, scores, 2)) == [20, 30]

    def test_ties_break_toward_lower_ids(self):
        ids = np.array([7, 3, 5, 1])
        scores = np.array([2, 2, 2, 2])
        assert sorted(select_lowest(ids, scores, 2)) == [1, 3]

    def test_degenerate_k(self):
        ids = np.array([1, 2, 3])
        scores = np.array([1, 2, 3])
        assert len(select_lowest(ids, scores, 0)) == 0
        assert len(select_lowest(ids, scores, 5)) == 3


class TestTierInvariants:
    @pytest.mark.parametrize("policy", TIER_POLICIES_DYNAMIC)
    def test_no_dual_residency_and_capacity(self, policy):
        cache = TieredCache(300, hot_capacity=20, warm_capacity=40,
                            policy=policy)
        for batch in zipf_stream(300, batches=30, size=64, seed=1):
            cache.lookup(batch)
            live = cache.residency()
            assert live["hot"] <= 20 and live["warm"] <= 40
            # _tier holds one code per row, so dual residency is
            # impossible by construction; check the id lists agree.
            assert live["hot"] == len(cache._hot_ids)
            assert live["warm"] == len(cache._warm_ids)
            assert not np.intersect1d(cache._hot_ids,
                                      cache._warm_ids).size

    @pytest.mark.parametrize("policy", ["degree", "presample"])
    def test_static_policies_fixed_residency(self, graph, policy):
        sampler = NeighborSampler((4,))
        cache = make_tiered_cache(
            policy, graph, 0.1, 0.2, sampler=sampler,
            seeds=np.arange(50), rng=np.random.default_rng(0))
        before = (cache._hot_ids.copy(), cache._warm_ids.copy())
        for batch in zipf_stream(graph.num_vertices, 10, 64, seed=2):
            cache.lookup(batch)
        assert np.array_equal(before[0], cache._hot_ids)
        assert np.array_equal(before[1], cache._warm_ids)
        live = cache.residency()
        assert live["hot"] <= int(round(0.1 * graph.num_vertices))
        assert live["warm"] <= int(round(0.2 * graph.num_vertices))

    @pytest.mark.parametrize("policy", TIER_POLICIES_DYNAMIC)
    def test_bit_identical_sequences_under_fixed_seed(self, policy):
        def run():
            cache = TieredCache(250, 15, 30, policy=policy)
            trail = []
            for batch in zipf_stream(250, 20, 48, seed=3):
                lookup = cache.lookup(batch)
                trail.append((lookup.hot_mask.copy(),
                              lookup.warm_mask.copy()))
            return cache, trail

        cache_a, trail_a = run()
        cache_b, trail_b = run()
        for (hot_a, warm_a), (hot_b, warm_b) in zip(trail_a, trail_b):
            assert np.array_equal(hot_a, hot_b)
            assert np.array_equal(warm_a, warm_b)
        assert np.array_equal(cache_a._tier, cache_b._tier)
        assert cache_a.hit_rates() == cache_b.hit_rates()

    def test_disabled_cache_is_zero_cost_pass_through(self):
        cache = TieredCache(100, 0, 0, policy="lru")
        assert not cache.enabled
        lookup = cache.lookup(np.array([1, 2, 3, 2]))
        assert lookup.num_hot == 0 and lookup.num_warm == 0
        assert lookup.num_cold == 4
        assert cache._tier is None          # no bookkeeping at all
        bill = cache.bill(lookup, row_bytes=16, spec=DEFAULT_SPEC)
        assert bill.hot_seconds == 0.0 and bill.warm_seconds == 0.0
        assert bill.cold_seconds > 0.0

    def test_warm_only_configuration(self):
        cache = TieredCache(100, 0, 10, policy="lfu")
        for batch in zipf_stream(100, 15, 32, seed=4):
            cache.lookup(batch)
            live = cache.residency()
            assert live["hot"] == 0 and live["warm"] <= 10

    def test_duplicates_counted_per_request(self):
        cache = TieredCache(50, 5, 5, policy="lru")
        cache.lookup(np.array([1, 1, 2]))
        cache.lookup(np.array([1, 1, 2]))
        assert cache.hot_hits == 3          # second call: all resident
        assert cache.requests == 6


class TestFlatEquivalence:
    def test_hot_only_lru_matches_flat_lru_hits(self):
        """TieredCache(hot=B, warm=0, lru) is the flat LRU baseline:
        same hit/miss counts on the same stream."""
        flat = LRUCache(200, 0.15)
        tiered = TieredCache(200, flat.capacity, 0, policy="lru")
        for batch in zipf_stream(200, 25, 40, seed=5):
            flat.lookup(batch)
            tiered.lookup(batch)
        assert tiered.hot_hits == flat.hits
        assert tiered.cold_misses == flat.misses


class TestTieredBilling:
    def _lookup(self, cache, vertices):
        return cache.lookup(np.asarray(vertices, dtype=np.int64))

    def test_bill_totals_and_shares(self):
        cache = TieredCache(100, 10, 10, policy="lfu")
        vertices = np.arange(30)
        cache.lookup(vertices)              # warm the tiers
        bill = cache.bill(self._lookup(cache, vertices), 64,
                          DEFAULT_SPEC)
        assert bill.total_seconds == pytest.approx(
            bill.hot_seconds + bill.warm_seconds + bill.cold_seconds)
        assert bill.bytes_moved == bill.warm_bytes + bill.cold_bytes
        assert set(bill.tier_seconds()) == {"hot", "warm", "cold"}

    def test_cold_rows_cost_more_than_warm(self):
        spec = DEFAULT_SPEC
        warm = TierLookup(np.arange(10), np.zeros(10, bool),
                          np.ones(10, bool), np.zeros(10, bool))
        cold = TierLookup(np.arange(10), np.zeros(10, bool),
                          np.zeros(10, bool), np.ones(10, bool))
        cache = TieredCache(100, 10, 10, policy="lfu")
        assert cache.bill(cold, 256, spec).total_seconds \
            > cache.bill(warm, 256, spec).total_seconds

    @pytest.mark.parametrize("method", [ExtractLoad(), ZeroCopy(),
                                        HybridTransfer()])
    def test_methods_bill_tier_by_tier(self, method):
        cache = TieredCache(500, 50, 100, policy="lfu")
        cache.lookup(np.arange(120))        # populate hot + warm
        stats = BatchStats(input_nodes=np.arange(200),
                           feature_bytes_per_vertex=64,
                           subgraph_edges=400, num_vertices_total=500)
        breakdown = method.transfer(stats, DEFAULT_SPEC, cache=cache)
        assert breakdown.disk_seconds > 0.0
        assert set(breakdown.tier_seconds) == {"hot", "warm", "cold"}
        assert breakdown.total_seconds == pytest.approx(
            breakdown.extract_seconds + breakdown.load_seconds
            + breakdown.disk_seconds)
        assert sum(breakdown.tier_bytes.values()) \
            <= stats.feature_bytes

    def test_fetch_seconds_accumulates_stats(self):
        cache = TieredCache(100, 10, 10, policy="lru")
        seconds, bill = cache.fetch_seconds(np.arange(25), 32,
                                            DEFAULT_SPEC)
        assert seconds == pytest.approx(bill.total_seconds)
        assert cache.requests == 25


class TestFactoryValidation:
    def test_rejects_unknown_policy(self, graph):
        with pytest.raises(TransferError):
            make_tiered_cache("fifo", graph, 0.1, 0.1)

    def test_rejects_out_of_range_ratios(self, graph):
        with pytest.raises(TransferError):
            make_tiered_cache("lru", graph, -0.1, 0.1)
        with pytest.raises(TransferError):
            make_tiered_cache("lru", graph, 0.7, 0.7)

    def test_degree_needs_a_graph(self):
        with pytest.raises(TransferError):
            make_tiered_cache("degree", 100, 0.1, 0.1)

    def test_presample_needs_sampler_or_scores(self, graph):
        with pytest.raises(TransferError):
            make_tiered_cache("presample", graph, 0.1, 0.1)
        cache = make_tiered_cache("presample", graph, 0.1, 0.1,
                                  scores=np.arange(graph.num_vertices,
                                                   dtype=float))
        assert cache.residency()["hot"] > 0

    def test_static_needs_scores(self):
        with pytest.raises(TransferError):
            make_tiered_cache("static", 100, 0.1, 0.1)

    def test_capacity_exceeding_universe_rejected(self):
        with pytest.raises(TransferError):
            TieredCache(10, 8, 8, policy="lru")

    def test_score_shape_validated(self):
        with pytest.raises(TransferError):
            TieredCache(10, 2, 2, policy="static",
                        scores=np.arange(5, dtype=float))


class TestVectorizedFlatLRU:
    def test_resident_bookkeeping_consistent(self):
        cache = LRUCache(300, 0.1)
        for batch in zipf_stream(300, 30, 64, seed=6):
            cache.lookup(batch)
            assert cache._bitmap.sum() == cache._resident
            assert cache._resident == len(cache._resident_ids)
            assert cache._resident <= cache.capacity

    def test_evicts_least_recently_used_still(self):
        cache = LRUCache(100, 0.03)         # capacity 3
        cache.lookup([1, 2, 3])
        cache.lookup([1])                   # 2 is now the LRU row
        cache.lookup([4])                   # evicts 2
        hits, _misses = cache.lookup([1, 3, 4])
        assert len(hits) == 3
        _hits, misses = cache.lookup([2])
        assert len(misses) == 1
