"""Unit tests for the hardware model and transfer methods."""

import numpy as np
import pytest

from repro.errors import TransferError
from repro.graph import load_dataset
from repro.sampling import NeighborSampler
from repro.transfer import (DEFAULT_SPEC, BatchStats, DegreeCache,
                            ExtractLoad, HardwareSpec, HybridTransfer,
                            ZeroCopy, estimate_flops, make_transfer)


@pytest.fixture(scope="module")
def dataset():
    return load_dataset("livejournal", scale=0.4)


@pytest.fixture(scope="module")
def stats(dataset):
    sampler = NeighborSampler((10, 5))
    subgraph = sampler.sample(dataset.graph, dataset.train_ids[:256],
                              np.random.default_rng(0))
    return BatchStats.from_subgraph(subgraph, dataset)


class TestHardwareSpec:
    def test_pcie_time_scales_linearly(self):
        spec = DEFAULT_SPEC
        assert spec.pcie_time(2e9) > 1.9 * spec.pcie_time(1e9)

    def test_zero_copy_slower_per_byte_than_dma(self):
        spec = DEFAULT_SPEC
        payload = 1e8
        assert spec.zero_copy_time(payload) > payload / spec.pcie_bandwidth

    def test_invalid_bandwidth(self):
        with pytest.raises(TransferError):
            HardwareSpec(pcie_bandwidth=0)

    def test_invalid_efficiency(self):
        with pytest.raises(TransferError):
            HardwareSpec(zero_copy_efficiency=1.5)

    def test_with_overrides(self):
        spec = DEFAULT_SPEC.with_overrides(pcie_bandwidth=32e9)
        assert spec.pcie_bandwidth == 32e9
        assert spec.network_bandwidth == DEFAULT_SPEC.network_bandwidth

    def test_network_latency_counts_messages(self):
        spec = DEFAULT_SPEC
        one = spec.network_time(1000, messages=1)
        many = spec.network_time(1000, messages=10)
        assert many - one == pytest.approx(9 * spec.network_latency)

    def test_estimate_flops_grows_with_batch(self, dataset):
        sampler = NeighborSampler((10, 5))
        small = sampler.sample(dataset.graph, dataset.train_ids[:32],
                               np.random.default_rng(0))
        large = sampler.sample(dataset.graph, dataset.train_ids[:512],
                               np.random.default_rng(0))
        assert (estimate_flops(large, dataset.feature_dim, 128, 60)
                > estimate_flops(small, dataset.feature_dim, 128, 60))


class TestTransferMethods:
    def test_extract_load_has_extract_phase(self, stats):
        result = ExtractLoad().transfer(stats, DEFAULT_SPEC)
        assert result.extract_seconds > 0
        assert result.load_seconds > 0

    def test_zero_copy_skips_extraction(self, stats):
        result = ZeroCopy().transfer(stats, DEFAULT_SPEC)
        assert result.extract_seconds == 0.0

    def test_zero_copy_beats_extract_load(self, stats):
        """§7.3.1: zero-copy wins on the transfer step itself."""
        explicit = ExtractLoad().transfer(stats, DEFAULT_SPEC)
        implicit = ZeroCopy().transfer(stats, DEFAULT_SPEC)
        assert implicit.total_seconds < explicit.total_seconds

    def test_cache_reduces_time_and_bytes(self, dataset, stats):
        cache = DegreeCache(dataset.graph, 0.4)
        plain = ZeroCopy().transfer(stats, DEFAULT_SPEC)
        cached = ZeroCopy().transfer(stats, DEFAULT_SPEC, cache=cache)
        assert cached.bytes_moved < plain.bytes_moved
        assert cached.total_seconds < plain.total_seconds

    def test_hybrid_between_dense_and_sparse(self, stats):
        """With a threshold of ~0, hybrid DMAs everything; with 1.0 it
        degenerates to zero-copy."""
        all_dma = HybridTransfer(threshold=1e-9).transfer(
            stats, DEFAULT_SPEC)
        all_zero = HybridTransfer(threshold=1.0).transfer(
            stats, DEFAULT_SPEC)
        pure_zero = ZeroCopy().transfer(stats, DEFAULT_SPEC)
        # Degenerate hybrid moves at least as many bytes as zero-copy
        # (whole blocks), and the threshold=1 variant matches zero-copy
        # bytes.
        assert all_dma.bytes_moved >= pure_zero.bytes_moved
        assert all_zero.bytes_moved == pure_zero.bytes_moved

    def test_hybrid_invalid_threshold(self):
        with pytest.raises(TransferError):
            HybridTransfer(threshold=0.0)

    def test_factory(self):
        assert make_transfer("extract-load").name == "extract-load"
        assert make_transfer("hybrid", threshold=0.3).threshold == 0.3
        with pytest.raises(TransferError):
            make_transfer("teleport")

    def test_stats_from_subgraph(self, dataset):
        sampler = NeighborSampler((5, 5))
        subgraph = sampler.sample(dataset.graph, dataset.train_ids[:64],
                                  np.random.default_rng(0))
        stats = BatchStats.from_subgraph(subgraph, dataset)
        assert stats.feature_bytes == (len(subgraph.input_nodes)
                                       * dataset.feature_dim * 4)
        assert stats.subgraph_edges == subgraph.total_edges
