"""Unit tests for GPU caching, block activity, and pipelining."""

import numpy as np
import pytest

from repro.errors import TransferError
from repro.graph import load_dataset
from repro.sampling import NeighborSampler
from repro.transfer import (DegreeCache, GPUCache, PreSampleCache,
                            RandomCache, active_block_ratio,
                            block_activity, pipeline_groups,
                            presample_frequencies, simulate_pipeline,
                            threshold_sweep)


@pytest.fixture(scope="module")
def skewed():
    return load_dataset("amazon", scale=0.4)


@pytest.fixture(scope="module")
def flat():
    return load_dataset("ogb-papers", scale=0.4)


class TestGPUCache:
    def test_lookup_splits_and_counts(self):
        cache = GPUCache([0, 2], num_vertices=4)
        hits, misses = cache.lookup([0, 1, 2, 3, 0])
        assert list(hits) == [0, 2, 0]
        assert list(misses) == [1, 3]
        assert cache.hits == 3 and cache.misses == 2
        assert cache.hit_rate == pytest.approx(0.6)

    def test_out_of_range_rejected(self):
        with pytest.raises(TransferError):
            GPUCache([9], num_vertices=4)

    def test_reset_stats(self):
        cache = GPUCache([0], num_vertices=2)
        cache.lookup([0, 1])
        cache.reset_stats()
        assert cache.hits == 0 and cache.misses == 0

    def test_degree_cache_prefers_hubs(self, skewed):
        cache = DegreeCache(skewed.graph, 0.1)
        degrees = skewed.graph.out_degrees
        cached_ids = np.flatnonzero(cache.contains(
            np.arange(skewed.num_vertices)))
        uncached_ids = np.setdiff1d(np.arange(skewed.num_vertices),
                                    cached_ids)
        assert degrees[cached_ids].min() >= degrees[uncached_ids].max()

    def test_capacity_from_ratio(self, skewed):
        cache = DegreeCache(skewed.graph, 0.25)
        assert cache.capacity == round(0.25 * skewed.num_vertices)
        assert cache.ratio == pytest.approx(0.25, abs=0.01)

    def test_invalid_ratio(self, skewed):
        with pytest.raises(TransferError):
            DegreeCache(skewed.graph, 1.5)

    def test_zero_ratio_cache_never_hits(self, skewed):
        cache = DegreeCache(skewed.graph, 0.0)
        hits, misses = cache.lookup([0, 1, 2])
        assert len(hits) == 0 and len(misses) == 3

    def test_presample_frequencies_cover_train_vertices(self, skewed):
        sampler = NeighborSampler((5, 5))
        freq = presample_frequencies(
            skewed.graph, sampler, skewed.train_ids,
            np.random.default_rng(0), epochs=1)
        # Every training vertex is its own batch seed at least once.
        assert np.all(freq[skewed.train_ids] >= 1)

    def test_presample_beats_degree_on_flat_graph(self, flat):
        """§7.3.3's headline: on non-power-law graphs the degree
        heuristic stops predicting access frequency; pre-sampling keeps
        working.  The access skew comes from a small hot seed set — the
        working-set regime of OGB-Papers, where the graph dwarfs what one
        epoch touches."""
        sampler = NeighborSampler((10, 5))
        seeds = flat.train_ids[:max(16, int(0.02 * flat.num_vertices))]
        degree = DegreeCache(flat.graph, 0.2)
        presample = PreSampleCache(flat.graph, sampler, seeds,
                                   0.2, rng=np.random.default_rng(1))
        eval_rng = np.random.default_rng(2)
        for _round in range(4):
            batch = eval_rng.permutation(seeds)[:400]
            subgraph = sampler.sample(flat.graph, batch, eval_rng)
            degree.lookup(subgraph.input_nodes)
            presample.lookup(subgraph.input_nodes)
        assert presample.hit_rate > degree.hit_rate + 0.05

    def test_policies_comparable_on_power_law(self, skewed):
        """On power-law graphs both policies find the hubs."""
        sampler = NeighborSampler((10, 5))
        degree = DegreeCache(skewed.graph, 0.2)
        presample = PreSampleCache(skewed.graph, sampler, skewed.train_ids,
                                   0.2, rng=np.random.default_rng(1))
        eval_rng = np.random.default_rng(2)
        batch = eval_rng.permutation(skewed.train_ids)[:500]
        subgraph = sampler.sample(skewed.graph, batch, eval_rng)
        degree.lookup(subgraph.input_nodes)
        presample.lookup(subgraph.input_nodes)
        assert abs(presample.hit_rate - degree.hit_rate) < 0.2

    def test_random_cache_hit_rate_tracks_ratio(self, skewed):
        cache = RandomCache(skewed.graph, 0.3, np.random.default_rng(0))
        rng = np.random.default_rng(1)
        cache.lookup(rng.integers(0, skewed.num_vertices, size=5000))
        assert abs(cache.hit_rate - 0.3) < 0.05


class TestBlockActivity:
    def test_counts_per_block(self):
        # 10 vertices, 4-byte rows, 16-byte blocks -> 4 vertices/block.
        activity = block_activity([0, 1, 4, 9], num_vertices=10,
                                  feature_bytes_per_vertex=4,
                                  block_bytes=16)
        assert activity.vertices_per_block == 4
        assert list(activity.active_counts) == [2, 1, 1]

    def test_fractions(self):
        activity = block_activity([0, 1, 2, 3], num_vertices=8,
                                  feature_bytes_per_vertex=4,
                                  block_bytes=16)
        assert activity.fractions[0] == 1.0
        assert activity.fractions[1] == 0.0

    def test_duplicates_collapsed(self):
        activity = block_activity([0, 0, 0], num_vertices=4,
                                  feature_bytes_per_vertex=4,
                                  block_bytes=16)
        assert activity.active_counts[0] == 1

    def test_out_of_range(self):
        with pytest.raises(TransferError):
            block_activity([99], num_vertices=10,
                           feature_bytes_per_vertex=4)

    def test_active_block_ratio(self):
        activity = block_activity([0, 1, 2, 3, 4], num_vertices=16,
                                  feature_bytes_per_vertex=4,
                                  block_bytes=16)
        # Block 0 full, block 1 quarter-full, blocks 2-3 empty.
        assert active_block_ratio(activity, 0.5) == pytest.approx(0.25)
        assert active_block_ratio(activity, 0.2) == pytest.approx(0.5)

    def test_threshold_sweep_monotone(self):
        rng = np.random.default_rng(0)
        activity = block_activity(rng.choice(4096, 1000, replace=False),
                                  num_vertices=4096,
                                  feature_bytes_per_vertex=64)
        sweep = threshold_sweep(activity)
        values = list(sweep.values())
        assert all(a >= b for a, b in zip(values, values[1:]))


class TestPipeline:
    def test_no_pipe_is_sum(self):
        times = [(1.0, 2.0, 3.0)] * 4
        result = simulate_pipeline(times, mode="none")
        assert result.makespan == pytest.approx(24.0)

    def test_full_pipeline_bounded_by_bottleneck(self):
        times = [(1.0, 2.0, 3.0)] * 10
        result = simulate_pipeline(times, mode="bp+dt")
        # Steady state: bottleneck stage (3s) dominates; startup adds the
        # other stages once.
        assert result.makespan == pytest.approx(3.0 + 10 * 3.0, abs=1e-9)

    def test_pipeline_never_slower_than_sequential(self):
        rng = np.random.default_rng(0)
        times = rng.random((20, 3))
        sequential = simulate_pipeline(times, "none").makespan
        bp = simulate_pipeline(times, "bp").makespan
        full = simulate_pipeline(times, "bp+dt").makespan
        assert full <= bp <= sequential

    def test_pipeline_never_faster_than_bottleneck(self):
        rng = np.random.default_rng(1)
        times = rng.random((20, 3))
        full = simulate_pipeline(times, "bp+dt")
        assert full.makespan >= times.sum(axis=0).max()

    def test_empty_batches(self):
        result = simulate_pipeline(np.zeros((0, 3)), "bp+dt")
        assert result.makespan == 0.0

    def test_invalid_mode(self):
        with pytest.raises(TransferError):
            simulate_pipeline([(1, 1, 1)], mode="warp")

    def test_invalid_shape(self):
        with pytest.raises(TransferError):
            simulate_pipeline([(1.0, 2.0)], mode="none")

    def test_negative_times_rejected(self):
        with pytest.raises(TransferError):
            simulate_pipeline([(1.0, -2.0, 3.0)], mode="none")

    def test_groups(self):
        assert pipeline_groups("none") == [[0, 1, 2]]
        assert pipeline_groups("bp") == [[0], [1, 2]]
        assert pipeline_groups("bp+dt") == [[0], [1], [2]]

    def test_utilization_of_saturated_pipeline(self):
        times = [(1.0, 5.0, 1.0)] * 50
        result = simulate_pipeline(times, "bp+dt")
        assert result.utilization > 0.95
        assert result.bottleneck_group == 1
