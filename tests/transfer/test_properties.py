"""Property-based tests for the transfer subsystem."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import power_law_graph
from repro.transfer import (DEFAULT_SPEC, DegreeCache, GPUCache,
                            block_activity, estimate_batch_memory,
                            simulate_pipeline, threshold_sweep)


@st.composite
def stage_time_matrices(draw):
    n = draw(st.integers(min_value=1, max_value=25))
    rows = draw(st.lists(
        st.tuples(st.floats(0, 10, allow_nan=False),
                  st.floats(0, 10, allow_nan=False),
                  st.floats(0, 10, allow_nan=False)),
        min_size=n, max_size=n))
    return np.array(rows)


class TestPipelineProperties:
    @given(stage_time_matrices())
    @settings(max_examples=60, deadline=None)
    def test_mode_ordering(self, times):
        none = simulate_pipeline(times, "none").makespan
        bp = simulate_pipeline(times, "bp").makespan
        full = simulate_pipeline(times, "bp+dt").makespan
        assert full <= bp + 1e-9
        assert bp <= none + 1e-9

    @given(stage_time_matrices())
    @settings(max_examples=60, deadline=None)
    def test_makespan_bounds(self, times):
        """Pipelined time is at least the bottleneck stage and at least
        any single batch's critical path."""
        result = simulate_pipeline(times, "bp+dt")
        assert result.makespan >= times.sum(axis=0).max() - 1e-9
        assert result.makespan >= times.sum(axis=1).max() - 1e-9
        assert result.makespan <= times.sum() + 1e-9

    @given(stage_time_matrices(), st.floats(1.1, 5.0))
    @settings(max_examples=40, deadline=None)
    def test_scaling_times_scales_makespan(self, times, factor):
        base = simulate_pipeline(times, "bp+dt").makespan
        scaled = simulate_pipeline(times * factor, "bp+dt").makespan
        assert np.isclose(scaled, base * factor, rtol=1e-9, atol=1e-9)


class TestCacheProperties:
    @given(st.integers(10, 300), st.integers(0, 2**31 - 1),
           st.integers(1, 500))
    @settings(max_examples=40, deadline=None)
    def test_hits_plus_misses_equals_lookups(self, n, seed, requests):
        rng = np.random.default_rng(seed)
        cached = rng.choice(n, size=n // 3, replace=False)
        cache = GPUCache(cached, num_vertices=n)
        queries = rng.integers(0, n, size=requests)
        hits, misses = cache.lookup(queries)
        assert len(hits) + len(misses) == requests
        assert cache.hits + cache.misses == requests

    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_bigger_degree_cache_is_superset(self, seed):
        graph, _ = power_law_graph(150, 6, np.random.default_rng(seed))
        small = DegreeCache(graph, 0.2)
        large = DegreeCache(graph, 0.5)
        everything = np.arange(graph.num_vertices)
        assert np.all(large.contains(everything)
                      >= small.contains(everything))


class TestBlockActivityProperties:
    @given(st.integers(16, 500), st.integers(0, 2**31 - 1),
           st.integers(4, 64))
    @settings(max_examples=40, deadline=None)
    def test_counts_sum_to_unique_active(self, n, seed, feat_bytes):
        rng = np.random.default_rng(seed)
        active = rng.integers(0, n, size=min(n, 60))
        activity = block_activity(active, n, feat_bytes, block_bytes=256)
        assert activity.active_counts.sum() == len(np.unique(active))

    @given(st.integers(16, 500), st.integers(0, 2**31 - 1))
    @settings(max_examples=40, deadline=None)
    def test_threshold_sweep_monotone(self, n, seed):
        rng = np.random.default_rng(seed)
        active = rng.integers(0, n, size=n // 2)
        activity = block_activity(active, n, 64)
        values = list(threshold_sweep(activity).values())
        assert all(a >= b for a, b in zip(values, values[1:]))


class TestMemoryProperties:
    @given(st.integers(1, 4096), st.integers(1, 4095),
           st.tuples(st.integers(1, 30), st.integers(1, 30)),
           st.integers(8, 700))
    @settings(max_examples=40, deadline=None)
    def test_monotone_in_batch(self, batch, delta, fanout, feat_dim):
        small = estimate_batch_memory(batch, fanout, feat_dim)
        large = estimate_batch_memory(batch + delta, fanout, feat_dim)
        assert large.total_bytes >= small.total_bytes
