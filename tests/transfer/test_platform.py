"""Unit tests for deployment platforms."""

import numpy as np
import pytest

from repro import Trainer
from repro.core import config_for_platform
from repro.errors import TransferError
from repro.graph import load_dataset
from repro.sampling import NeighborSampler
from repro.transfer import (DEFAULT_SPEC, BatchStats, NoTransfer,
                            cpu_cluster, gpu_cluster, multi_gpu)


@pytest.fixture(scope="module")
def dataset():
    return load_dataset("ogb-arxiv", scale=0.25)


class TestPlatforms:
    def test_cpu_cluster_has_no_gpu_cache(self):
        platform = cpu_cluster(4)
        assert not platform.supports_gpu_cache
        assert isinstance(platform.default_transfer(), NoTransfer)

    def test_cpu_cluster_slower_compute(self):
        platform = cpu_cluster(2)
        flops = 1e9
        assert (platform.spec.compute_time(flops)
                > DEFAULT_SPEC.compute_time(flops))

    def test_multi_gpu_fast_interconnect(self):
        platform = multi_gpu(4)
        payload = 1e6
        assert (platform.spec.network_time(payload)
                < DEFAULT_SPEC.network_time(payload))

    def test_gpu_cluster_is_default_spec(self):
        platform = gpu_cluster(4)
        assert platform.spec == DEFAULT_SPEC
        assert platform.supports_gpu_cache

    def test_invalid_counts(self):
        with pytest.raises(TransferError):
            cpu_cluster(0)
        with pytest.raises(TransferError):
            multi_gpu(0)
        with pytest.raises(TransferError):
            gpu_cluster(0)

    def test_no_transfer_is_free(self, dataset):
        sampler = NeighborSampler((4, 4))
        subgraph = sampler.sample(dataset.graph, dataset.train_ids[:32],
                                  np.random.default_rng(0))
        stats = BatchStats.from_subgraph(subgraph, dataset)
        breakdown = NoTransfer().transfer(stats, DEFAULT_SPEC)
        assert breakdown.total_seconds == 0.0
        assert breakdown.bytes_moved == 0

    def test_str(self):
        assert str(multi_gpu(8)) == "multi-gpu x8"


class TestConfigForPlatform:
    def test_fields_propagate(self):
        platform = multi_gpu(2)
        config = config_for_platform(platform, epochs=3)
        assert config.num_workers == 2
        assert config.spec is platform.spec
        assert config.epochs == 3

    def test_cpu_cluster_disables_cache(self):
        config = config_for_platform(cpu_cluster(2), cache_policy="degree",
                                     cache_ratio=0.5)
        # Explicit overrides win — but the platform default clears them
        # first, so the caller's values survive only if passed.
        assert config.cache_policy == "degree"
        default = config_for_platform(cpu_cluster(2))
        assert default.cache_policy is None

    def test_end_to_end_training_on_each_platform(self, dataset):
        for platform in (cpu_cluster(2), multi_gpu(2), gpu_cluster(2)):
            config = config_for_platform(
                platform, epochs=2, batch_size=128, fanout=(4, 4),
                partitioner="hash")
            result = Trainer(dataset, config).run()
            assert result.mean_epoch_seconds > 0
