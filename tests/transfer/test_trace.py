"""Unit tests for chrome-trace export."""

import json

import numpy as np
import pytest

from repro.errors import TransferError
from repro.transfer import (epoch_trace_events, simulate_pipeline,
                            worker_trace, write_epoch_trace)

TIMES = [(1.0, 2.0, 3.0), (1.0, 2.0, 3.0), (0.5, 1.0, 2.0)]


class TestEpochTrace:
    def test_event_count(self):
        events = epoch_trace_events(TIMES, mode="bp+dt")
        spans = [e for e in events if e["ph"] == "X"]
        assert len(spans) == 3 * 3  # batches x resource groups

    def test_consistent_with_makespan(self):
        events = epoch_trace_events(TIMES, mode="bp+dt", time_scale=1.0)
        spans = [e for e in events if e["ph"] == "X"]
        last_end = max(e["ts"] + e["dur"] for e in spans)
        makespan = simulate_pipeline(TIMES, "bp+dt").makespan
        assert last_end == pytest.approx(makespan)

    def test_resource_exclusivity(self):
        """No two spans on the same resource (tid) overlap."""
        events = epoch_trace_events(TIMES, mode="bp+dt", time_scale=1.0)
        spans = [e for e in events if e["ph"] == "X"]
        for tid in {e["tid"] for e in spans}:
            lane = sorted((e["ts"], e["ts"] + e["dur"]) for e in spans
                          if e["tid"] == tid)
            for (s1, e1), (s2, _e2) in zip(lane, lane[1:]):
                assert s2 >= e1 - 1e-9

    def test_sequential_mode_single_lane(self):
        events = epoch_trace_events(TIMES, mode="none")
        spans = [e for e in events if e["ph"] == "X"]
        assert {e["tid"] for e in spans} == {0}

    def test_metadata_labels(self):
        events = epoch_trace_events(TIMES, mode="bp+dt", worker=2)
        names = [e for e in events if e["ph"] == "M"]
        assert any(e["name"] == "process_name"
                   and e["args"]["name"] == "worker 2" for e in names)
        thread_names = {e["args"]["name"] for e in names
                        if e["name"] == "thread_name"}
        assert thread_names == {"CPU", "PCIe", "GPU"}

    def test_invalid_shape(self):
        with pytest.raises(TransferError):
            epoch_trace_events([(1.0, 2.0)])


class TestMultiWorkerTrace:
    def test_workers_get_distinct_pids(self):
        events = worker_trace([TIMES, TIMES], mode="bp")
        pids = {e["pid"] for e in events if e["ph"] == "X"}
        assert pids == {0, 1}

    def test_empty_worker_skipped(self):
        events = worker_trace([TIMES, []])
        pids = {e["pid"] for e in events if e["ph"] == "X"}
        assert pids == {0}

    def test_write_trace_file(self, tmp_path):
        path = write_epoch_trace(tmp_path / "trace" / "epoch.json",
                                 [TIMES], mode="bp+dt")
        with open(path) as handle:
            payload = json.load(handle)
        assert "traceEvents" in payload
        assert len(payload["traceEvents"]) > 0


class TestTraceFromRealRun:
    def test_trace_from_engine_workers(self):
        """End-to-end: the engine's recorded stage times export to a
        well-formed trace."""
        from repro import Trainer, TrainingConfig, load_dataset
        dataset = load_dataset("ogb-arxiv", scale=0.25)
        config = TrainingConfig(epochs=1, batch_size=64, fanout=(4, 4),
                                num_workers=2, partitioner="hash")
        trainer = Trainer(dataset, config)
        engine, _p, _s, _m, _opt = trainer._build_engine()
        engine.run_epoch(64, np.random.default_rng(0))
        stage_lists = [w.epoch_stage_times(w.batches_done)
                       for w in engine.workers]
        events = worker_trace(stage_lists, mode="bp+dt")
        assert len([e for e in events if e["ph"] == "X"]) > 0
