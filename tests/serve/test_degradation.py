"""Serving under deadlines: load shedding, degraded fallback, and the
report's deadline accounting."""

import numpy as np
import pytest

from repro import load_dataset
from repro.errors import ServingError
from repro.nn import build_model
from repro.serve import (BatchPolicy, LayerwiseEmbeddings, LoadGenerator,
                         ServeEngine)


@pytest.fixture(scope="module")
def data():
    return load_dataset("ogb-arxiv", scale=0.15)


@pytest.fixture(scope="module")
def model(data):
    return build_model("gcn", data.feature_dim, data.num_classes,
                       rng=np.random.default_rng(7))


@pytest.fixture(scope="module")
def trace(data):
    return LoadGenerator(data.test_ids, rate=2000.0, num_requests=150,
                         seed=1, skew=0.8).generate()


def make_engine(data, model, **kwargs):
    kwargs.setdefault("policy", BatchPolicy(max_batch_size=8,
                                            max_wait=0.001))
    return ServeEngine(data, model, mode="sampled", fanout=(5, 5),
                       seed=0, **kwargs)


class TestValidation:
    def test_rejects_nonpositive_deadline(self, data, model):
        with pytest.raises(ServingError):
            make_engine(data, model, deadline=0.0)

    def test_fallback_needs_deadline(self, data, model):
        with pytest.raises(ServingError):
            make_engine(data, model, fallback=True)

    def test_fallback_only_in_sampled_mode(self, data, model):
        embeddings = LayerwiseEmbeddings(model, data.graph,
                                         data.features)
        with pytest.raises(ServingError):
            ServeEngine(data, model, mode="precomputed",
                        embeddings=embeddings, deadline=0.01,
                        fallback=True)


class TestDeadlineAccounting:
    def test_no_deadline_means_no_shedding(self, data, model, trace):
        report = make_engine(data, model).run(trace)
        assert report.deadline == 0.0
        assert report.shed == 0
        assert report.degraded == 0
        assert report.deadline_misses == 0
        assert report.shed_rate == 0.0

    def test_loose_deadline_sheds_nothing(self, data, model, trace):
        report = make_engine(data, model, deadline=10.0).run(trace)
        assert report.shed == 0
        assert report.deadline_misses == 0
        assert report.completed + report.rejected == len(trace)

    def test_tight_deadline_sheds_expired_requests(self, data, model,
                                                   trace):
        plain = make_engine(data, model).run(trace)
        tight = plain.latency_p50
        report = make_engine(data, model, deadline=tight).run(trace)
        assert report.deadline == tight
        assert report.shed > 0
        assert 0.0 < report.shed_rate <= 1.0
        assert report.completed + report.rejected + report.shed \
            == len(trace)
        # Completed responses that outlived the deadline are misses.
        late = sum(1 for r in report.responses
                   if r.latency > tight)
        assert report.deadline_misses == late

    def test_report_dict_carries_degradation_fields(self, data, model,
                                                    trace):
        report = make_engine(data, model, deadline=0.01).run(trace)
        out = report.to_dict()
        for key in ("deadline", "shed", "degraded", "deadline_misses",
                    "shed_rate", "deadline_miss_rate"):
            assert key in out
        assert "responses" not in out


class TestDegradedFallback:
    def test_fallback_reduces_tail_latency(self, data, model, trace):
        plain = make_engine(data, model).run(trace)
        tight = plain.latency_p50
        degraded = make_engine(data, model, deadline=tight,
                               fallback=True).run(trace)
        assert degraded.degraded > 0
        # Degraded batches skip sampling entirely, so the tail falls.
        assert degraded.latency_p99 < plain.latency_p99
        flagged = [r for r in degraded.responses if r.degraded]
        assert len(flagged) == degraded.degraded

    def test_degraded_answers_match_precomputed_table(self, data, model,
                                                      trace):
        plain = make_engine(data, model).run(trace)
        embeddings = LayerwiseEmbeddings(model, data.graph,
                                         data.features)
        report = make_engine(data, model, deadline=plain.latency_p50,
                             fallback=True,
                             embeddings=embeddings).run(trace)
        flagged = [r for r in report.responses if r.degraded]
        assert flagged
        vertices = np.array([r.request.vertex for r in flagged])
        expected = embeddings.logits(vertices).argmax(axis=-1)
        assert [r.prediction for r in flagged] == list(expected)

    def test_degraded_run_is_deterministic(self, data, model, trace):
        def run():
            report = make_engine(data, model, deadline=0.001,
                                 fallback=True).run(trace)
            return ([(r.request.request_id, r.prediction, r.completion,
                      r.degraded) for r in report.responses],
                    report.shed, report.degraded)

        assert run() == run()
