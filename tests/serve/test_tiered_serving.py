"""Tiered caching on the serving path: engine wiring, report fields,
bench sweep rows, and the CLI flags."""

import json

import numpy as np
import pytest

from repro import Trainer, TrainingConfig, load_dataset
from repro.cli import main
from repro.errors import ServingError
from repro.nn import build_model
from repro.serve import LoadGenerator, ServeEngine
from repro.serve.bench import run_serve_bench
from repro.transfer import TieredCache


@pytest.fixture(scope="module")
def data():
    return load_dataset("ogb-arxiv", scale=0.15)


@pytest.fixture(scope="module")
def model(data):
    return build_model("gcn", data.feature_dim, data.num_classes,
                       rng=np.random.default_rng(7))


@pytest.fixture(scope="module")
def trace(data):
    return LoadGenerator(data.test_ids, rate=2000.0, num_requests=150,
                         seed=1, skew=0.8).generate()


class TestTieredServeEngine:
    def test_precomputed_lfu_reports_tier_fields(self, data, model,
                                                 trace):
        engine = ServeEngine(data, model, mode="precomputed",
                             cache_policy="lfu", cache_ratio=0.05,
                             warm_ratio=0.1, seed=2)
        assert isinstance(engine.cache, TieredCache)
        report = engine.run(trace)
        assert report.cache_policy == "lfu"
        assert report.warm_ratio == 0.1
        assert set(report.tier_seconds) == {"hot", "warm", "cold"}
        assert sum(report.tier_seconds.values()) \
            == pytest.approx(report.dt_seconds)
        assert report.cache_hit_rate == report.hot_hit_rate
        out = report.to_dict()
        for key in ("cache_policy", "warm_ratio", "hot_hit_rate",
                    "warm_hit_rate", "tier_seconds"):
            assert key in out
        json.dumps(out)                     # stays serializable

    def test_sampled_static_scores(self, data, model, trace):
        scores = np.zeros(data.graph.num_vertices)
        np.add.at(scores, [r.vertex for r in trace[:40]], 1)
        engine = ServeEngine(data, model, mode="sampled",
                             cache_policy="static", cache_ratio=0.05,
                             warm_ratio=0.1, cache_scores=scores,
                             seed=2)
        report = engine.run(trace)
        assert report.hot_hit_rate + report.warm_hit_rate > 0

    def test_flat_reports_stay_empty(self, data, model, trace):
        engine = ServeEngine(data, model, mode="precomputed",
                             cache_ratio=0.2, seed=2)
        report = engine.run(trace)
        assert report.warm_ratio == 0.0
        assert report.tier_seconds == {}
        assert report.hot_hit_rate == 0.0

    def test_tiered_run_deterministic(self, data, model, trace):
        def run():
            return ServeEngine(
                data, model, mode="precomputed", cache_policy="lfu",
                cache_ratio=0.05, warm_ratio=0.1, seed=2).run(trace)

        assert run().to_dict() == run().to_dict()

    def test_presample_without_scores_rejected(self, data, model):
        with pytest.raises(ServingError):
            ServeEngine(data, model, mode="sampled",
                        cache_policy="presample", cache_ratio=0.05,
                        warm_ratio=0.1)

    def test_negative_warm_ratio_rejected(self, data, model):
        with pytest.raises(ServingError):
            ServeEngine(data, model, warm_ratio=-0.1)


class TestTieredBenchRows:
    @pytest.fixture(scope="class")
    def report(self):
        return run_serve_bench(quick=True)

    def test_sweep_contains_tiered_rows(self, report):
        tiered = [r for r in report["results"] if r["warm_ratio"] > 0]
        assert tiered
        for row in tiered:
            assert row["cache_policy"] in ("lfu", "lru", "static",
                                           "degree")
            assert set(row["tier_seconds"]) == {"hot", "warm", "cold"}

    def test_flat_rows_unchanged_shape(self, report):
        flat = [r for r in report["results"] if r["warm_ratio"] == 0]
        assert flat
        for row in flat:
            assert row["tier_seconds"] == {}

    def test_invariant_still_holds(self, report):
        assert report["invariant_exact_match"] is True


class TestTieredTraining:
    def test_loss_curve_bit_identical_and_perf_reported(self):
        data = load_dataset("ogb-arxiv", scale=0.12)
        base = dict(epochs=2, batch_size=128, fanout=(4, 4),
                    num_workers=2, partitioner="hash", seed=0)
        plain = Trainer(data, TrainingConfig(**base)).run()
        tiered = Trainer(data, TrainingConfig(
            cache_policy="lfu", cache_ratio=0.05, cache_warm_ratio=0.1,
            **base)).run()
        # Caches only change simulated timing, never the math.
        assert np.array_equal(plain.curve.losses, tiered.curve.losses)
        perf = tiered.epoch_stats[-1].perf
        assert set(perf["dt_tier_seconds"]) == {"hot", "warm", "cold"}
        tiers = perf["cache_tiers"]
        assert tiers["hot_hits"] + tiers["warm_hits"] \
            + tiers["cold_misses"] > 0
        assert "dt_tier_seconds" not in \
            (plain.epoch_stats[-1].perf or {})


class TestTieredCLI:
    def test_train_cache_budget_flags(self, capsys):
        code = main(["train", "ogb-arxiv", "--scale", "0.12",
                     "--epochs", "2", "--workers", "2",
                     "--partitioner", "hash", "--fanout", "4", "4",
                     "--cache-policy", "lfu", "--cache-budget", "0.2"])
        out = capsys.readouterr().out
        assert code == 0
        assert "cache tiers" in out

    def test_cache_budget_requires_policy(self, capsys):
        code = main(["train", "ogb-arxiv", "--scale", "0.1",
                     "--epochs", "1", "--cache-budget", "0.2"])
        assert code == 2
        assert "--cache-policy" in capsys.readouterr().err

    def test_random_policy_rejected_for_budget(self, capsys):
        code = main(["train", "ogb-arxiv", "--scale", "0.1",
                     "--epochs", "1", "--cache-policy", "random",
                     "--cache-budget", "0.2"])
        assert code == 2
        assert "flat-cache" in capsys.readouterr().err

    def test_budget_out_of_range_rejected(self):
        with pytest.raises(SystemExit):
            main(["train", "ogb-arxiv", "--cache-policy", "lfu",
                  "--cache-budget", "1.5"])

    def test_serve_bench_tiered_flags(self, tmp_path, capsys):
        out = tmp_path / "serve.json"
        code = main(["serve-bench", "ogb-arxiv", "--quick",
                     "--tiered-policies", "lfu", "--out", str(out)])
        assert code == 0
        report = json.loads(out.read_text())
        tiered = [r for r in report["results"] if r["warm_ratio"] > 0]
        assert tiered and all(r["cache_policy"] == "lfu"
                              for r in tiered)
        assert "tiers" in capsys.readouterr().out
