"""Micro-batcher flush semantics and bounded-queue backpressure."""

import pytest

from repro.errors import AdmissionError, ServingError
from repro.serve import BatchPolicy, MicroBatcher
from repro.serve.requests import InferenceRequest


def request(i, arrival):
    return InferenceRequest(request_id=i, vertex=i, arrival=arrival)


class TestBatchPolicy:
    def test_validation(self):
        with pytest.raises(ServingError):
            BatchPolicy(max_batch_size=0)
        with pytest.raises(ServingError):
            BatchPolicy(max_wait=-1.0)

    def test_describe(self):
        assert BatchPolicy(32, 0.002).describe() == "b32/w2ms"


class TestFlushSemantics:
    def test_not_ready_while_waiting(self):
        batcher = MicroBatcher(BatchPolicy(4, max_wait=1.0))
        batcher.submit(request(0, arrival=0.0))
        assert not batcher.ready(now=0.5)

    def test_max_size_flush(self):
        batcher = MicroBatcher(BatchPolicy(4, max_wait=100.0))
        for i in range(4):
            batcher.submit(request(i, arrival=0.0))
        # Full batch flushes immediately, long before the deadline.
        assert batcher.ready(now=0.0)
        batch = batcher.take()
        assert [r.request_id for r in batch] == [0, 1, 2, 3]
        assert len(batcher) == 0

    def test_max_wait_timeout_flush(self):
        batcher = MicroBatcher(BatchPolicy(64, max_wait=0.010))
        batcher.submit(request(0, arrival=1.0))
        batcher.submit(request(1, arrival=1.005))
        assert batcher.oldest_deadline() == pytest.approx(1.010)
        assert not batcher.ready(now=1.009)
        assert batcher.ready(now=1.010)
        assert len(batcher.take()) == 2   # partial batch

    def test_draining_flushes_partial_batch(self):
        batcher = MicroBatcher(BatchPolicy(64, max_wait=100.0))
        batcher.submit(request(0, arrival=0.0))
        assert not batcher.ready(now=0.0)
        assert batcher.ready(now=0.0, draining=True)

    def test_take_caps_at_batch_size(self):
        batcher = MicroBatcher(BatchPolicy(3, max_wait=0.0))
        for i in range(5):
            batcher.submit(request(i, arrival=0.0))
        assert [r.request_id for r in batcher.take()] == [0, 1, 2]
        assert [r.request_id for r in batcher.take()] == [3, 4]

    def test_take_empty_raises(self):
        with pytest.raises(ServingError):
            MicroBatcher().take()


class TestBackpressure:
    def test_overflow_raises_admission_error(self):
        batcher = MicroBatcher(BatchPolicy(8, 1.0), max_queue=2)
        batcher.submit(request(0, 0.0))
        batcher.submit(request(1, 0.0))
        with pytest.raises(AdmissionError):
            batcher.submit(request(2, 0.0))
        # The rejected request did not corrupt the queue.
        assert len(batcher) == 2
        assert batcher.admitted == 2
        assert batcher.rejected == 1

    def test_take_frees_capacity(self):
        batcher = MicroBatcher(BatchPolicy(2, 0.0), max_queue=2)
        batcher.submit(request(0, 0.0))
        batcher.submit(request(1, 0.0))
        batcher.take()
        batcher.submit(request(2, 0.0))   # no raise
        assert len(batcher) == 1

    def test_invalid_max_queue(self):
        with pytest.raises(ServingError):
            MicroBatcher(max_queue=0)
