"""The request layer: deterministic seeded open-loop load generation."""

import numpy as np
import pytest

from repro.errors import ServingError
from repro.serve import LoadGenerator


POPULATION = np.arange(50, 250)


class TestLoadGenerator:
    def test_same_seed_identical_trace(self):
        gen = LoadGenerator(POPULATION, rate=1000.0, num_requests=300,
                            seed=7, skew=0.9)
        first = gen.generate()
        second = gen.generate()
        assert [(r.request_id, r.vertex, r.arrival) for r in first] \
            == [(r.request_id, r.vertex, r.arrival) for r in second]

    def test_different_seeds_differ(self):
        a = LoadGenerator(POPULATION, 1000.0, 100, seed=1).generate()
        b = LoadGenerator(POPULATION, 1000.0, 100, seed=2).generate()
        assert [r.arrival for r in a] != [r.arrival for r in b]

    def test_arrivals_sorted_and_positive(self):
        trace = LoadGenerator(POPULATION, 500.0, 200, seed=3).generate()
        arrivals = [r.arrival for r in trace]
        assert arrivals == sorted(arrivals)
        assert arrivals[0] > 0

    def test_rate_matches_mean_gap(self):
        trace = LoadGenerator(POPULATION, 2000.0, 5000,
                              seed=0).generate()
        mean_gap = trace[-1].arrival / len(trace)
        assert mean_gap == pytest.approx(1.0 / 2000.0, rel=0.1)

    def test_vertices_from_population(self):
        trace = LoadGenerator(POPULATION, 1000.0, 400,
                              seed=4, skew=1.2).generate()
        assert all(50 <= r.vertex < 250 for r in trace)

    def test_skew_concentrates_queries(self):
        def top_share(skew):
            trace = LoadGenerator(POPULATION, 1000.0, 2000, seed=5,
                                  skew=skew).generate()
            counts = np.bincount([r.vertex for r in trace])
            counts = np.sort(counts)[::-1]
            return counts[:10].sum() / counts.sum()

        assert top_share(1.5) > top_share(0.0) + 0.1

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ServingError):
            LoadGenerator([], 100.0, 10)
        with pytest.raises(ServingError):
            LoadGenerator(POPULATION, 0.0, 10)
        with pytest.raises(ServingError):
            LoadGenerator(POPULATION, 100.0, 0)
        with pytest.raises(ServingError):
            LoadGenerator(POPULATION, 100.0, 10, skew=-1.0)

    def test_request_ids_dense(self):
        trace = LoadGenerator(POPULATION, 100.0, 50, seed=6).generate()
        assert [r.request_id for r in trace] == list(range(50))
