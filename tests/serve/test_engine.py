"""The serving engine: the bit-match invariant, determinism, caching,
backpressure, and report plumbing."""

import json

import numpy as np
import pytest

from repro import load_dataset
from repro.errors import ServingError
from repro.nn import build_model
from repro.serve import (BatchPolicy, LayerwiseEmbeddings, LoadGenerator,
                         ServeEngine)


@pytest.fixture(scope="module")
def data():
    return load_dataset("ogb-arxiv", scale=0.15)


@pytest.fixture(scope="module")
def model(data):
    return build_model("gcn", data.feature_dim, data.num_classes,
                       rng=np.random.default_rng(7))


@pytest.fixture(scope="module")
def trace(data):
    return LoadGenerator(data.test_ids, rate=2000.0, num_requests=150,
                         seed=1, skew=0.8).generate()


class TestBitMatchInvariant:
    @pytest.mark.parametrize("name", ["gcn", "graphsage"])
    def test_precomputed_matches_full_fanout_exactly(self, data, name):
        net = build_model(name, data.feature_dim, data.num_classes,
                          rng=np.random.default_rng(3))
        embeddings = LayerwiseEmbeddings(net, data.graph, data.features)
        probe = data.test_ids[:64]
        precomputed = embeddings.logits(probe)
        ondemand, stats = embeddings.ondemand_logits(probe)
        # atol=0: bit-identical, not merely close.
        assert np.array_equal(precomputed, ondemand)
        assert stats.edges > 0
        assert stats.input_vertices > len(np.unique(probe))

    def test_duplicate_queries_allowed(self, data, model):
        embeddings = LayerwiseEmbeddings(model, data.graph,
                                         data.features)
        probe = np.array([5, 5, 9, 5])
        precomputed = embeddings.logits(probe)
        ondemand, _ = embeddings.ondemand_logits(probe)
        assert np.array_equal(precomputed, ondemand)
        assert np.array_equal(precomputed[0], precomputed[1])

    def test_gat_rejected(self, data):
        gat = build_model("gat", data.feature_dim, data.num_classes,
                          rng=np.random.default_rng(0))
        with pytest.raises(ServingError):
            LayerwiseEmbeddings(gat, data.graph, data.features)

    def test_engine_modes_agree(self, data, model, trace):
        """The full and precomputed *engines* return identical
        predictions for identical traces."""
        def predictions(mode):
            engine = ServeEngine(data, model, mode=mode,
                                 policy=BatchPolicy(16, 0.002), seed=2)
            report = engine.run(trace)
            return [(r.request.request_id, r.prediction)
                    for r in report.responses]

        assert predictions("full") == predictions("precomputed")


class TestDeterminism:
    @pytest.mark.parametrize("mode", ["sampled", "precomputed"])
    def test_same_seed_identical_latencies(self, data, model, mode):
        gen = LoadGenerator(data.test_ids, rate=3000.0,
                            num_requests=120, seed=9, skew=0.5)

        def latencies():
            engine = ServeEngine(data, model, mode=mode,
                                 policy=BatchPolicy(8, 0.001),
                                 cache_ratio=0.25, seed=4)
            report = engine.run(gen.generate())
            return [(r.request.request_id, r.latency)
                    for r in report.responses]

        assert latencies() == latencies()


class TestServing:
    def test_sampled_mode_report(self, data, model, trace):
        engine = ServeEngine(data, model, mode="sampled",
                             policy=BatchPolicy(16, 0.002),
                             cache_ratio=0.3, seed=0)
        report = engine.run(trace)
        assert report.completed == len(trace)
        assert report.rejected == 0
        assert report.latency_p50 <= report.latency_p95 \
            <= report.latency_p99 <= report.latency_max
        assert report.latency_p50 > 0
        assert report.throughput > 0
        assert 0 < report.mean_batch_size <= 16
        assert 0 < report.batch_occupancy <= 1
        assert 0 <= report.cache_hit_rate <= 1
        assert report.num_batches >= len(trace) / 16

    def test_every_request_answered_once(self, data, model, trace):
        report = ServeEngine(data, model, mode="precomputed",
                             seed=0).run(trace)
        answered = sorted(r.request.request_id
                          for r in report.responses)
        assert answered == [r.request_id for r in trace]
        # Latency covers queueing: completion never precedes arrival.
        assert all(r.latency > 0 for r in report.responses)

    def test_bounded_queue_sheds_load(self, data, model, trace):
        report = ServeEngine(data, model, mode="sampled",
                             policy=BatchPolicy(64, 0.05),
                             max_queue=4, seed=0).run(trace)
        assert report.rejected > 0
        assert report.completed + report.rejected == len(trace)
        assert report.reject_rate > 0

    def test_bigger_cache_hits_more(self, data, model, trace):
        def hit_rate(ratio):
            engine = ServeEngine(data, model, mode="precomputed",
                                 cache_ratio=ratio, seed=0)
            return engine.run(trace).cache_hit_rate

        assert hit_rate(0.8) > hit_rate(0.05)

    def test_precompute_cost_reported_separately(self, data, model,
                                                 trace):
        report = ServeEngine(data, model, mode="precomputed",
                             seed=0).run(trace)
        assert report.precompute_seconds > 0
        assert report.bp_seconds == 0.0
        sampled = ServeEngine(data, model, mode="sampled",
                              seed=0).run(trace)
        assert sampled.precompute_seconds == 0.0
        assert sampled.bp_seconds > 0

    def test_report_json_serializable(self, data, model, trace):
        report = ServeEngine(data, model, mode="sampled",
                             seed=0).run(trace)
        payload = json.loads(json.dumps(report.to_dict()))
        for key in ("latency_p50", "latency_p95", "latency_p99",
                    "throughput", "cache_hit_rate", "breakdown"):
            assert key in payload

    def test_model_mode_restored(self, data, model, trace):
        model.train()
        ServeEngine(data, model, mode="sampled", seed=0).run(trace)
        assert model.training
        model.eval()
        ServeEngine(data, model, mode="sampled", seed=0).run(trace)
        assert not model.training

    def test_unknown_mode_rejected(self, data, model):
        with pytest.raises(ServingError):
            ServeEngine(data, model, mode="warp")

    def test_empty_trace_rejected(self, data, model):
        with pytest.raises(ServingError):
            ServeEngine(data, model, mode="sampled").run([])
