"""CLI surface: ``--version`` and the ``serve-bench`` subcommand."""

import json

import pytest

from repro import __version__
from repro.cli import build_parser, main


class TestVersionFlag:
    def test_version_exits_zero_and_prints(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0
        assert f"repro {__version__}" in capsys.readouterr().out

    def test_version_matches_package(self):
        assert __version__ == "1.0.0"


class TestServeBenchCommand:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["serve-bench", "--quick"])
        assert args.dataset == "ogb-arxiv"
        assert args.modes == ["sampled", "precomputed"]
        assert args.quick

    def test_quick_end_to_end(self, tmp_path, capsys):
        out = tmp_path / "BENCH_serve.json"
        code = main(["serve-bench", "--quick", "--out", str(out)])
        assert code == 0

        report = json.loads(out.read_text())
        assert report["invariant_exact_match"] is True
        # >= 2 policies x >= 2 cache ratios per mode.
        results = report["results"]
        assert len({r["policy"] for r in results}) >= 2
        assert len({r["cache_ratio"] for r in results}) >= 2
        for row in results:
            assert row["latency_p50"] <= row["latency_p95"] \
                <= row["latency_p99"]
            assert row["throughput"] > 0

        stdout = capsys.readouterr().out
        assert "invariant" in stdout
        assert "ok" in stdout
