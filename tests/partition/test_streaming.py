"""Unit tests for streaming partitioners (Stream-V / Stream-B)."""

import numpy as np
import pytest

from repro.errors import PartitionError
from repro.graph import from_edges, load_dataset
from repro.partition import (StreamBPartitioner, StreamVPartitioner,
                             build_bfs_blocks, l_hop_neighborhood)


@pytest.fixture(scope="module")
def dataset():
    return load_dataset("ogb-arxiv", scale=0.25)


def path_graph(n):
    src = list(range(n - 1))
    dst = list(range(1, n))
    return from_edges(src, dst, n, symmetrize_edges=True)


class TestLHopNeighborhood:
    def test_path_graph_hops(self):
        g = path_graph(10)
        one = l_hop_neighborhood(g, 5, 1)
        assert sorted(one) == [4, 6]
        two = l_hop_neighborhood(g, 5, 2)
        assert sorted(two) == [3, 4, 6, 7]

    def test_excludes_self(self):
        g = path_graph(5)
        assert 2 not in l_hop_neighborhood(g, 2, 2)

    def test_hop_cap_limits(self):
        # Star: center 0 connected to 1..20.
        g = from_edges([0] * 20, list(range(1, 21)), 21,
                       symmetrize_edges=True)
        capped = l_hop_neighborhood(g, 0, 1, hop_cap=5)
        assert len(capped) == 5

    def test_isolated_vertex(self):
        g = from_edges([0], [1], 3, symmetrize_edges=True)
        assert len(l_hop_neighborhood(g, 2, 2)) == 0


class TestStreamV:
    def test_requires_split(self, dataset):
        with pytest.raises(PartitionError):
            StreamVPartitioner().partition(dataset.graph, 2)

    def test_bad_hops(self):
        with pytest.raises(PartitionError):
            StreamVPartitioner(hops=0)

    def test_replicas_present(self, dataset):
        res = StreamVPartitioner().partition(
            dataset.graph, 4, split=dataset.split,
            rng=np.random.default_rng(0))
        assert res.replicas is not None
        assert res.replication_factor() > 1.5

    def test_train_vertices_balanced(self, dataset):
        res = StreamVPartitioner().partition(
            dataset.graph, 4, split=dataset.split,
            rng=np.random.default_rng(0))
        counts = np.bincount(res.assignment[dataset.train_ids], minlength=4)
        assert counts.max() / counts.mean() < 1.25

    def test_train_one_hop_is_local(self, dataset):
        """Each machine caches (at least the capped part of) the 1-hop
        neighborhood of its training vertices."""
        res = StreamVPartitioner(hops=2, hop_cap=None).partition(
            dataset.graph, 4, split=dataset.split,
            rng=np.random.default_rng(0))
        for v in dataset.train_ids[:50]:
            part = res.assignment[v]
            neighbors = dataset.graph.out_neighbors(v)
            assert res.is_local(part, neighbors).all()


class TestStreamB:
    def test_requires_split(self, dataset):
        with pytest.raises(PartitionError):
            StreamBPartitioner().partition(dataset.graph, 2)

    def test_bad_block_size(self):
        with pytest.raises(PartitionError):
            StreamBPartitioner(block_size=0)

    def test_blocks_cover_all_vertices(self, dataset):
        blocks = build_bfs_blocks(dataset.graph, dataset.train_ids,
                                  np.random.default_rng(0), block_size=16)
        covered = np.concatenate(blocks)
        assert len(covered) == dataset.num_vertices
        assert len(np.unique(covered)) == dataset.num_vertices

    def test_block_size_respected(self, dataset):
        blocks = build_bfs_blocks(dataset.graph, dataset.train_ids,
                                  np.random.default_rng(0), block_size=16)
        assert max(len(b) for b in blocks) <= 16

    def test_all_assigned(self, dataset):
        res = StreamBPartitioner().partition(
            dataset.graph, 4, split=dataset.split,
            rng=np.random.default_rng(0))
        assert res.assignment.min() >= 0

    def test_type_balance(self, dataset):
        res = StreamBPartitioner().partition(
            dataset.graph, 4, split=dataset.split,
            rng=np.random.default_rng(0))
        train_counts = np.bincount(res.assignment[dataset.train_ids],
                                   minlength=4)
        assert train_counts.max() / train_counts.mean() < 1.6

    def test_blocks_keep_neighbors_together(self, dataset):
        """Cluster locality: block streaming should cut far fewer edges
        than random assignment."""
        from repro.partition import HashPartitioner, edge_cut_fraction
        stream = StreamBPartitioner().partition(
            dataset.graph, 4, split=dataset.split,
            rng=np.random.default_rng(0))
        hashed = HashPartitioner().partition(
            dataset.graph, 4, rng=np.random.default_rng(0))
        assert (edge_cut_fraction(dataset.graph, stream.assignment)
                < edge_cut_fraction(dataset.graph, hashed.assignment))
