"""Unit tests for partition quality metrics and workload accounting."""

import numpy as np
import pytest

from repro.graph import from_edges, load_dataset
from repro.partition import (BYTES_PER_EDGE, HashPartitioner,
                             MetisPartitioner, PartitionResult,
                             StreamVPartitioner, balance_ratio,
                             clustering_coefficient_variance, edge_cut,
                             edge_cut_fraction, measure_workload,
                             quality_report)
from repro.sampling import NeighborSampler


@pytest.fixture(scope="module")
def dataset():
    return load_dataset("ogb-arxiv", scale=0.25)


@pytest.fixture(scope="module")
def sampler():
    return NeighborSampler((10, 5))


class TestQualityMetrics:
    def test_edge_cut_counts(self):
        g = from_edges([0, 1, 2], [1, 2, 3], 4)
        assert edge_cut(g, [0, 0, 1, 1]) == 1
        assert edge_cut(g, [0, 0, 0, 0]) == 0
        assert edge_cut_fraction(g, [0, 1, 0, 1]) == 1.0

    def test_edge_cut_fraction_empty(self):
        g = from_edges([], [], 3)
        assert edge_cut_fraction(g, [0, 1, 2]) == 0.0

    def test_balance_ratio_perfect(self):
        assert balance_ratio(np.array([0, 1, 0, 1]), 2) == 1.0

    def test_balance_ratio_weighted(self):
        ratio = balance_ratio(np.array([0, 1]), 2, weights=[3.0, 1.0])
        assert ratio == pytest.approx(1.5)

    def test_quality_report_keys(self, dataset):
        res = HashPartitioner().partition(dataset.graph, 2,
                                          rng=np.random.default_rng(0))
        report = quality_report(dataset.graph, res, dataset.split)
        for key in ("edge_cut_fraction", "vertex_balance", "train_balance",
                    "replication_factor", "seconds"):
            assert key in report

    def test_hash_has_lower_cc_variance_than_structured(self, dataset):
        """§5.3.1: random assignment gives statistically identical
        partitions (tiny density variance); structure-following streaming
        does not.  Averaged over seeds to dodge small-graph noise."""
        from repro.partition import StreamBPartitioner
        hash_vals, stream_vals = [], []
        for seed in range(3):
            hash_res = HashPartitioner().partition(
                dataset.graph, 4, rng=np.random.default_rng(seed))
            stream_res = StreamBPartitioner().partition(
                dataset.graph, 4, split=dataset.split,
                rng=np.random.default_rng(seed))
            hash_vals.append(
                clustering_coefficient_variance(dataset.graph, hash_res))
            stream_vals.append(
                clustering_coefficient_variance(dataset.graph, stream_res))
        assert np.mean(hash_vals) < np.mean(stream_vals)


class TestWorkload:
    def test_conservation_local_plus_served(self, dataset, sampler):
        """Every expansion is executed somewhere: the sum of local and
        served expansions equals the total expansion count."""
        res = HashPartitioner().partition(dataset.graph, 4,
                                          rng=np.random.default_rng(0))
        report = measure_workload(dataset, res, sampler, batch_size=64,
                                  rng=np.random.default_rng(1))
        total_local = sum(m.sample_local for m in report.machines)
        total_served = sum(m.sample_served for m in report.machines)
        assert total_local > 0 and total_served > 0
        # The outermost layer expands the machine's own (local) seeds, the
        # inner layer is ~3/4 remote under 4-way hash; combined, roughly
        # half the expansions are remote.
        remote_fraction = total_served / (total_local + total_served)
        assert 0.35 < remote_fraction < 0.85

    def test_hash_higher_comm_than_metis(self, dataset, sampler):
        hash_res = HashPartitioner().partition(
            dataset.graph, 4, rng=np.random.default_rng(0))
        metis_res = MetisPartitioner("ve").partition(
            dataset.graph, 4, split=dataset.split,
            rng=np.random.default_rng(0))
        hash_rep = measure_workload(dataset, hash_res, sampler, 64,
                                    rng=np.random.default_rng(1))
        metis_rep = measure_workload(dataset, metis_res, sampler, 64,
                                     rng=np.random.default_rng(1))
        assert hash_rep.total_comm_bytes > metis_rep.total_comm_bytes

    def test_stream_v_near_zero_comm(self, dataset, sampler):
        res = StreamVPartitioner(hop_cap=None).partition(
            dataset.graph, 4, split=dataset.split,
            rng=np.random.default_rng(0))
        hash_res = HashPartitioner().partition(
            dataset.graph, 4, rng=np.random.default_rng(0))
        stream_rep = measure_workload(dataset, res, sampler, 64,
                                      rng=np.random.default_rng(1))
        hash_rep = measure_workload(dataset, hash_res, sampler, 64,
                                    rng=np.random.default_rng(1))
        assert stream_rep.total_comm_bytes < 0.05 * hash_rep.total_comm_bytes

    def test_comm_bytes_composition(self, dataset, sampler):
        res = HashPartitioner().partition(dataset.graph, 2,
                                          rng=np.random.default_rng(0))
        report = measure_workload(dataset, res, sampler, 64,
                                  rng=np.random.default_rng(1))
        machine = report.machines[0]
        assert machine.comm_bytes == (
            machine.recv_subgraph_edges * BYTES_PER_EDGE
            + machine.recv_feature_bytes)

    def test_feature_bytes_match_vertices(self, dataset, sampler):
        res = HashPartitioner().partition(dataset.graph, 2,
                                          rng=np.random.default_rng(0))
        report = measure_workload(dataset, res, sampler, 64,
                                  rng=np.random.default_rng(1))
        feat_bytes = dataset.feature_dim * 4
        for machine in report.machines:
            assert machine.recv_feature_bytes == (
                machine.recv_feature_vertices * feat_bytes)

    def test_imbalance_of_identical_machines_is_one(self):
        report_cls = type(measure_workload)  # noqa: placeholder
        from repro.partition import MachineWorkload, WorkloadReport
        rep = WorkloadReport("x", [MachineWorkload(sample_local=10,
                                                   aggregation_edges=5)] * 2)
        assert rep.compute_imbalance == 1.0

    def test_summary_fields(self, dataset, sampler):
        res = HashPartitioner().partition(dataset.graph, 2,
                                          rng=np.random.default_rng(0))
        report = measure_workload(dataset, res, sampler, 64,
                                  rng=np.random.default_rng(1))
        summary = report.summary()
        assert summary["method"] == "hash"
        assert summary["total_compute"] > 0
