"""Unit tests for partition-aware feature replication (SALIENT++)."""

import numpy as np
import pytest

from repro.errors import PartitionError
from repro.graph import load_dataset
from repro.partition import (MetisPartitioner, measure_workload,
                             partition_aware_replication,
                             remote_access_frequencies)
from repro.sampling import NeighborSampler


@pytest.fixture(scope="module")
def dataset():
    return load_dataset("ogb-arxiv", scale=0.4)


@pytest.fixture(scope="module")
def partition(dataset):
    return MetisPartitioner("ve").partition(
        dataset.graph, 4, split=dataset.split,
        rng=np.random.default_rng(0))


@pytest.fixture(scope="module")
def sampler():
    return NeighborSampler((8, 8))


class TestFrequencies:
    def test_counts_only_remote(self, dataset, partition, sampler):
        counts = remote_access_frequencies(
            dataset, partition, sampler, np.random.default_rng(0),
            epochs=1)
        for part in range(partition.num_parts):
            owned = partition.part_vertices(part)
            assert counts[part][owned].sum() == 0

    def test_shape(self, dataset, partition, sampler):
        counts = remote_access_frequencies(
            dataset, partition, sampler, np.random.default_rng(0),
            epochs=1)
        assert counts.shape == (4, dataset.num_vertices)


class TestReplication:
    def test_budget_bounds_replicas(self, dataset, partition, sampler):
        replicated = partition_aware_replication(
            dataset, partition, sampler, 0.1,
            rng=np.random.default_rng(1))
        budget = round(0.1 * dataset.num_vertices)
        extra = replicated.replicas.sum(axis=1) - replicated.sizes()
        assert np.all(extra <= budget)

    def test_zero_budget_is_noop(self, dataset, partition, sampler):
        replicated = partition_aware_replication(
            dataset, partition, sampler, 0.0,
            rng=np.random.default_rng(1))
        assert replicated.replication_factor() == pytest.approx(1.0)

    def test_reduces_communication(self, dataset, partition, sampler):
        base = measure_workload(dataset, partition, sampler, 256,
                                rng=np.random.default_rng(2))
        replicated = partition_aware_replication(
            dataset, partition, sampler, 0.3,
            rng=np.random.default_rng(1))
        after = measure_workload(dataset, replicated, sampler, 256,
                                 rng=np.random.default_rng(2))
        assert after.total_comm_bytes < 0.85 * base.total_comm_bytes

    def test_bigger_budget_less_comm(self, dataset, partition, sampler):
        volumes = []
        for budget in (0.1, 0.4):
            replicated = partition_aware_replication(
                dataset, partition, sampler, budget,
                rng=np.random.default_rng(1))
            report = measure_workload(dataset, replicated, sampler, 256,
                                      rng=np.random.default_rng(2))
            volumes.append(report.total_comm_bytes)
        assert volumes[1] < volumes[0]

    def test_ownership_unchanged(self, dataset, partition, sampler):
        replicated = partition_aware_replication(
            dataset, partition, sampler, 0.2,
            rng=np.random.default_rng(1))
        assert np.array_equal(replicated.assignment, partition.assignment)
        assert replicated.method.endswith("+repl")

    def test_invalid_budget(self, dataset, partition, sampler):
        with pytest.raises(PartitionError):
            partition_aware_replication(dataset, partition, sampler, 1.5)
