"""Unit tests for partition-aware feature replication (SALIENT++)."""

import numpy as np
import pytest

from repro.errors import PartitionError
from repro.graph import load_dataset
from repro.partition import (MetisPartitioner, measure_workload,
                             partition_aware_replication,
                             remote_access_frequencies)
from repro.sampling import NeighborSampler


@pytest.fixture(scope="module")
def dataset():
    return load_dataset("ogb-arxiv", scale=0.4)


@pytest.fixture(scope="module")
def partition(dataset):
    return MetisPartitioner("ve").partition(
        dataset.graph, 4, split=dataset.split,
        rng=np.random.default_rng(0))


@pytest.fixture(scope="module")
def sampler():
    return NeighborSampler((8, 8))


class TestFrequencies:
    def test_counts_only_remote(self, dataset, partition, sampler):
        counts = remote_access_frequencies(
            dataset, partition, sampler, np.random.default_rng(0),
            epochs=1)
        for part in range(partition.num_parts):
            owned = partition.part_vertices(part)
            assert counts[part][owned].sum() == 0

    def test_shape(self, dataset, partition, sampler):
        counts = remote_access_frequencies(
            dataset, partition, sampler, np.random.default_rng(0),
            epochs=1)
        assert counts.shape == (4, dataset.num_vertices)


class TestReplication:
    def test_budget_bounds_replicas(self, dataset, partition, sampler):
        replicated = partition_aware_replication(
            dataset, partition, sampler, 0.1,
            rng=np.random.default_rng(1))
        budget = round(0.1 * dataset.num_vertices)
        extra = replicated.replicas.sum(axis=1) - replicated.sizes()
        assert np.all(extra <= budget)

    def test_zero_budget_is_noop(self, dataset, partition, sampler):
        replicated = partition_aware_replication(
            dataset, partition, sampler, 0.0,
            rng=np.random.default_rng(1))
        assert replicated.replication_factor() == pytest.approx(1.0)

    def test_reduces_communication(self, dataset, partition, sampler):
        base = measure_workload(dataset, partition, sampler, 256,
                                rng=np.random.default_rng(2))
        replicated = partition_aware_replication(
            dataset, partition, sampler, 0.3,
            rng=np.random.default_rng(1))
        after = measure_workload(dataset, replicated, sampler, 256,
                                 rng=np.random.default_rng(2))
        assert after.total_comm_bytes < 0.85 * base.total_comm_bytes

    def test_bigger_budget_less_comm(self, dataset, partition, sampler):
        volumes = []
        for budget in (0.1, 0.4):
            replicated = partition_aware_replication(
                dataset, partition, sampler, budget,
                rng=np.random.default_rng(1))
            report = measure_workload(dataset, replicated, sampler, 256,
                                      rng=np.random.default_rng(2))
            volumes.append(report.total_comm_bytes)
        assert volumes[1] < volumes[0]

    def test_ownership_unchanged(self, dataset, partition, sampler):
        replicated = partition_aware_replication(
            dataset, partition, sampler, 0.2,
            rng=np.random.default_rng(1))
        assert np.array_equal(replicated.assignment, partition.assignment)
        assert replicated.method.endswith("+repl")

    def test_invalid_budget(self, dataset, partition, sampler):
        with pytest.raises(PartitionError):
            partition_aware_replication(dataset, partition, sampler, 1.5)


class TestKRedundant:
    """Ownership invariants of the fleet's k-redundant placement:
    every vertex keeps exactly one primary owner and gains k-1
    distinct backup holders, whatever partitioner produced the
    ownership."""

    @pytest.fixture(scope="class")
    def partitions(self, dataset):
        from repro.core import make_partitioner
        names = ["hash", "hash-edge", "metis-v", "stream-v", "stream-b"]
        return {name: make_partitioner(name).partition(
                    dataset.graph, 4, split=dataset.split,
                    rng=np.random.default_rng(0))
                for name in names}

    @pytest.mark.parametrize("name", ["hash", "hash-edge", "metis-v",
                                      "stream-v", "stream-b"])
    @pytest.mark.parametrize("k", [2, 3])
    def test_exactly_k_distinct_holders(self, partitions, name, k):
        from repro.partition import k_redundant_replication
        base = partitions[name]
        replicated = k_redundant_replication(base, k)
        n = base.num_vertices
        vertex_ids = np.arange(n)
        # At least k holders per vertex (the boolean matrix makes the
        # holders distinct by construction); exactly k when the base
        # partitioner carried no replicas of its own (stream-v caches
        # L-hop neighborhoods, which the union preserves).
        holders_per_vertex = replicated.replicas.sum(axis=0)
        assert np.all(holders_per_vertex >= k)
        if base.replicas is None:
            assert np.all(holders_per_vertex == k)
        # The primary owner is unchanged and always a holder.
        assert np.array_equal(replicated.assignment, base.assignment)
        assert replicated.replicas[replicated.assignment,
                                   vertex_ids].all()
        # Backups are the k-1 cyclic successors - never the owner.
        for offset in range(1, k):
            successors = (base.assignment + offset) % base.num_parts
            assert replicated.replicas[successors, vertex_ids].all()
            assert not np.any(successors == base.assignment)
        assert replicated.method == f"{base.method}+k{k}"
        if base.replicas is None:
            assert replicated.replication_factor() == pytest.approx(
                float(k))

    def test_k1_is_identity_placement(self, partition):
        from repro.partition import k_redundant_replication
        replicated = k_redundant_replication(partition, 1)
        assert np.all(replicated.replicas.sum(axis=0) == 1)
        assert replicated.replication_factor() == pytest.approx(1.0)
        assert replicated.method.endswith("+k1")

    def test_full_replication_at_k_equals_parts(self, partition):
        from repro.partition import k_redundant_replication
        replicated = k_redundant_replication(partition, 4)
        assert replicated.replicas.all()

    def test_unions_preexisting_replicas(self, partition):
        from repro.partition import k_redundant_replication
        pre = k_redundant_replication(partition, 1)
        # Hand vertex 0 to a machine that is neither its owner nor
        # its k=2 backup; the union must keep that extra copy.
        owner = int(partition.assignment[0])
        extra = (owner + 2) % partition.num_parts
        pre.replicas[extra, 0] = True
        replicated = k_redundant_replication(pre, 2)
        assert replicated.replicas[extra, 0]
        assert replicated.replicas[:, 0].sum() == 3
        assert np.all(replicated.replicas.sum(axis=0) >= 2)

    def test_invalid_k(self, partition):
        from repro.partition import k_redundant_replication
        with pytest.raises(PartitionError):
            k_redundant_replication(partition, 0)
        with pytest.raises(PartitionError):
            k_redundant_replication(partition, 5)
