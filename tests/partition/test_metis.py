"""Unit tests for the multilevel multi-constraint (Metis-extend)
partitioner."""

import numpy as np
import pytest

from repro.errors import PartitionError
from repro.graph import load_dataset, planted_partition_graph
from repro.partition import (HashPartitioner, MetisPartitioner,
                             balance_ratio, edge_cut_fraction,
                             metis_clusters, metis_partition)


@pytest.fixture(scope="module")
def community_graph():
    graph, comm = planted_partition_graph(
        800, 4, 16, np.random.default_rng(0), mixing=0.05)
    return graph, comm


@pytest.fixture(scope="module")
def dataset():
    return load_dataset("ogb-arxiv", scale=0.5)


class TestMetisPartition:
    def test_recovers_planted_communities(self, community_graph):
        graph, comm = community_graph
        assignment = metis_partition(graph, 4,
                                     rng=np.random.default_rng(1))
        # Planted-partition with 5% mixing: cut should be near the planted
        # level, far below random (0.75).
        assert edge_cut_fraction(graph, assignment) < 0.25

    def test_beats_hash_on_cut(self, dataset):
        metis = metis_partition(dataset.graph, 4,
                                rng=np.random.default_rng(1))
        hash_res = HashPartitioner().partition(
            dataset.graph, 4, rng=np.random.default_rng(1))
        assert (edge_cut_fraction(dataset.graph, metis)
                < 0.7 * edge_cut_fraction(dataset.graph,
                                          hash_res.assignment))

    def test_vertex_balance(self, community_graph):
        graph, _ = community_graph
        assignment = metis_partition(graph, 4,
                                     rng=np.random.default_rng(2))
        assert balance_ratio(assignment, 4) < 1.3

    def test_constraint_balance(self, dataset):
        train = dataset.split.train_mask.astype(np.float64)
        assignment = metis_partition(
            dataset.graph, 4, constraints=train,
            rng=np.random.default_rng(3))
        assert balance_ratio(assignment, 4, train) < 1.35

    def test_bad_constraints_shape(self, community_graph):
        graph, _ = community_graph
        with pytest.raises(PartitionError):
            metis_partition(graph, 2, constraints=np.ones((10, 1)))

    def test_negative_constraints(self, community_graph):
        graph, _ = community_graph
        with pytest.raises(PartitionError):
            metis_partition(graph, 2,
                            constraints=-np.ones(graph.num_vertices))

    def test_every_vertex_assigned(self, community_graph):
        graph, _ = community_graph
        assignment = metis_partition(graph, 3,
                                     rng=np.random.default_rng(4))
        assert len(assignment) == graph.num_vertices
        assert assignment.min() >= 0 and assignment.max() < 3

    def test_two_parts(self, community_graph):
        graph, _ = community_graph
        assignment = metis_partition(graph, 2,
                                     rng=np.random.default_rng(5))
        assert set(np.unique(assignment)) == {0, 1}


class TestMetisClusters:
    def test_cluster_count_respected(self, dataset):
        clusters = metis_clusters(dataset.graph, 10,
                                  rng=np.random.default_rng(0))
        assert clusters.max() < 10

    def test_clusters_are_dense(self, dataset):
        clusters = metis_clusters(dataset.graph, 8,
                                  rng=np.random.default_rng(0))
        # Intra-cluster edge fraction far above the random baseline 1/8.
        src, dst = dataset.graph.edges()
        intra = (clusters[src] == clusters[dst]).mean()
        assert intra > 0.4


class TestMetisPartitioner:
    def test_variants(self):
        assert MetisPartitioner("v").name == "metis-v"
        assert MetisPartitioner("vet").name == "metis-vet"
        with pytest.raises(PartitionError):
            MetisPartitioner("vx")

    def test_requires_split(self, dataset):
        with pytest.raises(PartitionError):
            MetisPartitioner("v").partition(dataset.graph, 2)

    def test_ve_balances_degrees_better_than_v(self, dataset):
        degrees = dataset.graph.out_degrees.astype(np.float64)
        ratios = {}
        for variant in ("v", "ve"):
            values = []
            for seed in range(3):
                res = MetisPartitioner(variant).partition(
                    dataset.graph, 4, split=dataset.split,
                    rng=np.random.default_rng(seed))
                values.append(balance_ratio(res.assignment, 4, degrees))
            ratios[variant] = np.mean(values)
        assert ratios["ve"] <= ratios["v"] + 0.02

    def test_vet_balances_val_test(self, dataset):
        res = MetisPartitioner("vet").partition(
            dataset.graph, 4, split=dataset.split,
            rng=np.random.default_rng(0))
        val = dataset.split.val_mask.astype(np.float64)
        assert balance_ratio(res.assignment, 4, val) < 1.5
