"""Property-based tests for partitioners."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import power_law_graph, split_vertices
from repro.partition import (HashPartitioner, MetisPartitioner,
                             StreamBPartitioner, metis_partition)


@st.composite
def graph_cases(draw):
    n = draw(st.integers(min_value=16, max_value=200))
    degree = draw(st.integers(min_value=2, max_value=8))
    k = draw(st.integers(min_value=2, max_value=4))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    return n, degree, k, seed


def build(n, degree, seed):
    rng = np.random.default_rng(seed)
    graph, _ = power_law_graph(n, degree, rng, num_communities=4)
    split = split_vertices(n, rng)
    return graph, split


class TestPartitionInvariants:
    @given(graph_cases())
    @settings(max_examples=25, deadline=None)
    def test_hash_assigns_every_vertex_once(self, case):
        n, degree, k, seed = case
        graph, _split = build(n, degree, seed)
        res = HashPartitioner().partition(graph, k,
                                          rng=np.random.default_rng(seed))
        assert len(res.assignment) == n
        assert res.sizes().sum() == n
        assert res.assignment.min() >= 0 and res.assignment.max() < k

    @given(graph_cases())
    @settings(max_examples=15, deadline=None)
    def test_metis_assigns_every_vertex_once(self, case):
        n, degree, k, seed = case
        graph, _split = build(n, degree, seed)
        assignment = metis_partition(graph, k,
                                     rng=np.random.default_rng(seed))
        assert len(assignment) == n
        assert np.bincount(assignment, minlength=k).sum() == n

    @given(graph_cases())
    @settings(max_examples=15, deadline=None)
    def test_metis_balance_bounded(self, case):
        n, degree, k, seed = case
        graph, _split = build(n, degree, seed)
        assignment = metis_partition(graph, k,
                                     rng=np.random.default_rng(seed))
        sizes = np.bincount(assignment, minlength=k)
        # The balance pass guarantees no part is catastrophically small.
        assert sizes.max() <= 2.0 * max(sizes.mean(), 1)

    @given(graph_cases())
    @settings(max_examples=10, deadline=None)
    def test_metis_variants_assign_all(self, case):
        n, degree, k, seed = case
        graph, split = build(n, degree, seed)
        res = MetisPartitioner("vet").partition(
            graph, k, split=split, rng=np.random.default_rng(seed))
        assert res.sizes().sum() == n

    @given(graph_cases())
    @settings(max_examples=10, deadline=None)
    def test_stream_b_assigns_all(self, case):
        n, degree, k, seed = case
        graph, split = build(n, degree, seed)
        res = StreamBPartitioner(block_size=8).partition(
            graph, k, split=split, rng=np.random.default_rng(seed))
        assert res.sizes().sum() == n
        assert res.assignment.min() >= 0
