"""Unit tests for partition base types and hash partitioning."""

import numpy as np
import pytest

from repro.errors import PartitionError
from repro.graph import load_dataset
from repro.partition import (HashPartitioner, PartitionResult,
                             check_num_parts, hash_vertices)


@pytest.fixture(scope="module")
def dataset():
    return load_dataset("ogb-arxiv", scale=0.25)


class TestPartitionResult:
    def test_sizes_and_part_vertices(self):
        res = PartitionResult(np.array([0, 1, 0, 1, 1]), 2, "x")
        assert list(res.sizes()) == [2, 3]
        assert list(res.part_vertices(0)) == [0, 2]

    def test_out_of_range_assignment(self):
        with pytest.raises(PartitionError):
            PartitionResult(np.array([0, 5]), 2, "x")

    def test_replicas_shape_checked(self):
        with pytest.raises(PartitionError):
            PartitionResult(np.array([0, 1]), 2, "x",
                            replicas=np.zeros((3, 2), dtype=bool))

    def test_owner_always_replicated(self):
        res = PartitionResult(np.array([0, 1]), 2, "x",
                              replicas=np.zeros((2, 2), dtype=bool))
        assert res.replicas[0, 0] and res.replicas[1, 1]

    def test_is_local_with_replicas(self):
        replicas = np.zeros((2, 3), dtype=bool)
        replicas[0, 2] = True  # part 0 caches vertex 2
        res = PartitionResult(np.array([0, 1, 1]), 2, "x", replicas=replicas)
        assert list(res.is_local(0, [0, 1, 2])) == [True, False, True]
        assert list(res.is_local(1, [0, 1, 2])) == [False, True, True]

    def test_replication_factor(self):
        replicas = np.ones((2, 4), dtype=bool)
        res = PartitionResult(np.array([0, 0, 1, 1]), 2, "x",
                              replicas=replicas)
        assert res.replication_factor() == 2.0

    def test_check_num_parts(self):
        with pytest.raises(PartitionError):
            check_num_parts(3, 0)
        with pytest.raises(PartitionError):
            check_num_parts(3, 4)
        check_num_parts(3, 3)  # no raise


class TestHashPartitioner:
    def test_balanced_sizes(self, dataset):
        res = HashPartitioner().partition(dataset.graph, 4,
                                          rng=np.random.default_rng(0))
        sizes = res.sizes()
        assert sizes.max() - sizes.min() <= 1

    def test_hash_vertices_balanced(self):
        assignment = hash_vertices(103, 4, np.random.default_rng(0))
        sizes = np.bincount(assignment, minlength=4)
        assert sizes.max() - sizes.min() <= 1

    def test_edge_hash_covers_all(self, dataset):
        res = HashPartitioner(by="edge").partition(
            dataset.graph, 4, rng=np.random.default_rng(0))
        assert res.num_vertices == dataset.num_vertices
        assert set(np.unique(res.assignment)) <= set(range(4))

    def test_invalid_mode(self):
        with pytest.raises(PartitionError):
            HashPartitioner(by="magic")

    def test_timing_recorded(self, dataset):
        res = HashPartitioner().partition(dataset.graph, 2,
                                          rng=np.random.default_rng(0))
        assert res.seconds >= 0.0

    def test_method_name(self, dataset):
        res = HashPartitioner().partition(dataset.graph, 2,
                                          rng=np.random.default_rng(0))
        assert res.method == "hash"
