"""Property tests for the explicitly materialized transposed CSR.

The backward pass of every CSR ``gspmm`` routes gradients through
:meth:`KernelCSR.transpose`, so three properties carry the whole fused
backward: the transpose round-trips exactly, it is memoized (one
materialization per operator, both directions), and the block-level
memoization is invalidated when the block's caches are cleared.
"""

import numpy as np
import pytest

from repro.kernels import KernelCSR, gspmm, transpose_csr
from repro.nn import Tensor
from repro.nn.layers import block_aggregation_matrix
from repro.perf import PERF, perf_overrides
from repro.sampling import build_block

from .conftest import csr_cases, have_scipy


def _random_csr_arrays(seed, num_rows=9, num_cols=13, density=0.3):
    rng = np.random.default_rng(seed)
    mask = rng.random((num_rows, num_cols)) < density
    counts = mask.sum(axis=1)
    indptr = np.concatenate(([0], np.cumsum(counts))).astype(np.int64)
    indices = np.concatenate(
        [rng.permutation(np.flatnonzero(mask[i]))
         for i in range(num_rows)]
        or [np.empty(0, dtype=np.int64)]).astype(np.int64)
    data = rng.standard_normal(len(indices)).astype(np.float32)
    return indptr, indices, data, (num_rows, num_cols)


class TestTransposeRoundtrip:
    @pytest.mark.parametrize("seed", range(8))
    def test_double_transpose_roundtrips_arrays(self, seed):
        indptr, indices, data, shape = _random_csr_arrays(seed)
        t_indptr, t_indices, t_data = transpose_csr(
            indptr, indices, data, num_cols=shape[1])
        # Transposing the transpose must reproduce a *canonicalized*
        # form of the original: same entries, each row sorted by
        # column-major scan order.  For already-canonical inputs the
        # round trip is exact.
        c_indptr, c_indices, c_data = transpose_csr(
            t_indptr, t_indices, t_data, num_cols=shape[0])
        r_indptr, r_indices, r_data = transpose_csr(
            c_indptr, c_indices, c_data, num_cols=shape[1])
        assert t_indptr.tobytes() == r_indptr.tobytes()
        assert t_indices.tobytes() == r_indices.tobytes()
        assert t_data.tobytes() == r_data.tobytes()

    @pytest.mark.parametrize("case", sorted(csr_cases()))
    def test_transpose_matches_dense(self, case):
        adj = csr_cases()[case]
        transpose = adj.transpose()
        assert transpose.shape == (adj.shape[1], adj.shape[0])
        assert np.array_equal(transpose.toarray(), adj.toarray().T)

    @pytest.mark.skipif(not have_scipy(),
                        reason="scipy not importable")
    def test_transpose_matches_scipy_layout(self):
        import scipy.sparse as sp
        for seed in range(6):
            indptr, indices, data, shape = _random_csr_arrays(seed)
            matrix = sp.csr_matrix((data, indices, indptr), shape=shape)
            expected = matrix.T.tocsr()
            t_indptr, t_indices, t_data = transpose_csr(
                indptr, indices, data, num_cols=shape[1])
            assert t_indptr.tobytes() \
                == expected.indptr.astype(np.int64).tobytes()
            assert t_indices.tobytes() \
                == expected.indices.astype(np.int64).tobytes()
            assert t_data.tobytes() == expected.data.tobytes()


class TestTransposePermutation:
    """The memoized stable argsort relating original and transposed
    edge storage order — what lets per-edge values given in original
    order ride the transposed operator in the fused backward."""

    @pytest.mark.parametrize("case", sorted(csr_cases()))
    def test_permutation_maps_data_to_transpose_order(self, case):
        adj = csr_cases()[case]
        perm = adj.transpose_permutation()
        assert perm.shape == (adj.nnz,)
        assert adj.transpose().data.tobytes() \
            == adj.data[perm].tobytes()

    def test_permutation_is_memoized_and_shared(self):
        indptr, indices, data, shape = _random_csr_arrays(3)
        adj = KernelCSR(indptr, indices, data, shape)
        perm = adj.transpose_permutation()
        assert adj.transpose_permutation() is perm
        assert adj._transpose_perm is perm


class TestTransposeMemoization:
    def test_identity_both_directions(self):
        indptr, indices, data, shape = _random_csr_arrays(1)
        adj = KernelCSR(indptr, indices, data, shape)
        transpose = adj.transpose()
        assert adj.transpose() is transpose
        assert transpose.transpose() is adj

    def test_hit_counters(self):
        indptr, indices, data, shape = _random_csr_arrays(2)
        adj = KernelCSR(indptr, indices, data, shape)
        before = PERF.snapshot()
        adj.transpose()
        adj.transpose()
        adj.transpose()
        delta = PERF.delta(before)
        assert delta.get("kernel_transpose_misses", 0) == 1
        assert delta.get("kernel_transpose_hits", 0) == 2

    def test_repeated_backward_reuses_transpose(self):
        """Two backward passes through one memoized operator must
        materialize the transpose exactly once."""
        block = build_block(np.array([0, 1, 2]),
                            np.array([0, 1, 1, 2]),
                            np.array([5, 6, 7, 0]))
        adj = block_aggregation_matrix(block)
        before = PERF.snapshot()
        for _round in range(2):
            x = Tensor(np.ones((adj.shape[1], 2), dtype=np.float32),
                       requires_grad=True)
            gspmm(adj, x).sum().backward()
            assert x.grad is not None
        delta = PERF.delta(before)
        assert delta.get("kernel_transpose_misses", 0) == 1
        assert delta.get("kernel_transpose_hits", 0) == 1

    def test_block_cache_invalidation(self):
        """``clear_caches`` drops the memoized operator, so the next
        build materializes a fresh operator and a fresh transpose."""
        block = build_block(np.array([0, 1]),
                            np.array([0, 1]),
                            np.array([3, 4]))
        first = block_aggregation_matrix(block)
        assert block_aggregation_matrix(block) is first
        first_transpose = first.transpose()

        block.clear_caches()
        rebuilt = block_aggregation_matrix(block)
        assert rebuilt is not first
        assert rebuilt.transpose() is not first_transpose
        # Same structure, so the rebuilt operator is value-equal.
        assert np.array_equal(rebuilt.toarray(), first.toarray())

    def test_memoization_flag_off_rebuilds(self):
        block = build_block(np.array([0, 1]),
                            np.array([0, 1]),
                            np.array([3, 4]))
        with perf_overrides(memoize_aggregation=False):
            first = block_aggregation_matrix(block)
            second = block_aggregation_matrix(block)
        assert first is not second
