"""The pure-numpy operator construction replicates scipy's layout.

:func:`~repro.kernels.normalized_block_adjacency` exists so sampled
training can run without scipy, but the *stored layout* must stay
byte-for-byte what the historical scipy construction produced
(canonical duplicate-summed CSR, rows emitted in descending column
order by scipy's ``diags @ csr`` product) — otherwise reference-backend
runs would drift from every pre-registry result.
"""

import numpy as np
import pytest

from repro.kernels import (as_adjacency, normalized_block_adjacency)
from repro.errors import KernelError
from repro.sampling import build_block

from .conftest import have_scipy

HAVE_SCIPY = have_scipy()


def _random_block(rng):
    num_dst = int(rng.integers(1, 12))
    universe = 60
    dst_nodes = rng.choice(universe, size=num_dst, replace=False)
    num_edges = int(rng.integers(0, 40))
    edge_dst = rng.choice(dst_nodes, size=num_edges)
    edge_src = rng.choice(universe, size=num_edges)
    return build_block(dst_nodes, edge_dst, edge_src)


def _scipy_construction(block, self_loops):
    """The exact pre-registry scipy construction."""
    import scipy.sparse as sp
    rows = np.repeat(np.arange(block.num_dst), block.degrees())
    cols = block.indices
    if self_loops:
        rows = np.concatenate([rows, np.arange(block.num_dst)])
        cols = np.concatenate([cols, np.arange(block.num_dst)])
    data = np.ones(len(rows), dtype=np.float32)
    matrix = sp.csr_matrix((data, (rows, cols)),
                           shape=(block.num_dst, block.num_src))
    degree = np.asarray(matrix.sum(axis=1)).ravel()
    degree[degree == 0] = 1.0
    scale = sp.diags((1.0 / degree).astype(np.float32))
    return (scale @ matrix).tocsr()


@pytest.mark.skipif(not HAVE_SCIPY, reason="scipy not importable")
@pytest.mark.parametrize("self_loops", [True, False])
def test_layout_matches_scipy_construction(self_loops):
    rng = np.random.default_rng(0)
    for _trial in range(40):
        block = _random_block(rng)
        ours = normalized_block_adjacency(block, self_loops=self_loops)
        theirs = _scipy_construction(block, self_loops)
        assert ours.indptr.tobytes() \
            == theirs.indptr.astype(np.int64).tobytes()
        assert ours.indices.tobytes() \
            == theirs.indices.astype(np.int64).tobytes()
        assert ours.data.tobytes() == theirs.data.tobytes()


@pytest.mark.parametrize("self_loops", [True, False])
def test_rows_sum_to_one(self_loops):
    rng = np.random.default_rng(1)
    for _trial in range(10):
        block = _random_block(rng)
        operator = normalized_block_adjacency(block,
                                              self_loops=self_loops)
        sums = operator.sum(axis=1)
        populated = operator.row_degrees() > 0
        assert np.allclose(sums[populated], 1.0)
        assert np.all(sums[~populated] == 0.0)


def test_duplicate_self_loop_collapses():
    """A destination that sampled itself gets one stored (i, i) entry
    of weight 2/degree, not two entries."""
    block = build_block(np.array([4]), np.array([4, 4]),
                        np.array([4, 9]))
    operator = normalized_block_adjacency(block, self_loops=True)
    assert operator.nnz == 2
    dense = operator.toarray()
    # Three incidences (edge to self, edge to 9, appended loop), so the
    # self entry carries 2/3 and the neighbor 1/3.
    assert np.allclose(dense[0, 0], 2.0 / 3.0)
    assert np.allclose(sorted(operator.data), [1.0 / 3.0, 2.0 / 3.0])


@pytest.mark.skipif(not HAVE_SCIPY, reason="scipy not importable")
def test_as_adjacency_wraps_and_caches_scipy():
    import scipy.sparse as sp
    matrix = sp.csr_matrix(
        (np.array([1.0, 2.0], dtype=np.float32),
         np.array([0, 1]), np.array([0, 1, 2])), shape=(2, 2))
    wrapped = as_adjacency(matrix)
    assert as_adjacency(matrix) is wrapped
    assert wrapped.to_scipy() is matrix
    assert np.array_equal(wrapped.toarray(), matrix.toarray())


def test_as_adjacency_rejects_foreign_objects():
    with pytest.raises(KernelError, match="cannot interpret"):
        as_adjacency(object())
