"""Central-difference gradient checks for the fused kernel backward.

Each check builds a scalar loss through the differentiable kernel
wrappers (:func:`repro.kernels.gspmm` / :func:`~repro.kernels.gsddmm` /
:func:`~repro.kernels.edge_softmax`), runs the taped backward — which
routes gradients through the memoized transposed CSR or the reversed
COO — and compares against a numeric gradient of the same loss.  The
losses are weighted sums (fixed random weights) so mis-routed edges
cannot cancel out.
"""

import numpy as np
import pytest

from repro.errors import KernelError
from repro.kernels import edge_softmax, gsddmm, gspmm
from repro.nn import Tensor

from .conftest import coo_cases, csr_cases


def numeric_grad(fn, x, eps=1e-5):
    """Central-difference gradient of scalar ``fn`` at array ``x``."""
    grad = np.zeros_like(x, dtype=np.float64)
    flat = x.reshape(-1)
    out = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        high = fn(x)
        flat[i] = original - eps
        low = fn(x)
        flat[i] = original
        out[i] = (high - low) / (2 * eps)
    return grad


def check_grad(build, shape, seed=0, tol=1e-4):
    """Compare taped and numeric gradients of a scalar-valued loss."""
    rng = np.random.default_rng(seed)
    x = rng.normal(size=shape)

    tensor = Tensor(x.copy(), requires_grad=True)
    build(tensor).backward()
    auto = tensor.grad

    numeric = numeric_grad(lambda arr: float(build(Tensor(arr)).data), x)
    assert np.allclose(auto, numeric, atol=tol, rtol=tol), \
        f"max err {np.abs(auto - numeric).max()}"


def _weights(rows, cols, seed):
    return np.random.default_rng(seed).normal(size=(rows, cols))


CSR = csr_cases()
COO = coo_cases()
GRAD_CSR = ["block_loops", "block_plain", "zero_rows",
            "rect_weighted", "empty"]
GRAD_COO = ["gat_block", "repeated_edges", "empty"]


@pytest.mark.parametrize("case", GRAD_CSR)
@pytest.mark.parametrize("reduce", ["sum", "mean"])
class TestGspmmCsrGrads:
    def test_x_grad(self, case, reduce):
        adj = CSR[case]
        w = _weights(adj.shape[0], 3, seed=1)

        def build(x):
            return (gspmm(adj, x, reduce=reduce) * w).sum()

        check_grad(build, (adj.shape[1], 3), seed=2)

    def test_copy_rhs_x_grad(self, case, reduce):
        adj = CSR[case]
        w = _weights(adj.shape[0], 2, seed=3)

        def build(x):
            return (gspmm(adj, x, op="copy_rhs", reduce=reduce)
                    * w).sum()

        check_grad(build, (adj.shape[1], 2), seed=4)

    def test_explicit_values_x_grad(self, case, reduce):
        """Explicit edge values override the stored CSR data; the
        backward must permute them into the transpose's edge order
        (regression: routing them unpermuted silently mis-weights the
        x-gradient on any CSR with a non-identity transpose)."""
        adj = CSR[case]
        values = np.linspace(0.5, 1.5, adj.nnz)
        w = _weights(adj.shape[0], 3, seed=21)

        def build(x):
            return (gspmm(adj, x, values=values, reduce=reduce)
                    * w).sum()

        check_grad(build, (adj.shape[1], 3), seed=22)

    def test_explicit_values_grad(self, case, reduce):
        adj = CSR[case]
        features = np.random.default_rng(23).normal(
            size=(adj.shape[1], 3))
        w = _weights(adj.shape[0], 3, seed=24)

        def build(values):
            return (gspmm(adj, features, values=values,
                          reduce=reduce) * w).sum()

        check_grad(build, (adj.nnz,), seed=25)


@pytest.mark.parametrize("case", GRAD_COO)
class TestGspmmCooGrads:
    def test_x_grad(self, case):
        adj = COO[case]
        values = np.linspace(0.5, 1.5, adj.nnz)
        w = _weights(adj.shape[0], 3, seed=5)

        def build(x):
            return (gspmm(adj, x, values=values) * w).sum()

        check_grad(build, (adj.shape[1], 3), seed=6)

    def test_values_grad(self, case):
        adj = COO[case]
        features = np.random.default_rng(7).normal(
            size=(adj.shape[1], 3))
        w = _weights(adj.shape[0], 3, seed=8)

        def build(values):
            return (gspmm(adj, features, values=values) * w).sum()

        check_grad(build, (adj.nnz,), seed=9)

    def test_joint_grads_match_numeric(self, case):
        """x- and values-gradients together (the GAT shape)."""
        adj = COO[case]
        rng = np.random.default_rng(10)
        x0 = rng.normal(size=(adj.shape[1], 2))
        v0 = rng.normal(size=adj.nnz)
        w = _weights(adj.shape[0], 2, seed=11)

        x_t = Tensor(x0.copy(), requires_grad=True)
        v_t = Tensor(v0.copy(), requires_grad=True)
        (gspmm(adj, x_t, values=v_t) * w).sum().backward()

        numeric_x = numeric_grad(
            lambda arr: float((gspmm(adj, arr, values=v0) * w).sum()),
            x0.copy())
        numeric_v = numeric_grad(
            lambda arr: float((gspmm(adj, x0, values=arr) * w).sum()),
            v0.copy())
        assert np.allclose(x_t.grad, numeric_x, atol=1e-4)
        assert np.allclose(v_t.grad, numeric_v, atol=1e-4)


@pytest.mark.parametrize("op", ["add", "mul", "dot"])
@pytest.mark.parametrize("case", GRAD_COO)
class TestGsddmmGrads:
    def test_q_grad(self, case, op):
        adj = COO[case]
        k = np.random.default_rng(12).normal(size=(adj.shape[1], 3))
        width = 1 if op == "dot" else 3
        w = _weights(adj.nnz, width, seed=13)[:, 0] if op == "dot" \
            else _weights(adj.nnz, width, seed=13)

        def build(q):
            return (gsddmm(adj, q, k, op=op) * w).sum()

        check_grad(build, (adj.shape[0], 3), seed=14)

    def test_k_grad(self, case, op):
        adj = COO[case]
        q = np.random.default_rng(15).normal(size=(adj.shape[0], 3))
        w = _weights(adj.nnz, 1, seed=16)[:, 0] if op == "dot" \
            else _weights(adj.nnz, 3, seed=16)

        def build(k):
            return (gsddmm(adj, q, k, op=op) * w).sum()

        check_grad(build, (adj.shape[1], 3), seed=17)


@pytest.mark.parametrize("case", ["gat_block", "repeated_edges"])
class TestEdgeSoftmaxGrads:
    def test_scores_grad(self, case):
        adj = COO[case]
        w = _weights(adj.nnz, 1, seed=18)[:, 0]

        def build(scores):
            return (edge_softmax(adj, scores) * w).sum()

        check_grad(build, (adj.nnz,), seed=19, tol=1e-3)


class TestForwardOnlyAndArrays:
    def test_max_reduce_is_forward_only(self):
        adj = CSR["block_loops"]
        x = Tensor(np.ones((adj.shape[1], 2)), requires_grad=True)
        with pytest.raises(KernelError, match="forward-only"):
            gspmm(adj, x, reduce="max")

    def test_max_reduce_forward_matches_stored_entries(self):
        adj = CSR["rect_weighted"]
        x = np.random.default_rng(20).normal(size=(adj.shape[1], 2))
        out = gspmm(adj, x, reduce="max")
        for i in range(adj.shape[0]):
            start, end = adj.indptr[i], adj.indptr[i + 1]
            if start == end:
                assert np.all(out[i] == 0.0)
            else:
                contributions = (adj.data[start:end, None]
                                 * x[adj.indices[start:end]])
                assert np.allclose(out[i], contributions.max(axis=0))

    def test_array_inputs_return_arrays(self):
        adj = CSR["block_loops"]
        x = np.ones((adj.shape[1], 2), dtype=np.float32)
        out = gspmm(adj, x)
        assert isinstance(out, np.ndarray)
        coo = COO["gat_block"]
        scores = np.zeros(coo.nnz, dtype=np.float32)
        assert isinstance(edge_softmax(coo, scores), np.ndarray)
