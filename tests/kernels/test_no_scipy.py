"""The sampled stack runs — bit-identically — without scipy.

A subprocess blocks every ``scipy`` import via a ``sys.meta_path``
finder (simulating the no-scipy CI environment), then runs a seeded
block aggregation and one sampled training epoch.  The parent process
runs the identical recipes with the reference backend pinned and
compares raw bytes across the process boundary: the fallback path is
not "a working degraded mode", it is the same math.
"""

import json
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro import Trainer, TrainingConfig, load_dataset
from repro.kernels import gspmm_forward, normalized_block_adjacency
from repro.perf import perf_overrides
from repro.sampling import build_block

SRC = str(Path(__file__).resolve().parents[2] / "src")

#: Runs in the subprocess: block scipy, exercise the kernels, print a
#: JSON payload of byte-level fingerprints.
_SUBPROCESS = """
import json, sys

class _BlockScipy:
    def find_spec(self, name, path=None, target=None):
        if name == "scipy" or name.startswith("scipy."):
            raise ImportError("scipy blocked for this test")
        return None

sys.meta_path.insert(0, _BlockScipy())

import numpy as np
from repro import Trainer, TrainingConfig, load_dataset
from repro.errors import KernelError
from repro.kernels import (available_backends, gspmm_forward,
                           normalized_block_adjacency, resolve_backend)
from repro.sampling import build_block

assert available_backends() == ["reference"]
assert resolve_backend("auto").name == "reference"
try:
    resolve_backend("scipy")
except KernelError:
    explicit_raises = True
else:
    explicit_raises = False

rng = np.random.default_rng(13)
block = build_block(np.arange(8),
                    rng.integers(0, 8, size=30),
                    rng.integers(0, 50, size=30))
adj = normalized_block_adjacency(block, self_loops=True)
x = rng.standard_normal((adj.shape[1], 5)).astype(np.float32)
out = gspmm_forward(adj, x)

config = TrainingConfig(model="gcn", epochs=1, batch_size=64,
                        fanout=(4, 4), num_workers=1,
                        partitioner="hash", seed=1)
result = Trainer(load_dataset("ogb-arxiv", scale=0.05), config).run()

print(json.dumps({
    "explicit_raises": explicit_raises,
    "spmm_hex": out.tobytes().hex(),
    "losses": [float(v) for v in result.curve.losses],
}))
"""


@pytest.fixture(scope="module")
def no_scipy_payload():
    completed = subprocess.run(
        [sys.executable, "-c", _SUBPROCESS], capture_output=True,
        text=True, env={"PYTHONPATH": SRC}, timeout=600)
    assert completed.returncode == 0, completed.stderr
    return json.loads(completed.stdout.strip().splitlines()[-1])


def test_explicit_scipy_request_raises_without_scipy(no_scipy_payload):
    assert no_scipy_payload["explicit_raises"]


def test_fallback_spmm_bits_match_reference(no_scipy_payload):
    rng = np.random.default_rng(13)
    block = build_block(np.arange(8),
                        rng.integers(0, 8, size=30),
                        rng.integers(0, 50, size=30))
    adj = normalized_block_adjacency(block, self_loops=True)
    x = rng.standard_normal((adj.shape[1], 5)).astype(np.float32)
    out = gspmm_forward(adj, x, backend="reference")
    assert out.tobytes().hex() == no_scipy_payload["spmm_hex"]


def test_fallback_training_curve_matches_reference(no_scipy_payload):
    config = TrainingConfig(model="gcn", epochs=1, batch_size=64,
                            fanout=(4, 4), num_workers=1,
                            partitioner="hash", seed=1)
    with perf_overrides(kernel_backend="reference"):
        result = Trainer(load_dataset("ogb-arxiv", scale=0.05),
                         config).run()
    assert [float(v) for v in result.curve.losses] \
        == no_scipy_payload["losses"]
