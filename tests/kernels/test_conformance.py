"""Cross-backend conformance: every backend, byte-identical to the
pinned numpy reference over the full op/reduce/dtype/adjacency matrix.

"Byte-identical" is literal: outputs are compared with ``tobytes()``,
so a backend that is merely *close* (different accumulation order,
different intermediate precision) fails here even when ``allclose``
would pass.  This is the property the golden end-to-end tests rest on.
"""

import numpy as np
import pytest

from repro.errors import KernelError
from repro.kernels import (available_backends, edge_softmax_forward,
                           gsddmm_forward, gspmm_forward,
                           resolve_backend)
from repro.perf import PERF, perf_overrides

from .conftest import backend_params

DTYPES = (np.float32, np.float64)


def _features(adj, dtype, seed=0, dim=3):
    rng = np.random.default_rng(seed)
    return rng.standard_normal((adj.shape[1], dim)).astype(dtype)


def _assert_bytes_equal(out, reference):
    out = np.asarray(out)
    reference = np.asarray(reference)
    assert out.dtype == reference.dtype
    assert out.shape == reference.shape
    assert out.tobytes() == reference.tobytes()


@pytest.mark.parametrize("backend", backend_params())
@pytest.mark.parametrize("dtype", DTYPES)
@pytest.mark.parametrize("reduce", ["sum", "mean", "max"])
@pytest.mark.parametrize("op", ["mul", "copy_rhs"])
class TestGspmmConformance:
    def test_csr(self, backend, dtype, reduce, op, csr_case):
        x = _features(csr_case, dtype)
        reference = gspmm_forward(csr_case, x, op=op, reduce=reduce,
                                  backend="reference")
        out = gspmm_forward(csr_case, x, op=op, reduce=reduce,
                            backend=backend)
        _assert_bytes_equal(out, reference)

    def test_coo(self, backend, dtype, reduce, op, coo_case):
        values = np.linspace(-1.0, 1.0,
                             coo_case.nnz).astype(np.float32)
        x = _features(coo_case, dtype, seed=1)
        reference = gspmm_forward(coo_case, x, values=values, op=op,
                                  reduce=reduce, backend="reference")
        out = gspmm_forward(coo_case, x, values=values, op=op,
                            reduce=reduce, backend=backend)
        _assert_bytes_equal(out, reference)


@pytest.mark.parametrize("backend", backend_params())
@pytest.mark.parametrize("dtype", DTYPES)
@pytest.mark.parametrize("op", ["add", "mul", "dot"])
class TestGsddmmConformance:
    def test_csr(self, backend, dtype, op, csr_case):
        rng = np.random.default_rng(2)
        q = rng.standard_normal((csr_case.shape[0], 3)).astype(dtype)
        k = rng.standard_normal((csr_case.shape[1], 3)).astype(dtype)
        reference = gsddmm_forward(csr_case, q, k, op=op,
                                   backend="reference")
        out = gsddmm_forward(csr_case, q, k, op=op, backend=backend)
        _assert_bytes_equal(out, reference)

    def test_coo(self, backend, dtype, op, coo_case):
        rng = np.random.default_rng(3)
        q = rng.standard_normal((coo_case.shape[0], 3)).astype(dtype)
        k = rng.standard_normal((coo_case.shape[1], 3)).astype(dtype)
        reference = gsddmm_forward(coo_case, q, k, op=op,
                                   backend="reference")
        out = gsddmm_forward(coo_case, q, k, op=op, backend=backend)
        _assert_bytes_equal(out, reference)


@pytest.mark.parametrize("backend", backend_params())
class TestEdgeSoftmaxConformance:
    def test_coo(self, backend, coo_case):
        rng = np.random.default_rng(4)
        scores = rng.standard_normal(coo_case.nnz).astype(np.float32)
        reference = edge_softmax_forward(coo_case, scores,
                                         backend="reference")
        out = edge_softmax_forward(coo_case, scores, backend=backend)
        _assert_bytes_equal(out, reference)
        # Probabilities per populated destination sum to ~1.
        if coo_case.nnz:
            sums = np.zeros(coo_case.shape[0])
            np.add.at(sums, coo_case.edge_dst, out)
            populated = sums > 0
            assert np.allclose(sums[populated], 1.0)


class TestDispatchSemantics:
    def test_unknown_backend_raises(self, csr_case):
        with pytest.raises(KernelError, match="unknown kernel backend"):
            gspmm_forward(csr_case, _features(csr_case, np.float32),
                          backend="cuda")

    def test_unknown_op_raises(self, csr_case):
        with pytest.raises(KernelError, match="unknown gspmm op"):
            gspmm_forward(csr_case, _features(csr_case, np.float32),
                          op="divide")

    def test_shape_mismatch_raises(self, csr_case):
        wrong = np.ones((csr_case.shape[1] + 1, 2), dtype=np.float32)
        with pytest.raises(KernelError, match="rows"):
            gspmm_forward(csr_case, wrong)

    def test_flag_selects_backend(self, csr_case):
        x = _features(csr_case, np.float32)
        expected = gspmm_forward(csr_case, x, backend="reference")
        for name in available_backends():
            with perf_overrides(kernel_backend=name):
                assert resolve_backend().name == name
                _assert_bytes_equal(gspmm_forward(csr_case, x),
                                    expected)

    def test_auto_prefers_accelerated(self):
        names = available_backends()
        resolved = resolve_backend("auto").name
        if names == ["reference"]:
            assert resolved == "reference"
        else:
            assert resolved != "reference"

    def test_fallback_is_counted(self, coo_case):
        accelerated = [n for n in available_backends()
                       if n != "reference"]
        if not accelerated:
            pytest.skip("no accelerated backend importable")
        rng = np.random.default_rng(5)
        q = rng.standard_normal((coo_case.shape[0], 2)).astype(np.float32)
        k = rng.standard_normal((coo_case.shape[1], 2)).astype(np.float32)
        before = PERF.snapshot()
        gsddmm_forward(coo_case, q, k, op="add",
                       backend=accelerated[0])
        delta = PERF.delta(before)
        assert delta.get("kernel_fallbacks", 0) == 1
        assert delta.get("kernel_reference_calls", 0) == 1

    def test_max_reduce_detour_is_counted(self, csr_case):
        """``reduce='max'`` always runs the reference scan; resolving
        any other backend must count the detour as a fallback rather
        than silently degrading an explicit request."""
        accelerated = [n for n in available_backends()
                       if n != "reference"]
        if not accelerated:
            pytest.skip("no accelerated backend importable")
        x = _features(csr_case, np.float32)
        before = PERF.snapshot()
        gspmm_forward(csr_case, x, reduce="max",
                      backend=accelerated[0])
        delta = PERF.delta(before)
        assert delta.get("kernel_fallbacks", 0) == 1
        assert delta.get("kernel_reference_calls", 0) == 1
        assert delta.get(f"kernel_{accelerated[0]}_calls", 0) == 0

    def test_max_reduce_reference_is_not_a_fallback(self, csr_case):
        x = _features(csr_case, np.float32)
        before = PERF.snapshot()
        gspmm_forward(csr_case, x, reduce="max", backend="reference")
        delta = PERF.delta(before)
        assert delta.get("kernel_fallbacks", 0) == 0
        assert delta.get("kernel_reference_calls", 0) == 1

    def test_call_and_flop_counters(self, csr_case):
        x = _features(csr_case, np.float32, dim=4)
        before = PERF.snapshot()
        gspmm_forward(csr_case, x, backend="reference")
        delta = PERF.delta(before)
        assert delta.get("kernel_gspmm_calls") == 1
        assert delta.get("kernel_reference_calls") == 1
        assert delta.get("kernel_flops", 0) == 2 * csr_case.nnz * 4

    def test_explicit_unavailable_backend_raises(self):
        from repro.kernels.registry import _BACKENDS
        missing = [name for name in _BACKENDS
                   if name not in available_backends()]
        if not missing:
            pytest.skip("every registered backend is importable")
        with pytest.raises(KernelError, match="not importable"):
            resolve_backend(missing[0])


class TestScipyDispatchCaching:
    """Repeated dispatch through a persistent operator must reuse the
    scipy backend's matrices (regression: the ``copy_rhs`` and
    explicit-values paths allocated a fresh ``csr_matrix`` — and a
    fresh ones array — on every call, bypassing the cache)."""

    @pytest.fixture(autouse=True)
    def _require_scipy(self):
        if "scipy" not in available_backends():
            pytest.skip("scipy backend not importable")

    def test_copy_rhs_matrix_is_cached(self, csr_case):
        x = _features(csr_case, np.float32)
        first = gspmm_forward(csr_case, x, op="copy_rhs",
                              backend="scipy")
        cached = csr_case._scipy_ones
        assert cached is not None
        again = gspmm_forward(csr_case, x, op="copy_rhs",
                              backend="scipy")
        assert csr_case._scipy_ones is cached
        _assert_bytes_equal(again, first)

    def test_values_matrix_is_cached_across_value_swaps(self, csr_case):
        x = _features(csr_case, np.float32)
        v1 = np.linspace(0.5, 1.5, csr_case.nnz).astype(np.float32)
        v2 = np.linspace(-2.0, 2.0, csr_case.nnz).astype(np.float32)
        out1 = gspmm_forward(csr_case, x, values=v1, backend="scipy")
        cached = csr_case._scipy_weighted
        assert cached is not None
        out2 = gspmm_forward(csr_case, x, values=v2, backend="scipy")
        assert csr_case._scipy_weighted is cached
        _assert_bytes_equal(out1, gspmm_forward(csr_case, x, values=v1,
                                                backend="reference"))
        _assert_bytes_equal(out2, gspmm_forward(csr_case, x, values=v2,
                                                backend="reference"))

    def test_values_path_does_not_corrupt_copy_rhs(self, csr_case):
        """The two cached matrices are separate: rebinding the values
        matrix's data must leave the all-ones matrix untouched."""
        x = _features(csr_case, np.float32)
        expected = gspmm_forward(csr_case, x, op="copy_rhs",
                                 backend="reference")
        gspmm_forward(csr_case, x, op="copy_rhs", backend="scipy")
        gspmm_forward(csr_case, x,
                      values=np.full(csr_case.nnz, 3.0,
                                     dtype=np.float32),
                      backend="scipy")
        out = gspmm_forward(csr_case, x, op="copy_rhs",
                            backend="scipy")
        _assert_bytes_equal(out, expected)
