"""Golden end-to-end bit-identity across the kernel-registry seam.

``tests/golden/kernel_refactor.json`` was generated at the commit
*before* the aggregation paths were routed through ``repro.kernels``
(see ``tools/gen_golden_kernels.py``).  These tests re-run the exact
recipes — sampled training curves, a seeded GAT forward/backward, the
layer-wise serving tables and their three read paths — and compare
against the stored fingerprints with sha256 over raw bytes (``atol=0``
by construction): the refactor must change *nothing*, under the pinned
reference backend and under whatever backend ``"auto"`` resolves to.
"""

import hashlib
import json
from pathlib import Path

import numpy as np
import pytest

from repro import Trainer, TrainingConfig, load_dataset
from repro.kernels import available_backends
from repro.nn import build_model
from repro.nn.loss import softmax_cross_entropy
from repro.perf import perf_overrides
from repro.sampling import NeighborSampler
from repro.serve import LayerwiseEmbeddings

from .conftest import have_scipy

GOLDEN_PATH = Path(__file__).resolve().parents[1] / "golden" \
    / "kernel_refactor.json"
GOLDEN = json.loads(GOLDEN_PATH.read_text())

#: The reference backend always runs; "auto" additionally pins whatever
#: accelerated backend the environment resolves (scipy here, numba
#: where importable) to the same bits end to end.
BACKENDS = ["reference", "auto"]


def _digest(array):
    array = np.ascontiguousarray(array)
    if array.dtype.byteorder == ">":  # pragma: no cover - LE platforms
        array = array.astype(array.dtype.newbyteorder("<"))
    return f"{array.dtype.name}:{hashlib.sha256(array.tobytes()).hexdigest()}"


@pytest.fixture(scope="module", params=BACKENDS)
def backend(request):
    if request.param != "reference" \
            and available_backends() == ["reference"]:
        pytest.skip("no accelerated backend importable")
    with perf_overrides(kernel_backend=request.param):
        yield request.param


@pytest.mark.parametrize("model", ["gcn", "graphsage"])
def test_training_curves_bit_identical(backend, model):
    dataset = load_dataset("ogb-arxiv", scale=0.05)
    config = TrainingConfig(model=model, epochs=3, batch_size=128,
                            fanout=(4, 4), num_workers=2,
                            partitioner="hash", seed=7)
    result = Trainer(dataset, config).run()
    expected = GOLDEN["training"][model]
    assert [float(v) for v in result.curve.losses] \
        == expected["losses"]
    assert [float(v) for v in result.curve.val_accuracies] \
        == expected["val_accuracies"]
    assert float(result.test_accuracy) == expected["test_accuracy"]


def test_gat_forward_backward_bit_identical(backend):
    dataset = load_dataset("ogb-arxiv", scale=0.05)
    sampler = NeighborSampler((4, 4))
    seeds = dataset.train_ids[:24]
    subgraph = sampler.sample(dataset.graph, seeds,
                              np.random.default_rng(5))
    model = build_model("gat", dataset.feature_dim,
                        dataset.num_classes,
                        rng=np.random.default_rng(11))
    model.eval()
    logits = model.forward(subgraph,
                           dataset.features[subgraph.input_nodes])
    loss = softmax_cross_entropy(logits, dataset.labels[seeds])
    loss.backward()
    grads = np.concatenate([p.grad.ravel()
                            for p in model.parameters()])

    expected = GOLDEN["gat"]
    assert [float(v) for v in logits.data.ravel()[:8]] \
        == expected["logits_head"]
    assert _digest(logits.data) == expected["logits_sha256"]
    assert float(loss.item()) == expected["loss"]
    assert _digest(grads) == expected["grads_sha256"]


@pytest.mark.skipif(not have_scipy(),
                    reason="serving tables build on scipy operators")
@pytest.mark.parametrize("model_name", ["gcn", "graphsage"])
def test_serving_tables_bit_identical(backend, model_name):
    dataset = load_dataset("ogb-arxiv", scale=0.1)
    model = build_model(model_name, dataset.feature_dim,
                        dataset.num_classes,
                        rng=np.random.default_rng(3))
    embeddings = LayerwiseEmbeddings(model, dataset.graph,
                                     dataset.features)
    probe = dataset.test_ids[:32]
    logits = embeddings.logits(probe)
    rowwise = embeddings.rowwise_logits(probe[:8])
    ondemand, stats = embeddings.ondemand_logits(probe[:8])

    expected = GOLDEN["serving"][model_name]
    assert _digest(embeddings.table) == expected["table_sha256"]
    assert _digest(logits) == expected["logits_sha256"]
    assert _digest(rowwise) == expected["rowwise_sha256"]
    assert _digest(ondemand) == expected["ondemand_sha256"]
    assert int(stats.edges) == expected["ondemand_edges"]
    assert [float(v) for v in logits.ravel()[:8]] \
        == expected["logits_head"]
