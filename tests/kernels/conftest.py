"""Shared fixtures for the sparse-kernel conformance suite.

The adjacency cases deliberately cover the shapes the library actually
produces — rectangular sampled-block operators with *descending* row
order, duplicate-collapsing self-loops, zero-degree rows, and the
empty block — plus the GAT COO layout whose edge order (block edges
first, appended self-loops last) is part of the numerical contract.
"""

import numpy as np
import pytest

from repro.kernels import (KernelCOO, KernelCSR,
                           normalized_block_adjacency)
from repro.sampling import build_block


def _block(seed, num_seeds=6, num_edges=18, universe=40):
    """A small seeded sampled block (destinations lead the sources)."""
    rng = np.random.default_rng(seed)
    dst_nodes = rng.choice(universe, size=num_seeds, replace=False)
    edge_dst = rng.choice(dst_nodes, size=num_edges)
    edge_src = rng.choice(universe, size=num_edges)
    return build_block(dst_nodes, edge_dst, edge_src)


def csr_cases():
    """Named CSR adjacencies covering the conformance matrix."""
    cases = {}

    # Regular rectangular block operator (with and without loops).
    block = _block(seed=3)
    cases["block_loops"] = normalized_block_adjacency(block,
                                                      self_loops=True)
    cases["block_plain"] = normalized_block_adjacency(block,
                                                      self_loops=False)

    # A destination that samples itself: the appended self-loop
    # duplicates an existing (i, i) edge and must collapse into one
    # stored entry with weight 2 before normalization.
    self_block = build_block(np.array([4, 9]),
                             np.array([4, 4, 9]),
                             np.array([4, 17, 9]))
    cases["self_loop_dup"] = normalized_block_adjacency(self_block,
                                                        self_loops=True)

    # Zero-degree (disconnected) rows without the self-loop rescue.
    sparse_block = build_block(np.array([1, 2, 3, 5]),
                               np.array([2, 2]),
                               np.array([30, 31]))
    cases["zero_rows"] = normalized_block_adjacency(sparse_block,
                                                    self_loops=False)

    # Entirely empty operator (a batch whose fanout sampled nothing).
    empty_block = build_block(np.array([7, 8]),
                              np.empty(0, dtype=np.int64),
                              np.empty(0, dtype=np.int64))
    cases["empty"] = normalized_block_adjacency(empty_block,
                                                self_loops=False)

    # Hand-built weighted rectangular CSR with *unsorted* rows and
    # non-uniform float weights (nothing guarantees sorted columns).
    cases["rect_weighted"] = KernelCSR(
        indptr=[0, 3, 3, 5, 8],
        indices=[5, 0, 2, 6, 1, 4, 4, 3],
        data=[0.5, -1.25, 2.0, 0.75, -0.125, 1.5, 0.25, 3.0],
        shape=(4, 7))
    return cases


def coo_cases():
    """Named COO edge lists (GAT layout: loops appended last)."""
    block = _block(seed=11)
    edge_dst = np.repeat(np.arange(block.num_dst, dtype=np.int64),
                         block.degrees())
    loops = np.arange(block.num_dst, dtype=np.int64)
    return {
        "gat_block": KernelCOO(
            np.concatenate([edge_dst, loops]),
            np.concatenate([block.indices, loops]),
            (block.num_dst, block.num_src)),
        "empty": KernelCOO(np.empty(0, dtype=np.int64),
                           np.empty(0, dtype=np.int64), (3, 5)),
        "repeated_edges": KernelCOO([0, 2, 0, 0, 1],
                                    [1, 3, 1, 2, 0], (3, 4)),
    }


@pytest.fixture(params=sorted(csr_cases()))
def csr_case(request):
    """One named CSR adjacency per parametrized run."""
    return csr_cases()[request.param]


@pytest.fixture(params=sorted(coo_cases()))
def coo_case(request):
    """One named COO adjacency per parametrized run."""
    return coo_cases()[request.param]


def have_scipy():
    """True when scipy is importable (try-import, not ``find_spec``,
    so collection survives ``sys.meta_path`` import blockers)."""
    try:
        import scipy.sparse  # noqa: F401
    except ImportError:
        return False
    return True


def backend_params():
    """Every registered backend name, skipping the unavailable ones."""
    from repro.kernels import available_backends
    from repro.kernels.registry import _BACKENDS
    available = set(available_backends())
    return [pytest.param(name,
                         marks=() if name in available else
                         pytest.mark.skip(reason=f"{name} backend "
                                                 f"not importable"))
            for name in _BACKENDS]
