"""Equivalence of the fused block-assembly fast path with the
sort-based reference implementation, on randomized inputs."""

import numpy as np
import pytest

from repro.errors import SamplingError
from repro.graph.build import from_edges
from repro.perf import FLAGS, get_workspace, perf_overrides
from repro.sampling import (HybridSampler, LayerWiseSampler,
                            NeighborSampler, SubgraphSampler, build_block,
                            build_block_reference)
from repro.sampling.base import draw_neighbors


def assert_blocks_equal(a, b):
    for name in ("dst_nodes", "src_nodes", "indptr", "indices"):
        assert np.array_equal(getattr(a, name), getattr(b, name)), name


def assert_subgraphs_equal(a, b):
    assert np.array_equal(a.seeds, b.seeds)
    assert len(a.blocks) == len(b.blocks)
    for block_a, block_b in zip(a.blocks, b.blocks):
        assert_blocks_equal(block_a, block_b)


def random_graph(rng, num_vertices=400, symmetric=False):
    count = int(rng.integers(num_vertices, 6 * num_vertices))
    src = rng.integers(0, num_vertices, count)
    dst = rng.integers(0, num_vertices, count)
    return from_edges(src, dst, num_vertices, symmetrize_edges=symmetric)


class TestBuildBlockEquivalence:
    @pytest.mark.parametrize("seed", range(8))
    def test_random_edge_sets(self, seed):
        rng = np.random.default_rng(seed)
        dst = np.unique(rng.integers(0, 1000, 150))
        count = int(rng.integers(0, 2000))
        edge_dst = rng.choice(dst, count) if count else \
            np.empty(0, dtype=np.int64)
        edge_src = rng.integers(0, 1000, count)
        assert_blocks_equal(build_block(dst, edge_dst, edge_src),
                            build_block_reference(dst, edge_dst, edge_src))

    @pytest.mark.parametrize("seed", range(4))
    @pytest.mark.parametrize("symmetric", [False, True])
    def test_via_samplers(self, seed, symmetric):
        """Every sampler family produces identical subgraphs with the
        fast path on and off, for the same rng seed."""
        graph = random_graph(np.random.default_rng(seed),
                             symmetric=symmetric)
        seeds = np.random.default_rng(seed + 50).choice(
            400, 64, replace=False)
        samplers = [NeighborSampler((5, 3)), LayerWiseSampler(64, 2),
                    SubgraphSampler(2), HybridSampler((4, 4), rate=0.3)]
        for sampler in samplers:
            fast = sampler.sample(graph, seeds,
                                  np.random.default_rng(seed + 99))
            with perf_overrides(fused_block_assembly=False):
                slow = sampler.sample(graph, seeds,
                                      np.random.default_rng(seed + 99))
            assert_subgraphs_equal(fast, slow)
            fast.validate()

    def test_assume_deduped_skips_collapse(self):
        # With duplicate pairs, assume_deduped keeps them (the caller's
        # promise was violated) — documents why the flag is only safe
        # straight out of draw_neighbors.
        block = build_block([1], [1, 1], [2, 2], assume_deduped=True)
        assert block.num_edges == 2
        assert build_block([1], [1, 1], [2, 2]).num_edges == 1

    def test_duplicate_pairs_collapse_by_default(self):
        block = build_block([1, 2], [1, 1, 2, 1], [3, 3, 3, 4])
        reference = build_block_reference([1, 2], [1, 1, 2, 1],
                                          [3, 3, 3, 4])
        assert_blocks_equal(block, reference)
        assert block.num_edges == 3

    def test_unknown_destination_raises(self):
        with pytest.raises(SamplingError):
            build_block([1], [2], [3])

    def test_negative_ids_raise(self):
        with pytest.raises(SamplingError):
            build_block([1], [1], [-2])

    def test_workspace_restored_after_error(self):
        """The pooled id map returns to all -1 even when assembly
        raises (unknown destination)."""
        build_block([3, 5], [3, 5], [7, 9])  # prime the pool
        with pytest.raises(SamplingError):
            build_block([1], [2], [3])
        workspace = get_workspace()
        assert workspace.id_map_capacity > 0
        with workspace.id_map(1) as lookup:
            assert np.all(lookup == -1)


class TestDrawNeighborsEquivalence:
    @pytest.mark.parametrize("seed", range(4))
    def test_fused_dedup_matches_lexsort(self, seed):
        graph = random_graph(np.random.default_rng(seed))
        rng = np.random.default_rng(seed + 7)
        frontier = np.unique(rng.integers(0, 400, 80))
        counts = rng.integers(1, 8, len(frontier))
        fast = draw_neighbors(graph, frontier, counts,
                              np.random.default_rng(seed + 13))
        with perf_overrides(fused_block_assembly=False):
            slow = draw_neighbors(graph, frontier, counts,
                                  np.random.default_rng(seed + 13))
        assert np.array_equal(fast[0], slow[0])
        assert np.array_equal(fast[1], slow[1])

    def test_flag_restored_by_context_manager(self):
        assert FLAGS.fused_block_assembly
        with perf_overrides(fused_block_assembly=False):
            assert not FLAGS.fused_block_assembly
        assert FLAGS.fused_block_assembly
