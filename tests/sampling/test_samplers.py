"""Unit tests for all sampler families."""

import numpy as np
import pytest

from repro.errors import SamplingError
from repro.graph import from_edges, load_dataset
from repro.sampling import (HybridSampler, LayerWiseSampler,
                            NeighborSampler, RateSampler, SubgraphSampler,
                            draw_neighbors)


@pytest.fixture(scope="module")
def dataset():
    return load_dataset("ogb-arxiv", scale=0.25)


@pytest.fixture()
def seeds(dataset):
    rng = np.random.default_rng(7)
    return rng.choice(dataset.train_ids, size=50, replace=False)


class TestDrawNeighbors:
    def test_respects_counts(self):
        g = from_edges([0] * 5, [1, 2, 3, 4, 5], 6, symmetrize_edges=True)
        dst, src = draw_neighbors(g, [0], [3], np.random.default_rng(0))
        assert len(dst) <= 3
        assert np.all(dst == 0)

    def test_only_real_edges(self, dataset):
        rng = np.random.default_rng(0)
        frontier = dataset.train_ids[:20]
        dst, src = draw_neighbors(dataset.graph, frontier,
                                  np.full(20, 10), rng)
        indptr, indices = dataset.graph.in_csr()
        for d, s in zip(dst[:50], src[:50]):
            assert s in indices[indptr[d]:indptr[d + 1]]

    def test_zero_degree_vertex(self):
        g = from_edges([0], [1], 3, symmetrize_edges=True)
        dst, src = draw_neighbors(g, [2], [5], np.random.default_rng(0))
        assert len(dst) == 0

    def test_misaligned_inputs(self, dataset):
        with pytest.raises(SamplingError):
            draw_neighbors(dataset.graph, [0, 1], [5],
                           np.random.default_rng(0))


class TestNeighborSampler:
    def test_layer_count_matches_fanout(self, dataset, seeds):
        sampler = NeighborSampler((10, 5, 3))
        sg = sampler.sample(dataset.graph, seeds, np.random.default_rng(0))
        assert sg.num_layers == 3
        sg.validate()

    def test_fanout_bounds_degrees(self, dataset, seeds):
        sampler = NeighborSampler((4, 4))
        sg = sampler.sample(dataset.graph, seeds, np.random.default_rng(0))
        for block in sg.blocks:
            assert block.degrees().max() <= 4

    def test_larger_fanout_more_edges(self, dataset, seeds):
        small = NeighborSampler((2, 2)).sample(
            dataset.graph, seeds, np.random.default_rng(0))
        large = NeighborSampler((20, 20)).sample(
            dataset.graph, seeds, np.random.default_rng(0))
        assert large.total_edges > small.total_edges

    def test_invalid_fanout(self):
        with pytest.raises(SamplingError):
            NeighborSampler(())
        with pytest.raises(SamplingError):
            NeighborSampler((5, 0))

    def test_empty_seeds(self, dataset):
        with pytest.raises(SamplingError):
            NeighborSampler((5,)).sample(dataset.graph, [],
                                         np.random.default_rng(0))

    def test_seeds_deduplicated(self, dataset):
        sg = NeighborSampler((5,)).sample(
            dataset.graph, [3, 3, 3], np.random.default_rng(0))
        assert len(sg.seeds) == 1


class TestRateSampler:
    def test_rate_scales_with_degree(self, dataset):
        degrees = dataset.graph.in_degrees
        hub = int(np.argmax(degrees))
        sampler = RateSampler(0.5, num_layers=1)
        sg = sampler.sample(dataset.graph, [hub], np.random.default_rng(0))
        sampled = sg.blocks[-1].degrees()[0]
        # With-replacement draws then dedup: between ~30% and 50% kept.
        assert sampled >= 0.25 * degrees[hub]
        assert sampled <= np.ceil(0.5 * degrees[hub])

    def test_min_neighbors_floor(self, dataset, seeds):
        sampler = RateSampler(0.01, num_layers=1, min_neighbors=2)
        sg = sampler.sample(dataset.graph, seeds, np.random.default_rng(0))
        degrees = dataset.graph.in_degrees[sg.blocks[-1].dst_nodes]
        sampled = sg.blocks[-1].degrees()
        assert np.all(sampled[degrees >= 2] >= 1)

    def test_invalid_rate(self):
        with pytest.raises(SamplingError):
            RateSampler(0.0)
        with pytest.raises(SamplingError):
            RateSampler(1.5)


class TestHybridSampler:
    def test_low_degree_uses_fanout(self, dataset):
        sampler = HybridSampler(fanout=(3, 3), rate=0.5,
                                degree_threshold=1000000)
        sg = sampler.sample(dataset.graph, dataset.train_ids[:30],
                            np.random.default_rng(0))
        for block in sg.blocks:
            assert block.degrees().max() <= 3

    def test_high_degree_uses_rate(self, dataset):
        degrees = dataset.graph.in_degrees
        hub = int(np.argmax(degrees))
        sampler = HybridSampler(fanout=(2, 2), rate=0.9, degree_threshold=1)
        sg = sampler.sample(dataset.graph, [hub], np.random.default_rng(0))
        assert sg.blocks[-1].degrees()[0] > 2

    def test_invalid_params(self):
        with pytest.raises(SamplingError):
            HybridSampler(fanout=(0,))
        with pytest.raises(SamplingError):
            HybridSampler(rate=0)
        with pytest.raises(SamplingError):
            HybridSampler(degree_threshold=0)


class TestLayerWiseSampler:
    def test_budget_caps_layer(self, dataset, seeds):
        sampler = LayerWiseSampler(layer_budget=64, num_layers=2)
        sg = sampler.sample(dataset.graph, seeds, np.random.default_rng(0))
        sg.validate()
        for block in sg.blocks:
            fresh = block.num_src - block.num_dst
            assert fresh <= 64

    def test_invalid_budget(self):
        with pytest.raises(SamplingError):
            LayerWiseSampler(layer_budget=0)


class TestSubgraphSampler:
    def test_confined_to_induced_subgraph(self, dataset, seeds):
        sampler = SubgraphSampler(num_layers=2, walk_padding=0.0)
        sg = sampler.sample(dataset.graph, seeds, np.random.default_rng(0))
        sg.validate()
        assert set(sg.unique_vertices()) <= set(np.asarray(seeds).tolist())

    def test_padding_adds_vertices(self, dataset, seeds):
        plain = SubgraphSampler(walk_padding=0.0).sample(
            dataset.graph, seeds, np.random.default_rng(0))
        padded = SubgraphSampler(walk_padding=1.0).sample(
            dataset.graph, seeds, np.random.default_rng(0))
        assert len(padded.unique_vertices()) >= len(plain.unique_vertices())

    def test_invalid_padding(self):
        with pytest.raises(SamplingError):
            SubgraphSampler(walk_padding=-0.5)


class TestDeterminism:
    def test_same_rng_same_sample(self, dataset, seeds):
        a = NeighborSampler((5, 5)).sample(dataset.graph, seeds,
                                           np.random.default_rng(3))
        b = NeighborSampler((5, 5)).sample(dataset.graph, seeds,
                                           np.random.default_rng(3))
        assert np.array_equal(a.input_nodes, b.input_nodes)
        assert a.total_edges == b.total_edges
