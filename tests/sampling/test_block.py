"""Unit tests for sampled-block structures."""

import numpy as np
import pytest

from repro.errors import SamplingError
from repro.sampling import SampledSubgraph, build_block


class TestBuildBlock:
    def test_simple_block(self):
        block = build_block([5, 7], [5, 5, 7], [7, 9, 11])
        assert list(block.dst_nodes) == [5, 7]
        # Sources: destinations first, then the new vertices.
        assert list(block.src_nodes[:2]) == [5, 7]
        assert set(block.src_nodes) == {5, 7, 9, 11}
        assert block.num_edges == 3
        block.validate()

    def test_dedup_edges(self):
        block = build_block([1], [1, 1, 1], [2, 2, 3])
        assert block.num_edges == 2

    def test_empty_edges(self):
        block = build_block([3], [], [])
        assert block.num_edges == 0
        assert block.num_src == 1
        block.validate()

    def test_degrees(self):
        block = build_block([1, 2], [1, 1, 2], [3, 4, 3])
        assert list(block.degrees()) == [2, 1]

    def test_self_loop_edge_allowed(self):
        block = build_block([1], [1], [1])
        assert block.num_edges == 1
        assert block.indices[0] == 0  # local id of vertex 1

    def test_unknown_destination_raises(self):
        with pytest.raises(SamplingError):
            build_block([1], [2], [3])

    def test_mismatched_arrays(self):
        with pytest.raises(SamplingError):
            build_block([1], [1, 1], [2])

    def test_validate_catches_src_order_violation(self):
        block = build_block([1, 2], [1], [3])
        block.src_nodes = block.src_nodes[::-1].copy()
        with pytest.raises(SamplingError):
            block.validate()


class TestSampledSubgraph:
    def build_two_layer(self):
        outer = build_block([1], [1, 1], [2, 3])
        inner = build_block(outer.src_nodes, [2, 3], [4, 5])
        return SampledSubgraph(seeds=np.array([1]), blocks=[inner, outer])

    def test_chaining_validates(self):
        sg = self.build_two_layer()
        sg.validate()

    def test_input_nodes_deepest_layer(self):
        sg = self.build_two_layer()
        assert set(sg.input_nodes) == {1, 2, 3, 4, 5}

    def test_total_edges(self):
        sg = self.build_two_layer()
        assert sg.total_edges == 4

    def test_unique_vertices(self):
        sg = self.build_two_layer()
        assert set(sg.unique_vertices()) == {1, 2, 3, 4, 5}

    def test_broken_chain_detected(self):
        outer = build_block([1], [1], [2])
        inner = build_block([9, 9], [], [])  # wrong dst set
        sg = SampledSubgraph(seeds=np.array([1]), blocks=[inner, outer])
        with pytest.raises(SamplingError):
            sg.validate()

    def test_wrong_seed_block_detected(self):
        outer = build_block([2], [2], [3])
        sg = SampledSubgraph(seeds=np.array([1]), blocks=[outer])
        with pytest.raises(SamplingError):
            sg.validate()
