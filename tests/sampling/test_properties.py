"""Property-based tests for sampling invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import power_law_graph
from repro.sampling import HybridSampler, NeighborSampler, RateSampler


@st.composite
def sample_cases(draw):
    n = draw(st.integers(min_value=20, max_value=150))
    degree = draw(st.integers(min_value=2, max_value=10))
    fanout = draw(st.tuples(st.integers(1, 8), st.integers(1, 8)))
    num_seeds = draw(st.integers(min_value=1, max_value=15))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    return n, degree, fanout, num_seeds, seed


def build_case(n, degree, num_seeds, seed):
    rng = np.random.default_rng(seed)
    graph, _ = power_law_graph(n, degree, rng)
    seeds = rng.choice(n, size=num_seeds, replace=False)
    return graph, seeds, rng


class TestSamplerInvariants:
    @given(sample_cases())
    @settings(max_examples=40, deadline=None)
    def test_fanout_blocks_are_valid_and_bounded(self, case):
        n, degree, fanout, num_seeds, seed = case
        graph, seeds, rng = build_case(n, degree, num_seeds, seed)
        sg = NeighborSampler(fanout).sample(graph, seeds, rng)
        sg.validate()
        for layer, block in enumerate(reversed(sg.blocks)):
            assert block.degrees().max(initial=0) <= fanout[layer]

    @given(sample_cases())
    @settings(max_examples=40, deadline=None)
    def test_sampled_edges_exist_in_graph(self, case):
        n, degree, fanout, num_seeds, seed = case
        graph, seeds, rng = build_case(n, degree, num_seeds, seed)
        sg = NeighborSampler(fanout).sample(graph, seeds, rng)
        indptr, indices = graph.in_csr()
        for block in sg.blocks:
            for i, dst in enumerate(block.dst_nodes):
                row = block.indices[block.indptr[i]:block.indptr[i + 1]]
                srcs = block.src_nodes[row]
                true_neighbors = set(
                    indices[indptr[dst]:indptr[dst + 1]].tolist())
                assert set(srcs.tolist()) <= true_neighbors

    @given(sample_cases())
    @settings(max_examples=30, deadline=None)
    def test_seeds_always_covered(self, case):
        n, degree, fanout, num_seeds, seed = case
        graph, seeds, rng = build_case(n, degree, num_seeds, seed)
        sg = RateSampler(0.5, num_layers=2).sample(graph, seeds, rng)
        assert set(np.unique(seeds)) <= set(sg.unique_vertices().tolist())

    @given(sample_cases())
    @settings(max_examples=30, deadline=None)
    def test_hybrid_never_empty_counts(self, case):
        n, degree, fanout, num_seeds, seed = case
        graph, seeds, rng = build_case(n, degree, num_seeds, seed)
        sg = HybridSampler(fanout=fanout, rate=0.2,
                           degree_threshold=degree).sample(graph, seeds, rng)
        sg.validate()
        # Any destination with in-degree >= 1 sampled at least 1 neighbor.
        indptr, _ = graph.in_csr()
        for block in sg.blocks:
            degs = indptr[block.dst_nodes + 1] - indptr[block.dst_nodes]
            sampled = block.degrees()
            assert np.all(sampled[degs > 0] >= 1)
