"""API quality gates: documentation coverage and export hygiene.

These tests keep the public surface honest as the library grows: every
public module, class, and function carries a docstring, and every name
in an ``__all__`` actually exists.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro

PACKAGES = ["repro", "repro.graph", "repro.partition", "repro.sampling",
            "repro.batching", "repro.nn", "repro.transfer", "repro.dist",
            "repro.core", "repro.tasks"]


def walk_modules():
    modules = []
    for package_name in PACKAGES:
        package = importlib.import_module(package_name)
        modules.append(package)
        for info in pkgutil.iter_modules(package.__path__):
            modules.append(importlib.import_module(
                f"{package_name}.{info.name}"))
    return modules


ALL_MODULES = walk_modules()


class TestDocumentation:
    @pytest.mark.parametrize("module", ALL_MODULES,
                             ids=lambda m: m.__name__)
    def test_module_docstring(self, module):
        assert module.__doc__ and module.__doc__.strip(), \
            f"{module.__name__} lacks a module docstring"

    @pytest.mark.parametrize("module", ALL_MODULES,
                             ids=lambda m: m.__name__)
    def test_public_callables_documented(self, module):
        undocumented = []
        for name in getattr(module, "__all__", []):
            obj = getattr(module, name, None)
            if obj is None or not callable(obj):
                continue
            if inspect.getmodule(obj) is not module:
                continue  # re-export; documented at its home
            if not (obj.__doc__ and obj.__doc__.strip()):
                undocumented.append(name)
        assert not undocumented, \
            f"{module.__name__}: undocumented public names {undocumented}"

    @pytest.mark.parametrize("module", ALL_MODULES,
                             ids=lambda m: m.__name__)
    def test_public_classes_document_methods(self, module):
        gaps = []
        for name in getattr(module, "__all__", []):
            obj = getattr(module, name, None)
            if not inspect.isclass(obj) or inspect.getmodule(obj) \
                    is not module:
                continue
            for method_name, method in vars(obj).items():
                if method_name.startswith("_"):
                    continue
                if not callable(method):
                    continue
                # getdoc follows the MRO: an override documented by its
                # ABC counts as documented.
                doc = inspect.getdoc(getattr(obj, method_name))
                if not (doc or "").strip():
                    gaps.append(f"{name}.{method_name}")
        assert not gaps, f"{module.__name__}: undocumented methods {gaps}"


class TestExports:
    @pytest.mark.parametrize("module", ALL_MODULES,
                             ids=lambda m: m.__name__)
    def test_all_names_exist(self, module):
        missing = [name for name in getattr(module, "__all__", [])
                   if not hasattr(module, name)]
        assert not missing, \
            f"{module.__name__}.__all__ lists missing names {missing}"

    def test_top_level_api_importable(self):
        for name in repro.__all__:
            assert hasattr(repro, name)

    def test_version_string(self):
        parts = repro.__version__.split(".")
        assert len(parts) == 3
        assert all(part.isdigit() for part in parts)
