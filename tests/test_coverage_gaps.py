"""Tests rounding out coverage of less-traveled public API paths."""

import numpy as np
import pytest

from repro.core import make_partitioner
from repro.errors import GraphError
from repro.graph import from_edges, load_dataset, load_graph
from repro.partition import (StreamVPartitioner, partition_subgraphs,
                             quality_report)
from repro.sampling import NeighborSampler
from repro.transfer import BatchStats, HybridTransfer, DEFAULT_SPEC


@pytest.fixture(scope="module")
def dataset():
    return load_dataset("ogb-arxiv", scale=0.25)


class TestPartitionSubgraphs:
    def test_owned_subgraphs_partition_vertices(self, dataset):
        result = make_partitioner("hash").partition(
            dataset.graph, 3, rng=np.random.default_rng(0))
        subs = partition_subgraphs(dataset.graph, result)
        assert len(subs) == 3
        assert sum(s.num_vertices for s in subs) == dataset.num_vertices

    def test_replicated_subgraphs_overlap(self, dataset):
        result = StreamVPartitioner(hop_cap=4).partition(
            dataset.graph, 3, split=dataset.split,
            rng=np.random.default_rng(0))
        subs = partition_subgraphs(dataset.graph, result)
        # Replication: stored vertices exceed the vertex count.
        assert sum(s.num_vertices for s in subs) > dataset.num_vertices


class TestHashEdgeFactory:
    def test_hash_edge_partitioner(self, dataset):
        partitioner = make_partitioner("hash-edge")
        result = partitioner.partition(dataset.graph, 3,
                                       rng=np.random.default_rng(0))
        assert result.method == "hash-edge"
        report = quality_report(dataset.graph, result)
        assert 0 < report["edge_cut_fraction"] < 1


class TestIOErrors:
    def test_load_graph_rejects_foreign_npz(self, tmp_path):
        path = tmp_path / "foreign.npz"
        np.savez(path, something=np.arange(3))
        with pytest.raises(GraphError):
            load_graph(path)


class TestHybridTransferMidThreshold:
    def test_mixes_dma_and_zero_copy(self, dataset):
        """At a mid threshold on a half-active batch, hybrid uses both
        paths (dense-block DMA and sparse zero-copy)."""
        sampler = NeighborSampler((3, 3))
        subgraph = sampler.sample(dataset.graph, dataset.train_ids[:64],
                                  np.random.default_rng(0))
        stats = BatchStats.from_subgraph(subgraph, dataset)
        hybrid = HybridTransfer(threshold=0.5, block_bytes=2048)
        breakdown = hybrid.transfer(stats, DEFAULT_SPEC)
        assert breakdown.total_seconds > 0
        assert breakdown.bytes_moved >= stats.topology_bytes


class TestDatasetEdgeCases:
    def test_scale_floor(self):
        tiny = load_dataset("reddit", scale=1e-9)
        assert tiny.num_vertices == 64

    def test_seed_override_changes_graph(self):
        a = load_dataset("ogb-arxiv", scale=0.25, seed=1, cache=False)
        b = load_dataset("ogb-arxiv", scale=0.25, seed=2, cache=False)
        assert a.graph != b.graph
