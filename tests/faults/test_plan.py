"""Unit tests for fault plans and the deterministic injector."""

import numpy as np
import pytest

from repro.errors import FaultError, ReproError
from repro.faults import FAULT_KINDS, FaultEvent, FaultInjector, FaultPlan


class TestFaultEvent:
    def test_known_kinds(self):
        assert set(FAULT_KINDS) == {"halt", "crash", "straggler",
                                    "flaky", "slowlink"}

    def test_unknown_kind_rejected(self):
        with pytest.raises(FaultError):
            FaultEvent(kind="meteor", epoch=0)

    def test_worker_kinds_need_worker(self):
        with pytest.raises(FaultError):
            FaultEvent(kind="crash", epoch=1)

    def test_cluster_kinds_reject_worker(self):
        with pytest.raises(FaultError):
            FaultEvent(kind="slowlink", epoch=1, worker=0)

    def test_magnitude_validation(self):
        with pytest.raises(FaultError):
            FaultEvent(kind="straggler", epoch=0, worker=0, magnitude=0.5)
        with pytest.raises(FaultError):
            FaultEvent(kind="flaky", epoch=0, worker=0, magnitude=1.0)
        with pytest.raises(FaultError):
            FaultEvent(kind="slowlink", epoch=0, magnitude=0.0)

    def test_window_active(self):
        event = FaultEvent(kind="straggler", epoch=2, worker=0,
                           duration=3, magnitude=2.0)
        assert [event.active(e) for e in range(6)] == \
            [False, False, True, True, True, False]

    def test_instantaneous_active(self):
        event = FaultEvent(kind="crash", epoch=2, worker=1)
        assert event.active(2) and not event.active(3)

    def test_fault_error_is_repro_error(self):
        assert issubclass(FaultError, ReproError)


class TestFaultPlanParse:
    def test_full_grammar(self):
        plan = FaultPlan.parse(
            "halt@4,crash@2:w1,straggler@1+3:w0:x4,"
            "flaky@0+2:w2:p0.25,slowlink@3:x0.5", seed=7)
        kinds = [e.kind for e in plan]
        assert kinds == ["halt", "crash", "straggler", "flaky",
                         "slowlink"]
        assert plan.seed == 7
        straggler = plan.events[2]
        assert (straggler.epoch, straggler.duration,
                straggler.worker, straggler.magnitude) == (1, 3, 0, 4.0)

    def test_describe_round_trips(self):
        spec = "straggler@1+3:w0:x4,crash@2:w1,slowlink@3:x0.5"
        plan = FaultPlan.parse(spec, seed=3)
        replay = FaultPlan.parse(plan.describe().split(" [")[0], seed=3)
        assert replay == plan

    def test_bad_tokens_rejected(self):
        for spec in ("straggler", "crash@x:w0", "flaky@1:w0:q9",
                     "crash@1"):
            with pytest.raises(FaultError):
                FaultPlan.parse(spec)

    def test_plan_is_immutable(self):
        plan = FaultPlan.parse("halt@1")
        with pytest.raises(AttributeError):
            plan.seed = 5


class TestFaultInjector:
    def test_halt_raises_once_per_epoch(self):
        injector = FaultInjector("halt@2")
        injector.begin_epoch(0)
        injector.begin_epoch(1)
        with pytest.raises(FaultError):
            injector.begin_epoch(2)
        assert injector.halts_fired == 1

    def test_disarmed_halt_does_not_refire(self):
        injector = FaultInjector("halt@2")
        injector.disarm_halts_through(2)
        injector.begin_epoch(2)  # must not raise

    def test_disarm_for_resume_covers_killing_halt(self):
        # Sparse-checkpoint resume: the run restarts at epoch 2, before
        # the halt@3 that killed it; the replayed halt must not re-fire
        # but the independent halt@5 must.
        injector = FaultInjector("halt@3,halt@5")
        injector.disarm_for_resume(2)
        injector.begin_epoch(3)
        with pytest.raises(FaultError):
            injector.begin_epoch(5)

    def test_crashed_workers_accumulate(self):
        injector = FaultInjector("crash@1:w0,crash@3:w2")
        injector.begin_epoch(0)
        assert injector.crashed_workers() == frozenset()
        injector.begin_epoch(1)
        assert injector.crashed_workers() == {0}
        injector.begin_epoch(3)
        assert injector.crashed_workers() == {0, 2}

    def test_multipliers_compose(self):
        injector = FaultInjector(
            "straggler@0+2:w1:x2,straggler@1:w1:x3,slowlink@0+2:x0.5,"
            "slowlink@1:x0.5")
        injector.begin_epoch(0)
        assert injector.stage_multiplier(1) == 2.0
        assert injector.stage_multiplier(0) == 1.0
        assert injector.bandwidth_multiplier() == 0.5
        injector.begin_epoch(1)
        assert injector.stage_multiplier(1) == 6.0
        assert injector.bandwidth_multiplier() == 0.25

    def test_flaky_probability_composes(self):
        injector = FaultInjector("flaky@0:w0:p0.5,flaky@0:w0:p0.5")
        injector.begin_epoch(0)
        assert injector.fetch_failure_prob(0) == pytest.approx(0.75)
        assert injector.fetch_failure_prob(1) == 0.0

    def test_queries_before_begin_epoch_rejected(self):
        injector = FaultInjector("slowlink@0:x0.5")
        with pytest.raises(FaultError):
            injector.stage_multiplier(0)

    def test_fetch_draws_deterministic_per_epoch(self):
        def draws(seed, epoch, n=32):
            injector = FaultInjector(
                FaultPlan.parse("flaky@0+10:w0:p0.4", seed=seed))
            injector.begin_epoch(epoch)
            return [injector.fetch_attempt_fails(0) for _ in range(n)]

        assert draws(0, 1) == draws(0, 1)
        assert draws(0, 1) != draws(0, 2)
        assert draws(0, 1) != draws(9, 1)
        assert any(draws(0, 1)) and not all(draws(0, 1))

    def test_begin_epoch_resets_streams(self):
        injector = FaultInjector("flaky@0+10:w0:p0.4")
        injector.begin_epoch(3)
        first = [injector.fetch_attempt_fails(0) for _ in range(16)]
        injector.begin_epoch(3)
        assert [injector.fetch_attempt_fails(0)
                for _ in range(16)] == first

    def test_healthy_fetches_never_fail(self):
        injector = FaultInjector(FaultPlan())
        injector.begin_epoch(0)
        assert not any(injector.fetch_attempt_fails(0)
                       for _ in range(64))

    def test_injector_rejects_non_plan(self):
        with pytest.raises(FaultError):
            FaultInjector(42)


class TestFractionalTimes:
    """The grammar serves two clocks: integer epochs (training) and
    fractional seconds (the fleet).  Parsing accepts both; the
    training injector rejects the fractional ones."""

    def test_parse_keeps_fractional_seconds(self):
        plan = FaultPlan.parse("crash@0.0015+0.002:w1")
        (event,) = list(plan)
        assert event.epoch == pytest.approx(0.0015)
        assert event.duration == pytest.approx(0.002)
        assert event.worker == 1

    def test_integral_times_parse_as_ints(self):
        (event,) = list(FaultPlan.parse("crash@3+2:w0"))
        assert event.epoch == 3 and isinstance(event.epoch, int)
        assert event.duration == 2

    def test_injector_rejects_fractional_epoch(self):
        plan = FaultPlan.parse("crash@0.5+1:w0")
        with pytest.raises(FaultError, match="fractional times"):
            FaultInjector(plan)

    def test_injector_rejects_fractional_duration(self):
        plan = FaultPlan.parse("straggler@2+0.5:w0:x4")
        with pytest.raises(FaultError, match="fractional times"):
            FaultInjector(plan)

    def test_injector_accepts_integral_floats(self):
        # 2.0 == int(2.0): integral floats are fine on the epoch clock.
        plan = FaultPlan(events=(
            FaultEvent(kind="crash", epoch=2.0, worker=0,
                       duration=1.0),))
        FaultInjector(plan)

    def test_fractional_describe_round_trips(self):
        spec = "straggler@0.001+0.004:w2:x8"
        (event,) = list(FaultPlan.parse(spec))
        assert event.describe() == spec
