"""Unit tests for the atomic, checksummed checkpointer."""

import numpy as np
import pytest

from repro.errors import CheckpointError, ReproError
from repro.faults import Checkpointer


@pytest.fixture
def ckpt(tmp_path):
    return Checkpointer(tmp_path / "run.ckpt")


def sample_state():
    return {
        "epoch": 3,
        "weights": np.arange(12, dtype=np.float32).reshape(3, 4),
        "rng_state": np.random.default_rng(0).bit_generator.state,
        "nested": {"curve": [0.1, 0.2], "best": None},
    }


class TestRoundTrip:
    def test_save_load_bit_identical(self, ckpt):
        state = sample_state()
        ckpt.save(state)
        loaded = ckpt.load()
        assert loaded["epoch"] == 3
        assert np.array_equal(loaded["weights"], state["weights"])
        assert loaded["weights"].dtype == np.float32
        assert loaded["rng_state"] == state["rng_state"]
        assert loaded["nested"] == state["nested"]

    def test_save_overwrites_previous(self, ckpt):
        ckpt.save({"epoch": 1})
        ckpt.save({"epoch": 2})
        assert ckpt.load()["epoch"] == 2
        assert ckpt.saves == 2

    def test_no_temp_files_left_behind(self, ckpt, tmp_path):
        ckpt.save(sample_state())
        assert [p.name for p in tmp_path.iterdir()] == ["run.ckpt"]

    def test_creates_parent_directories(self, tmp_path):
        nested = Checkpointer(tmp_path / "a" / "b" / "run.ckpt")
        nested.save({"epoch": 0})
        assert nested.exists()

    def test_exists_and_delete(self, ckpt):
        assert not ckpt.exists()
        ckpt.save({"epoch": 0})
        assert ckpt.exists()
        ckpt.delete()
        assert not ckpt.exists()
        ckpt.delete()  # idempotent


class TestCadence:
    def test_due_every_epoch_by_default(self, tmp_path):
        ckpt = Checkpointer(tmp_path / "c", every=1)
        assert all(ckpt.due(e) for e in range(5))

    def test_due_every_n(self, tmp_path):
        ckpt = Checkpointer(tmp_path / "c", every=3)
        assert [ckpt.due(e) for e in range(6)] == \
            [False, False, True, False, False, True]

    def test_invalid_cadence(self, tmp_path):
        with pytest.raises(CheckpointError):
            Checkpointer(tmp_path / "c", every=0)


class TestIntegrity:
    def test_missing_file(self, ckpt):
        with pytest.raises(CheckpointError, match="no checkpoint"):
            ckpt.load()

    def test_bad_magic(self, ckpt):
        ckpt.path.write_bytes(b"definitely not a checkpoint")
        with pytest.raises(CheckpointError, match="bad magic"):
            ckpt.load()

    def test_truncated_payload(self, ckpt):
        ckpt.save(sample_state())
        raw = ckpt.path.read_bytes()
        ckpt.path.write_bytes(raw[:-7])
        with pytest.raises(CheckpointError, match="truncated"):
            ckpt.load()

    def test_flipped_payload_byte(self, ckpt):
        ckpt.save(sample_state())
        raw = bytearray(ckpt.path.read_bytes())
        raw[-1] ^= 0xFF
        ckpt.path.write_bytes(bytes(raw))
        with pytest.raises(CheckpointError, match="sha256"):
            ckpt.load()

    def test_corrupt_header(self, ckpt):
        ckpt.save(sample_state())
        raw = ckpt.path.read_bytes()
        magic_len = raw.find(b"\n") + 1
        corrupted = raw[:magic_len] + b"not json\n" + raw[magic_len:]
        ckpt.path.write_bytes(corrupted)
        with pytest.raises(CheckpointError):
            ckpt.load()

    def test_checkpoint_error_is_repro_error(self):
        assert issubclass(CheckpointError, ReproError)
