"""Unit tests for the atomic, checksummed checkpointer."""

import numpy as np
import pytest

from repro.errors import CheckpointError, CheckpointIntegrityError, \
    ReproError
from repro.faults import Checkpointer


@pytest.fixture
def ckpt(tmp_path):
    return Checkpointer(tmp_path / "run.ckpt")


def sample_state():
    return {
        "epoch": 3,
        "weights": np.arange(12, dtype=np.float32).reshape(3, 4),
        "rng_state": np.random.default_rng(0).bit_generator.state,
        "nested": {"curve": [0.1, 0.2], "best": None},
    }


class TestRoundTrip:
    def test_save_load_bit_identical(self, ckpt):
        state = sample_state()
        ckpt.save(state)
        loaded = ckpt.load()
        assert loaded["epoch"] == 3
        assert np.array_equal(loaded["weights"], state["weights"])
        assert loaded["weights"].dtype == np.float32
        assert loaded["rng_state"] == state["rng_state"]
        assert loaded["nested"] == state["nested"]

    def test_save_overwrites_previous(self, ckpt):
        ckpt.save({"epoch": 1})
        ckpt.save({"epoch": 2})
        assert ckpt.load()["epoch"] == 2
        assert ckpt.saves == 2

    def test_no_temp_files_left_behind(self, ckpt, tmp_path):
        ckpt.save(sample_state())
        assert sorted(p.name for p in tmp_path.iterdir()) == \
            ["run.ckpt", "run.ckpt.sha256"]

    def test_second_save_rotates_previous(self, ckpt, tmp_path):
        ckpt.save({"epoch": 1})
        ckpt.save({"epoch": 2})
        assert sorted(p.name for p in tmp_path.iterdir()) == \
            ["run.ckpt", "run.ckpt.prev", "run.ckpt.prev.sha256",
             "run.ckpt.sha256"]

    def test_creates_parent_directories(self, tmp_path):
        nested = Checkpointer(tmp_path / "a" / "b" / "run.ckpt")
        nested.save({"epoch": 0})
        assert nested.exists()

    def test_exists_and_delete(self, ckpt):
        assert not ckpt.exists()
        ckpt.save({"epoch": 0})
        assert ckpt.exists()
        ckpt.delete()
        assert not ckpt.exists()
        ckpt.delete()  # idempotent


class TestCadence:
    def test_due_every_epoch_by_default(self, tmp_path):
        ckpt = Checkpointer(tmp_path / "c", every=1)
        assert all(ckpt.due(e) for e in range(5))

    def test_due_every_n(self, tmp_path):
        ckpt = Checkpointer(tmp_path / "c", every=3)
        assert [ckpt.due(e) for e in range(6)] == \
            [False, False, True, False, False, True]

    def test_invalid_cadence(self, tmp_path):
        with pytest.raises(CheckpointError):
            Checkpointer(tmp_path / "c", every=0)


class TestIntegrity:
    def test_missing_file(self, ckpt):
        with pytest.raises(CheckpointError, match="no checkpoint"):
            ckpt.load()

    def test_bad_magic(self, ckpt):
        ckpt.path.write_bytes(b"definitely not a checkpoint")
        with pytest.raises(CheckpointError, match="bad magic"):
            ckpt.load()

    def test_truncated_payload(self, ckpt):
        ckpt.save(sample_state())
        raw = ckpt.path.read_bytes()
        ckpt.path.write_bytes(raw[:-7])
        with pytest.raises(CheckpointError, match="truncated"):
            ckpt.load()

    def test_flipped_payload_byte(self, ckpt):
        ckpt.save(sample_state())
        raw = bytearray(ckpt.path.read_bytes())
        raw[-1] ^= 0xFF
        ckpt.path.write_bytes(bytes(raw))
        with pytest.raises(CheckpointError, match="sha256"):
            ckpt.load()

    def test_corrupt_header(self, ckpt):
        ckpt.save(sample_state())
        raw = ckpt.path.read_bytes()
        magic_len = raw.find(b"\n") + 1
        corrupted = raw[:magic_len] + b"not json\n" + raw[magic_len:]
        ckpt.path.write_bytes(corrupted)
        with pytest.raises(CheckpointError):
            ckpt.load()

    def test_checkpoint_error_is_repro_error(self):
        assert issubclass(CheckpointError, ReproError)
        assert issubclass(CheckpointIntegrityError, CheckpointError)


class TestSidecarCommit:
    """The checksum sidecar is written last and acts as the commit
    record; anything short of a fully-committed pair is rejected with a
    typed error and recovery falls back to the previous checkpoint."""

    def test_missing_sidecar_is_integrity_error(self, ckpt):
        ckpt.save(sample_state())
        ckpt.sidecar_path.unlink()
        with pytest.raises(CheckpointIntegrityError, match="sidecar"):
            ckpt.load()

    def test_truncated_sidecar_mid_write(self, ckpt):
        """Simulates dying halfway through the sidecar write: a partial
        digest must not pass verification."""
        ckpt.save(sample_state())
        raw = ckpt.sidecar_path.read_bytes()
        ckpt.sidecar_path.write_bytes(raw[: len(raw) // 2])
        with pytest.raises(CheckpointIntegrityError, match="sidecar"):
            ckpt.load()

    def test_stale_sidecar_is_integrity_error(self, ckpt):
        ckpt.save({"epoch": 1})
        stale = ckpt.sidecar_path.read_bytes()
        ckpt.save({"epoch": 2})
        ckpt.sidecar_path.write_bytes(stale)
        with pytest.raises(CheckpointIntegrityError, match="sidecar"):
            ckpt.load()

    def test_load_latest_falls_back_to_previous(self, ckpt):
        ckpt.save({"epoch": 1})
        ckpt.save({"epoch": 2})
        # Kill the newest generation mid-commit: payload replaced but
        # sidecar never written.
        ckpt.sidecar_path.unlink()
        with pytest.raises(CheckpointIntegrityError):
            ckpt.load()
        assert ckpt.load_latest()["epoch"] == 1

    def test_load_latest_prefers_current_when_valid(self, ckpt):
        ckpt.save({"epoch": 1})
        ckpt.save({"epoch": 2})
        assert ckpt.load_latest()["epoch"] == 2

    def test_load_latest_without_fallback_reraises(self, ckpt):
        ckpt.save({"epoch": 1})
        ckpt.sidecar_path.unlink()
        with pytest.raises(CheckpointIntegrityError, match="sidecar"):
            ckpt.load_latest()

    def test_load_latest_with_bad_fallback_reraises_original(self,
                                                             ckpt):
        ckpt.save({"epoch": 1})
        ckpt.save({"epoch": 2})
        ckpt.sidecar_path.unlink()
        ckpt.previous_path.write_bytes(b"garbage")
        with pytest.raises(CheckpointIntegrityError, match="sidecar"):
            ckpt.load_latest()

    def test_delete_removes_sidecar_and_fallback(self, ckpt, tmp_path):
        ckpt.save({"epoch": 1})
        ckpt.save({"epoch": 2})
        ckpt.delete()
        assert list(tmp_path.iterdir()) == []
