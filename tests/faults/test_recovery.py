"""Integration tests: checkpoint/resume bit-identity, fault overhead
accounting, and crash redistribution invariants."""

import numpy as np
import pytest

from repro import Trainer, TrainingConfig
from repro.dist import EpochStats, SyncEngine
from repro.errors import CheckpointError, FaultError, TrainingError
from repro.faults import Checkpointer, FaultInjector, FaultPlan, RetryPolicy
from repro.graph import load_dataset
from repro.nn import Adam, build_model
from repro.partition import HashPartitioner
from repro.sampling import NeighborSampler
from repro.transfer import DEFAULT_SPEC, ZeroCopy

EPOCHS = 4


@pytest.fixture(scope="module")
def dataset():
    return load_dataset("ogb-arxiv", scale=0.08)


def make_config(**overrides):
    defaults = dict(model="gcn", epochs=EPOCHS, num_workers=3,
                    batch_size=256, fanout=(5, 5), seed=0,
                    early_stop_patience=0)
    defaults.update(overrides)
    return TrainingConfig(**defaults)


@pytest.fixture(scope="module")
def healthy(dataset):
    return Trainer(dataset, make_config()).run()


def assert_curves_identical(a, b):
    assert a.curve.losses == b.curve.losses
    assert a.curve.val_accuracies == b.curve.val_accuracies
    assert a.curve.epoch_seconds == b.curve.epoch_seconds
    assert a.test_accuracy == b.test_accuracy


class TestCheckpointResume:
    def test_halt_then_resume_bit_identical(self, dataset, healthy,
                                            tmp_path):
        ckpt = Checkpointer(tmp_path / "run.ckpt", every=1)
        plan = FaultPlan.parse("halt@2")
        with pytest.raises(FaultError, match="injected process halt"):
            Trainer(dataset, make_config()).run(checkpointer=ckpt,
                                                faults=plan)
        # The crash happened at the start of epoch 2, so the last
        # checkpoint covers epochs [0, 2).
        assert ckpt.load()["epoch"] == 2

        resumed = Trainer(dataset, make_config()).run(
            checkpointer=ckpt, resume=True, faults=plan)
        assert resumed.curve.num_epochs == EPOCHS
        assert_curves_identical(resumed, healthy)

    def test_sparse_checkpoint_cadence(self, dataset, healthy, tmp_path):
        ckpt = Checkpointer(tmp_path / "sparse.ckpt", every=2)
        with pytest.raises(FaultError):
            Trainer(dataset, make_config()).run(
                checkpointer=ckpt, faults=FaultPlan.parse("halt@3"))
        # every=2 saves after epochs 1 and 3; the halt at epoch 3 means
        # the resume replays epochs 2 and 3 from the epoch-1 save.
        assert ckpt.load()["epoch"] == 2

        resumed = Trainer(dataset, make_config()).run(
            checkpointer=ckpt, resume=True,
            faults=FaultPlan.parse("halt@3"))
        assert_curves_identical(resumed, healthy)

    def test_resume_without_file_starts_fresh(self, dataset, healthy,
                                              tmp_path):
        ckpt = Checkpointer(tmp_path / "missing.ckpt")
        result = Trainer(dataset, make_config()).run(
            checkpointer=ckpt, resume=True)
        assert_curves_identical(result, healthy)
        assert ckpt.exists()  # the fresh run still checkpoints

    def test_fingerprint_mismatch_refuses_resume(self, dataset,
                                                 tmp_path):
        ckpt = Checkpointer(tmp_path / "run.ckpt")
        Trainer(dataset, make_config(epochs=1)).run(checkpointer=ckpt)
        other = make_config(epochs=1, num_workers=2)
        with pytest.raises(CheckpointError, match="different "
                                                  "configuration"):
            Trainer(dataset, other).run(checkpointer=ckpt, resume=True)

    def test_bad_faults_argument_rejected(self, dataset):
        with pytest.raises(TrainingError):
            Trainer(dataset, make_config()).run(faults=3.14)


class TestFaultOverheadAccounting:
    def test_flaky_slows_clock_not_math(self, dataset, healthy):
        plan = FaultPlan.parse(f"flaky@0+{EPOCHS}:w0:p0.3")
        flaky = Trainer(dataset, make_config()).run(faults=plan)
        # Retries cost only simulated seconds: the arithmetic — and
        # therefore the loss curve — is untouched.
        assert flaky.curve.losses == healthy.curve.losses
        assert flaky.curve.val_accuracies == healthy.curve.val_accuracies
        assert flaky.total_train_seconds > healthy.total_train_seconds
        assert sum(s.retries for s in flaky.epoch_stats) > 0
        assert sum(s.fault_seconds for s in flaky.epoch_stats) > 0
        assert all(s.alive_workers == 3 for s in flaky.epoch_stats)

    def test_same_plan_seed_replays_identically(self, dataset):
        runs = [Trainer(dataset, make_config()).run(
            faults=FaultPlan.parse(f"flaky@0+{EPOCHS}:w0:p0.3", seed=4))
            for _ in range(2)]
        assert_curves_identical(runs[0], runs[1])
        assert [s.retries for s in runs[0].epoch_stats] == \
            [s.retries for s in runs[1].epoch_stats]
        assert [s.fault_seconds for s in runs[0].epoch_stats] == \
            [s.fault_seconds for s in runs[1].epoch_stats]

    def test_straggler_stretches_epoch(self, dataset, healthy):
        plan = FaultPlan.parse(f"straggler@0+{EPOCHS}:w0:x4")
        slow = Trainer(dataset, make_config()).run(faults=plan)
        assert slow.curve.losses == healthy.curve.losses
        assert slow.total_train_seconds > healthy.total_train_seconds

    def test_healthy_stats_have_zero_fault_counters(self, healthy):
        for stats in healthy.epoch_stats:
            assert stats.retries == 0
            assert stats.giveups == 0
            assert stats.fault_seconds == 0.0
            assert stats.dropped_vertices == 0
            assert stats.alive_workers == 3


def build_engine(dataset, spec, crash_policy="redistribute",
                 num_parts=3):
    partition = HashPartitioner().partition(
        dataset.graph, num_parts, split=dataset.split,
        rng=np.random.default_rng(0))
    model = build_model("gcn", dataset.feature_dim, dataset.num_classes,
                        rng=np.random.default_rng(1))
    engine = SyncEngine(dataset, partition, NeighborSampler((5, 5)),
                        model, Adam(model.parameters(), lr=0.003),
                        spec=DEFAULT_SPEC, transfer=ZeroCopy(),
                        injector=FaultInjector(FaultPlan.parse(spec)),
                        crash_policy=crash_policy)
    return engine


class TestCrashRedistribution:
    def run_epochs(self, engine, epochs):
        rng = np.random.default_rng(7)
        return [engine.run_epoch(512, rng, epoch=e)
                for e in range(epochs)]

    def test_redistribute_keeps_every_vertex(self, dataset):
        engine = build_engine(dataset, "crash@1:w1")
        before = np.sort(np.concatenate(
            [w.train_ids for w in engine.workers]))
        stats = self.run_epochs(engine, 2)

        assert not engine.workers[1].alive
        assert len(engine.workers[1].train_ids) == 0
        survivors = [w for w in engine.workers if w.alive]
        assert len(survivors) == 2
        # Every training vertex is still owned by exactly one survivor.
        after = np.sort(np.concatenate(
            [w.train_ids for w in survivors]))
        assert np.array_equal(after, before)
        assert stats[0].alive_workers == 3
        assert stats[1].alive_workers == 2
        assert stats[1].dropped_vertices == 0

    def test_drop_policy_loses_only_the_crashed_share(self, dataset):
        engine = build_engine(dataset, "crash@1:w1", crash_policy="drop")
        total = sum(len(w.train_ids) for w in engine.workers)
        crashed_share = len(engine.workers[1].train_ids)
        stats = self.run_epochs(engine, 2)

        survivors = [w for w in engine.workers if w.alive]
        remaining = sum(len(w.train_ids) for w in survivors)
        assert stats[1].dropped_vertices == crashed_share
        assert remaining + crashed_share == total

    def test_allreduce_ring_shrinks(self, dataset):
        engine = build_engine(dataset, "crash@1:w2")
        healthy_cost = engine._allreduce_seconds()
        self.run_epochs(engine, 2)
        assert engine._allreduce_seconds() < healthy_cost

    def test_crashing_every_worker_raises(self, dataset):
        engine = build_engine(dataset,
                              "crash@1:w0,crash@1:w1,crash@1:w2")
        rng = np.random.default_rng(7)
        engine.run_epoch(512, rng, epoch=0)
        with pytest.raises(FaultError, match="every worker"):
            engine.run_epoch(512, rng, epoch=1)

    def test_unknown_worker_id_rejected(self, dataset):
        engine = build_engine(dataset, "crash@0:w9")
        with pytest.raises(FaultError, match="only 0..2|has 3 workers"):
            engine.run_epoch(512, np.random.default_rng(7), epoch=0)

    def test_invalid_crash_policy_rejected(self, dataset):
        with pytest.raises(TrainingError):
            build_engine(dataset, "crash@1:w1", crash_policy="shrug")


class TestEpochStatsDefaults:
    def test_perf_none_normalized_to_empty_dict(self):
        stats = EpochStats(loss=0.5, epoch_seconds=1.0, bp_seconds=0.3,
                           dt_seconds=0.3, nn_seconds=0.4,
                           allreduce_seconds=0.0, num_steps=1,
                           involved_vertices=10, involved_edges=20,
                           remote_feature_bytes=0, batch_size=8)
        assert stats.perf == {}
        assert stats.perf.get("anything") is None

    def test_explicit_perf_preserved(self):
        stats = EpochStats(loss=0.5, epoch_seconds=1.0, bp_seconds=0.3,
                           dt_seconds=0.3, nn_seconds=0.4,
                           allreduce_seconds=0.0, num_steps=1,
                           involved_vertices=10, involved_edges=20,
                           remote_feature_bytes=0, batch_size=8,
                           perf={"k": 1})
        assert stats.perf == {"k": 1}


class TestRetryPolicyPlumbing:
    def test_custom_retry_policy_changes_overhead(self, dataset):
        plan = FaultPlan.parse(f"flaky@0+{EPOCHS}:w0:p0.3")
        cheap = Trainer(dataset, make_config()).run(
            faults=plan, retry=RetryPolicy(timeout=1e-3, jitter=0.0))
        dear = Trainer(dataset, make_config()).run(
            faults=plan, retry=RetryPolicy(timeout=1e-1, jitter=0.0))
        assert cheap.curve.losses == dear.curve.losses
        assert dear.total_train_seconds > cheap.total_train_seconds
