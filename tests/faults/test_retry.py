"""Unit tests for the deterministic retry/backoff policy."""

import pytest

from repro.errors import FaultError
from repro.faults import RetryPolicy


class TestValidation:
    def test_rejects_bad_knobs(self):
        with pytest.raises(FaultError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(FaultError):
            RetryPolicy(base_delay=-1.0)
        with pytest.raises(FaultError):
            RetryPolicy(backoff=0.5)
        with pytest.raises(FaultError):
            RetryPolicy(jitter=1.5)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            RetryPolicy().timeout = 1.0


class TestSchedule:
    def test_deterministic_across_instances(self):
        a = RetryPolicy().schedule(key=17)
        b = RetryPolicy().schedule(key=17)
        assert a == b

    def test_key_changes_jitter_only(self):
        policy = RetryPolicy(base_delay=1e-3, backoff=2.0, jitter=0.1)
        a = policy.schedule(key=1)
        b = policy.schedule(key=2)
        assert a != b
        # Jitter perturbs each delay by at most its `jitter` fraction.
        for x, y in zip(a, b):
            assert abs(x - y) <= 0.1 * max(x, y)

    def test_exponential_growth_with_jitter_bounds(self):
        policy = RetryPolicy(max_attempts=5, base_delay=1e-3,
                             backoff=2.0, jitter=0.1)
        schedule = policy.schedule(key=0)
        assert len(schedule) == 4
        for attempt, delay in enumerate(schedule):
            base = 1e-3 * 2.0 ** attempt
            assert base <= delay < base * 1.1

    def test_zero_jitter_is_pure_exponential(self):
        policy = RetryPolicy(max_attempts=4, base_delay=1e-3,
                             backoff=3.0, jitter=0.0)
        assert policy.schedule() == pytest.approx([1e-3, 3e-3, 9e-3])


class TestSimulate:
    def test_immediate_success_costs_nothing(self):
        extra, retries, gave_up = RetryPolicy().simulate(iter([False]))
        assert (extra, retries, gave_up) == (0.0, 0, False)

    def test_one_failure_pays_timeout_and_backoff(self):
        policy = RetryPolicy(base_delay=2e-3, jitter=0.0, timeout=1e-2)
        extra, retries, gave_up = policy.simulate(
            iter([True, False]), key=5)
        assert extra == pytest.approx(1e-2 + 2e-3)
        assert (retries, gave_up) == (1, False)

    def test_exhausted_budget_gives_up_fail_slow(self):
        policy = RetryPolicy(max_attempts=3, base_delay=1e-3,
                             backoff=2.0, jitter=0.0, timeout=1e-2)
        extra, retries, gave_up = policy.simulate(iter([True] * 3))
        # 3 failed timeouts + 2 backoffs + fail-slow fallback timeout.
        assert extra == pytest.approx(3e-2 + 1e-3 + 2e-3 + 1e-2)
        assert (retries, gave_up) == (2, True)

    def test_simulate_deterministic(self):
        policy = RetryPolicy()
        runs = [policy.simulate(iter([True, True, False]), key=9)
                for _ in range(2)]
        assert runs[0] == runs[1]

    def test_describe_mentions_knobs(self):
        text = RetryPolicy(max_attempts=4).describe()
        assert "attempts=4" in text
