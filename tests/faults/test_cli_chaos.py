"""CLI surface: argument validation and the ``chaos``/``train``
fault-tolerance flags."""

import json

import pytest

from repro.cli import build_parser, main


def parse(argv):
    return build_parser().parse_args(argv)


class TestArgumentValidation:
    @pytest.mark.parametrize("argv", [
        ["train", "ogb-arxiv", "--cache-ratio", "1.5"],
        ["train", "ogb-arxiv", "--cache-ratio", "-0.1"],
        ["train", "ogb-arxiv", "--cache-ratio", "lots"],
        ["train", "ogb-arxiv", "--epochs", "0"],
        ["train", "ogb-arxiv", "--epochs", "-2"],
        ["train", "ogb-arxiv", "--epochs", "three"],
        ["train", "ogb-arxiv", "--workers", "0"],
        ["train", "ogb-arxiv", "--workers", "-3"],
        ["train", "ogb-arxiv", "--batch-size", "0"],
        ["serve-bench", "--train-epochs", "0"],
        ["serve-bench", "--requests", "0"],
        ["serve-bench", "--cache-ratios", "0.5", "2.0"],
        ["chaos", "--epochs", "0"],
        ["chaos", "--workers", "0"],
    ])
    def test_bad_values_exit_with_usage_error(self, argv, capsys):
        with pytest.raises(SystemExit) as exc:
            parse(argv)
        assert exc.value.code == 2
        assert "expected" in capsys.readouterr().err

    @pytest.mark.parametrize("argv", [
        ["train", "ogb-arxiv", "--cache-ratio", "0.0"],
        ["train", "ogb-arxiv", "--cache-ratio", "1.0"],
        ["train", "ogb-arxiv", "--epochs", "1", "--workers", "1"],
    ])
    def test_boundary_values_accepted(self, argv):
        parse(argv)

    def test_resume_requires_checkpoint(self, capsys):
        code = main(["train", "ogb-arxiv", "--resume"])
        assert code == 2
        assert "--checkpoint" in capsys.readouterr().err


class TestTrainFaultFlags:
    def test_defaults(self):
        args = parse(["train", "ogb-arxiv"])
        assert args.faults is None
        assert args.crash_policy == "redistribute"
        assert args.checkpoint is None
        assert args.checkpoint_every == 1
        assert not args.resume

    def test_fault_flags_parse(self):
        args = parse(["train", "ogb-arxiv", "--faults",
                      "straggler@1+3:w0:x4", "--crash-policy", "drop",
                      "--checkpoint", "/tmp/run.ckpt",
                      "--checkpoint-every", "2", "--resume"])
        assert args.faults == "straggler@1+3:w0:x4"
        assert args.crash_policy == "drop"
        assert args.checkpoint == "/tmp/run.ckpt"
        assert args.checkpoint_every == 2
        assert args.resume

    def test_unknown_crash_policy_rejected(self):
        with pytest.raises(SystemExit):
            parse(["train", "ogb-arxiv", "--crash-policy", "shrug"])


class TestChaosCommand:
    def test_parser_defaults(self):
        args = parse(["chaos"])
        assert args.dataset == "ogb-arxiv"
        assert args.epochs == 6
        assert args.workers == 4
        assert args.halt_epoch == 2
        assert args.out == "BENCH_faults.json"

    def test_quick_end_to_end(self, tmp_path, capsys):
        out = tmp_path / "BENCH_faults.json"
        code = main(["chaos", "--quick", "--out", str(out)])
        assert code == 0

        report = json.loads(out.read_text())
        assert report["halt_fired"] is True
        assert report["resume_exact"] is True
        assert report["plan_deterministic"] is True
        assert {row["scenario"] for row in report["scenarios"]} == {
            "straggler", "flaky", "slowlink", "crash-redistribute",
            "crash-drop"}

        stdout = capsys.readouterr().out
        assert "bit-identical: ok" in stdout
        assert "deterministic under fixed seed: ok" in stdout
