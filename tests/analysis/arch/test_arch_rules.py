"""Per-rule positive and negative cases for ARC001–ARC006.

Each test runs exactly one architectural rule over a synthetic
mini-project (see :mod:`tests.analysis.arch.miniproj`), so a failure
names the rule that regressed rather than the whole pass.
"""

import textwrap

import pytest

from repro.analysis.arch import arch_lint
from repro.analysis.rules.arch import arch_rule_table, arch_rules

from tests.analysis.arch.miniproj import (INJECT_SCIPY_NN,
                                          INJECT_UPWARD_IMPORT,
                                          INJECT_WALL_CLOCK,
                                          write_config, write_project,
                                          write_tree)


def run_rule(tmp_path, code, files=None, overlay=None,
             config_text=None):
    """arch_lint restricted to one rule id over a synthetic tree."""
    if files is not None:
        root = write_tree(tmp_path, files)
        config = write_config(tmp_path, config_text)
    else:
        root, config = write_project(tmp_path, overlay=overlay,
                                     config_text=config_text)
    rules = [rule for rule in arch_rules() if rule.rule_id == code]
    assert rules, f"unknown arch rule {code}"
    return arch_lint(root=root, config_path=config, rules=rules)


class TestRegistry:
    def test_all_six_rules_registered(self):
        ids = {rule.rule_id for rule in arch_rules()}
        assert ids == {"ARC001", "ARC002", "ARC003", "ARC004",
                       "ARC005", "ARC006"}

    def test_rule_table_includes_arc000_and_rationales(self):
        rows = arch_rule_table()
        assert [row["rule"] for row in rows] == [
            "ARC000", "ARC001", "ARC002", "ARC003", "ARC004",
            "ARC005", "ARC006"]
        for row in rows:
            assert row["severity"] in ("error", "warning")
            assert row["title"] and row["hint"] and row["rationale"]


class TestARC001Layering:
    def test_clean_tree_passes(self, tmp_path):
        assert run_rule(tmp_path, "ARC001").clean

    def test_upward_import_flagged(self, tmp_path):
        result = run_rule(tmp_path, "ARC001",
                          overlay=INJECT_UPWARD_IMPORT)
        (finding,) = result.new_findings
        assert "upward import" in finding.message
        assert "graph" in finding.message and "fleet" in finding.message

    def test_lazy_upward_import_exempt(self, tmp_path):
        overlay = {"graph/csr.py": """
            def build_matrix(n):
                from ..fleet.engine import Engine
                return Engine
        """}
        assert run_rule(tmp_path, "ARC001", overlay=overlay).clean

    def test_same_level_needs_explicit_grant(self, tmp_path):
        config = """
            version = 1

            [[layer]]
            name = "everything"
            level = 0
            packages = ["graph", "kernels", "nn", "fleet", "proj"]
        """
        result = run_rule(tmp_path, "ARC001", config_text=config)
        assert any("same-level" in f.message
                   for f in result.new_findings)

        granted = config + textwrap.dedent("""
            [rules.ARC001]
            allowed = ["kernels -> graph", "nn -> kernels"]
        """)
        result = run_rule(tmp_path, "ARC001", config_text=granted)
        assert result.clean

    def test_undeclared_package_flagged_once(self, tmp_path):
        config = """
            version = 1

            [[layer]]
            name = "known"
            level = 0
            packages = ["graph", "nn", "fleet", "proj"]
        """
        result = run_rule(tmp_path, "ARC001", config_text=config)
        undeclared = [f for f in result.new_findings
                      if "not declared" in f.message]
        assert len(undeclared) == 1
        assert "'kernels'" in undeclared[0].message


class TestARC002KernelSeam:
    def test_clean_tree_passes(self, tmp_path):
        assert run_rule(tmp_path, "ARC002").clean

    def test_scipy_in_nn_flagged(self, tmp_path):
        result = run_rule(tmp_path, "ARC002", overlay=INJECT_SCIPY_NN)
        messages = [f.message for f in result.new_findings]
        assert any("scipy import" in m for m in messages)
        assert any("sp.csr_matrix" in m for m in messages)

    def test_lazy_scipy_import_still_flagged(self, tmp_path):
        overlay = {"nn/model.py": """
            def forward(adjacency):
                import scipy.sparse as sp
                return sp.csr_matrix(adjacency)
        """}
        result = run_rule(tmp_path, "ARC002", overlay=overlay)
        assert any("scipy import" in f.message
                   for f in result.new_findings)

    def test_scatter_ufunc_in_scope_flagged(self, tmp_path):
        overlay = {"nn/model.py": """
            import numpy as np


            def forward(out, idx, values):
                np.add.at(out, idx, values)
                return out
        """}
        result = run_rule(tmp_path, "ARC002", overlay=overlay)
        assert any("scatter aggregation np.add.at" in f.message
                   for f in result.new_findings)

    def test_scatter_through_from_import_flagged(self, tmp_path):
        overlay = {"nn/model.py": """
            from numpy import add


            def forward(out, idx, values):
                add.at(out, idx, values)
                return out
        """}
        result = run_rule(tmp_path, "ARC002", overlay=overlay)
        assert any("scatter aggregation add.at" in f.message
                   for f in result.new_findings)

    def test_kernels_package_out_of_scope(self, tmp_path):
        # CLEAN_FILES already has np.add.at inside kernels/agg.py.
        assert run_rule(tmp_path, "ARC002").clean

    def test_allow_files_exempt(self, tmp_path):
        config = textwrap.dedent("""
            version = 1

            [rules.ARC002]
            packages = ["nn"]
            allow_files = ["nn/model.py"]
        """)
        result = run_rule(tmp_path, "ARC002", overlay=INJECT_SCIPY_NN,
                          config_text=config)
        assert result.clean


class TestARC003Billing:
    FILES = {
        "__init__.py": "",
        "serve/__init__.py": "",
        "serve/handler.py": """
            class Handler:
                def __init__(self, store, cache):
                    self.store = store
                    self.cache = cache

                def fetch_raw(self, idx):
                    return self.store.features[idx]

                def fetch_billed(self, idx):
                    self.cache.lookup(idx)
                    return self.store.features[idx]
        """,
        "offline/__init__.py": "",
        "offline/eval.py": """
            def accuracy(store, idx):
                return store.features[idx]
        """,
    }
    CONFIG = """
        version = 1

        [rules.ARC003]
        packages = ["serve"]
        store_attrs = ["features"]
        billing_calls = ["lookup"]
    """

    def test_unbilled_read_flagged_billed_read_clean(self, tmp_path):
        result = run_rule(tmp_path, "ARC003", files=self.FILES,
                          config_text=self.CONFIG)
        (finding,) = result.new_findings
        assert "fetch_raw" in finding.message
        assert "without a billing call" in finding.message

    def test_out_of_scope_package_ignored(self, tmp_path):
        result = run_rule(tmp_path, "ARC003", files=self.FILES,
                          config_text=self.CONFIG)
        assert not any("accuracy" in f.message
                       for f in result.new_findings)


class TestARC004SimulatedClock:
    def test_clean_tree_passes(self, tmp_path):
        assert run_rule(tmp_path, "ARC004").clean

    def test_wall_clock_in_reachable_helper_flagged(self, tmp_path):
        result = run_rule(tmp_path, "ARC004",
                          overlay=INJECT_WALL_CLOCK)
        (finding,) = result.new_findings
        assert "time.time() reads the host clock" in finding.message
        assert "reachable from proj.fleet.engine.Engine.run" \
            in finding.message
        assert "via proj.fleet.util.drain" in finding.message

    def test_unreachable_wall_clock_not_flagged(self, tmp_path):
        overlay = {"fleet/util.py": """
            import time


            def drain(queue):
                total = 0
                for item in queue:
                    total += item
                return total


            def offline_report():
                return time.time()
        """}
        assert run_rule(tmp_path, "ARC004", overlay=overlay).clean

    def test_seeded_constructor_allowed_draw_flagged(self, tmp_path):
        overlay = {"fleet/engine.py": """
            import numpy as np

            from .util import drain


            class Engine:
                def __init__(self):
                    self.queue = []

                def run(self):
                    return self._step()

                def _step(self):
                    rng = np.random.default_rng(7)
                    ambient = np.random.random()
                    return drain(self.queue) + rng.random() + ambient
        """}
        result = run_rule(tmp_path, "ARC004", overlay=overlay)
        (finding,) = result.new_findings
        assert "np.random.random()" in finding.message

    def test_wall_clock_helper_flagged_by_tail(self, tmp_path):
        overlay = {"fleet/util.py": """
            def drain(queue):
                from proj.perfish import wall_clock
                return wall_clock()
        """}
        result = run_rule(tmp_path, "ARC004", overlay=overlay)
        (finding,) = result.new_findings
        assert "wall_clock() reads the host clock" in finding.message


class TestARC005RNGProvenance:
    def test_module_level_rng_and_draws_flagged(self, tmp_path):
        files = {
            "__init__.py": "",
            "a.py": """
                import numpy as np

                RNG = np.random.default_rng(0)


                def draw():
                    return RNG.random()
            """,
            "b.py": """
                from .a import RNG


                def sample():
                    return RNG.normal()
            """,
        }
        result = run_rule(tmp_path, "ARC005", files=files,
                          config_text="version = 1\n")
        messages = [f.message for f in result.new_findings]
        assert any("module-level RNG instance 'RNG'" in m
                   for m in messages)
        assert any("RNG.random(...)" in m and "proj.a.draw" in m
                   for m in messages)
        assert any("RNG.normal(...)" in m and "proj.b.sample" in m
                   for m in messages)

    def test_default_argument_rng_flagged(self, tmp_path):
        files = {
            "__init__.py": "",
            "a.py": """
                import numpy as np


                def f(rng=np.random.default_rng(0)):
                    return rng.random()
            """,
        }
        result = run_rule(tmp_path, "ARC005", files=files,
                          config_text="version = 1\n")
        (finding,) = result.new_findings
        assert "constructed once at def time" in finding.message

    def test_threaded_generator_clean(self, tmp_path):
        files = {
            "__init__.py": "",
            "a.py": """
                import numpy as np


                def make_rng(seed):
                    return np.random.default_rng(seed)


                def draw(rng):
                    return rng.random()
            """,
        }
        result = run_rule(tmp_path, "ARC005", files=files,
                          config_text="version = 1\n")
        assert result.clean


class TestARC006ApiDrift:
    def config(self, tmp_path, doc_body):
        doc = tmp_path / "api.md"
        doc.write_text(doc_body, encoding="utf-8")
        return (f"version = 1\n\n[rules.ARC006]\n"
                f'api_doc = "{doc.as_posix()}"\n')

    def run(self, tmp_path, init_source, doc_body="`helper`\n"):
        files = {
            "__init__.py": init_source,
            "mod.py": """
                def helper():
                    return 1
            """,
        }
        return run_rule(tmp_path, "ARC006", files=files,
                        config_text=self.config(tmp_path, doc_body))

    def test_real_documented_export_clean(self, tmp_path):
        init = """
            from .mod import helper

            __all__ = ["helper"]
        """
        assert self.run(tmp_path, init).clean

    def test_phantom_export_flagged(self, tmp_path):
        init = """
            from .mod import helper

            __all__ = ["helper", "ghost"]
        """
        (finding,) = self.run(tmp_path, init).new_findings
        assert "'ghost'" in finding.message
        assert "not defined" in finding.message

    def test_foreign_reexport_flagged(self, tmp_path):
        init = """
            from os.path import join

            __all__ = ["join"]
        """
        (finding,) = self.run(tmp_path, init).new_findings
        assert "re-exported from outside the package" in finding.message
        assert "os.path" in finding.message

    def test_undocumented_export_flagged(self, tmp_path):
        init = """
            from .mod import helper

            __all__ = ["helper"]
        """
        (finding,) = self.run(tmp_path, init,
                              doc_body="nothing here\n").new_findings
        assert "not covered by" in finding.message

    def test_lazy_mapping_counts_as_defined(self, tmp_path):
        init = """
            _LAZY = {"helper": "mod"}

            __all__ = ["helper"]


            def __getattr__(name):
                raise AttributeError(name)
        """
        assert self.run(tmp_path, init).clean

    def test_dunder_skips_doc_check(self, tmp_path):
        init = """
            from .mod import helper

            __version__ = "1.0"

            __all__ = ["helper", "__version__"]
        """
        assert self.run(tmp_path, init).clean
