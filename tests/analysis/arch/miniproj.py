"""Synthetic mini-project fixtures for the architectural analyzer.

Every arch test builds a small fake package tree on disk (layered like
a miniature ``src/repro``) and runs the whole-program pass over it —
no test ever mutates the real tree.  ``CLEAN_FILES`` passes every ARC
rule under ``clean_config_text``; the ``INJECT_*`` overlays each seed
exactly one class of violation, so tests assert both directions: the
rule fires with the injection and the pass is clean without it.
"""

import textwrap

#: A layered package that is architecturally clean: graph (level 0)
#: <- kernels (1) <- nn (2), and a fleet (3) event loop whose
#: reachable functions touch neither the wall clock nor ambient RNG.
CLEAN_FILES = {
    "__init__.py": "",
    "graph/__init__.py": "",
    "graph/csr.py": """
        def build_matrix(n):
            return [[0] * n for _ in range(n)]
    """,
    "kernels/__init__.py": "",
    "kernels/agg.py": """
        import numpy as np

        from ..graph.csr import build_matrix


        def aggregate(values):
            out = np.zeros(3)
            np.add.at(out, [0, 1], values)
            return out, build_matrix(2)
    """,
    "nn/__init__.py": "",
    "nn/model.py": """
        from ..kernels.agg import aggregate


        def forward(values):
            return aggregate(values)
    """,
    "fleet/__init__.py": "",
    "fleet/util.py": """
        def drain(queue):
            total = 0
            for item in queue:
                total += item
            return total
    """,
    "fleet/engine.py": """
        from .util import drain


        class Engine:
            def __init__(self):
                self.clock = 0.0
                self.queue = []

            def run(self):
                return self._step()

            def _step(self):
                self.clock += 1.0
                return drain(self.queue)
    """,
}

#: ARC002 injection: a direct scipy aggregation in the fake nn module.
INJECT_SCIPY_NN = {
    "nn/model.py": """
        import scipy.sparse as sp

        from ..kernels.agg import aggregate


        def forward(adjacency, values):
            dense = sp.csr_matrix(adjacency)
            return dense @ values
    """,
}

#: ARC001 injection: a module-level upward import (graph -> fleet).
INJECT_UPWARD_IMPORT = {
    "graph/csr.py": """
        from ..fleet.engine import Engine


        def build_matrix(n):
            return [[0] * n for _ in range(n)]
    """,
}

#: ARC004 injection: a wall-clock read in a helper the event loop
#: reaches (Engine.run -> _step -> drain).
INJECT_WALL_CLOCK = {
    "fleet/util.py": """
        import time


        def drain(queue):
            total = 0
            for item in queue:
                total += item
            return time.time() - total
    """,
}


def clean_config_text():
    """The mini-project's ``layers.toml`` matching ``CLEAN_FILES``."""
    return """
        version = 1

        [[layer]]
        name = "data"
        level = 0
        packages = ["graph"]

        [[layer]]
        name = "kernels"
        level = 1
        packages = ["kernels"]

        [[layer]]
        name = "model"
        level = 2
        packages = ["nn"]

        [[layer]]
        name = "fleet"
        level = 3
        packages = ["fleet"]

        [[layer]]
        name = "root"
        level = 4
        packages = ["proj"]

        [rules.ARC002]
        packages = ["nn", "fleet"]

        [rules.ARC004]
        roots = ["proj.fleet.engine.Engine.run"]
    """


def write_tree(tmp_path, files, name="proj"):
    """Materialize ``files`` (relpath -> source) as package ``name``."""
    root = tmp_path / name
    for rel, source in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source), encoding="utf-8")
    return root


def write_config(tmp_path, text=None):
    path = tmp_path / "layers.toml"
    path.write_text(textwrap.dedent(text if text is not None
                                    else clean_config_text()),
                    encoding="utf-8")
    return path


def write_project(tmp_path, overlay=None, config_text=None):
    """The clean mini-project plus an optional injection overlay;
    returns ``(package root, layers.toml path)``."""
    files = dict(CLEAN_FILES)
    if overlay:
        files.update(overlay)
    return (write_tree(tmp_path, files),
            write_config(tmp_path, config_text))
