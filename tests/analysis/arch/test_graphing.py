"""ProjectGraph mechanics: parsing, imports, symbols, calls, BFS."""

import textwrap

import pytest

from repro.analysis.graphing import CallSite, build_project

from tests.analysis.arch.miniproj import write_tree

#: A package exercising every resolution path the graph supports.
FILES = {
    "__init__.py": "",
    "util.py": """
        def helper():
            return 1


        def unique_tail_fn():
            return 2


        def partition():
            return 99
    """,
    "core.py": """
        import json

        from .util import helper


        class Base:
            def shared(self):
                return helper()


        class Thing(Base):
            def __init__(self):
                self.value = 0

            def run(self):
                return self.step()

            def step(self):
                token = "a,b"
                token.partition(",")
                obj = make()
                obj.unique_tail_fn()
                return self.shared()


        def make():
            return Thing()


        def lazy_loader():
            from . import util
            return util
    """,
    "chain.py": """
        from . import util

        CONSTANT = util.helper()


        def call_through():
            return util.helper()
    """,
}


@pytest.fixture()
def graph(tmp_path):
    return build_project(write_tree(tmp_path, FILES))


class TestModules:
    def test_modules_discovered(self, graph):
        assert set(graph.modules) == {"proj", "proj.util", "proj.core",
                                      "proj.chain"}

    def test_package_of(self, graph):
        assert graph.package_of("proj") == "proj"
        assert graph.package_of("proj.util") == "util"

    def test_module_body_is_a_pseudo_function(self, graph):
        body = graph.functions["proj.chain.<module>"]
        assert any(call.dotted == "util.helper"
                   for call in body.calls)

    def test_parse_error_recorded_not_fatal(self, tmp_path):
        files = dict(FILES)
        files["broken.py"] = "def broken(:\n"
        bad = build_project(write_tree(tmp_path, files))
        assert len(bad.parse_errors) == 1
        assert "proj.broken" not in bad.modules
        assert "proj.core" in bad.modules


class TestImports:
    def test_project_imports_resolve_and_skip_stdlib(self, graph):
        edges = {(edge.source, target)
                 for edge, target in graph.project_imports()}
        assert ("proj.core", "proj.util") in edges
        assert ("proj.chain", "proj") in edges
        assert not any(target == "json" for _, target in
                       graph.project_imports())

    def test_lazy_imports_excluded_by_default(self, graph):
        lazy = [edge for edge in graph.imports
                if edge.source == "proj.core" and edge.lazy]
        assert lazy, "function-body import should be marked lazy"
        defaults = {(edge.source, edge.lineno)
                    for edge, _ in graph.project_imports()}
        included = {(edge.source, edge.lineno) for edge, _ in
                    graph.project_imports(include_lazy=True)}
        key = (lazy[0].source, lazy[0].lineno)
        assert key not in defaults
        assert key in included


class TestResolution:
    def test_from_import_resolves_to_home_module(self, graph):
        kind, _, home = graph.resolve_symbol("proj.core", "helper")
        assert kind == "function"
        assert home == "proj.util"

    def test_name_call(self, graph):
        fn = graph.resolve_call("proj.core", CallSite("make", "make"))
        assert fn.qualname == "proj.core.make"

    def test_class_call_resolves_to_init(self, graph):
        fn = graph.resolve_call("proj.core", CallSite("Thing", "Thing"))
        assert fn.qualname == "proj.core.Thing.__init__"

    def test_self_method(self, graph):
        fn = graph.resolve_call("proj.core",
                                CallSite("self.step", "step"),
                                class_name="Thing")
        assert fn.qualname == "proj.core.Thing.step"

    def test_inherited_method_through_base(self, graph):
        fn = graph.resolve_call("proj.core",
                                CallSite("self.shared", "shared"),
                                class_name="Thing")
        assert fn.qualname == "proj.core.Base.shared"

    def test_module_attribute_chain(self, graph):
        fn = graph.resolve_call("proj.chain",
                                CallSite("util.helper", "helper"))
        assert fn.qualname == "proj.util.helper"

    def test_unknown_name_unresolved(self, graph):
        assert graph.resolve_call("proj.core",
                                  CallSite("mystery", "mystery")) is None


class TestReachability:
    def test_bfs_follows_methods_calls_and_imports(self, graph):
        seen = graph.reachable(["proj.core.Thing.run"])
        assert "proj.core.Thing.step" in seen
        assert "proj.core.Base.shared" in seen      # self.shared()
        assert "proj.util.helper" in seen           # cross-module
        assert "proj.core.make" in seen
        assert "proj.core.Thing.__init__" in seen   # Thing() in make

    def test_unique_tail_fallback(self, graph):
        seen = graph.reachable(["proj.core.Thing.run"])
        assert "proj.util.unique_tail_fn" in seen

    def test_builtin_method_names_never_followed(self, graph):
        # token.partition(",") is str.partition, not proj.util.partition.
        seen = graph.reachable(["proj.core.Thing.run"])
        assert "proj.util.partition" not in seen

    def test_class_root_expands_to_methods(self, graph):
        seen = graph.reachable(["proj.core.Thing"])
        assert {"proj.core.Thing.run", "proj.core.Thing.step",
                "proj.core.Thing.__init__"} <= seen

    def test_unreachable_stays_out(self, graph):
        seen = graph.reachable(["proj.util.helper"])
        assert seen == {"proj.util.helper"}


class TestConstruction:
    def test_missing_root_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            build_project(tmp_path / "nope")

    def test_pycache_skipped(self, tmp_path):
        root = write_tree(tmp_path, FILES)
        junk = root / "__pycache__"
        junk.mkdir()
        (junk / "stale.py").write_text("x = 1\n", encoding="utf-8")
        graph = build_project(root)
        assert not any("stale" in name for name in graph.modules)
