"""The full ``repro arch-lint`` pass: live-fire injections, noqa,
baselines, the CLI gate, and the real tree's acceptance bar.

The live-fire tests are the acceptance criterion from the analyzer's
design: inject a synthetic bypass (a scipy aggregation in a fake ``nn``
module, an upward import, a wall-clock read in an event-loop-reachable
function), assert the matching ARC rule fires, and assert the pass is
clean once the injection is gone.
"""

import json

import pytest

from repro.analysis import arch_lint, load_arch_baseline
from repro.analysis.baseline import save_baseline
from repro.cli import main
from repro.perf import wall_clock

from tests.analysis.arch.miniproj import (INJECT_SCIPY_NN,
                                          INJECT_UPWARD_IMPORT,
                                          INJECT_WALL_CLOCK,
                                          write_project)

INJECTIONS = [("ARC001", INJECT_UPWARD_IMPORT),
              ("ARC002", INJECT_SCIPY_NN),
              ("ARC004", INJECT_WALL_CLOCK)]


class TestLiveFire:
    def test_clean_project_passes_every_rule(self, tmp_path):
        root, config = write_project(tmp_path)
        result = arch_lint(root=root, config_path=config)
        assert result.clean, [f.message for f in result.findings]
        assert result.files_scanned == len(
            [p for p in root.rglob("*.py")])

    @pytest.mark.parametrize("code,overlay", INJECTIONS)
    def test_injected_bypass_fires_exactly_that_rule(self, tmp_path,
                                                     code, overlay):
        root, config = write_project(tmp_path, overlay=overlay)
        result = arch_lint(root=root, config_path=config)
        assert not result.clean
        assert {f.rule for f in result.new_findings} == {code}

    @pytest.mark.parametrize("code,overlay", INJECTIONS)
    def test_removing_the_injection_cleans_the_pass(self, tmp_path,
                                                    code, overlay):
        root, config = write_project(tmp_path, overlay=overlay)
        assert not arch_lint(root=root, config_path=config).clean
        # Restore the clean sources in place: same tree, bypass gone.
        clean_root, _ = write_project(tmp_path / "clean")
        for rel in overlay:
            (root / rel).write_text(
                (clean_root / rel).read_text(encoding="utf-8"),
                encoding="utf-8")
        assert arch_lint(root=root, config_path=config).clean


class TestSuppressionAndBaseline:
    def test_noqa_suppresses_and_counts(self, tmp_path):
        overlay = {"graph/csr.py": """
            from ..fleet.engine import Engine  # repro: noqa[ARC001]


            def build_matrix(n):
                return [[0] * n for _ in range(n)]
        """}
        root, config = write_project(tmp_path, overlay=overlay)
        result = arch_lint(root=root, config_path=config)
        assert result.clean
        assert result.suppressed == 1

    def test_wrong_code_noqa_does_not_suppress(self, tmp_path):
        overlay = {"graph/csr.py": """
            from ..fleet.engine import Engine  # repro: noqa[ARC002]


            def build_matrix(n):
                return [[0] * n for _ in range(n)]
        """}
        root, config = write_project(tmp_path, overlay=overlay)
        result = arch_lint(root=root, config_path=config)
        assert not result.clean
        assert result.suppressed == 0

    def test_baseline_grandfathers_arch_findings(self, tmp_path):
        root, config = write_project(tmp_path,
                                     overlay=INJECT_UPWARD_IMPORT)
        dirty = arch_lint(root=root, config_path=config)
        baseline_path = tmp_path / "arch_baseline.json"
        save_baseline(dirty.findings, path=baseline_path)
        result = arch_lint(root=root, config_path=config,
                           baseline=load_arch_baseline(baseline_path))
        assert result.findings and result.clean
        assert result.baselined == len(result.findings)

    def test_syntax_error_yields_arc000(self, tmp_path):
        root, config = write_project(
            tmp_path, overlay={"broken.py": "def broken(:\n"})
        result = arch_lint(root=root, config_path=config)
        assert result.parse_errors == 1
        assert {f.rule for f in result.new_findings} == {"ARC000"}


class TestArchLintCli:
    def test_injected_project_exits_nonzero(self, tmp_path, capsys):
        root, config = write_project(tmp_path, overlay=INJECT_SCIPY_NN)
        assert main(["arch-lint", str(root),
                     "--layers", str(config)]) == 1
        assert "ARC002" in capsys.readouterr().out

    def test_update_baseline_then_gate_passes(self, tmp_path, capsys):
        root, config = write_project(tmp_path, overlay=INJECT_SCIPY_NN)
        baseline = tmp_path / "arch_baseline.json"
        assert main(["arch-lint", str(root), "--layers", str(config),
                     "--update-baseline",
                     "--baseline-file", str(baseline)]) == 0
        assert baseline.exists()
        assert main(["arch-lint", str(root), "--layers", str(config),
                     "--baseline",
                     "--baseline-file", str(baseline)]) == 0
        assert "baselined" in capsys.readouterr().out

    def test_json_report_carries_arc_rule_table(self, tmp_path,
                                                capsys):
        root, config = write_project(tmp_path)
        out = tmp_path / "arch_report.json"
        assert main(["arch-lint", str(root), "--layers", str(config),
                     "--out", str(out)]) == 0
        payload = json.loads(out.read_text(encoding="utf-8"))
        assert payload["clean"] is True
        assert [row["rule"] for row in payload["rules"]] == [
            "ARC000", "ARC001", "ARC002", "ARC003", "ARC004",
            "ARC005", "ARC006"]

    def test_missing_root_exits_two(self, tmp_path, capsys):
        assert main(["arch-lint", str(tmp_path / "nope")]) == 2
        assert "error" in capsys.readouterr().err


class TestRealTree:
    """The repo's own acceptance bar, run exactly as CI runs it."""

    def test_head_is_clean_and_fast(self):
        start = wall_clock()
        result = arch_lint(baseline=load_arch_baseline())
        elapsed = wall_clock() - start
        assert result.clean, [f"{f.path}:{f.line} {f.rule} {f.message}"
                              for f in result.new_findings]
        assert result.parse_errors == 0
        assert result.files_scanned > 100
        assert elapsed < 10.0, f"arch pass took {elapsed:.1f}s"

    def test_cli_gate_passes_at_head(self, capsys):
        assert main(["arch-lint", "--baseline"]) == 0
        assert "clean" in capsys.readouterr().out
