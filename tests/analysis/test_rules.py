"""Per-rule fixtures: every RPR rule with positive and negative cases.

Each test writes a small snippet to disk and lints it under a chosen
*display path*, because several rules are path-scoped (RPR002's
profiler/benchmarks allowlist, RPR006's nn/sampling scope, RPR007's
flags.py allowlist).
"""

import textwrap

import pytest

from repro.analysis import all_rules, lint_file, rule_table

IN_SCOPE = "src/repro/core/example.py"


def lint_source(tmp_path, source, display=IN_SCOPE):
    path = tmp_path / "snippet.py"
    path.write_text(textwrap.dedent(source), encoding="utf-8")
    findings, suppressed = lint_file(path, display_path=display)
    return findings, suppressed


def rules_hit(tmp_path, source, display=IN_SCOPE):
    findings, _ = lint_source(tmp_path, source, display)
    return {f.rule for f in findings}


class TestRegistry:
    def test_all_seven_rules_registered(self):
        ids = {rule.rule_id for rule in all_rules()}
        assert ids == {"RPR001", "RPR002", "RPR003", "RPR004",
                       "RPR005", "RPR006", "RPR007"}

    def test_rule_table_has_severity_and_rationale(self):
        for row in rule_table():
            assert row["severity"] in ("error", "warning")
            assert row["title"] and row["hint"] and row["rationale"]


class TestRPR001UnseededRNG:
    def test_global_numpy_rng_flagged(self, tmp_path):
        src = """
            import numpy as np
            x = np.random.rand(3)
        """
        assert "RPR001" in rules_hit(tmp_path, src)

    def test_default_rng_without_seed_flagged(self, tmp_path):
        src = """
            import numpy as np
            rng = np.random.default_rng()
        """
        assert "RPR001" in rules_hit(tmp_path, src)

    def test_stdlib_random_flagged(self, tmp_path):
        src = """
            import random
            x = random.random()
        """
        assert "RPR001" in rules_hit(tmp_path, src)

    def test_seeded_default_rng_clean(self, tmp_path):
        src = """
            import numpy as np
            rng = np.random.default_rng(0)
            x = rng.random(3)
        """
        assert "RPR001" not in rules_hit(tmp_path, src)


class TestRPR002WallClock:
    SRC = """
        import time
        t = time.perf_counter()
    """

    def test_wall_clock_in_library_flagged(self, tmp_path):
        assert "RPR002" in rules_hit(tmp_path, self.SRC)

    def test_datetime_now_flagged(self, tmp_path):
        src = """
            import datetime
            now = datetime.datetime.now()
        """
        assert "RPR002" in rules_hit(tmp_path, src)

    def test_profiler_module_allowlisted(self, tmp_path):
        hits = rules_hit(tmp_path, self.SRC,
                         display="src/repro/perf/profiler.py")
        assert "RPR002" not in hits

    def test_benchmarks_allowlisted(self, tmp_path):
        hits = rules_hit(tmp_path, self.SRC,
                         display="benchmarks/bench_example.py")
        assert "RPR002" not in hits

    @pytest.mark.parametrize("call", [
        "time.perf_counter_ns", "time.monotonic_ns", "time.time_ns",
        "time.process_time_ns",
    ])
    def test_ns_resolution_clocks_flagged(self, tmp_path, call):
        src = f"""
            import time
            t = {call}()
        """
        assert "RPR002" in rules_hit(tmp_path, src)

    def test_datetime_now_from_import_flagged(self, tmp_path):
        src = """
            from datetime import datetime
            now = datetime.now()
        """
        assert "RPR002" in rules_hit(tmp_path, src)

    def test_date_today_from_import_flagged(self, tmp_path):
        src = """
            from datetime import date
            today = date.today()
        """
        assert "RPR002" in rules_hit(tmp_path, src)

    def test_from_time_import_alias_flagged(self, tmp_path):
        src = """
            from time import perf_counter_ns as tick
            t = tick()
        """
        findings, _ = lint_source(tmp_path, src)
        (finding,) = [f for f in findings if f.rule == "RPR002"]
        assert "time.perf_counter_ns" in finding.message

    def test_from_time_import_sleep_clean(self, tmp_path):
        src = """
            from time import sleep
            sleep(0)
        """
        assert "RPR002" not in rules_hit(tmp_path, src)

    def test_sanctioned_wall_clock_helper_clean(self, tmp_path):
        src = """
            from repro.perf import wall_clock
            t = wall_clock()
        """
        assert "RPR002" not in rules_hit(tmp_path, src)


class TestRPR003UnsortedIteration:
    def test_accumulation_over_dict_values_flagged(self, tmp_path):
        src = """
            def total(d):
                acc = 0.0
                for v in d.values():
                    acc += v
                return acc
        """
        assert "RPR003" in rules_hit(tmp_path, src)

    def test_accumulation_over_set_literal_flagged(self, tmp_path):
        src = """
            acc = 0.0
            for v in {1.0, 2.0, 3.0}:
                acc += v
        """
        assert "RPR003" in rules_hit(tmp_path, src)

    def test_sorted_iteration_clean(self, tmp_path):
        src = """
            def total(d):
                acc = 0.0
                for k in sorted(d.items()):
                    acc += k[1]
                return acc
        """
        assert "RPR003" not in rules_hit(tmp_path, src)

    def test_no_accumulation_clean(self, tmp_path):
        src = """
            def names(d):
                out = []
                for k in d.keys():
                    out.append(k)
                return out
        """
        assert "RPR003" not in rules_hit(tmp_path, src)


class TestRPR004MutableDefault:
    def test_list_default_flagged(self, tmp_path):
        src = """
            def f(x=[]):
                return x
        """
        assert "RPR004" in rules_hit(tmp_path, src)

    def test_dict_call_kwonly_default_flagged(self, tmp_path):
        src = """
            def f(*, cache=dict()):
                return cache
        """
        assert "RPR004" in rules_hit(tmp_path, src)

    def test_none_default_clean(self, tmp_path):
        src = """
            def f(x=None, y=(), z="s"):
                return x, y, z
        """
        assert "RPR004" not in rules_hit(tmp_path, src)


class TestRPR005OverbroadExcept:
    def test_bare_except_flagged(self, tmp_path):
        src = """
            try:
                work()
            except:
                pass
        """
        assert "RPR005" in rules_hit(tmp_path, src)

    def test_swallowed_exception_flagged(self, tmp_path):
        src = """
            try:
                work()
            except Exception:
                pass
        """
        assert "RPR005" in rules_hit(tmp_path, src)

    def test_reraising_broad_handler_clean(self, tmp_path):
        src = """
            try:
                work()
            except Exception as exc:
                raise RuntimeError("context") from exc
        """
        assert "RPR005" not in rules_hit(tmp_path, src)

    def test_narrow_except_clean(self, tmp_path):
        src = """
            try:
                work()
            except ValueError:
                pass
        """
        assert "RPR005" not in rules_hit(tmp_path, src)


class TestRPR006FloatSumComprehension:
    SRC = """
        def norm(xs):
            return sum(x * x for x in xs)
    """

    def test_sum_comprehension_in_nn_flagged(self, tmp_path):
        hits = rules_hit(tmp_path, self.SRC,
                         display="src/repro/nn/example.py")
        assert "RPR006" in hits

    def test_sum_comprehension_in_sampling_flagged(self, tmp_path):
        hits = rules_hit(tmp_path, self.SRC,
                         display="src/repro/sampling/example.py")
        assert "RPR006" in hits

    def test_outside_hot_paths_clean(self, tmp_path):
        assert "RPR006" not in rules_hit(tmp_path, self.SRC)

    def test_integer_sum_exempt(self, tmp_path):
        src = """
            def count(xs):
                return int(sum(len(x) for x in xs))
        """
        hits = rules_hit(tmp_path, src,
                         display="src/repro/nn/example.py")
        assert "RPR006" not in hits


class TestRPR007EnvironRead:
    def test_environ_subscript_flagged(self, tmp_path):
        src = """
            import os
            home = os.environ["HOME"]
        """
        assert "RPR007" in rules_hit(tmp_path, src)

    def test_getenv_flagged(self, tmp_path):
        src = """
            import os
            debug = os.getenv("DEBUG", "0")
        """
        assert "RPR007" in rules_hit(tmp_path, src)

    def test_flags_module_allowlisted(self, tmp_path):
        src = """
            import os
            debug = os.environ.get("REPRO_DEBUG")
        """
        hits = rules_hit(tmp_path, src,
                         display="src/repro/perf/flags.py")
        assert "RPR007" not in hits


class TestFindings:
    def test_finding_fields_populated(self, tmp_path):
        findings, _ = lint_source(tmp_path, """
            import numpy as np
            x = np.random.rand(3)
        """)
        (finding,) = [f for f in findings if f.rule == "RPR001"]
        assert finding.path == IN_SCOPE
        assert finding.line == 3
        assert finding.severity == "error"
        assert "np.random.rand" in finding.snippet
        assert finding.hint
        assert IN_SCOPE in finding.location()

    def test_syntax_error_yields_rpr000(self, tmp_path):
        findings, _ = lint_source(tmp_path, "def broken(:\n")
        assert [f.rule for f in findings] == ["RPR000"]
        assert findings[0].severity == "error"

    @pytest.mark.parametrize("marker,expect_suppressed", [
        ("# repro: noqa[RPR001]", True),
        ("# repro: noqa", True),
        ("# repro: noqa[RPR002]", False),
    ])
    def test_noqa_scoping(self, tmp_path, marker, expect_suppressed):
        src = f"""
            import numpy as np
            x = np.random.rand(3)  {marker}
        """
        findings, suppressed = lint_source(tmp_path, src)
        hit = any(f.rule == "RPR001" for f in findings)
        assert hit != expect_suppressed
        assert suppressed == (1 if expect_suppressed else 0)
