"""The ``repro lint`` command end-to-end, via ``repro.cli.main``."""

import json
import textwrap

import pytest

from repro.cli import main

#: One seeded violation per RPR rule (the acceptance-bar fixture).
ALL_RULES = """
    import os
    import random
    import time

    import numpy as np


    def f(x=[]):                       # RPR004
        return x


    def norm(xs):
        return sum(v * v for v in xs)  # RPR006 (nn/sampling path)


    def work(d):
        acc = 0.0
        for v in d.values():           # RPR003
            acc += v
        try:
            x = np.random.rand(3)      # RPR001
            t = time.perf_counter()    # RPR002
            home = os.environ["HOME"]  # RPR007
        except:                        # RPR005
            pass
        return acc
"""

EXPECTED = {"RPR001", "RPR002", "RPR003", "RPR004", "RPR005",
            "RPR006", "RPR007"}


def write_fixture(tmp_path, source=ALL_RULES):
    # Under an `nn` directory so the RPR006 hot-path scope applies.
    target = tmp_path / "nn"
    target.mkdir()
    path = target / "fixture.py"
    path.write_text(textwrap.dedent(source), encoding="utf-8")
    return path


class TestLintCommand:
    def test_clean_paths_exit_zero(self, tmp_path, capsys):
        good = tmp_path / "good.py"
        good.write_text("x = 1\n", encoding="utf-8")
        assert main(["lint", str(good)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_seeded_violations_exit_nonzero(self, tmp_path, capsys):
        path = write_fixture(tmp_path)
        assert main(["lint", str(path)]) == 1
        out = capsys.readouterr().out
        for rule in EXPECTED:
            assert rule in out

    def test_json_format_reports_every_rule(self, tmp_path, capsys):
        path = write_fixture(tmp_path)
        assert main(["lint", "--format", "json", str(path)]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert {f["rule"] for f in payload["findings"]} == EXPECTED
        assert payload["clean"] is False

    def test_out_writes_report_file(self, tmp_path, capsys):
        path = write_fixture(tmp_path)
        out = tmp_path / "report.json"
        assert main(["lint", "--out", str(out), str(path)]) == 1
        payload = json.loads(out.read_text(encoding="utf-8"))
        assert payload["summary"]["new"] == len(EXPECTED)

    def test_update_then_gate_passes(self, tmp_path, capsys):
        path = write_fixture(tmp_path)
        baseline = tmp_path / "baseline.json"
        assert main(["lint", "--update-baseline",
                     "--baseline-file", str(baseline), str(path)]) == 0
        assert baseline.exists()
        # Grandfathered: same findings, gate passes.
        assert main(["lint", "--baseline",
                     "--baseline-file", str(baseline), str(path)]) == 0
        out = capsys.readouterr().out
        assert "baselined" in out
        # A fresh violation still fails the gate.
        path.write_text(path.read_text(encoding="utf-8")
                        + "\ny = np.random.rand(9)\n", encoding="utf-8")
        assert main(["lint", "--baseline",
                     "--baseline-file", str(baseline), str(path)]) == 1

    def test_missing_path_exits_two(self, tmp_path, capsys):
        missing = tmp_path / "nope"
        assert main(["lint", str(missing)]) == 2
        assert "does not exist" in capsys.readouterr().err

    def test_noqa_fixture_clean(self, tmp_path, capsys):
        path = tmp_path / "ok.py"
        path.write_text(
            "import numpy as np\n"
            "x = np.random.rand(3)  # repro: noqa[RPR001]\n",
            encoding="utf-8")
        assert main(["lint", str(path)]) == 0
        assert "1 suppressed" in capsys.readouterr().out


class TestExplicitFileArgs:
    """Satellite: explicit file arguments must fingerprint identically
    to tree runs, whatever their spelling, or baselines stop working."""

    def test_spellings_share_one_baseline(self, tmp_path, capsys,
                                          monkeypatch):
        monkeypatch.chdir(tmp_path)
        write_fixture(tmp_path)
        baseline = tmp_path / "baseline.json"
        # Baseline built from a directory walk...
        assert main(["lint", "--update-baseline",
                     "--baseline-file", str(baseline), "nn"]) == 0
        # ...grandfathers the same file spelled three other ways.
        for spelling in ("nn/fixture.py", "./nn/fixture.py",
                         str(tmp_path / "nn" / "fixture.py")):
            assert main(["lint", "--baseline",
                         "--baseline-file", str(baseline),
                         spelling]) == 0, spelling

    def test_file_and_dir_args_deduplicate(self, tmp_path, capsys,
                                           monkeypatch):
        monkeypatch.chdir(tmp_path)
        write_fixture(tmp_path)
        main(["lint", "nn", "./nn/fixture.py"])
        assert "1 files scanned" in capsys.readouterr().out


class TestUpdateBaselineMaintenance:
    """Satellite: stale-entry warnings and merge-aware pruning."""

    def test_fixed_findings_warn_then_prune(self, tmp_path, capsys,
                                            monkeypatch):
        monkeypatch.chdir(tmp_path)
        path = write_fixture(tmp_path)
        baseline = tmp_path / "baseline.json"
        assert main(["lint", "--update-baseline",
                     "--baseline-file", str(baseline), "nn"]) == 0
        capsys.readouterr()

        path.write_text("x = 1\n", encoding="utf-8")  # all fixed
        assert main(["lint", "--baseline",
                     "--baseline-file", str(baseline), "nn"]) == 0
        out = capsys.readouterr().out
        assert "stale baseline entr" in out
        assert "--update-baseline" in out

        assert main(["lint", "--update-baseline",
                     "--baseline-file", str(baseline), "nn"]) == 0
        out = capsys.readouterr().out
        assert "stale entries pruned" in out
        assert "(0 stale entries pruned)" not in out
        document = json.loads(baseline.read_text(encoding="utf-8"))
        assert document["findings"] == {}

    def test_partial_update_keeps_unscanned_entries(self, tmp_path,
                                                    capsys,
                                                    monkeypatch):
        monkeypatch.chdir(tmp_path)
        write_fixture(tmp_path)
        other = tmp_path / "other.py"
        other.write_text("import numpy as np\n"
                         "x = np.random.rand(3)\n", encoding="utf-8")
        baseline = tmp_path / "baseline.json"
        assert main(["lint", "--update-baseline",
                     "--baseline-file", str(baseline),
                     "nn", "other.py"]) == 0

        # Re-baselining only other.py must not wipe the nn entries...
        assert main(["lint", "--update-baseline",
                     "--baseline-file", str(baseline),
                     "other.py"]) == 0
        document = json.loads(baseline.read_text(encoding="utf-8"))
        assert any(key.startswith("nn/") for key in
                   document["findings"])
        # ...so the full gate still passes afterwards.
        assert main(["lint", "--baseline",
                     "--baseline-file", str(baseline),
                     "nn", "other.py"]) == 0

    def test_deleted_file_entries_pruned(self, tmp_path, capsys,
                                         monkeypatch):
        monkeypatch.chdir(tmp_path)
        write_fixture(tmp_path)
        other = tmp_path / "other.py"
        other.write_text("import numpy as np\n"
                         "x = np.random.rand(3)\n", encoding="utf-8")
        baseline = tmp_path / "baseline.json"
        assert main(["lint", "--update-baseline",
                     "--baseline-file", str(baseline),
                     "nn", "other.py"]) == 0
        other.unlink()
        # other.py is gone: even a run scoped elsewhere prunes it.
        assert main(["lint", "--update-baseline",
                     "--baseline-file", str(baseline), "nn"]) == 0
        document = json.loads(baseline.read_text(encoding="utf-8"))
        assert not any(key.startswith("other.py") for key in
                       document["findings"])
        assert any(key.startswith("nn/") for key in
                   document["findings"])


class TestRepoIsClean:
    def test_head_lints_clean_under_checked_in_baseline(self, capsys):
        """The acceptance bar: `repro lint` on the repo itself passes
        (run from the repo root, as `make lint` and CI do)."""
        from pathlib import Path

        import repro

        root = Path(repro.__file__).parents[2]
        paths = [str(root / p) for p in
                 ("src", "benchmarks", "examples", "tools", "tests")]
        assert main(["lint", "--baseline", *paths]) == 0
