"""Runtime sanitizer behaviour: on, off, and zero-cost-when-off.

The suite-wide conftest arms ``FLAGS.sanitize``; the off-path tests
drop it locally with ``perf_overrides(sanitize=False)``.
"""

import numpy as np
import pytest

from repro.analysis.sanitize import (check_contract, check_csr,
                                     check_finite, sanitize_active)
from repro.errors import SanitizerError
from repro.perf import PERF, perf_overrides
from repro.sampling import block as block_mod
from repro.sampling.block import build_block, build_block_reference


def counter(name):
    return PERF.counters.get(name, 0)


class TestCheckFinite:
    def test_clean_array_passes_through(self):
        x = np.arange(6, dtype=np.float32).reshape(2, 3)
        assert check_finite(x, name="x") is x

    @pytest.mark.parametrize("bad", [np.nan, np.inf, -np.inf])
    def test_nonfinite_raises(self, bad):
        x = np.ones(4)
        x[2] = bad
        with pytest.raises(SanitizerError, match="x:"):
            check_finite(x, name="x")

    def test_integer_arrays_exempt(self):
        before = counter("sanitize_finite_checks")
        check_finite(np.arange(5), name="ints")
        assert counter("sanitize_finite_checks") == before

    def test_unwraps_tensor_like(self):
        class Box:
            data = np.array([1.0, np.nan])

        with pytest.raises(SanitizerError, match="boxed"):
            check_finite(Box(), name="boxed")

    def test_off_is_noop(self):
        x = np.array([np.nan])
        with perf_overrides(sanitize=False):
            before = counter("sanitize_finite_checks")
            assert check_finite(x, name="x") is x
            assert counter("sanitize_finite_checks") == before
            assert not sanitize_active()
        assert sanitize_active()


def valid_csr():
    indptr = np.array([0, 2, 2, 3], dtype=np.int64)
    indices = np.array([0, 2, 1], dtype=np.int64)
    return indptr, indices, 3


class TestCheckCSR:
    def test_valid_passes(self):
        before = counter("sanitize_csr_checks")
        check_csr(*valid_csr(), name="ok", sorted_rows=True)
        assert counter("sanitize_csr_checks") == before + 1

    def test_wrong_dtype(self):
        indptr, indices, n = valid_csr()
        with pytest.raises(SanitizerError, match="int64"):
            check_csr(indptr.astype(np.int32), indices, n)

    def test_wrong_indptr_length(self):
        indptr, indices, n = valid_csr()
        with pytest.raises(SanitizerError, match="entries"):
            check_csr(indptr, indices, n + 1)

    def test_nonzero_start(self):
        indptr, indices, n = valid_csr()
        indptr = indptr + 1
        with pytest.raises(SanitizerError, match=r"indptr\[0\]"):
            check_csr(indptr, indices, n)

    def test_decreasing_indptr(self):
        indptr = np.array([0, 2, 1, 3], dtype=np.int64)
        _, indices, n = valid_csr()
        with pytest.raises(SanitizerError, match="non-decreasing"):
            check_csr(indptr, indices, n)

    def test_endpoint_mismatch(self):
        indptr = np.array([0, 2, 2, 4], dtype=np.int64)
        _, indices, n = valid_csr()
        with pytest.raises(SanitizerError, match="match"):
            check_csr(indptr, indices, n)

    def test_index_out_of_range(self):
        indptr, indices, n = valid_csr()
        indices = indices.copy()
        indices[0] = n
        with pytest.raises(SanitizerError, match="out of range"):
            check_csr(indptr, indices, n)

    def test_unsorted_row_detected(self):
        indptr = np.array([0, 2, 2, 3], dtype=np.int64)
        indices = np.array([2, 0, 1], dtype=np.int64)
        with pytest.raises(SanitizerError, match="sorted"):
            check_csr(indptr, indices, 3, sorted_rows=True)
        # The same arrays pass without the sorted-rows requirement...
        check_csr(indptr, indices, 3, sorted_rows=False)
        # ...and a drop at a row *boundary* is not a violation.
        check_csr(np.array([0, 1, 2], dtype=np.int64),
                  np.array([1, 0], dtype=np.int64), 2, sorted_rows=True)

    def test_off_accepts_garbage(self):
        with perf_overrides(sanitize=False):
            check_csr(np.array([5, 1], dtype=np.float32),
                      np.array([9], dtype=np.int64), 7)


class TestCheckContract:
    @staticmethod
    @check_contract(shape=(None, 3), dtype=np.float32)
    def make(rows, dtype=np.float32, cols=3):
        return np.zeros((rows, cols), dtype=dtype)

    def test_conforming_return_passes(self):
        before = counter("sanitize_contract_checks")
        out = self.make(4)
        assert out.shape == (4, 3)
        assert counter("sanitize_contract_checks") == before + 1

    def test_wrong_dtype_raises(self):
        with pytest.raises(SanitizerError, match="dtype"):
            self.make(4, dtype=np.float64)

    def test_wrong_shape_raises(self):
        with pytest.raises(SanitizerError, match="shape"):
            self.make(4, cols=2)

    def test_wrong_rank_raises(self):
        @check_contract(shape=(None,))
        def vector():
            return np.zeros((2, 2))

        with pytest.raises(SanitizerError, match="-D"):
            vector()

    def test_flag_consulted_per_call(self):
        with perf_overrides(sanitize=False):
            out = self.make(4, cols=2)  # violating, but unchecked
            assert out.shape == (4, 2)
        with pytest.raises(SanitizerError):
            self.make(4, cols=2)


class TestHotPathWiring:
    """build_block and from_edges call check_csr only under the flag."""

    @staticmethod
    def sample_edges(num_dst=64, num_edges=600, seed=3):
        rng = np.random.default_rng(seed)
        dst_nodes = np.arange(num_dst, dtype=np.int64) * 7
        edge_dst = rng.choice(dst_nodes, size=num_edges)
        edge_src = rng.integers(0, 1000, size=num_edges, dtype=np.int64)
        return dst_nodes, edge_dst, edge_src

    def test_build_block_checks_when_on(self):
        before = counter("sanitize_csr_checks")
        build_block(*self.sample_edges())
        assert counter("sanitize_csr_checks") == before + 1

    def test_build_block_off_runs_zero_sanitizer_code(self, monkeypatch):
        """Zero-cost proof: with the flag off, the sanitizer is never
        even *called* from the hot path (the call site is guarded), so
        the only off-path cost is one attribute read."""
        def boom(*args, **kwargs):
            raise AssertionError("sanitizer ran with FLAGS.sanitize off")

        monkeypatch.setattr(block_mod, "check_csr", boom)
        edges = self.sample_edges()
        with perf_overrides(sanitize=False):
            before = counter("sanitize_csr_checks")
            got = build_block(*edges)
            assert counter("sanitize_csr_checks") == before
        monkeypatch.undo()
        want = build_block(*edges)
        assert np.array_equal(got.indptr, want.indptr)
        assert np.array_equal(got.indices, want.indices)

    def test_build_block_output_identical_on_vs_off(self):
        edges = self.sample_edges(seed=11)
        on = build_block(*edges)
        with perf_overrides(sanitize=False):
            off = build_block(*edges)
        ref = build_block_reference(*edges)
        for a in (on, off):
            assert np.array_equal(a.src_nodes, ref.src_nodes)
            assert np.array_equal(a.indptr, ref.indptr)
            assert np.array_equal(a.indices, ref.indices)

    def test_from_edges_checks_when_on(self):
        from repro.graph.build import from_edges

        src = np.array([0, 1, 2, 2], dtype=np.int64)
        dst = np.array([1, 2, 0, 1], dtype=np.int64)
        before = counter("sanitize_csr_checks")
        graph = from_edges(src, dst, num_vertices=3)
        assert counter("sanitize_csr_checks") == before + 1
        assert graph.num_vertices == 3


class TestTrainingBitIdentical:
    """Acceptance bar: sanitizers are observers, not participants —
    loss/accuracy curves bit-match with the flag on vs off."""

    def test_curves_identical(self):
        from repro.core import Trainer, TrainingConfig
        from repro.graph import load_dataset

        dataset = load_dataset("ogb-arxiv", scale=0.05)
        config = TrainingConfig(epochs=3, batch_size=64, num_workers=2,
                                fanout=(4, 4), seed=7)

        assert sanitize_active()
        on = Trainer(dataset, config).run()
        with perf_overrides(sanitize=False):
            off = Trainer(dataset, config).run()

        assert np.array_equal(on.curve.losses, off.curve.losses)
        assert np.array_equal(on.curve.val_accuracies,
                              off.curve.val_accuracies)
        assert on.best_val_accuracy == off.best_val_accuracy
        assert on.test_accuracy == off.test_accuracy
