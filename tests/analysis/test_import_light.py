"""The analysis layer's import-weight contract.

Two directions, both cheap to break silently:

* the linter must not pull scipy or the training stack (``repro lint``
  runs in CI before anything heavy is warmed up), and
* ``import repro`` — whose hot paths import
  :mod:`repro.analysis.sanitize` — must not execute the linter modules
  (``lint``/``rules``/``report``/``baseline`` resolve lazily via the
  package's PEP 562 ``__getattr__``).
"""

import ast
import subprocess
import sys
from pathlib import Path

import pytest

import repro.analysis as analysis_pkg

ANALYSIS_DIR = Path(analysis_pkg.__file__).parent
SRC_DIR = ANALYSIS_DIR.parents[1]

#: Top-level modules the analysis package may import absolutely.
#: numpy is for the sanitizers; everything else is stdlib.
ALLOWED_ABSOLUTE = {"__future__", "ast", "dataclasses", "functools",
                    "importlib", "json", "numpy", "pathlib", "re"}

#: repro modules the package may reach via relative imports.
ALLOWED_RELATIVE_HEADS = {"errors", "perf", "baseline", "lint",
                          "report", "rules", "sanitize", "determinism",
                          "hygiene", "numerics", "arch", "graphing",
                          "layers"}


def iter_imports(path):
    tree = ast.parse(path.read_text(encoding="utf-8"),
                     filename=str(path))
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                yield 0, alias.name
        elif isinstance(node, ast.ImportFrom):
            yield node.level, node.module or ""


class TestAnalysisStaysLight:
    def test_only_stdlib_and_numpy_imports(self):
        files = sorted(ANALYSIS_DIR.rglob("*.py"))
        assert files, f"no analysis sources under {ANALYSIS_DIR}"
        for path in files:
            for level, module in iter_imports(path):
                head = module.split(".")[0]
                if level == 0:
                    assert head in ALLOWED_ABSOLUTE, (
                        f"{path.name} imports {module!r}; the analysis "
                        f"layer allows only stdlib + numpy")
                else:
                    assert head in ALLOWED_RELATIVE_HEADS \
                        or module == "", (
                        f"{path.name} relative-imports {module!r}, "
                        f"outside the sanctioned light modules")

    def test_import_repro_skips_linter_modules(self):
        code = (
            "import sys\n"
            "import repro\n"
            "mods = sorted(m for m in sys.modules\n"
            "              if m.startswith('repro.analysis'))\n"
            "assert 'repro.analysis.sanitize' in mods, mods\n"
            "for heavy in ('lint', 'rules', 'report', 'baseline',\n"
            "              'arch', 'graphing', 'layers'):\n"
            "    assert 'repro.analysis.' + heavy not in mods, mods\n"
            "print('ok')\n"
        )
        done = subprocess.run(
            [sys.executable, "-c", code], capture_output=True,
            text=True, env={"PYTHONPATH": str(SRC_DIR), "PATH": ""})
        assert done.returncode == 0, done.stderr
        assert done.stdout.strip() == "ok"

    def test_lazy_names_resolve(self):
        # PEP 562 access must hand back the real objects.
        assert analysis_pkg.lint_paths.__module__ \
            == "repro.analysis.lint"
        assert analysis_pkg.check_csr.__module__ \
            == "repro.analysis.sanitize"
        assert analysis_pkg.arch_lint.__module__ \
            == "repro.analysis.arch"
        assert analysis_pkg.build_project.__module__ \
            == "repro.analysis.graphing"
        assert analysis_pkg.load_arch_config.__module__ \
            == "repro.analysis.layers"
        with pytest.raises(AttributeError):
            analysis_pkg.not_a_real_name

    def test_dir_lists_public_api(self):
        listed = dir(analysis_pkg)
        for name in analysis_pkg.__all__:
            assert name in listed


class TestCliStartup:
    def test_version_works(self):
        done = subprocess.run(
            [sys.executable, "-m", "repro", "--version"],
            capture_output=True, text=True,
            env={"PYTHONPATH": str(SRC_DIR), "PATH": ""})
        assert done.returncode == 0, done.stderr
        assert done.stdout.startswith("repro ")
