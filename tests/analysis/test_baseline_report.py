"""Baseline round-trips, fingerprint semantics, and reporter output."""

import json
import textwrap

from repro.analysis import (REPORT_VERSION, lint_paths, render_json,
                            render_text, write_json)
from repro.analysis.baseline import (fingerprint, filter_new,
                                     load_baseline, save_baseline,
                                     to_baseline)

DIRTY = textwrap.dedent("""
    import numpy as np
    x = np.random.rand(3)
""")


def write_tree(tmp_path, name="dirty.py", source=DIRTY):
    path = tmp_path / name
    path.write_text(source, encoding="utf-8")
    return path


class TestBaseline:
    def test_round_trip_grandfathers_findings(self, tmp_path):
        target = write_tree(tmp_path)
        result = lint_paths([target])
        assert result.new_findings and not result.clean

        baseline_path = tmp_path / "baseline.json"
        save_baseline(result.findings, path=baseline_path)
        baseline = load_baseline(baseline_path)

        again = lint_paths([target], baseline=baseline)
        assert again.findings  # still present...
        assert again.clean     # ...but grandfathered
        assert again.baselined == len(again.findings)

    def test_new_finding_not_grandfathered(self, tmp_path):
        target = write_tree(tmp_path)
        baseline_path = tmp_path / "baseline.json"
        save_baseline(lint_paths([target]).findings, path=baseline_path)

        # A second unseeded call is a *new* occurrence of the same rule.
        target.write_text(DIRTY + "y = np.random.rand(4)\n",
                          encoding="utf-8")
        result = lint_paths([target],
                            baseline=load_baseline(baseline_path))
        assert len(result.new_findings) == 1
        assert "np.random.rand(4)" in result.new_findings[0].snippet

    def test_fingerprint_survives_line_shift(self, tmp_path):
        target = write_tree(tmp_path)
        before = lint_paths([target]).findings

        # Prepend lines: same violation, different line number.
        target.write_text("# a comment\n# another\n" + DIRTY,
                          encoding="utf-8")
        after = lint_paths([target]).findings
        assert [f.line for f in before] != [f.line for f in after]
        assert ([fingerprint(f) for f in before]
                == [fingerprint(f) for f in after])

    def test_duplicate_findings_counted(self, tmp_path):
        src = DIRTY + "x = np.random.rand(3)\n"
        target = write_tree(tmp_path, source=src)
        findings = lint_paths([target]).findings
        counts = to_baseline(findings)["findings"]
        assert 2 in counts.values()
        # One grandfathered occurrence does not cover both.
        new = filter_new(findings, {fingerprint(findings[0]): 1})
        assert len(new) == len(findings) - 1

    def test_missing_baseline_is_empty(self, tmp_path):
        assert load_baseline(tmp_path / "nope.json") == {}


class TestReporters:
    def test_json_schema(self, tmp_path):
        target = write_tree(tmp_path)
        result = lint_paths([target], baseline={})
        payload = render_json(result)
        assert payload["version"] == REPORT_VERSION
        assert payload["files_scanned"] == 1
        assert payload["clean"] is False
        summary = payload["summary"]
        assert set(summary) == {"total", "new", "baselined",
                                "suppressed", "parse_errors",
                                "stale_baseline"}
        assert summary["total"] == summary["new"] == 1
        assert summary["stale_baseline"] == 0
        assert payload["stale_baseline"] == []
        assert {row["rule"] for row in payload["rules"]} >= {"RPR001"}
        (finding,) = payload["findings"]
        assert finding["rule"] == "RPR001"
        assert finding["new"] is True
        assert finding["severity"] == "error"
        json.dumps(payload)  # must be serializable as-is

    def test_text_report_mentions_findings_and_summary(self, tmp_path):
        target = write_tree(tmp_path)
        result = lint_paths([target])
        text = render_text(result)
        assert "RPR001" in text
        assert "1 file" in text or "1 files" in text

    def test_text_report_clean(self, tmp_path):
        target = write_tree(tmp_path, source="x = 1\n")
        text = render_text(lint_paths([target]))
        assert "clean" in text

    def test_write_json(self, tmp_path):
        target = write_tree(tmp_path)
        out = tmp_path / "report.json"
        write_json(lint_paths([target]), out)
        payload = json.loads(out.read_text(encoding="utf-8"))
        assert payload["summary"]["total"] == 1

    def test_rule_rows_override_swaps_in_arc_table(self, tmp_path):
        from repro.analysis.rules.arch import arch_rule_table

        target = write_tree(tmp_path, source="x = 1\n")
        payload = render_json(lint_paths([target]),
                              rule_rows=arch_rule_table())
        codes = {row["rule"] for row in payload["rules"]}
        assert codes == {"ARC000", "ARC001", "ARC002", "ARC003",
                         "ARC004", "ARC005", "ARC006"}
        json.dumps(payload)

    def test_text_and_json_counts_agree(self, tmp_path):
        # Two occurrences, one grandfathered: every count in the text
        # summary line must match the JSON summary.
        target = write_tree(tmp_path,
                            source=DIRTY + "y = np.random.rand(4)\n")
        findings = lint_paths([target]).findings
        baseline = {fingerprint(findings[0]): 1}
        result = lint_paths([target], baseline=baseline)
        summary = render_json(result)["summary"]
        assert (summary["total"], summary["new"],
                summary["baselined"]) == (2, 1, 1)
        expected = (f"{summary['total']} findings "
                    f"({summary['new']} new, "
                    f"{summary['baselined']} baselined, "
                    f"{summary['suppressed']} suppressed)")
        assert expected in render_text(result)


class TestStaleBaseline:
    def test_fixed_finding_marks_entry_stale(self, tmp_path):
        target = write_tree(tmp_path)
        dirty = lint_paths([target])
        baseline_path = tmp_path / "baseline.json"
        save_baseline(dirty.findings, path=baseline_path)
        baseline = load_baseline(baseline_path)

        target.write_text("x = 1\n", encoding="utf-8")  # fixed
        result = lint_paths([target], baseline=baseline)
        assert result.clean
        assert result.stale_baseline == sorted(baseline)
        payload = render_json(result)
        assert payload["summary"]["stale_baseline"] == len(baseline)
        text = render_text(result)
        assert "stale baseline entry" in text
        assert "--update-baseline" in text

    def test_deleted_file_marks_entry_stale(self, tmp_path):
        target = write_tree(tmp_path)
        other = write_tree(tmp_path, name="clean.py", source="x = 1\n")
        baseline = {fingerprint(f): 1
                    for f in lint_paths([target]).findings}
        target.unlink()
        result = lint_paths([other], baseline=baseline)
        assert result.stale_baseline == sorted(baseline)

    def test_unscanned_existing_file_is_not_stale(self, tmp_path):
        # A partial run must not condemn entries it never looked at.
        first = write_tree(tmp_path, name="first.py")
        second = write_tree(tmp_path, name="second.py")
        baseline = {fingerprint(f): 1
                    for f in lint_paths([first, second]).findings}
        result = lint_paths([first], baseline=baseline)
        assert result.clean
        assert result.stale_baseline == []

    def test_no_baseline_means_no_stale_entries(self, tmp_path):
        result = lint_paths([write_tree(tmp_path)])
        assert result.stale_baseline == []
