"""Unit tests for the GAT layer and its supporting autograd ops."""

import numpy as np
import pytest

from repro.errors import TrainingError
from repro.graph import load_dataset
from repro.nn import GAT, Adam, GATConv, Tensor, build_model
from repro.nn.loss import softmax_cross_entropy
from repro.sampling import NeighborSampler

from .test_tensor import check_op, numeric_grad


@pytest.fixture(scope="module")
def dataset():
    return load_dataset("ogb-arxiv", scale=0.25)


@pytest.fixture(scope="module")
def subgraph(dataset):
    sampler = NeighborSampler((4, 4))
    return sampler.sample(dataset.graph, dataset.train_ids[:24],
                          np.random.default_rng(0))


class TestNewOps:
    def test_reshape_roundtrip(self):
        x = Tensor(np.arange(6.0).reshape(2, 3), requires_grad=True)
        y = x.reshape(-1)
        assert y.shape == (6,)
        y.sum().backward()
        assert x.grad.shape == (2, 3)
        assert np.allclose(x.grad, 1.0)

    def test_leaky_relu_values(self):
        x = Tensor(np.array([-2.0, 3.0]))
        out = x.leaky_relu(0.1)
        assert np.allclose(out.data, [-0.2, 3.0])

    def test_leaky_relu_gradcheck(self):
        check_op(lambda x: x.leaky_relu(0.2).sum(), (4, 3), seed=21)

    def test_segment_softmax_normalizes_per_segment(self):
        x = Tensor(np.array([1.0, 2.0, 3.0, 4.0, 5.0]))
        segments = np.array([0, 0, 1, 1, 1])
        probs = x.segment_softmax(segments).data
        assert probs[:2].sum() == pytest.approx(1.0)
        assert probs[2:].sum() == pytest.approx(1.0)

    def test_segment_softmax_single_element_segment(self):
        x = Tensor(np.array([7.0]))
        assert x.segment_softmax([0]).data[0] == pytest.approx(1.0)

    def test_segment_softmax_gradcheck(self):
        segments = np.array([0, 0, 1, 1, 2])
        check_op(lambda x: (x.segment_softmax(segments)
                            * Tensor(np.arange(5.0))).sum(),
                 (5,), seed=22)

    def test_segment_softmax_rejects_matrix(self):
        with pytest.raises(TrainingError):
            Tensor(np.ones((2, 2))).segment_softmax([0, 1])

    def test_edge_aggregate_forward(self):
        sources = Tensor(np.array([[1.0, 0.0], [0.0, 1.0], [2.0, 2.0]]))
        weights = Tensor(np.array([0.5, 0.5, 1.0]))
        out = Tensor.edge_aggregate(sources, weights,
                                    edge_dst=[0, 0, 1],
                                    edge_src=[0, 1, 2], num_dst=2)
        assert np.allclose(out.data, [[0.5, 0.5], [2.0, 2.0]])

    def test_edge_aggregate_source_gradcheck(self):
        weights = Tensor(np.array([0.3, 0.7, 1.0, 0.2]))
        edge_dst = [0, 0, 1, 1]
        edge_src = [0, 1, 2, 0]
        check_op(lambda x: Tensor.edge_aggregate(
            x, weights, edge_dst, edge_src, 2).sum(), (3, 2), seed=23)

    def test_edge_aggregate_weight_grad(self):
        rng = np.random.default_rng(24)
        source_data = rng.normal(size=(3, 2))
        edge_dst = [0, 1, 1]
        edge_src = [1, 0, 2]

        def build(w):
            return Tensor.edge_aggregate(
                Tensor(source_data), w, edge_dst, edge_src, 2).sum()

        w = Tensor(rng.normal(size=3).astype(np.float64),
                   requires_grad=True)
        build(w).backward()
        numeric = numeric_grad(lambda arr: float(build(Tensor(arr)).data),
                               w.data.copy())
        assert np.allclose(w.grad, numeric, atol=2e-2)

    def test_edge_aggregate_misaligned(self):
        with pytest.raises(TrainingError):
            Tensor.edge_aggregate(Tensor(np.ones((2, 2))),
                                  Tensor(np.ones(3)), [0], [0], 1)


class TestGATConv:
    def test_output_shape(self, dataset, subgraph):
        conv = GATConv(dataset.feature_dim, 16,
                       np.random.default_rng(0), heads=2)
        block = subgraph.blocks[0]
        out = conv.forward_block(
            block, Tensor(dataset.features[block.src_nodes]))
        assert out.shape == (block.num_dst, 16)

    def test_heads_must_divide(self):
        with pytest.raises(TrainingError):
            GATConv(8, 10, np.random.default_rng(0), heads=3)

    def test_parameters_include_attention(self):
        conv = GATConv(8, 8, np.random.default_rng(0), heads=2)
        # 2 heads x (W, a_src, a_dst) + bias
        assert len(conv.parameters()) == 7

    def test_attention_rows_normalized(self, dataset, subgraph):
        """Attention coefficients over each destination's incoming
        edges (incl. self-loop) sum to one."""
        block = subgraph.blocks[0]
        conv = GATConv(dataset.feature_dim, 8, np.random.default_rng(0))
        edge_dst, edge_src = conv._block_edges_with_self_loops(block)
        h = Tensor(dataset.features[block.src_nodes])
        transformed = h @ conv.weights[0]
        scores = ((transformed @ conv.attn_src[0]).gather_rows(edge_src)
                  + (transformed @ conv.attn_dst[0]).gather_rows(edge_dst))
        alpha = scores.reshape(-1).leaky_relu(0.2).segment_softmax(
            edge_dst, num_segments=block.num_dst)
        sums = np.zeros(block.num_dst)
        np.add.at(sums, edge_dst, alpha.data)
        assert np.allclose(sums, 1.0, atol=1e-5)


class TestGATModel:
    def test_gat_trains(self, dataset, subgraph):
        model = build_model("gat", dataset.feature_dim,
                            dataset.num_classes,
                            rng=np.random.default_rng(0))
        assert isinstance(model, GAT)
        opt = Adam(model.parameters(), lr=0.01)
        feats = dataset.features[subgraph.input_nodes]
        labels = dataset.labels[subgraph.seeds]
        first = None
        for _step in range(15):
            logits = model.forward(subgraph, feats)
            loss = softmax_cross_entropy(logits, labels)
            if first is None:
                first = loss.item()
            opt.zero_grad()
            loss.backward()
            opt.step()
        assert loss.item() < 0.7 * first
