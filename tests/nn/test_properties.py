"""Property-based tests for the autograd engine."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.nn import Tensor, softmax, softmax_cross_entropy

floats = st.floats(min_value=-5, max_value=5, allow_nan=False,
                   allow_infinity=False, width=32)


def matrices(rows=st.integers(1, 6), cols=st.integers(1, 6)):
    return st.tuples(rows, cols).flatmap(
        lambda shape: hnp.arrays(np.float32, shape, elements=floats))


class TestAlgebraicProperties:
    @given(matrices())
    @settings(max_examples=50, deadline=None)
    def test_sum_gradient_is_ones(self, data):
        x = Tensor(data, requires_grad=True)
        x.sum().backward()
        assert np.allclose(x.grad, 1.0)

    @given(matrices())
    @settings(max_examples=50, deadline=None)
    def test_linearity_of_grad(self, data):
        x = Tensor(data, requires_grad=True)
        (x * 3.0).sum().backward()
        assert np.allclose(x.grad, 3.0)

    @given(matrices())
    @settings(max_examples=50, deadline=None)
    def test_relu_grad_is_mask(self, data):
        x = Tensor(data, requires_grad=True)
        x.relu().sum().backward()
        assert np.allclose(x.grad, (data > 0).astype(np.float32))

    @given(matrices())
    @settings(max_examples=50, deadline=None)
    def test_softmax_rows_are_distributions(self, data):
        probs = softmax(data)
        assert np.all(probs >= 0)
        assert np.allclose(probs.sum(axis=-1), 1.0, atol=1e-5)

    @given(matrices(rows=st.integers(2, 6), cols=st.integers(2, 6)),
           st.integers(0, 2**31 - 1))
    @settings(max_examples=50, deadline=None)
    def test_cross_entropy_nonnegative(self, data, seed):
        labels = np.random.default_rng(seed).integers(
            0, data.shape[1], size=data.shape[0])
        loss = softmax_cross_entropy(data, labels)
        assert loss.item() >= 0.0

    @given(matrices(rows=st.integers(2, 6), cols=st.integers(2, 6)),
           st.integers(0, 2**31 - 1))
    @settings(max_examples=50, deadline=None)
    def test_cross_entropy_grad_rows_sum_to_zero(self, data, seed):
        """d(loss)/d(logits) rows sum to 0: softmax minus one-hot."""
        labels = np.random.default_rng(seed).integers(
            0, data.shape[1], size=data.shape[0])
        x = Tensor(data, requires_grad=True)
        softmax_cross_entropy(x, labels).backward()
        assert np.allclose(x.grad.sum(axis=-1), 0.0, atol=1e-5)
