"""Unit tests for layers, models, losses and optimizers."""

import numpy as np
import pytest

from repro.errors import TrainingError
from repro.graph import load_dataset
from repro.nn import (GCN, MLP, SGD, Adam, GraphSAGE, Linear, Tensor,
                      accuracy, block_aggregation_matrix, build_model,
                      softmax, softmax_cross_entropy, zeros)
from repro.sampling import NeighborSampler


@pytest.fixture(scope="module")
def dataset():
    return load_dataset("ogb-arxiv", scale=0.25)


@pytest.fixture(scope="module")
def subgraph(dataset):
    sampler = NeighborSampler((5, 5))
    return sampler.sample(dataset.graph, dataset.train_ids[:32],
                          np.random.default_rng(0))


class TestLinearMLP:
    def test_linear_shapes(self):
        layer = Linear(8, 4, np.random.default_rng(0))
        out = layer.forward(Tensor(np.ones((3, 8))))
        assert out.shape == (3, 4)

    def test_linear_no_bias(self):
        layer = Linear(8, 4, np.random.default_rng(0), bias=False)
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_mlp_depth(self):
        mlp = MLP([8, 16, 4], np.random.default_rng(0))
        assert len(mlp.layers) == 2
        out = mlp.forward(Tensor(np.ones((3, 8))))
        assert out.shape == (3, 4)

    def test_mlp_too_shallow(self):
        with pytest.raises(TrainingError):
            MLP([8], np.random.default_rng(0))

    def test_parameters_collected_recursively(self):
        mlp = MLP([8, 16, 4], np.random.default_rng(0))
        assert len(mlp.parameters()) == 4  # 2 x (weight + bias)

    def test_state_dict_roundtrip(self):
        rng = np.random.default_rng(0)
        a = MLP([4, 8, 2], rng)
        b = MLP([4, 8, 2], np.random.default_rng(1))
        b.load_state_dict(a.state_dict())
        x = Tensor(np.ones((2, 4)))
        assert np.allclose(a.forward(x).data, b.forward(x).data)

    def test_state_dict_shape_mismatch(self):
        a = MLP([4, 8, 2], np.random.default_rng(0))
        b = MLP([4, 4, 2], np.random.default_rng(0))
        with pytest.raises(TrainingError):
            b.load_state_dict(a.state_dict())


class TestAggregationMatrix:
    def test_rows_sum_to_one(self, subgraph):
        for block in subgraph.blocks:
            matrix = block_aggregation_matrix(block)
            sums = np.asarray(matrix.sum(axis=1)).ravel()
            assert np.allclose(sums[sums > 0], 1.0, atol=1e-5)

    def test_shape(self, subgraph):
        block = subgraph.blocks[0]
        matrix = block_aggregation_matrix(block)
        assert matrix.shape == (block.num_dst, block.num_src)

    def test_self_loops_make_isolated_rows_nonzero(self, subgraph):
        block = subgraph.blocks[0]
        matrix = block_aggregation_matrix(block, self_loops=True)
        sums = np.asarray(matrix.sum(axis=1)).ravel()
        assert np.all(sums > 0)


class TestModels:
    def test_gcn_forward_shape(self, dataset, subgraph):
        model = build_model("gcn", dataset.feature_dim, dataset.num_classes,
                            rng=np.random.default_rng(0))
        logits = model.forward(subgraph, dataset.features[
            subgraph.input_nodes])
        assert logits.shape == (len(subgraph.seeds), dataset.num_classes)

    def test_sage_forward_shape(self, dataset, subgraph):
        model = build_model("graphsage", dataset.feature_dim,
                            dataset.num_classes,
                            rng=np.random.default_rng(0))
        logits = model.forward(subgraph, dataset.features[
            subgraph.input_nodes])
        assert logits.shape == (len(subgraph.seeds), dataset.num_classes)

    def test_unknown_model(self):
        with pytest.raises(TrainingError):
            build_model("transformer", 8, 2)

    def test_layer_mismatch_rejected(self, dataset, subgraph):
        model = build_model("gcn", dataset.feature_dim, dataset.num_classes,
                            num_layers=3, rng=np.random.default_rng(0))
        with pytest.raises(TrainingError):
            model.forward(subgraph, dataset.features[subgraph.input_nodes])

    def test_training_reduces_loss(self, dataset, subgraph):
        model = build_model("gcn", dataset.feature_dim, dataset.num_classes,
                            rng=np.random.default_rng(0))
        opt = Adam(model.parameters(), lr=0.01)
        feats = dataset.features[subgraph.input_nodes]
        labels = dataset.labels[subgraph.seeds]
        first = None
        for _step in range(20):
            logits = model.forward(subgraph, feats)
            loss = softmax_cross_entropy(logits, labels)
            if first is None:
                first = loss.item()
            opt.zero_grad()
            loss.backward()
            opt.step()
        assert loss.item() < 0.5 * first

    def test_eval_mode_is_deterministic(self, dataset, subgraph):
        model = build_model("gcn", dataset.feature_dim, dataset.num_classes,
                            rng=np.random.default_rng(0), dropout=0.5)
        model.eval()
        feats = dataset.features[subgraph.input_nodes]
        a = model.forward(subgraph, feats).data
        b = model.forward(subgraph, feats).data
        assert np.array_equal(a, b)

    def test_gcn_class_alias(self):
        assert build_model("sage", 4, 2).__class__ is GraphSAGE
        assert build_model("GCN", 4, 2).__class__ is GCN

    def test_sage_normalize_outputs_unit_rows(self, dataset, subgraph):
        from repro.nn import SAGEConv, Tensor
        conv = SAGEConv(dataset.feature_dim, 16,
                        np.random.default_rng(0), normalize=True)
        block = subgraph.blocks[0]
        out = conv.forward_block(
            block, Tensor(dataset.features[block.src_nodes]))
        norms = np.linalg.norm(out.data, axis=1)
        assert np.allclose(norms[norms > 1e-6], 1.0, atol=1e-4)

    def test_sage_normalized_still_trains(self, dataset, subgraph):
        from repro.nn import SAGEConv, Tensor
        conv = SAGEConv(dataset.feature_dim, 8,
                        np.random.default_rng(0), normalize=True)
        block = subgraph.blocks[0]
        h = Tensor(dataset.features[block.src_nodes])
        out = conv.forward_block(block, h)
        out.sum().backward()
        assert conv.weight_self.grad is not None
        assert np.all(np.isfinite(conv.weight_self.grad))


class TestLossMetrics:
    def test_softmax_normalizes(self):
        probs = softmax(np.array([[1.0, 2.0, 3.0]]))
        assert np.allclose(probs.sum(), 1.0)

    def test_softmax_stable_for_large_logits(self):
        probs = softmax(np.array([[1000.0, 1000.0]]))
        assert np.allclose(probs, 0.5)

    def test_cross_entropy_perfect_prediction(self):
        logits = np.array([[100.0, 0.0], [0.0, 100.0]])
        loss = softmax_cross_entropy(logits, np.array([0, 1]))
        assert loss.item() < 1e-5

    def test_cross_entropy_shape_mismatch(self):
        with pytest.raises(TrainingError):
            softmax_cross_entropy(np.ones((2, 3)), np.array([0]))

    def test_accuracy(self):
        logits = np.array([[0.9, 0.1], [0.2, 0.8], [0.6, 0.4]])
        assert accuracy(logits, np.array([0, 1, 1])) == pytest.approx(2 / 3)

    def test_accuracy_empty(self):
        assert accuracy(np.zeros((0, 2)), np.array([])) == 0.0


class TestOptimizers:
    def quadratic(self, opt_cls, **kwargs):
        x = zeros(2)
        x.data = np.array([5.0, -3.0], dtype=np.float32)
        opt = opt_cls([x], **kwargs)
        for _step in range(200):
            loss = (x * x).sum()
            opt.zero_grad()
            loss.backward()
            opt.step()
        return x.data

    def test_sgd_converges(self):
        final = self.quadratic(SGD, lr=0.1)
        assert np.abs(final).max() < 1e-3

    def test_sgd_momentum_converges(self):
        final = self.quadratic(SGD, lr=0.05, momentum=0.9)
        assert np.abs(final).max() < 1e-2

    def test_adam_converges(self):
        final = self.quadratic(Adam, lr=0.1)
        assert np.abs(final).max() < 1e-2

    def test_weight_decay_shrinks(self):
        x = zeros(1)
        x.data = np.array([1.0], dtype=np.float32)
        opt = SGD([x], lr=0.1, weight_decay=1.0)
        # Zero-gradient step: only decay acts.
        x.grad = np.zeros(1, dtype=np.float32)
        opt.step()
        assert x.data[0] == pytest.approx(0.9)

    def test_bad_lr(self):
        with pytest.raises(TrainingError):
            SGD([zeros(1)], lr=0)

    def test_empty_params(self):
        with pytest.raises(TrainingError):
            Adam([], lr=0.1)

    def test_step_skips_missing_grads(self):
        x = zeros(2)
        opt = SGD([x], lr=0.1)
        opt.step()  # no grad — should be a no-op, not an error
        assert np.allclose(x.data, 0.0)
