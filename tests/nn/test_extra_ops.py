"""Gradient checks for the extended tensor op set."""

import numpy as np
import pytest

from repro.nn import Tensor

from .test_tensor import check_op, numeric_grad


class TestExtraOps:
    def test_div_gradcheck(self):
        other = Tensor(np.random.default_rng(30).uniform(0.5, 2.0,
                                                         size=(3, 3)))
        check_op(lambda x: (x / other).sum(), (3, 3), seed=30)

    def test_div_denominator_grad(self):
        rng = np.random.default_rng(31)
        numerator = rng.normal(size=(3, 2))

        def build(d):
            return (Tensor(numerator) / d).sum()

        d = Tensor(rng.uniform(0.5, 2.0, size=(3, 2)),
                   requires_grad=True)
        build(d).backward()
        numeric = numeric_grad(lambda arr: float(build(Tensor(arr)).data),
                               d.data.copy())
        assert np.allclose(d.grad, numeric, atol=2e-2)

    def test_exp_gradcheck(self):
        check_op(lambda x: x.exp().sum(), (3, 3), seed=32)

    def test_log_gradcheck(self):
        rng = np.random.default_rng(33)
        x = Tensor(rng.uniform(0.5, 3.0, size=(3, 3)).astype(np.float64),
                   requires_grad=True)
        x.log().sum().backward()
        assert np.allclose(x.grad, 1.0 / x.data, atol=1e-5)

    def test_tanh_gradcheck(self):
        check_op(lambda x: x.tanh().sum(), (4, 2), seed=34)

    def test_pow_gradcheck(self):
        rng = np.random.default_rng(35)
        x = Tensor(rng.uniform(0.5, 2.0, size=(3, 3)).astype(np.float64),
                   requires_grad=True)
        x.pow(3).sum().backward()
        assert np.allclose(x.grad, 3.0 * x.data ** 2, atol=1e-4)

    def test_exp_log_inverse(self):
        x = Tensor(np.random.default_rng(36).normal(size=(4,)))
        roundtrip = x.exp().log()
        assert np.allclose(roundtrip.data, x.data, atol=1e-5)

    def test_l2_normalize_unit_rows(self):
        x = Tensor(np.random.default_rng(37).normal(size=(5, 8)))
        norms = np.linalg.norm(x.l2_normalize_rows().data, axis=1)
        assert np.allclose(norms, 1.0, atol=1e-5)

    def test_l2_normalize_gradcheck(self):
        check_op(lambda x: (x.l2_normalize_rows()
                            * Tensor(np.arange(8.0))).sum(),
                 (3, 8), seed=38)

    def test_l2_normalize_zero_row_safe(self):
        x = Tensor(np.zeros((2, 4)), requires_grad=True)
        out = x.l2_normalize_rows()
        out.sum().backward()
        assert np.all(np.isfinite(out.data))
        assert np.all(np.isfinite(x.grad))

    def test_tanh_bounded(self):
        x = Tensor(np.array([-100.0, 0.0, 100.0]))
        out = x.tanh().data
        assert out[0] == pytest.approx(-1.0)
        assert out[2] == pytest.approx(1.0)
