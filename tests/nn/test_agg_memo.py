"""Memoization of the per-block aggregation operators."""

import numpy as np

from repro.nn import block_aggregation_matrix, build_model
from repro.nn.layers import GATConv
from repro.perf import PERF, perf_overrides
from repro.sampling import NeighborSampler, build_block
from repro.graph.build import from_edges


def small_block():
    return build_block([0, 1], [0, 0, 1], [1, 2, 3])


class TestAggregationMemo:
    def test_repeated_calls_return_same_object(self):
        block = small_block()
        first = block_aggregation_matrix(block, self_loops=True)
        second = block_aggregation_matrix(block, self_loops=True)
        assert first is second

    def test_keyed_by_self_loops(self):
        block = small_block()
        with_loops = block_aggregation_matrix(block, self_loops=True)
        without = block_aggregation_matrix(block, self_loops=False)
        assert with_loops is not without
        assert block_aggregation_matrix(block, self_loops=False) is without

    def test_hit_and_miss_counters(self):
        block = small_block()
        before = PERF.snapshot()
        block_aggregation_matrix(block)
        block_aggregation_matrix(block)
        block_aggregation_matrix(block)
        delta = PERF.delta(before)
        assert delta.get("agg_matrix_misses") == 1
        assert delta.get("agg_matrix_hits") == 2

    def test_memoized_matrix_matches_fresh_build(self):
        block = small_block()
        memoized = block_aggregation_matrix(block, self_loops=True)
        with perf_overrides(memoize_aggregation=False):
            fresh = block_aggregation_matrix(block, self_loops=True)
        assert memoized is not fresh
        assert np.allclose(memoized.toarray(), fresh.toarray())
        # Rows are mean-normalized either way.
        assert np.allclose(memoized.sum(axis=1), 1.0)

    def test_flag_off_disables_memo(self):
        block = small_block()
        with perf_overrides(memoize_aggregation=False):
            first = block_aggregation_matrix(block)
            second = block_aggregation_matrix(block)
        assert first is not second

    def test_clear_caches_forces_rebuild(self):
        block = small_block()
        first = block_aggregation_matrix(block)
        block.clear_caches()
        assert block_aggregation_matrix(block) is not first


class TestGATEdgeMemo:
    def test_edge_lists_memoized(self):
        block = small_block()
        first = GATConv._block_edges_with_self_loops(block)
        second = GATConv._block_edges_with_self_loops(block)
        assert first[0] is second[0] and first[1] is second[1]
        with perf_overrides(memoize_aggregation=False):
            fresh = GATConv._block_edges_with_self_loops(block)
        assert np.array_equal(first[0], fresh[0])
        assert np.array_equal(first[1], fresh[1])


class TestForwardEquivalence:
    def test_model_outputs_identical_with_and_without_memo(self):
        """GCN/SAGE/GAT forward over the same subgraph is bit-identical
        with memoization on and off (same math, cached operator)."""
        rng = np.random.default_rng(0)
        count = 2000
        graph = from_edges(rng.integers(0, 300, count),
                           rng.integers(0, 300, count), 300)
        sampler = NeighborSampler((4, 4))
        subgraph = sampler.sample(graph, np.arange(32),
                                  np.random.default_rng(5))
        features = rng.standard_normal(
            (subgraph.blocks[0].num_src, 16)).astype(np.float32)
        for name in ("gcn", "graphsage", "gat"):
            model = build_model(name, 16, 4, num_layers=2, hidden_dim=8,
                                rng=np.random.default_rng(1), dropout=0.0)
            model.eval()
            memoized = model.forward(subgraph, features).data
            # Second call hits every cache; still identical.
            again = model.forward(subgraph, features).data
            with perf_overrides(memoize_aggregation=False):
                fresh = model.forward(subgraph, features).data
            assert np.array_equal(memoized, again), name
            assert np.array_equal(memoized, fresh), name
