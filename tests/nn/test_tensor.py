"""Unit tests for the autograd engine, including numerical gradient
checks of every op."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.errors import TrainingError
from repro.nn import Tensor, softmax_cross_entropy


def numeric_grad(fn, x, eps=1e-4):
    """Central-difference gradient of scalar ``fn`` at array ``x``."""
    grad = np.zeros_like(x, dtype=np.float64)
    flat = x.reshape(-1)
    out = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        high = fn(x)
        flat[i] = original - eps
        low = fn(x)
        flat[i] = original
        out[i] = (high - low) / (2 * eps)
    return grad


def check_op(build, shape, seed=0, tol=2e-2):
    """Compare autograd and numeric gradients for a scalar-valued op."""
    rng = np.random.default_rng(seed)
    x = rng.normal(size=shape).astype(np.float64)

    tensor = Tensor(x.copy(), requires_grad=True)
    build(tensor).backward()
    auto = tensor.grad

    numeric = numeric_grad(lambda arr: float(build(Tensor(arr)).data), x)
    assert np.allclose(auto, numeric, atol=tol, rtol=tol), \
        f"max err {np.abs(auto - numeric).max()}"


class TestGradientChecks:
    def test_matmul(self):
        w = Tensor(np.random.default_rng(1).normal(size=(4, 3)))
        check_op(lambda x: (x @ w).sum(), (5, 4))

    def test_matmul_weight_grad(self):
        rng = np.random.default_rng(2)
        x_data = rng.normal(size=(5, 4))

        def build(w):
            return (Tensor(x_data) @ w).sum()

        w = Tensor(rng.normal(size=(4, 3)).astype(np.float64),
                   requires_grad=True)
        build(w).backward()
        numeric = numeric_grad(lambda arr: float(build(Tensor(arr)).data),
                               w.data.copy())
        assert np.allclose(w.grad, numeric, atol=2e-2)

    def test_add_broadcast_bias(self):
        x_data = np.random.default_rng(3).normal(size=(6, 4))

        def build(b):
            return (Tensor(x_data) + b).sum()

        b = Tensor(np.zeros(4), requires_grad=True)
        build(b).backward()
        assert np.allclose(b.grad, np.full(4, 6.0))

    def test_mul(self):
        other = Tensor(np.random.default_rng(4).normal(size=(3, 3)))
        check_op(lambda x: (x * other).sum(), (3, 3))

    def test_sub_neg(self):
        other = Tensor(np.random.default_rng(5).normal(size=(3,)))
        check_op(lambda x: (x - other).sum(), (3,))

    def test_relu(self):
        check_op(lambda x: x.relu().sum(), (4, 4), seed=6)

    def test_gather_rows(self):
        idx = np.array([0, 2, 2, 1])
        check_op(lambda x: x.gather_rows(idx).sum(), (3, 4), seed=7)

    def test_concat(self):
        other = Tensor(np.random.default_rng(8).normal(size=(3, 2)))
        check_op(lambda x: x.concat(other).sum(), (3, 4), seed=8)

    def test_spmm(self):
        matrix = sp.random(4, 6, density=0.5, random_state=9,
                           format="csr")
        check_op(lambda x: x.spmm(matrix).sum(), (6, 3), seed=9)

    def test_mean(self):
        check_op(lambda x: x.mean(), (5, 2), seed=10)

    def test_softmax_cross_entropy(self):
        labels = np.array([0, 2, 1])
        check_op(lambda x: softmax_cross_entropy(x, labels), (3, 4),
                 seed=11)

    def test_chain(self):
        w = Tensor(np.random.default_rng(12).normal(size=(4, 4)))
        check_op(lambda x: ((x @ w).relu() @ w).sum(), (3, 4), seed=12)


class TestMechanics:
    def test_grad_accumulates_on_reuse(self):
        x = Tensor(np.ones(3), requires_grad=True)
        (x + x).sum().backward()
        assert np.allclose(x.grad, 2.0)

    def test_backward_requires_scalar(self):
        x = Tensor(np.ones((2, 2)), requires_grad=True)
        with pytest.raises(TrainingError):
            (x * 2).backward()

    def test_backward_explicit_grad(self):
        x = Tensor(np.ones((2, 2)), requires_grad=True)
        (x * 3).backward(np.ones((2, 2)))
        assert np.allclose(x.grad, 3.0)

    def test_no_grad_tracking_without_flag(self):
        x = Tensor(np.ones(3))
        y = (x * 2).sum()
        y.backward()
        assert x.grad is None

    def test_dropout_eval_is_identity(self):
        x = Tensor(np.ones((4, 4)), requires_grad=True)
        out = x.dropout(0.5, np.random.default_rng(0), training=False)
        assert out is x

    def test_dropout_scales(self):
        rng = np.random.default_rng(0)
        x = Tensor(np.ones((2000, 10)))
        out = x.dropout(0.5, rng, training=True)
        # Inverted dropout preserves the expectation.
        assert abs(out.data.mean() - 1.0) < 0.05

    def test_dropout_invalid_p(self):
        x = Tensor(np.ones(3))
        with pytest.raises(TrainingError):
            x.dropout(1.0, np.random.default_rng(0))

    def test_int_input_promoted_to_float(self):
        x = Tensor(np.array([1, 2, 3]))
        assert np.issubdtype(x.data.dtype, np.floating)

    def test_diamond_graph_counts_paths(self):
        # y = a*a contributes grad 2a through two paths.
        a = Tensor(np.array([3.0]), requires_grad=True)
        (a * a).sum().backward()
        assert np.allclose(a.grad, 6.0)
