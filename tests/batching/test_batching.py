"""Unit tests for batch selection and batch-size schedules."""

import numpy as np
import pytest

from repro.errors import SamplingError, TrainingError
from repro.batching import (ClusterBatchSelector, FixedBatchSize,
                            PlateauAdaptiveBatchSize, RandomBatchSelector,
                            StepGrowthBatchSize)
from repro.graph import load_dataset


@pytest.fixture(scope="module")
def dataset():
    return load_dataset("ogb-arxiv", scale=0.25)


class TestRandomSelection:
    def test_covers_all_train_ids_once(self, dataset):
        selector = RandomBatchSelector()
        batches = list(selector.batches(dataset.train_ids, 64,
                                        np.random.default_rng(0)))
        flat = np.concatenate(batches)
        assert sorted(flat) == sorted(dataset.train_ids)

    def test_batch_sizes(self, dataset):
        batches = list(RandomBatchSelector().batches(
            dataset.train_ids, 64, np.random.default_rng(0)))
        assert all(len(b) == 64 for b in batches[:-1])
        assert 0 < len(batches[-1]) <= 64

    def test_shuffled_between_epochs(self, dataset):
        selector = RandomBatchSelector()
        first = next(iter(selector.batches(dataset.train_ids, 64,
                                           np.random.default_rng(1))))
        second = next(iter(selector.batches(dataset.train_ids, 64,
                                            np.random.default_rng(2))))
        assert not np.array_equal(first, second)

    def test_empty_train_set(self):
        with pytest.raises(SamplingError):
            list(RandomBatchSelector().batches([], 8,
                                               np.random.default_rng(0)))

    def test_bad_batch_size(self, dataset):
        with pytest.raises(SamplingError):
            list(RandomBatchSelector().batches(dataset.train_ids, 0,
                                               np.random.default_rng(0)))


class TestClusterSelection:
    def test_covers_all_train_ids_once(self, dataset):
        selector = ClusterBatchSelector(dataset.graph)
        batches = list(selector.batches(dataset.train_ids, 64,
                                        np.random.default_rng(0)))
        flat = np.concatenate(batches)
        assert sorted(flat) == sorted(dataset.train_ids)

    def test_batches_are_denser_than_random(self, dataset):
        """Cluster batches share neighbors: the union of the batch's
        1-hop neighborhoods is smaller than for random batches."""
        def neighborhood_size(batches):
            total = 0
            for batch in batches:
                chunks = [dataset.graph.out_neighbors(v) for v in batch]
                total += len(np.unique(np.concatenate(chunks)))
            return total

        random_batches = list(RandomBatchSelector().batches(
            dataset.train_ids, 64, np.random.default_rng(0)))
        cluster_batches = list(ClusterBatchSelector(dataset.graph).batches(
            dataset.train_ids, 64, np.random.default_rng(0)))
        assert (neighborhood_size(cluster_batches)
                < neighborhood_size(random_batches))

    def test_clustering_cached(self, dataset):
        selector = ClusterBatchSelector(dataset.graph)
        list(selector.batches(dataset.train_ids, 64,
                              np.random.default_rng(0)))
        clusters_first = selector._clusters
        list(selector.batches(dataset.train_ids, 64,
                              np.random.default_rng(1)))
        assert selector._clusters is clusters_first


class TestSchedules:
    def test_fixed(self):
        schedule = FixedBatchSize(128)
        assert schedule.size(0) == schedule.size(99) == 128

    def test_fixed_invalid(self):
        with pytest.raises(TrainingError):
            FixedBatchSize(0)

    def test_step_growth(self):
        schedule = StepGrowthBatchSize(64, 512, factor=2.0, grow_every=2)
        assert schedule.size(0) == 64
        assert schedule.size(2) == 128
        assert schedule.size(4) == 256
        assert schedule.size(100) == 512  # capped

    def test_step_growth_invalid(self):
        with pytest.raises(TrainingError):
            StepGrowthBatchSize(512, 64)
        with pytest.raises(TrainingError):
            StepGrowthBatchSize(64, 512, factor=1.0)

    def test_plateau_grows_on_stagnation(self):
        schedule = PlateauAdaptiveBatchSize(64, 512, factor=2.0, patience=2)
        assert schedule.size(0) == 64
        schedule.observe(0, 0.5)
        schedule.observe(1, 0.5)   # stale 1
        schedule.observe(2, 0.5)   # stale 2 -> grow
        assert schedule.size(3) == 128

    def test_plateau_resets_on_improvement(self):
        schedule = PlateauAdaptiveBatchSize(64, 512, patience=2)
        schedule.observe(0, 0.5)
        schedule.observe(1, 0.6)   # improvement
        schedule.observe(2, 0.7)   # improvement
        assert schedule.size(3) == 64

    def test_plateau_capped_at_maximum(self):
        schedule = PlateauAdaptiveBatchSize(64, 100, factor=4.0, patience=1)
        schedule.observe(0, 0.5)
        schedule.observe(1, 0.5)
        schedule.observe(2, 0.5)
        assert schedule.size(3) == 100
