"""The perf subsystem itself: profiler, workspace pool, flags."""

import numpy as np
import pytest

from repro.perf import (FLAGS, PERF, EvalSubgraphCache, StageProfiler,
                        Workspace, percentile, perf_overrides)
from repro.sampling import NeighborSampler


class TestStageProfiler:
    def test_counters_accumulate(self):
        profiler = StageProfiler()
        profiler.count("hits")
        profiler.count("hits", 2)
        assert profiler.snapshot()["hits"] == 3

    def test_timed_context(self):
        profiler = StageProfiler()
        with profiler.timed("stage"):
            pass
        snap = profiler.snapshot()
        assert snap["stage_seconds"] >= 0.0
        assert snap["stage_calls"] == 1

    def test_timed_survives_exception(self):
        profiler = StageProfiler()
        with pytest.raises(ValueError):
            with profiler.timed("stage"):
                raise ValueError
        assert profiler.snapshot()["stage_calls"] == 1

    def test_delta_drops_unmoved(self):
        profiler = StageProfiler()
        profiler.count("old")
        before = profiler.snapshot()
        profiler.count("new")
        assert profiler.delta(before) == {"new": 1}

    def test_reset(self):
        profiler = StageProfiler()
        profiler.count("x")
        profiler.add_seconds("y", 1.0)
        profiler.reset()
        assert profiler.snapshot() == {}

    def test_global_singleton_exists(self):
        assert isinstance(PERF, StageProfiler)


class TestPercentile:
    def test_matches_numpy_linear_interpolation(self):
        rng = np.random.default_rng(0)
        values = list(rng.exponential(1.0, size=137))
        for q in (0, 10, 50, 90, 95, 99, 100):
            assert percentile(values, q) == pytest.approx(
                np.percentile(values, q), rel=1e-12)

    def test_single_value(self):
        assert percentile([4.2], 50) == 4.2
        assert percentile([4.2], 99) == 4.2

    def test_interpolates_between_ranks(self):
        # ranks 0..3; p50 sits exactly between 2.0 and 3.0.
        assert percentile([1.0, 2.0, 3.0, 4.0], 50) == 2.5

    def test_unsorted_input(self):
        assert percentile([9.0, 1.0, 5.0], 50) == 5.0

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            percentile([], 50)
        with pytest.raises(ValueError):
            percentile([1.0], -1)
        with pytest.raises(ValueError):
            percentile([1.0], 101)


class TestObservations:
    def test_observe_and_percentile(self):
        profiler = StageProfiler()
        for value in [5.0, 1.0, 3.0]:
            profiler.observe("latency", value)
        assert profiler.percentile("latency", 50) == 3.0
        assert profiler.snapshot()["latency_observed"] == 3

    def test_summary_shape(self):
        profiler = StageProfiler()
        for value in range(1, 101):
            profiler.observe("depth", float(value))
        summary = profiler.summary("depth")
        assert summary["count"] == 100
        assert summary["mean"] == pytest.approx(50.5)
        assert summary["p50"] == pytest.approx(
            np.percentile(np.arange(1.0, 101.0), 50))
        assert summary["p95"] <= summary["p99"] <= summary["max"] == 100.0

    def test_summary_missing_returns_none(self):
        assert StageProfiler().summary("nothing") is None

    def test_percentile_missing_raises(self):
        with pytest.raises(KeyError):
            StageProfiler().percentile("nothing", 50)

    def test_reset_clears_observations(self):
        profiler = StageProfiler()
        profiler.observe("x", 1.0)
        profiler.reset()
        assert profiler.summary("x") is None


class TestWorkspace:
    def test_grows_geometrically_and_reuses(self):
        workspace = Workspace()
        with workspace.id_map(10) as lookup:
            assert len(lookup) >= 10
            assert np.all(lookup == -1)
        first_capacity = workspace.id_map_capacity
        with workspace.id_map(5) as lookup:
            pass
        assert workspace.id_map_capacity == first_capacity

    def test_grow_on_larger_request(self):
        workspace = Workspace()
        with workspace.id_map(10):
            pass
        small = workspace.id_map_capacity
        with workspace.id_map(10 * small) as lookup:
            assert len(lookup) >= 10 * small

    def test_reentrant_borrow_gets_fresh_array(self):
        workspace = Workspace()
        with workspace.id_map(8) as outer:
            outer[3] = 7
            with workspace.id_map(8) as inner:
                assert inner is not outer
                assert np.all(inner == -1)
            outer[3] = -1

    def test_caller_restores_invariant(self):
        workspace = Workspace()
        with workspace.id_map(16) as lookup:
            lookup[[2, 5]] = [0, 1]
            lookup[[2, 5]] = -1
        with workspace.id_map(16) as lookup:
            assert np.all(lookup == -1)


class TestPerfOverrides:
    def test_unknown_flag_rejected(self):
        with pytest.raises(AttributeError):
            with perf_overrides(not_a_flag=True):
                pass

    def test_nested_overrides_restore(self):
        assert FLAGS.memoize_aggregation
        with perf_overrides(memoize_aggregation=False):
            with perf_overrides(memoize_aggregation=True):
                assert FLAGS.memoize_aggregation
            assert not FLAGS.memoize_aggregation
        assert FLAGS.memoize_aggregation

    def test_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with perf_overrides(fused_block_assembly=False):
                raise RuntimeError
        assert FLAGS.fused_block_assembly


class TestEvalSubgraphCacheUnit:
    def test_key_depends_on_inputs(self):
        sampler_a = NeighborSampler((4, 4))
        sampler_b = NeighborSampler((4, 4))
        ids = np.arange(10)
        base = EvalSubgraphCache.make_key(sampler_a, ids, 8, 1)
        assert base == EvalSubgraphCache.make_key(sampler_a, ids, 8, 1)
        assert base != EvalSubgraphCache.make_key(sampler_b, ids, 8, 1)
        assert base != EvalSubgraphCache.make_key(sampler_a, ids, 4, 1)
        assert base != EvalSubgraphCache.make_key(sampler_a, ids, 8, 2)
        assert base != EvalSubgraphCache.make_key(sampler_a, ids + 1, 8, 1)

    def test_put_get_clear(self):
        cache = EvalSubgraphCache()
        cache.put("key", ["batch"])
        assert cache.get("key") == ["batch"]
        cache.clear()
        assert cache.get("key") is None

    def test_re_put_replaces_value(self):
        # Last write wins, explicitly: a re-put must not silently keep
        # the stale entry (the pre-fix behavior).
        cache = EvalSubgraphCache()
        cache.put("key", ["stale"])
        cache.put("key", ["fresh"])
        assert cache.get("key") == ["fresh"]

    def test_re_put_does_not_grow_cache(self):
        cache = EvalSubgraphCache(max_entries=2)
        cache.put("a", [1])
        cache.put("a", [2])
        cache.put("b", [3])
        # "a" replaced in place: both keys still resident.
        assert cache.get("a") == [2]
        assert cache.get("b") == [3]
