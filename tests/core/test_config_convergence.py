"""Unit tests for TrainingConfig factories and TrainingCurve."""

import numpy as np
import pytest

from repro.batching import FixedBatchSize, PlateauAdaptiveBatchSize
from repro.core import (TrainingConfig, TrainingCurve, make_partitioner,
                        make_sampler)
from repro.core.config import make_cache
from repro.errors import TrainingError
from repro.graph import load_dataset
from repro.partition import (HashPartitioner, MetisPartitioner,
                             StreamBPartitioner, StreamVPartitioner)
from repro.sampling import (HybridSampler, NeighborSampler, RateSampler,
                            SubgraphSampler)
from repro.transfer import DegreeCache, ExtractLoad, PreSampleCache


class TestFactories:
    def test_partitioner_names(self):
        assert isinstance(make_partitioner("hash"), HashPartitioner)
        assert isinstance(make_partitioner("metis-vet"), MetisPartitioner)
        assert make_partitioner("metis-vet").variant == "vet"
        assert isinstance(make_partitioner("stream-v"), StreamVPartitioner)
        assert isinstance(make_partitioner("stream-b"), StreamBPartitioner)

    def test_unknown_partitioner(self):
        with pytest.raises(TrainingError):
            make_partitioner("quantum")

    def test_sampler_names(self):
        assert isinstance(make_sampler("fanout", fanout=(5, 5)),
                          NeighborSampler)
        assert isinstance(make_sampler("rate", rate=0.2), RateSampler)
        assert isinstance(make_sampler("hybrid"), HybridSampler)
        assert isinstance(make_sampler("subgraph"), SubgraphSampler)

    def test_unknown_sampler(self):
        with pytest.raises(TrainingError):
            make_sampler("psychic")

    def test_cache_factory(self):
        dataset = load_dataset("ogb-arxiv", scale=0.25)
        assert make_cache(None, dataset, 0.5) is None
        assert make_cache("degree", dataset, 0.0) is None
        cache = make_cache("degree", dataset, 0.2)
        assert isinstance(cache, DegreeCache)
        pres = make_cache("presample", dataset, 0.2,
                          sampler=NeighborSampler((3, 3)),
                          seeds=dataset.train_ids[:50],
                          rng=np.random.default_rng(0))
        assert isinstance(pres, PreSampleCache)

    def test_presample_cache_needs_sampler(self):
        dataset = load_dataset("ogb-arxiv", scale=0.25)
        with pytest.raises(TrainingError):
            make_cache("presample", dataset, 0.2)


class TestTrainingConfig:
    def test_defaults_match_paper(self):
        config = TrainingConfig()
        assert config.hidden_dim == 128
        assert config.fanout == (25, 10)
        assert config.num_workers == 4

    def test_build_schedule_from_int(self):
        schedule = TrainingConfig(batch_size=256).build_schedule()
        assert isinstance(schedule, FixedBatchSize)
        assert schedule.size(0) == 256

    def test_build_schedule_passthrough(self):
        adaptive = PlateauAdaptiveBatchSize(64, 512)
        config = TrainingConfig(batch_size=adaptive)
        assert config.build_schedule() is adaptive

    def test_build_components_passthrough(self):
        sampler = NeighborSampler((3, 3))
        transfer = ExtractLoad()
        partitioner = HashPartitioner()
        config = TrainingConfig(sampler=sampler, transfer=transfer,
                                partitioner=partitioner)
        assert config.build_sampler() is sampler
        assert config.build_transfer() is transfer
        assert config.build_partitioner() is partitioner

    def test_with_overrides_copies(self):
        config = TrainingConfig(epochs=5)
        other = config.with_overrides(epochs=9)
        assert config.epochs == 5 and other.epochs == 9

    def test_rng_deterministic(self):
        config = TrainingConfig(seed=7)
        assert (config.rng(1).integers(0, 1000)
                == config.rng(1).integers(0, 1000))


class TestTrainingCurve:
    def build(self):
        curve = TrainingCurve()
        for epoch, acc in enumerate([0.2, 0.5, 0.7, 0.69, 0.71]):
            curve.record(acc, 1.0 - acc, epoch_second=2.0,
                         wall_second=0.1, batch_size=64)
        return curve

    def test_best(self):
        curve = self.build()
        assert curve.best_accuracy == 0.71
        assert curve.best_epoch == 4

    def test_cumulative_time(self):
        curve = self.build()
        assert curve.cumulative_seconds[-1] == pytest.approx(10.0)

    def test_time_to_accuracy(self):
        curve = self.build()
        assert curve.time_to_accuracy(0.5) == pytest.approx(4.0)
        assert curve.time_to_accuracy(0.99) is None

    def test_convergence_time(self):
        curve = self.build()
        # 0.98 * 0.71 = 0.696 -> first reached at epoch 2 (t=6).
        assert curve.convergence_time() == pytest.approx(6.0)

    def test_empty_curve_raises(self):
        with pytest.raises(TrainingError):
            TrainingCurve().best_accuracy

    def test_series_pairs(self):
        curve = self.build()
        series = curve.series()
        assert len(series) == 5
        assert series[0] == (2.0, 0.2)
