"""Integration tests for the high-level Trainer."""

import numpy as np
import pytest

from repro.core import (Trainer, TrainingConfig, adaptive_batch_training,
                        evaluate_model, sweep)
from repro.errors import TrainingError
from repro.graph import load_dataset
from repro.nn import build_model
from repro.sampling import NeighborSampler


@pytest.fixture(scope="module")
def dataset():
    return load_dataset("ogb-arxiv", scale=0.4)


@pytest.fixture(scope="module")
def quick_config():
    return TrainingConfig(epochs=6, batch_size=128, num_workers=2,
                          fanout=(5, 5), partitioner="hash", seed=1)


@pytest.fixture(scope="module")
def quick_result(dataset, quick_config):
    return Trainer(dataset, quick_config).run()


class TestTrainer:
    def test_learns_something(self, dataset, quick_result):
        chance = 1.0 / dataset.num_classes
        assert quick_result.best_val_accuracy > 5 * chance

    def test_curve_lengths(self, quick_result, quick_config):
        assert quick_result.curve.num_epochs == quick_config.epochs
        assert len(quick_result.epoch_stats) == quick_config.epochs

    def test_partition_metadata(self, quick_result):
        assert quick_result.partition_method == "hash"
        assert quick_result.partition_seconds >= 0

    def test_breakdown_shares(self, quick_result):
        shares = quick_result.step_breakdown()
        assert sum(shares.values()) == pytest.approx(1.0)
        assert all(v >= 0 for v in shares.values())

    def test_involved_totals_positive(self, quick_result):
        totals = quick_result.involved_totals()
        assert totals["vertices"] > 0 and totals["edges"] > 0

    def test_test_accuracy_sane(self, quick_result):
        assert 0.0 <= quick_result.test_accuracy <= 1.0

    def test_reproducible(self, dataset, quick_config):
        again = Trainer(dataset, quick_config).run()
        first = Trainer(dataset, quick_config).run()
        assert first.best_val_accuracy == again.best_val_accuracy
        assert np.allclose(first.curve.val_accuracies,
                           again.curve.val_accuracies)

    def test_early_stopping(self, dataset, quick_config):
        config = quick_config.with_overrides(epochs=30,
                                             early_stop_patience=2)
        result = Trainer(dataset, config).run()
        assert result.curve.num_epochs < 30

    def test_too_many_workers(self, dataset):
        with pytest.raises(TrainingError):
            Trainer(dataset,
                    TrainingConfig(num_workers=dataset.num_vertices + 1))

    def test_wall_seconds_recorded(self, quick_result):
        assert quick_result.total_wall_seconds > 0
        assert 0 <= quick_result.partitioning_time_share() < 1

    def test_gpu_memory_clamps_batch_size(self, dataset):
        """A tiny simulated GPU forces the paper's memory-driven batch
        sizing: the requested batch shrinks to what fits."""
        from repro.transfer import DEFAULT_SPEC
        tiny = DEFAULT_SPEC.with_overrides(gpu_memory=1_500_000)
        config = TrainingConfig(epochs=1, batch_size=100_000,
                                fanout=(10, 10), num_workers=1,
                                partitioner="hash", spec=tiny)
        result = Trainer(dataset, config).run()
        assert result.curve.batch_sizes[0] < 100

    def test_gpu_memory_enforcement_can_be_disabled(self, dataset):
        from repro.transfer import DEFAULT_SPEC
        tiny = DEFAULT_SPEC.with_overrides(gpu_memory=1_500_000)
        config = TrainingConfig(epochs=1, batch_size=640,
                                fanout=(10, 10), num_workers=1,
                                partitioner="hash", spec=tiny,
                                enforce_gpu_memory=False)
        result = Trainer(dataset, config).run()
        assert result.curve.batch_sizes[0] == 640

    def test_impossible_memory_raises(self, dataset):
        from repro.transfer import DEFAULT_SPEC
        doll = DEFAULT_SPEC.with_overrides(gpu_memory=1000)
        config = TrainingConfig(epochs=1, batch_size=64,
                                fanout=(10, 10), num_workers=1,
                                partitioner="hash", spec=doll)
        with pytest.raises(TrainingError):
            Trainer(dataset, config).run()


class TestEvaluate:
    def test_empty_ids(self, dataset):
        model = build_model("gcn", dataset.feature_dim,
                            dataset.num_classes,
                            rng=np.random.default_rng(0))
        assert evaluate_model(model, dataset, [], NeighborSampler((3, 3)),
                              np.random.default_rng(0)) == 0.0

    def test_restores_train_mode(self, dataset):
        model = build_model("gcn", dataset.feature_dim,
                            dataset.num_classes,
                            rng=np.random.default_rng(0))
        evaluate_model(model, dataset, dataset.val_ids[:16],
                       NeighborSampler((3, 3)), np.random.default_rng(0))
        assert model.training


class TestSweepAndAdaptive:
    def test_sweep_over_batch_sizes(self, dataset):
        config = TrainingConfig(epochs=2, num_workers=2, fanout=(4, 4),
                                partitioner="hash")
        results = sweep(dataset, config, "batch_size", [64, 256])
        assert set(results) == {64, 256}
        # Smaller batches -> more steps per epoch.
        assert (results[64].epoch_stats[0].num_steps
                > results[256].epoch_stats[0].num_steps)

    def test_sweep_empty_values(self, dataset):
        with pytest.raises(TrainingError):
            sweep(dataset, TrainingConfig(), "batch_size", [])

    def test_adaptive_batch_training_grows(self, dataset):
        config = TrainingConfig(epochs=10, num_workers=2, fanout=(4, 4),
                                partitioner="hash")
        result = adaptive_batch_training(dataset, config, start_size=32,
                                         max_size=256, patience=1)
        sizes = result.curve.batch_sizes
        assert sizes[0] == 32
        assert max(sizes) > 32
