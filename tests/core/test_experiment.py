"""Unit tests for experiment sweep and repeat helpers."""

import pytest

from repro.core import (RepeatedResult, TrainingConfig,
                        compare_partitioners, repeat, run_config)
from repro.errors import TrainingError
from repro.graph import load_dataset


@pytest.fixture(scope="module")
def dataset():
    return load_dataset("ogb-arxiv", scale=0.25)


@pytest.fixture(scope="module")
def config():
    return TrainingConfig(epochs=2, batch_size=128, fanout=(4, 4),
                          num_workers=2, partitioner="hash")


class TestRunAndCompare:
    def test_run_config(self, dataset, config):
        result = run_config(dataset, config)
        assert result.curve.num_epochs == 2

    def test_compare_partitioners_subset(self, dataset, config):
        results = compare_partitioners(dataset, config,
                                       methods=("hash", "metis-v"))
        assert set(results) == {"hash", "metis-v"}
        assert results["metis-v"].partition_method == "metis-v"


class TestRepeat:
    def test_aggregates_over_seeds(self, dataset, config):
        aggregate = repeat(dataset, config, seeds=(0, 1))
        assert len(aggregate.results) == 2
        mean, std = aggregate.best_val_accuracy
        assert 0.0 <= mean <= 1.0
        assert std >= 0.0

    def test_different_seeds_differ(self, dataset, config):
        aggregate = repeat(dataset, config, seeds=(0, 1, 2))
        accs = [r.best_val_accuracy for r in aggregate.results]
        assert len(set(accs)) > 1

    def test_convergence_counts_reached(self, dataset, config):
        aggregate = repeat(dataset, config, seeds=(0, 1))
        mean, std, reached = aggregate.convergence_time(0.5)
        assert reached <= 2
        if reached:
            assert mean > 0

    def test_summary_format(self, dataset, config):
        aggregate = repeat(dataset, config, seeds=(0,))
        summary = aggregate.summary()
        assert summary["runs"] == 1
        assert "±" in summary["best_val_acc"]

    def test_empty_inputs_rejected(self, dataset, config):
        with pytest.raises(TrainingError):
            repeat(dataset, config, seeds=())
        with pytest.raises(TrainingError):
            RepeatedResult([])
