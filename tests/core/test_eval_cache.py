"""Evaluation-subgraph caching and ``evaluate_model`` mode handling."""

import numpy as np
import pytest

from repro import TrainingConfig, Trainer, evaluate_model, perf_overrides
from repro.graph import load_dataset
from repro.nn import build_model
from repro.perf import PERF, EvalSubgraphCache
from repro.sampling import NeighborSampler


@pytest.fixture(scope="module")
def dataset():
    return load_dataset("ogb-arxiv", scale=0.05)


@pytest.fixture(scope="module")
def model(dataset):
    return build_model("gcn", dataset.feature_dim, dataset.num_classes,
                       num_layers=2, hidden_dim=8,
                       rng=np.random.default_rng(0))


def evaluate(model, dataset, sampler, cache, seed=11, batch_size=64,
             ids=None):
    ids = dataset.val_ids if ids is None else ids
    return evaluate_model(model, dataset, ids, sampler,
                          np.random.default_rng(seed),
                          batch_size=batch_size, cache=cache,
                          cache_token=seed)


class TestEvalSubgraphCache:
    def test_replay_matches_fresh_sampling(self, dataset, model):
        sampler = NeighborSampler((4, 4))
        cache = EvalSubgraphCache()
        first = evaluate(model, dataset, sampler, cache)
        replayed = evaluate(model, dataset, sampler, cache)
        uncached = evaluate(model, dataset, sampler, None)
        assert first == replayed == uncached
        assert len(cache) == 1

    def test_hit_miss_counters(self, dataset, model):
        sampler = NeighborSampler((4, 4))
        cache = EvalSubgraphCache()
        before = PERF.snapshot()
        evaluate(model, dataset, sampler, cache)
        evaluate(model, dataset, sampler, cache)
        evaluate(model, dataset, sampler, cache)
        delta = PERF.delta(before)
        assert delta.get("eval_subgraph_misses") == 1
        assert delta.get("eval_subgraph_hits") == 2

    def test_invalidated_by_batch_size(self, dataset, model):
        sampler = NeighborSampler((4, 4))
        cache = EvalSubgraphCache()
        evaluate(model, dataset, sampler, cache, batch_size=64)
        evaluate(model, dataset, sampler, cache, batch_size=32)
        assert len(cache) == 2

    def test_invalidated_by_sampler_and_seed_and_ids(self, dataset, model):
        cache = EvalSubgraphCache()
        evaluate(model, dataset, NeighborSampler((4, 4)), cache)
        evaluate(model, dataset, NeighborSampler((4, 3)), cache)
        evaluate(model, dataset, NeighborSampler((4, 4)), cache, seed=12)
        evaluate(model, dataset, NeighborSampler((4, 4)), cache,
                 ids=dataset.test_ids)
        assert len(cache) == 4

    def test_eviction_bound(self, dataset, model):
        sampler = NeighborSampler((4, 4))
        cache = EvalSubgraphCache(max_entries=2)
        for seed in range(4):
            evaluate(model, dataset, sampler, cache, seed=seed)
        assert len(cache) == 2

    def test_trainer_replays_eval_batches(self, dataset):
        config = TrainingConfig(epochs=3, batch_size=128, fanout=(4, 4),
                                num_workers=1, partitioner="hash", seed=0)
        before = PERF.snapshot()
        Trainer(dataset, config).run()
        delta = PERF.delta(before)
        # Epoch 0 misses; epochs 1-2 replay. The test split keys apart.
        assert delta.get("eval_subgraph_hits", 0) >= 2
        with perf_overrides(eval_subgraph_cache=False):
            before = PERF.snapshot()
            Trainer(dataset, config).run()
        assert PERF.delta(before).get("eval_subgraph_hits", 0) == 0


class TestEvaluateModelMode:
    def test_restores_eval_mode(self, dataset, model):
        """The old behaviour flipped an eval-mode model into training
        mode on exit; the prior mode must be restored instead."""
        sampler = NeighborSampler((4, 4))
        model.eval()
        evaluate(model, dataset, sampler, None)
        assert model.training is False
        model.train()
        evaluate(model, dataset, sampler, None)
        assert model.training is True

    def test_children_follow_restored_mode(self, dataset, model):
        sampler = NeighborSampler((4, 4))
        model.eval()
        evaluate(model, dataset, sampler, None)
        assert all(not conv.training for conv in model.convs)
        model.train()
