"""End-to-end proof that the perf fast paths change time, not math:
for a fixed config and seed, training with every optimisation on is
bit-for-bit identical to training with them all off."""

import pytest

from repro import Trainer, TrainingConfig, perf_overrides
from repro.graph import load_dataset


@pytest.fixture(scope="module")
def runs():
    dataset = load_dataset("ogb-arxiv", scale=0.05)

    def run():
        config = TrainingConfig(epochs=3, batch_size=128, fanout=(4, 4),
                                num_workers=2, partitioner="hash",
                                seed=7)
        return Trainer(dataset, config).run()

    fast = run()
    with perf_overrides(fused_block_assembly=False,
                        memoize_aggregation=False,
                        eval_subgraph_cache=False):
        slow = run()
    return fast, slow


class TestFastPathEquivalence:
    def test_loss_curve_identical(self, runs):
        fast, slow = runs
        assert fast.curve.losses == slow.curve.losses

    def test_accuracy_identical(self, runs):
        fast, slow = runs
        assert fast.curve.val_accuracies == slow.curve.val_accuracies
        assert fast.test_accuracy == slow.test_accuracy

    def test_simulated_time_identical(self, runs):
        fast, slow = runs
        assert fast.curve.epoch_seconds == slow.curve.epoch_seconds
        assert [s.bp_seconds for s in fast.epoch_stats] \
            == [s.bp_seconds for s in slow.epoch_stats]
        assert [s.dt_seconds for s in fast.epoch_stats] \
            == [s.dt_seconds for s in slow.epoch_stats]

    def test_perf_profile_attached(self, runs):
        fast, _slow = runs
        assert fast.perf  # run-level measured profile
        assert "block_assembly_seconds" in fast.perf
        for stats in fast.epoch_stats:
            assert stats.perf is not None
