"""Unit tests for JSON run artifacts."""

import json

import pytest

from repro.core import (Trainer, TrainingConfig, compare_records,
                        load_record, result_to_record, save_result)
from repro.errors import TrainingError
from repro.graph import load_dataset


@pytest.fixture(scope="module")
def result():
    dataset = load_dataset("ogb-arxiv", scale=0.25)
    config = TrainingConfig(epochs=3, batch_size=128, num_workers=2,
                            fanout=(4, 4), partitioner="hash")
    return Trainer(dataset, config).run()


class TestRecords:
    def test_record_is_json_serializable(self, result):
        record = result_to_record(result)
        text = json.dumps(record)
        assert "best_val_accuracy" in text

    def test_record_fields(self, result):
        record = result_to_record(result)
        assert record["schema"] == "repro.training_result.v1"
        assert record["config"]["partitioner"] == "hash"
        assert record["config"]["fanout"] == [4, 4]
        assert len(record["curve"]["val_accuracies"]) == 3
        assert 0 <= record["test_accuracy"] <= 1

    def test_save_and_load_roundtrip(self, result, tmp_path):
        path = save_result(result, tmp_path / "runs" / "run1.json")
        record = load_record(path)
        assert record["best_val_accuracy"] == pytest.approx(
            result.best_val_accuracy)

    def test_load_rejects_foreign_json(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text('{"hello": 1}')
        with pytest.raises(TrainingError):
            load_record(path)

    def test_compare_records_ranks(self, result):
        record = result_to_record(result)
        worse = dict(record, best_val_accuracy=0.0)
        ranked = compare_records([worse, record])
        assert ranked[0][1] >= ranked[1][1]

    def test_compare_missing_metric(self, result):
        record = result_to_record(result)
        with pytest.raises(TrainingError):
            compare_records([record], metric="does_not_exist")
