"""Unit tests for the taxonomy registry and report formatting."""

import pytest

from repro.core import (PARTITIONING_GOALS, SYSTEMS, format_bar,
                        format_series, format_table, systems_by_platform,
                        systems_with_cache, table1_rows, table3_rows,
                        table5_rows)


class TestTaxonomy:
    def test_twenty_four_systems(self):
        assert len(SYSTEMS) == 24

    def test_table1_matches_paper_examples(self):
        rows = {r["system"]: r for r in table1_rows()}
        assert rows["DGL"]["year"] == 2019
        assert rows["PaGraph"]["partition"] == "Streaming"
        assert rows["PaGraph"]["cache"] == "yes"
        assert rows["DistDGL"]["partition"] == "Metis-extend"
        assert rows["Sancus"]["train"] == "Full-batch"
        assert rows["SALIENT++"]["transfer"] == "GPU direct access"
        assert rows["BGL"]["pipeline"] == "yes"

    def test_full_batch_systems_do_not_sample(self):
        for system in SYSTEMS:
            if system.sample_method == "N/A":
                assert not system.sample

    def test_mini_batch_systems_sample(self):
        minibatch = [s for s in SYSTEMS if s.train_method == "Mini-batch"]
        assert all(s.sample for s in minibatch)

    def test_platform_queries(self):
        cpu = systems_by_platform("CPU-cluster")
        assert {s.name for s in cpu} >= {"AliGraph", "AGL", "DistDGL",
                                         "DistGNN", "ByteGNN"}

    def test_cache_systems(self):
        names = {s.name for s in systems_with_cache()}
        assert names == {"PaGraph", "GNNLab", "Sancus", "Legion",
                         "SALIENT++", "BGL"}

    def test_table3_goals(self):
        rows = {r["method"]: r for r in table3_rows()}
        assert rows["Hash"]["goals"] == ["G2", "G4"]
        assert "G1" in rows["Metis-V"]["goals"]
        assert len(rows) == 6
        assert set(PARTITIONING_GOALS) == {"G1", "G2", "G3", "G4"}

    def test_table5_defaults(self):
        rows = {r["system"]: r for r in table5_rows()}
        assert rows["PaGraph"]["batch_size"] == 6000
        assert rows["BNS-GCN"]["sampling_rate"] == 0.1
        assert rows["ByteGNN"]["batch_size"] == 512


class TestReport:
    def test_format_table_alignment(self):
        text = format_table([{"a": 1, "b": "xy"}, {"a": 22, "b": "z"}])
        lines = text.splitlines()
        assert len(lines) == 4  # header, rule, 2 rows
        assert len(set(len(line) for line in lines)) == 1

    def test_format_table_handles_none_and_bool(self):
        text = format_table([{"x": None, "y": True}])
        assert "N/A" in text and "yes" in text

    def test_format_table_empty(self):
        assert "(empty)" in format_table([])

    def test_format_table_title(self):
        text = format_table([{"a": 1}], title="Table X")
        assert text.startswith("Table X")

    def test_format_series(self):
        text = format_series([(0.5, 0.9)], label="acc", x_name="t",
                             y_name="acc")
        assert "[acc]" in text and "t=" in text

    def test_format_bar(self):
        text = format_bar({"hash": 10.0, "metis": 5.0}, label="compute")
        lines = text.splitlines()
        assert lines[0] == "compute"
        assert lines[1].count("#") == 2 * lines[2].count("#")

    def test_format_bar_empty(self):
        assert format_bar({}) == "(empty)"
