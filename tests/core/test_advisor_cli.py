"""Unit tests for the configuration advisor and the CLI."""

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.core import TrainingConfig, advise
from repro.graph import load_dataset


@pytest.fixture(scope="module")
def skewed():
    return load_dataset("amazon", scale=0.25)


@pytest.fixture(scope="module")
def flat():
    return load_dataset("ogb-papers", scale=0.25)


class TestAdvisor:
    def test_covers_all_topics(self, skewed):
        report = advise(skewed)
        topics = {r.topic for r in report.recommendations}
        assert topics >= {"partitioner", "batch_schedule",
                          "batch_selection", "sampler", "transfer",
                          "cache_policy", "pipeline"}

    def test_reasons_cite_sections(self, skewed):
        report = advise(skewed)
        assert all("§" in r.reason for r in report.recommendations)

    def test_power_law_gets_hybrid_and_degree_cache(self, skewed):
        report = advise(skewed)
        assert report.choice("sampler") == "hybrid"
        assert report.choice("cache_policy") == "degree"

    def test_flat_graph_gets_presample_cache(self, flat):
        report = advise(flat)
        assert report.choice("sampler") == "fanout"
        assert report.choice("cache_policy") == "presample"

    def test_single_machine_prefers_hash(self, skewed):
        report = advise(skewed, num_workers=1)
        assert report.choice("partitioner") == "hash"

    def test_multi_machine_prefers_metis_vet(self, skewed):
        report = advise(skewed, num_workers=4)
        assert report.choice("partitioner") == "metis-vet"

    def test_missing_topic_returns_none(self, skewed):
        assert advise(skewed).choice("quantum") is None

    def test_config_kwargs_apply(self, skewed):
        kwargs = advise(skewed).as_config_kwargs()
        config = TrainingConfig(**kwargs)
        assert config.partitioner == "metis-vet"
        assert config.transfer == "zero-copy"
        # The recommended components must be buildable.
        config.build_partitioner()
        config.build_sampler()
        config.build_transfer()


class TestCLI:
    def test_parser_commands(self):
        parser = build_parser()
        args = parser.parse_args(["datasets"])
        assert args.command == "datasets"

    def test_datasets_command(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "reddit" in out and "ogb-papers" in out

    def test_systems_command(self, capsys):
        assert main(["systems"]) == 0
        out = capsys.readouterr().out
        assert "PaGraph" in out and "SALIENT++" in out

    def test_advise_command(self, capsys):
        assert main(["advise", "amazon", "--scale", "0.25"]) == 0
        out = capsys.readouterr().out
        assert "[sampler] hybrid" in out

    def test_partition_command(self, capsys):
        assert main(["partition", "ogb-arxiv", "--scale", "0.25",
                     "--methods", "hash"]) == 0
        out = capsys.readouterr().out
        assert "edge cut" in out

    def test_train_command(self, capsys):
        code = main(["train", "ogb-arxiv", "--scale", "0.25",
                     "--epochs", "2", "--workers", "2",
                     "--batch-size", "128", "--fanout", "4", "4"])
        assert code == 0
        out = capsys.readouterr().out
        assert "best val accuracy" in out

    def test_train_rejects_unknown_dataset(self):
        with pytest.raises(SystemExit):
            main(["train", "imagenet"])


class TestReproduceCommand:
    def test_runs_benchmarks_and_writes_report(self, tmp_path, capsys):
        bench_dir = tmp_path / "benchmarks"
        bench_dir.mkdir()
        (bench_dir / "bench_tiny.py").write_text(
            'print("hello from tiny bench")\n')
        out = tmp_path / "report.md"
        code = main(["reproduce", "--benchmarks-dir", str(bench_dir),
                     "--out", str(out)])
        assert code == 0
        text = out.read_text()
        assert "bench_tiny.py" in text
        assert "hello from tiny bench" in text

    def test_failure_recorded_and_nonzero_exit(self, tmp_path, capsys):
        bench_dir = tmp_path / "benchmarks"
        bench_dir.mkdir()
        (bench_dir / "bench_broken.py").write_text(
            'raise SystemExit("boom")\n')
        out = tmp_path / "report.md"
        code = main(["reproduce", "--benchmarks-dir", str(bench_dir),
                     "--out", str(out)])
        assert code == 1
        assert "FAILED" in out.read_text()

    def test_missing_dir(self, tmp_path, capsys):
        assert main(["reproduce", "--benchmarks-dir",
                     str(tmp_path / "nope")]) == 1

    def test_filter_matches_nothing(self, tmp_path, capsys):
        bench_dir = tmp_path / "benchmarks"
        bench_dir.mkdir()
        (bench_dir / "bench_a.py").write_text("print('a')\n")
        assert main(["reproduce", "--benchmarks-dir", str(bench_dir),
                     "--only", "zzz"]) == 1
