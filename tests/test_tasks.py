"""Unit tests for the link-prediction task and its building blocks."""

import numpy as np
import pytest

from repro.errors import TrainingError
from repro.graph import load_dataset
from repro.nn import (Tensor, binary_cross_entropy_with_logits, roc_auc,
                      sigmoid)
from repro.sampling import NeighborSampler
from repro.tasks import (sample_negative_edges, split_edges,
                         train_link_prediction)


@pytest.fixture(scope="module")
def dataset():
    return load_dataset("ogb-arxiv", scale=0.25)


class TestBCEAndAUC:
    def test_bce_perfect_predictions_near_zero(self):
        logits = np.array([100.0, -100.0])
        loss = binary_cross_entropy_with_logits(logits,
                                                np.array([1.0, 0.0]))
        assert loss.item() < 1e-6

    def test_bce_symmetric_at_zero(self):
        loss = binary_cross_entropy_with_logits(
            np.zeros(4), np.array([0.0, 1.0, 0.0, 1.0]))
        assert loss.item() == pytest.approx(np.log(2), rel=1e-5)

    def test_bce_gradient_is_sigmoid_minus_target(self):
        z = Tensor(np.array([0.5, -1.0]), requires_grad=True)
        targets = np.array([1.0, 0.0])
        binary_cross_entropy_with_logits(z, targets).backward()
        expected = (sigmoid(z.data) - targets) / 2
        assert np.allclose(z.grad, expected, atol=1e-6)

    def test_bce_shape_mismatch(self):
        with pytest.raises(TrainingError):
            binary_cross_entropy_with_logits(np.zeros(3), np.zeros(4))

    def test_sigmoid_stable_extremes(self):
        out = sigmoid(np.array([-1000.0, 0.0, 1000.0]))
        assert out[0] == pytest.approx(0.0)
        assert out[1] == pytest.approx(0.5)
        assert out[2] == pytest.approx(1.0)

    def test_auc_perfect_ranking(self):
        assert roc_auc([0.9, 0.8, 0.2, 0.1], [1, 1, 0, 0]) == 1.0

    def test_auc_inverted_ranking(self):
        assert roc_auc([0.1, 0.2, 0.8, 0.9], [1, 1, 0, 0]) == 0.0

    def test_auc_random_is_half(self):
        rng = np.random.default_rng(0)
        scores = rng.random(2000)
        labels = rng.integers(0, 2, size=2000)
        assert abs(roc_auc(scores, labels) - 0.5) < 0.05

    def test_auc_ties_averaged(self):
        assert roc_auc([0.5, 0.5], [1, 0]) == pytest.approx(0.5)

    def test_auc_degenerate_class(self):
        assert roc_auc([0.1, 0.9], [1, 1]) == 0.5


class TestEdgeSplit:
    def test_partition_of_edges(self, dataset):
        split = split_edges(dataset.graph, np.random.default_rng(0),
                            val_fraction=0.1, test_fraction=0.2)
        total = (len(split.train_edges) + len(split.val_edges)
                 + len(split.test_edges))
        assert total == dataset.graph.num_edges // 2

    def test_train_graph_excludes_eval_edges(self, dataset):
        split = split_edges(dataset.graph, np.random.default_rng(0))
        for u, v in split.test_edges[:50]:
            assert not split.train_graph.has_edge(int(u), int(v))

    def test_train_graph_contains_train_edges(self, dataset):
        split = split_edges(dataset.graph, np.random.default_rng(0))
        for u, v in split.train_edges[:50]:
            assert split.train_graph.has_edge(int(u), int(v))

    def test_invalid_fractions(self, dataset):
        with pytest.raises(TrainingError):
            split_edges(dataset.graph, np.random.default_rng(0),
                        val_fraction=0.6, test_fraction=0.6)


class TestNegativeSampling:
    def test_negatives_are_non_edges(self, dataset):
        negatives = sample_negative_edges(dataset.graph, 200,
                                          np.random.default_rng(0))
        assert len(negatives) == 200
        for u, v in negatives[:50]:
            assert not dataset.graph.has_edge(int(u), int(v))
            assert u != v


class TestTraining:
    def test_learns_above_chance(self, dataset):
        result = train_link_prediction(
            dataset, NeighborSampler((5, 5)), epochs=10,
            batch_edges=256, seed=0)
        assert result.best_val_auc > 0.55
        assert result.test_auc > 0.55
        assert len(result.val_auc_curve) == 10

    def test_loss_decreases(self, dataset):
        result = train_link_prediction(
            dataset, NeighborSampler((5, 5)), epochs=5, batch_edges=512,
            seed=1)
        assert result.losses[-1] < result.losses[0]

    def test_reproducible(self, dataset):
        first = train_link_prediction(dataset, NeighborSampler((4, 4)),
                                      epochs=2, seed=3)
        again = train_link_prediction(dataset, NeighborSampler((4, 4)),
                                      epochs=2, seed=3)
        assert first.val_auc_curve == again.val_auc_curve
