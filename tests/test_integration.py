"""Cross-module integration tests: full pipeline combinations.

Each test runs the real end-to-end path (partition → sample → transfer
→ train → evaluate) under a different combination of the techniques the
paper evaluates, asserting that training works and the accounting stays
consistent.
"""

import numpy as np
import pytest

from repro import Trainer, TrainingConfig, load_dataset
from repro.sampling import LayerWiseSampler, SubgraphSampler


@pytest.fixture(scope="module")
def dataset():
    return load_dataset("ogb-arxiv", scale=0.25)


def quick(**overrides):
    defaults = dict(epochs=4, batch_size=128, fanout=(5, 5),
                    num_workers=2, partitioner="hash", seed=3)
    defaults.update(overrides)
    return TrainingConfig(**defaults)


CHANCE = 1.0 / 40


class TestModelVariants:
    def test_graphsage_end_to_end(self, dataset):
        result = Trainer(dataset, quick(model="graphsage",
                                        epochs=6)).run()
        assert result.best_val_accuracy > 5 * CHANCE

    def test_three_layer_gcn(self, dataset):
        result = Trainer(dataset, quick(num_layers=3,
                                        fanout=(5, 5, 5))).run()
        assert result.best_val_accuracy > 3 * CHANCE

    def test_narrow_hidden_dim(self, dataset):
        result = Trainer(dataset, quick(hidden_dim=32)).run()
        assert result.curve.num_epochs == 4


class TestPartitionerIntegration:
    @pytest.mark.parametrize("method", ["metis-v", "metis-vet",
                                        "stream-v", "stream-b"])
    def test_trainer_with_each_partitioner(self, dataset, method):
        result = Trainer(dataset, quick(partitioner=method)).run()
        assert result.partition_method == method
        assert result.best_val_accuracy > 2 * CHANCE

    def test_stream_v_low_comm_in_trainer(self, dataset):
        stream = Trainer(dataset, quick(partitioner="stream-v",
                                        epochs=2)).run()
        hashed = Trainer(dataset, quick(partitioner="hash",
                                        epochs=2)).run()
        stream_remote = sum(s.remote_feature_bytes
                            for s in stream.epoch_stats)
        hash_remote = sum(s.remote_feature_bytes
                          for s in hashed.epoch_stats)
        assert stream_remote < 0.3 * hash_remote


class TestTransferIntegration:
    @pytest.mark.parametrize("transfer", ["extract-load", "zero-copy",
                                          "hybrid"])
    def test_trainer_with_each_transfer(self, dataset, transfer):
        result = Trainer(dataset, quick(transfer=transfer,
                                        epochs=2)).run()
        assert result.mean_epoch_seconds > 0

    @pytest.mark.parametrize("policy", ["degree", "presample", "random"])
    def test_trainer_with_each_cache(self, dataset, policy):
        cached = Trainer(dataset, quick(cache_policy=policy,
                                        cache_ratio=0.4,
                                        epochs=2)).run()
        plain = Trainer(dataset, quick(epochs=2)).run()
        assert cached.mean_epoch_seconds <= plain.mean_epoch_seconds

    @pytest.mark.parametrize("pipeline", ["none", "bp", "bp+dt"])
    def test_trainer_with_each_pipeline(self, dataset, pipeline):
        result = Trainer(dataset, quick(pipeline=pipeline,
                                        epochs=2)).run()
        assert result.mean_epoch_seconds > 0


class TestReplicationIntegration:
    def test_replication_budget_cuts_remote_traffic(self, dataset):
        base = quick(partitioner="metis-ve", epochs=2, num_workers=4)
        plain = Trainer(dataset, base).run()
        replicated = Trainer(
            dataset, base.with_overrides(replication_budget=0.3)).run()
        plain_bytes = sum(s.remote_feature_bytes
                          for s in plain.epoch_stats)
        repl_bytes = sum(s.remote_feature_bytes
                         for s in replicated.epoch_stats)
        assert repl_bytes < plain_bytes
        assert replicated.partition_method.endswith("+repl")

    def test_zero_budget_leaves_method_name(self, dataset):
        result = Trainer(dataset, quick(replication_budget=0.0,
                                        epochs=1)).run()
        assert not result.partition_method.endswith("+repl")


class TestSamplerIntegration:
    def test_trainer_with_layerwise_sampler(self, dataset):
        result = Trainer(dataset, quick(
            sampler=LayerWiseSampler(128, num_layers=2))).run()
        assert result.best_val_accuracy > 2 * CHANCE

    def test_trainer_with_subgraph_sampler(self, dataset):
        result = Trainer(dataset, quick(
            sampler=SubgraphSampler(num_layers=2,
                                    walk_padding=0.5))).run()
        assert result.curve.num_epochs == 4

    def test_trainer_with_rate_sampler(self, dataset):
        result = Trainer(dataset, quick(sampler="rate",
                                        sample_rate=0.3)).run()
        assert result.best_val_accuracy > 2 * CHANCE

    def test_trainer_with_hybrid_sampler(self, dataset):
        result = Trainer(dataset, quick(sampler="hybrid")).run()
        assert result.best_val_accuracy > 2 * CHANCE


class TestAccountingConsistency:
    def test_epoch_stats_consistent_with_curve(self, dataset):
        result = Trainer(dataset, quick()).run()
        assert len(result.epoch_stats) == result.curve.num_epochs
        for stats, recorded in zip(result.epoch_stats,
                                   result.curve.epoch_seconds):
            assert stats.epoch_seconds == pytest.approx(recorded)

    def test_pipeline_never_exceeds_sequential(self, dataset):
        """The pipelined epoch can never take longer than the sum of
        its sequential stage times."""
        result = Trainer(dataset, quick(pipeline="bp+dt",
                                        num_workers=1)).run()
        for stats in result.epoch_stats:
            sequential = (stats.bp_seconds + stats.dt_seconds
                          + stats.nn_seconds + stats.allreduce_seconds)
            assert stats.epoch_seconds <= sequential + 1e-12

    def test_every_epoch_covers_all_train_vertices(self, dataset):
        result = Trainer(dataset, quick(num_workers=2, epochs=1)).run()
        stats = result.epoch_stats[0]
        # Seeds across workers sum to the training set per epoch.
        assert stats.num_steps >= 1
        assert stats.involved_vertices >= len(dataset.train_ids)
