"""Unit tests for the graph-clustering task (k-means + NMI)."""

import numpy as np
import pytest

from repro import Trainer, TrainingConfig, load_dataset
from repro.errors import TrainingError
from repro.tasks import (cluster_dataset, cluster_embeddings, kmeans,
                         normalized_mutual_information)


@pytest.fixture(scope="module")
def blobs():
    """Three well-separated Gaussian blobs."""
    rng = np.random.default_rng(0)
    centers = np.array([[0.0, 0.0], [10.0, 0.0], [0.0, 10.0]])
    points = np.concatenate([
        center + rng.normal(scale=0.5, size=(50, 2))
        for center in centers])
    labels = np.repeat(np.arange(3), 50)
    return points, labels


class TestKMeans:
    def test_recovers_blobs(self, blobs):
        points, truth = blobs
        labels, centroids, inertia = kmeans(points, 3,
                                            np.random.default_rng(1))
        assert normalized_mutual_information(labels, truth) > 0.95
        assert centroids.shape == (3, 2)
        assert inertia < 200

    def test_single_cluster(self, blobs):
        points, _truth = blobs
        labels, _c, _i = kmeans(points, 1, np.random.default_rng(0))
        assert set(labels) == {0}

    def test_invalid_k(self, blobs):
        points, _truth = blobs
        with pytest.raises(TrainingError):
            kmeans(points, 0, np.random.default_rng(0))
        with pytest.raises(TrainingError):
            kmeans(points, len(points) + 1, np.random.default_rng(0))

    def test_restarts_pick_best(self, blobs):
        points, truth = blobs
        labels = cluster_embeddings(points, 3, np.random.default_rng(2),
                                    restarts=3)
        assert normalized_mutual_information(labels, truth) > 0.9

    def test_deterministic_given_rng(self, blobs):
        points, _truth = blobs
        a, _c, _i = kmeans(points, 3, np.random.default_rng(7))
        b, _c2, _i2 = kmeans(points, 3, np.random.default_rng(7))
        assert np.array_equal(a, b)


class TestNMI:
    def test_identical_partitions(self):
        labels = np.array([0, 0, 1, 1, 2, 2])
        assert normalized_mutual_information(labels, labels) \
            == pytest.approx(1.0)

    def test_renamed_partitions(self):
        a = np.array([0, 0, 1, 1])
        b = np.array([5, 5, 3, 3])
        assert normalized_mutual_information(a, b) == pytest.approx(1.0)

    def test_independent_partitions_near_zero(self):
        rng = np.random.default_rng(0)
        a = rng.integers(0, 4, size=5000)
        b = rng.integers(0, 4, size=5000)
        assert normalized_mutual_information(a, b) < 0.01

    def test_constant_labelings(self):
        a = np.zeros(10, dtype=int)
        assert normalized_mutual_information(a, a) == 1.0

    def test_misaligned_inputs(self):
        with pytest.raises(TrainingError):
            normalized_mutual_information([0, 1], [0])
        with pytest.raises(TrainingError):
            normalized_mutual_information([], [])

    def test_symmetry(self):
        rng = np.random.default_rng(1)
        a = rng.integers(0, 3, 200)
        b = rng.integers(0, 5, 200)
        assert normalized_mutual_information(a, b) == pytest.approx(
            normalized_mutual_information(b, a))


class TestClusterDataset:
    def test_trained_embeddings_find_communities(self):
        dataset = load_dataset("ogb-arxiv", scale=0.25)
        config = TrainingConfig(epochs=5, batch_size=128, fanout=(6, 6),
                                num_workers=1, partitioner="hash")
        trainer = Trainer(dataset, config)
        engine, _p, sampler, model, _opt = trainer._build_engine()
        rng = config.rng(100)
        for _epoch in range(5):
            engine.run_epoch(128, rng)
        result = cluster_dataset(dataset, model, sampler,
                                 rng=np.random.default_rng(0))
        # Planted communities are recoverable from embeddings: far
        # above the ~0 NMI of independent labelings.
        assert result.nmi_vs_communities > 0.5
        assert result.nmi_vs_classes > 0.4
        assert len(result.labels) == dataset.num_vertices
