"""The fleet resilience layer: detector math, breaker transitions,
fleet schedules, crash recovery, and the engine-level guarantees
(k=1 / resilience-off reduce to the baseline bit-for-bit; hedging,
budgets, and recovery actually run when configured)."""

import math
from types import SimpleNamespace

import numpy as np
import pytest

from repro import load_dataset
from repro.errors import (CheckpointError, FaultError, FleetError,
                          TransferError)
from repro.faults.plan import FaultEvent, FaultPlan
from repro.fleet import (BreakerPolicy, CircuitBreaker, DetectorPolicy,
                         FailureDetector, FleetEngine, FleetSchedule,
                         HedgePolicy, ReplicaRecovery, ResiliencePolicy,
                         RoutingPolicy)
from repro.nn import build_model
from repro.serve import BatchPolicy, LayerwiseEmbeddings, \
    LoadGenerator, ServeEngine
from repro.transfer.tiered import TieredCache

POLICY = BatchPolicy(max_batch_size=16, max_wait=0.002)


@pytest.fixture(scope="module")
def data():
    return load_dataset("ogb-arxiv", scale=0.15)


@pytest.fixture(scope="module")
def model(data):
    return build_model("gcn", data.feature_dim, data.num_classes,
                       rng=np.random.default_rng(7))


@pytest.fixture(scope="module")
def embeddings(data, model):
    return LayerwiseEmbeddings(model, data.graph, data.features)


@pytest.fixture(scope="module")
def trace(data):
    return LoadGenerator(data.test_ids, rate=20000.0,
                         num_requests=200, seed=1, skew=0.8).generate()


def answers(report):
    return {r.request.request_id: (r.prediction, r.completion)
            for r in report.responses}


# ----------------------------------------------------------------------
# Failure detection
# ----------------------------------------------------------------------
class TestDetectorPolicy:
    def test_suspect_delay_is_accrual_formula(self):
        policy = DetectorPolicy(heartbeat_interval=2e-4,
                                suspect_phi=2.0, dead_phi=4.0)
        assert policy.suspect_delay == pytest.approx(
            2.0 * math.log(10.0) * 2e-4)
        assert policy.dead_delay == pytest.approx(
            4.0 * math.log(10.0) * 2e-4)
        assert policy.dead_delay > policy.suspect_delay

    def test_default_suspicion_beats_retry_timeout(self):
        # The whole point: suspicion lands an order of magnitude
        # before the 10 ms retry timeout.
        assert DetectorPolicy().suspect_delay < 0.01 / 5

    def test_validation(self):
        with pytest.raises(FleetError, match="heartbeat_interval"):
            DetectorPolicy(heartbeat_interval=0.0)
        with pytest.raises(FleetError, match="suspect_phi"):
            DetectorPolicy(suspect_phi=0.0)
        with pytest.raises(FleetError, match="dead_phi"):
            DetectorPolicy(suspect_phi=3.0, dead_phi=3.0)


class TestFailureDetector:
    def test_last_heartbeat_is_latest_multiple(self):
        detector = FailureDetector(
            DetectorPolicy(heartbeat_interval=2e-4), 2)
        assert detector.last_heartbeat(0, 1.05e-3) \
            == pytest.approx(1.0e-3)
        assert detector.last_heartbeat(0, 2e-4) == pytest.approx(2e-4)
        assert detector.last_heartbeat(0, 0.0) == 0.0

    def test_heartbeat_re_anchors(self):
        detector = FailureDetector(
            DetectorPolicy(heartbeat_interval=2e-4), 2)
        detector.heartbeat(1, 3.3e-4)
        assert detector.last_heartbeat(1, 6e-4) \
            == pytest.approx(5.3e-4)

    def test_suspect_at_follows_crash(self):
        policy = DetectorPolicy(heartbeat_interval=2e-4)
        detector = FailureDetector(policy, 1)
        crash = 1.05e-3
        when = detector.suspect_at(0, crash)
        # Last beat at 1.0 ms, suspicion = last beat + suspect delay,
        # never before the crash itself.
        assert when == pytest.approx(1.0e-3 + policy.suspect_delay)
        assert when >= crash
        assert detector.dead_at(0, crash) > when
        assert detector.mean_detection_delay \
            == pytest.approx(when - crash)

    def test_mean_detection_delay_none_without_crashes(self):
        detector = FailureDetector(DetectorPolicy(), 3)
        assert detector.mean_detection_delay is None


# ----------------------------------------------------------------------
# Circuit breaking
# ----------------------------------------------------------------------
class TestCircuitBreaker:
    def test_lifecycle(self):
        breaker = CircuitBreaker(BreakerPolicy(reset_timeout=1e-3,
                                               half_open_successes=2))
        assert breaker.state == "closed"
        assert breaker.allows(0.0)

        breaker.trip(1.0)
        assert breaker.state == "open"
        assert breaker.trips == 1
        assert not breaker.allows(1.0005)

        # reset_timeout elapses: the next query flips to half-open.
        assert breaker.allows(1.0011)
        assert breaker.state == "half-open"
        assert breaker.half_opens == 1

        breaker.record_success(1.002)
        assert breaker.state == "half-open"
        breaker.record_success(1.003)
        assert breaker.state == "closed"

    def test_retrip_while_open_counts_once(self):
        breaker = CircuitBreaker(BreakerPolicy())
        breaker.trip(0.0)
        breaker.trip(0.001)
        assert breaker.trips == 1

    def test_success_in_closed_is_noop(self):
        breaker = CircuitBreaker(BreakerPolicy())
        breaker.record_success(0.5)
        assert breaker.state == "closed"

    def test_validation(self):
        with pytest.raises(FleetError, match="reset_timeout"):
            BreakerPolicy(reset_timeout=0.0)
        with pytest.raises(FleetError, match="half_open_successes"):
            BreakerPolicy(half_open_successes=0)


class TestPolicyValidation:
    def test_hedge_policy(self):
        with pytest.raises(FleetError, match="delay_quantile"):
            HedgePolicy(delay_quantile=100.0)
        with pytest.raises(FleetError, match="min_delay"):
            HedgePolicy(min_delay=0.0)
        with pytest.raises(FleetError, match="min_observations"):
            HedgePolicy(min_observations=0)

    def test_resilience_policy_budget(self):
        with pytest.raises(FleetError, match="retry_budget"):
            ResiliencePolicy(retry_budget=0)

    def test_members_default_on_and_none_disables(self):
        policy = ResiliencePolicy()
        assert policy.detector is not None
        assert policy.breaker is not None
        assert policy.hedge is not None
        bare = ResiliencePolicy(detector=None, breaker=None, hedge=None)
        assert bare.detector is None and bare.hedge is None


# ----------------------------------------------------------------------
# Fleet schedules (the shared fault grammar, seconds clock)
# ----------------------------------------------------------------------
class TestFleetSchedule:
    def test_compiles_spec_string(self):
        schedule = FleetSchedule(
            "crash@0.001+0.002:w0,straggler@0.001+0.004:w1:x8,"
            "slowlink@0.002+0.002:x0.5", 4)
        assert schedule.crashes == [(0.001, 0, 0.002)]
        assert schedule.multipliers(1, 0.003) == (8.0, 0.5)
        assert schedule.multipliers(1, 0.006) == (1.0, 1.0)
        assert schedule.multipliers(2, 0.003) == (1.0, 0.5)

    def test_windows_are_half_open(self):
        schedule = FleetSchedule("straggler@0.001+0.002:w0:x4", 2)
        assert schedule.multipliers(0, 0.001) == (4.0, 1.0)
        assert schedule.multipliers(0, 0.003) == (1.0, 1.0)

    def test_rejects_training_only_kinds(self):
        with pytest.raises(FaultError, match="training-only"):
            FleetSchedule("halt@2", 4)
        with pytest.raises(FaultError, match="training-only"):
            FleetSchedule("flaky@0+2:w0:p0.3", 4)

    def test_rejects_out_of_range_replica(self):
        with pytest.raises(FleetError, match="replica 7"):
            FleetSchedule("crash@0.001+0.001:w7", 4)

    def test_describe_and_plan_passthrough(self):
        plan = FaultPlan.parse("crash@0.001+0.002:w0")
        schedule = FleetSchedule(plan, 2)
        assert schedule.plan is plan
        assert "crash@0.001" in schedule.describe()
        assert len(schedule) == 1

    def test_needs_plan_or_spec(self):
        with pytest.raises(FaultError, match="FaultPlan or spec"):
            FleetSchedule(42, 4)


# ----------------------------------------------------------------------
# Crash recovery (checkpointer-backed cache snapshots)
# ----------------------------------------------------------------------
def _stub_replica(replica_id, cache):
    return SimpleNamespace(replica_id=replica_id,
                           executor=SimpleNamespace(cache=cache))


def _warmed_cache(num_vertices=32, lookups=3):
    cache = TieredCache(num_vertices, hot_capacity=4, warm_capacity=4,
                        policy="lfu")
    for _ in range(lookups):
        cache.lookup(np.arange(8))
    return cache


class TestReplicaRecovery:
    def test_round_trip_restores_residency(self, tmp_path):
        recovery = ReplicaRecovery(tmp_path)
        cache = _warmed_cache()
        replica = _stub_replica(0, cache)
        reference = cache.snapshot()
        assert recovery.save(replica, clock=0.002)
        assert recovery.snapshots == 1

        cache.evict_all()
        assert cache.residency() == {"hot": 0, "warm": 0}
        assert recovery.restore(replica)
        restored = cache.snapshot()
        assert np.array_equal(restored["tier"], reference["tier"])
        assert np.array_equal(restored["hot_ids"],
                              reference["hot_ids"])
        assert restored["clock"] == reference["clock"]
        assert recovery.recoveries == 1
        assert recovery.cold_recoveries == 0

    def test_cold_recovery_without_snapshot(self, tmp_path):
        recovery = ReplicaRecovery(tmp_path)
        replica = _stub_replica(1, _warmed_cache())
        assert not recovery.restore(replica)
        assert recovery.cold_recoveries == 1

    def test_non_tiered_cache_is_noop(self, tmp_path):
        recovery = ReplicaRecovery(tmp_path)
        replica = _stub_replica(0, None)
        assert not recovery.save(replica, clock=0.0)
        assert not recovery.restore(replica)
        assert recovery.snapshots == 0

    def test_per_replica_files_are_separate(self, tmp_path):
        recovery = ReplicaRecovery(tmp_path)
        recovery.save(_stub_replica(0, _warmed_cache()), clock=0.0)
        recovery.save(_stub_replica(1, _warmed_cache()), clock=0.0)
        assert (tmp_path / "replica-0.ckpt").exists()
        assert (tmp_path / "replica-1.ckpt").exists()

    def test_snapshot_interval_validated(self, tmp_path):
        with pytest.raises(FleetError, match="snapshot_interval"):
            ReplicaRecovery(tmp_path, snapshot_interval=0.0)

    def test_mismatched_snapshot_refused(self):
        cache = _warmed_cache()
        other = TieredCache(32, hot_capacity=2, warm_capacity=2,
                            policy="lru")
        with pytest.raises(TransferError, match="does not match"):
            other.restore(cache.snapshot())

    def test_load_latest_error_is_checkpoint_error(self, tmp_path):
        # The recovery layer catches CheckpointError; make sure the
        # missing-file path actually raises that family.
        from repro.faults import Checkpointer
        with pytest.raises(CheckpointError):
            Checkpointer(tmp_path / "none.ckpt").load_latest()


# ----------------------------------------------------------------------
# Engine-level guarantees
# ----------------------------------------------------------------------
class TestBaselineReduction:
    def test_replication_one_is_identity(self, data, model,
                                         embeddings, trace):
        """k=1 must reproduce the single-owner fleet bit-for-bit."""
        def run(**kwargs):
            return FleetEngine(
                data, model, partition="metis-v", num_replicas=4,
                mode="precomputed", policy=POLICY,
                embeddings=embeddings, seed=3, **kwargs).run(trace)

        base, k1 = run(), run(replication=1)
        assert answers(base) == answers(k1)
        assert base.to_dict() == k1.to_dict()

    def test_schedule_matches_legacy_crashes(self, data, model,
                                             embeddings, trace):
        """A crash driven through a FleetSchedule must be bit-identical
        to the legacy crashes= path (PR 7 parity)."""
        mid = trace[len(trace) // 3].arrival
        common = dict(partition="metis-v", num_replicas=4,
                      mode="precomputed", policy=POLICY,
                      embeddings=embeddings, seed=2,
                      routing=RoutingPolicy(spill_threshold=32))
        legacy = FleetEngine(data, model,
                             crashes=[(mid, 0, 0.05)],
                             **common).run(trace)
        plan = FaultPlan(events=(
            FaultEvent(kind="crash", epoch=mid, worker=0,
                       duration=0.05),))
        scheduled = FleetEngine(data, model, schedule=plan,
                                **common).run(trace)
        assert answers(legacy) == answers(scheduled)
        assert legacy.to_dict() == scheduled.to_dict()

    def test_replication_validated(self, data, model, embeddings):
        with pytest.raises(FleetError, match="replication"):
            FleetEngine(data, model, partition="metis-v",
                        num_replicas=4, mode="precomputed",
                        embeddings=embeddings, replication=5)


class TestResilientRuns:
    def test_detector_reroutes_before_timeout(self, data, model,
                                              embeddings, trace):
        """With the detector on, crash orphans re-enter routing at the
        suspicion instant — well before the 10 ms retry timeout — and
        predictions still bit-match the single server."""
        mid = trace[len(trace) // 3].arrival
        common = dict(partition="metis-v", num_replicas=4,
                      mode="precomputed", policy=POLICY,
                      embeddings=embeddings, seed=2,
                      routing=RoutingPolicy(spill_threshold=32))
        baseline = FleetEngine(data, model,
                               crashes=[(mid, 0, 0.05)],
                               **common).run(trace)
        resilient = FleetEngine(
            data, model, crashes=[(mid, 0, 0.05)], replication=2,
            resilience=ResiliencePolicy(hedge=None),
            **common).run(trace)

        single = ServeEngine(data, model, mode="precomputed",
                             policy=POLICY, embeddings=embeddings,
                             seed=2)
        reference = {r.request.request_id: r.prediction
                     for r in single.run(trace).responses}
        got = {r.request.request_id: r.prediction
               for r in resilient.responses}
        assert all(reference[rid] == p for rid, p in got.items())

        stats = resilient.resilience
        assert stats["suspicions"] == 1
        assert stats["mean_detection_delay"] < 0.01
        assert stats["breaker_trips"] == 1
        # Orphans finish sooner than under the timeout-only baseline.
        assert resilient.latency_max < baseline.latency_max

    def test_backup_serving_billed_locally(self, data, model,
                                           embeddings, trace):
        """With k=2, requests failing over to a backup holder are
        served from its local replica rows."""
        mid = trace[len(trace) // 3].arrival
        report = FleetEngine(
            data, model, partition="metis-v", num_replicas=4,
            mode="precomputed", policy=POLICY, embeddings=embeddings,
            seed=2, routing=RoutingPolicy(spill_threshold=32),
            crashes=[(mid, 0, 0.05)], replication=2,
            resilience=ResiliencePolicy(hedge=None)).run(trace)
        assert report.replication_factor == pytest.approx(2.0)
        assert report.resilience["backup_routed"] > 0

    def test_retry_budget_drops_cascading_orphans(self, data, model,
                                                  embeddings, trace):
        """Two cascading crashes bounce the same orphans twice; a
        budget of 1 drops them instead of amplifying retries."""
        mid = trace[len(trace) // 3].arrival
        report = FleetEngine(
            data, model, partition="metis-v", num_replicas=2,
            mode="precomputed", policy=POLICY, embeddings=embeddings,
            seed=2, routing=RoutingPolicy(spill_threshold=32),
            # The second crash lands ~0.3 ms after the detector
            # re-routes the first crash's orphans (suspicion at
            # ~0.92 ms) — while they are still queued on replica 1.
            crashes=[(mid, 0, 0.05), (mid + 0.0012, 1, 0.05)],
            resilience=ResiliencePolicy(hedge=None, retry_budget=1),
        ).run(trace)
        stats = report.resilience
        assert stats["retry_budget_drops"] > 0
        assert report.dropped >= stats["retry_budget_drops"]
        assert len(report.dropped_request_ids) == report.dropped
        assert report.rejected >= report.dropped
        assert report.completed + report.rejected >= len(trace)

    def test_recovery_snapshots_and_restores(self, data, model,
                                             embeddings, trace,
                                             tmp_path):
        mid = trace[len(trace) // 3].arrival
        report = FleetEngine(
            data, model, partition="metis-v", num_replicas=4,
            mode="precomputed", policy=POLICY, embeddings=embeddings,
            cache_policy="lfu", cache_ratio=0.1, warm_ratio=0.1,
            seed=2, routing=RoutingPolicy(spill_threshold=32),
            crashes=[(mid, 0, 0.01)], replication=2,
            resilience=ResiliencePolicy(hedge=None),
            recovery=ReplicaRecovery(tmp_path,
                                     snapshot_interval=0.002),
        ).run(trace)
        stats = report.resilience
        assert stats["snapshots"] > 0
        assert stats["recoveries"] == 1
        assert report.completed + report.rejected >= len(trace)

    def test_hedging_launches_and_wins(self, data, model, embeddings):
        """Under a straggler window, hedge twins launch on healthy
        replicas and some beat the slow primary."""
        heavy = LoadGenerator(data.test_ids, rate=60000.0,
                              num_requests=400, seed=0,
                              skew=0.8).generate()
        span = heavy[-1].arrival
        plan = ",".join(
            f"straggler@{0.1 * span + i * 0.2 * span:.6f}"
            f"+{0.2 * span:.6f}:w{i}:x8" for i in range(4))
        report = FleetEngine(
            data, model, partition="metis-v", num_replicas=4,
            mode="precomputed",
            policy=BatchPolicy(max_batch_size=16, max_wait=0.0005),
            embeddings=embeddings, seed=0,
            routing=RoutingPolicy(spill_threshold=64,
                                  remote_penalty=8.0),
            schedule=plan, replication=2,
            resilience=ResiliencePolicy()).run(heavy)
        stats = report.resilience
        assert stats["hedges_launched"] > 0
        assert stats["hedges_won"] > 0
        assert stats["hedges_won"] <= stats["hedges_launched"]
        # Every request answered exactly once despite duplication.
        assert report.completed == len(heavy)
        ids = [r.request.request_id for r in report.responses]
        assert len(ids) == len(set(ids))

    def test_resilience_type_validated(self, data, model, embeddings):
        with pytest.raises(FleetError, match="ResiliencePolicy"):
            FleetEngine(data, model, partition="metis-v",
                        num_replicas=2, mode="precomputed",
                        embeddings=embeddings, resilience="yes")
