"""The chaos harness's composable fault schedules and the bench's
input validation.  The full certification (gates, sweeps) lives in
``benchmarks/bench_fleet_chaos.py`` — here we pin the composers'
shapes and their round-trip through the shared ``faults.plan``
grammar."""

import pytest

from repro.errors import ServingError
from repro.faults.plan import FaultPlan
from repro.fleet import FleetSchedule
from repro.fleet.chaos import (QUICK_OVERRIDES, crash_storm, flapping,
                               rolling_stragglers,
                               run_fleet_chaos_bench, slowlink_window)


class TestCrashStorm:
    def test_crashes_in_id_order(self):
        plan = crash_storm(4, start=0.001, down=0.002, count=3,
                           spacing=0.0005)
        events = list(plan)
        assert [e.kind for e in events] == ["crash"] * 3
        assert [e.worker for e in events] == [0, 1, 2]
        assert [e.epoch for e in events] \
            == [0.001, 0.0015, 0.002]
        assert all(e.duration == 0.002 for e in events)

    def test_zero_spacing_is_simultaneous(self):
        plan = crash_storm(4, start=0.001, down=0.002)
        assert len(plan) == 2
        assert {e.epoch for e in plan} == {0.001}

    def test_count_wraps_around_fleet(self):
        plan = crash_storm(2, start=0.001, down=0.001, count=3,
                           spacing=0.001)
        assert [e.worker for e in plan] == [0, 1, 0]


class TestRollingStragglers:
    def test_consecutive_windows(self):
        plan = rolling_stragglers(4, start=0.001, duration=0.002,
                                  magnitude=8.0)
        events = list(plan)
        assert len(events) == 4
        assert [e.worker for e in events] == [0, 1, 2, 3]
        # Window i starts exactly where window i-1 ends.
        for prev, event in zip(events, events[1:]):
            assert event.epoch == pytest.approx(
                prev.epoch + prev.duration)
        assert all(e.magnitude == 8.0 for e in events)

    def test_explicit_count(self):
        plan = rolling_stragglers(4, start=0.001, duration=0.001,
                                  count=2)
        assert len(plan) == 2


class TestFlapping:
    def test_down_defaults_to_half_period(self):
        plan = flapping(1, start=0.002, period=0.004)
        events = list(plan)
        assert len(events) == 3
        assert all(e.worker == 1 for e in events)
        assert all(e.duration == 0.002 for e in events)
        assert [e.epoch for e in events] == [0.002, 0.006, 0.010]

    def test_explicit_down(self):
        plan = flapping(0, start=0.001, period=0.004, count=2,
                        down=0.0005)
        assert all(e.duration == 0.0005 for e in plan)


class TestSlowlinkWindow:
    def test_single_fleetwide_event(self):
        plan = slowlink_window(0.002, 0.004, magnitude=0.25)
        (event,) = list(plan)
        assert event.kind == "slowlink"
        assert event.worker is None
        assert event.magnitude == 0.25


class TestGrammarRoundTrip:
    """Composed plans print in the shared spec grammar and parse back
    (with "nice" numbers — describe() uses %g formatting)."""

    @pytest.mark.parametrize("plan", [
        crash_storm(4, start=0.001, down=0.002, count=2,
                    spacing=0.0005),
        rolling_stragglers(4, start=0.001, duration=0.002),
        flapping(0, start=0.001, period=0.004),
        slowlink_window(0.002, 0.004),
    ])
    def test_describe_parse_identity(self, plan):
        # describe() appends a " [seed=N]" suffix the parser does not
        # take; round-trip the comma-joined event specs.
        spec = ",".join(e.describe() for e in plan)
        parsed = FaultPlan.parse(spec)
        assert ",".join(e.describe() for e in parsed) == spec
        assert [(e.kind, e.worker) for e in parsed] \
            == [(e.kind, e.worker) for e in plan]
        for got, want in zip(parsed, plan):
            assert got.epoch == pytest.approx(want.epoch)
            assert got.duration == pytest.approx(want.duration)
            assert got.magnitude == pytest.approx(want.magnitude)

    def test_composed_plans_compile_to_fleet_schedules(self):
        plan = rolling_stragglers(4, start=0.001, duration=0.002,
                                  magnitude=4.0)
        schedule = FleetSchedule(plan, 4)
        assert schedule.multipliers(2, 0.006) == (4.0, 1.0)
        assert schedule.multipliers(2, 0.009) == (1.0, 1.0)


class TestBenchValidation:
    # Both raises fire before any dataset loads, so these are cheap.
    def test_replication_out_of_range(self):
        with pytest.raises(ServingError, match="replication"):
            run_fleet_chaos_bench(num_replicas=4, replication=5)
        with pytest.raises(ServingError, match="replication"):
            run_fleet_chaos_bench(num_replicas=4, replication=0)

    def test_slo_positive(self):
        with pytest.raises(ServingError, match="slo"):
            run_fleet_chaos_bench(slo=0.0)

    def test_quick_overrides_shrink_the_run(self):
        assert QUICK_OVERRIDES["scale"] < 0.3
        assert QUICK_OVERRIDES["num_requests"] < 1200
        assert set(QUICK_OVERRIDES) == {
            "scale", "train_epochs", "num_requests",
            "rate_multiplier"}
