"""CLI surface for ``repro fleet-bench``: defaults, validation exit
codes, and the quick end-to-end run."""

import json

import pytest

from repro.cli import build_parser, main


class TestParserDefaults:
    def test_defaults(self):
        args = build_parser().parse_args(["fleet-bench", "--quick"])
        assert args.dataset == "ogb-arxiv"
        assert args.rate_multiplier == 100.0
        assert args.replicas == [1, 2, 4, 8]
        assert args.partitioner == "metis-v"
        assert set(args.locality_partitioners) == {
            "hash", "metis-v", "metis-ve", "metis-vet"}
        assert args.max_wait_ms == 0.5
        assert args.cache_ratio == 0.1
        assert args.warm_ratio == 0.1
        assert args.out == "BENCH_fleet.json"
        assert args.quick

    def test_rejects_unknown_partitioner(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["fleet-bench", "--partitioner", "psychic"])

    def test_rejects_out_of_range_cache_ratio(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["fleet-bench", "--cache-ratio", "1.5"])


class TestValidationExitCodes:
    def test_rate_multiplier_below_one(self, capsys):
        code = main(["fleet-bench", "--rate-multiplier", "0.5"])
        assert code == 2
        assert "--rate-multiplier" in capsys.readouterr().err

    def test_negative_max_wait(self, capsys):
        code = main(["fleet-bench", "--max-wait-ms", "-1"])
        assert code == 2
        assert "--max-wait-ms" in capsys.readouterr().err

    def test_cache_budgets_sum_over_one(self, capsys):
        code = main(["fleet-bench", "--cache-ratio", "0.6",
                     "--warm-ratio", "0.6"])
        assert code == 2
        assert "--cache-ratio" in capsys.readouterr().err


class TestQuickEndToEnd:
    def test_quick_run_writes_report(self, tmp_path, capsys):
        out = tmp_path / "BENCH_fleet.json"
        code = main(["fleet-bench", "--quick", "--out", str(out)])
        assert code == 0

        report = json.loads(out.read_text())
        assert report["invariant_exact_match"] is True
        counts = [r["num_replicas"] for r in report["scaling"]]
        assert counts == sorted(set(counts))
        assert counts[0] == 1 and len(counts) >= 2
        for row in report["scaling"]:
            assert row["latency_p50"] <= row["latency_p95"] \
                <= row["latency_p99"]
            assert row["throughput"] > 0
            assert "hot_hit_rate" in row
        # Locality sweep covers both modes per partitioner.
        modes = {(r["partitioner"], r["mode"])
                 for r in report["locality"]}
        assert all((p, "sampled") in modes and (p, "precomputed")
                   in modes for p, _ in modes)
        assert report["failover"]["completed"] > 0

        stdout = capsys.readouterr().out
        assert "Fleet scaling" in stdout
        assert "Routing locality" in stdout
        assert "bit-exact): ok" in stdout
