"""FleetEngine end-to-end: the N=1 == ServeEngine reduction, the
bit-match invariant at N>1, determinism, failover, autoscaling, and
report plumbing."""

import json

import numpy as np
import pytest

from repro import load_dataset
from repro.errors import FleetError, ServingError
from repro.fleet import AutoscalePolicy, FleetEngine, FleetReport, \
    RoutingPolicy
from repro.nn import build_model
from repro.serve import BatchPolicy, LayerwiseEmbeddings, \
    LoadGenerator, ServeEngine

POLICY = BatchPolicy(max_batch_size=16, max_wait=0.002)


@pytest.fixture(scope="module")
def data():
    return load_dataset("ogb-arxiv", scale=0.15)


@pytest.fixture(scope="module")
def model(data):
    return build_model("gcn", data.feature_dim, data.num_classes,
                       rng=np.random.default_rng(7))


@pytest.fixture(scope="module")
def embeddings(data, model):
    return LayerwiseEmbeddings(model, data.graph, data.features)


@pytest.fixture(scope="module")
def trace(data):
    return LoadGenerator(data.test_ids, rate=20000.0,
                         num_requests=200, seed=1, skew=0.8).generate()


def answers(report):
    return {r.request.request_id: (r.prediction, r.completion)
            for r in report.responses}


class TestSingleServerReduction:
    def test_one_replica_fleet_is_serve_engine(self, data, model,
                                               embeddings, trace):
        """A 1-replica fleet must reproduce ServeEngine bit-for-bit:
        same predictions AND same completion times."""
        single = ServeEngine(data, model, mode="precomputed",
                             policy=POLICY, embeddings=embeddings,
                             cache_policy="lfu", cache_ratio=0.1,
                             warm_ratio=0.1, seed=2)
        fleet = FleetEngine(data, model, partition="hash",
                            num_replicas=1, mode="precomputed",
                            policy=POLICY, embeddings=embeddings,
                            cache_policy="lfu", cache_ratio=0.1,
                            warm_ratio=0.1, seed=2)
        want = single.run(trace)
        got = fleet.run(trace)
        assert answers(want) == answers(got)
        assert got.routing_locality == 1.0
        assert got.remote_seconds == 0.0

    @pytest.mark.parametrize("partition", ["hash", "metis-v"])
    def test_sharded_predictions_bit_match(self, data, model,
                                           embeddings, trace,
                                           partition):
        """Re-batching across 4 shards must not change a single
        prediction (row-wise precomputed evaluation)."""
        single = ServeEngine(data, model, mode="precomputed",
                             policy=POLICY, embeddings=embeddings,
                             seed=2)
        fleet = FleetEngine(
            data, model, partition=partition, num_replicas=4,
            mode="precomputed", policy=POLICY, embeddings=embeddings,
            routing=RoutingPolicy(spill_threshold=32), seed=2)
        want = {r.request.request_id: r.prediction
                for r in single.run(trace).responses}
        got_report = fleet.run(trace)
        got = {r.request.request_id: r.prediction
               for r in got_report.responses}
        assert want == got
        assert got_report.completed == len(trace)
        assert got_report.rejected == 0


class TestDeterminism:
    def test_same_seed_identical_runs(self, data, model, embeddings,
                                      trace):
        def run():
            fleet = FleetEngine(data, model, partition="metis-v",
                                num_replicas=4, mode="precomputed",
                                policy=POLICY, embeddings=embeddings,
                                seed=3)
            return fleet.run(trace)

        first, second = run(), run()
        assert answers(first) == answers(second)
        assert first.to_dict() == second.to_dict()


class TestFailover:
    def test_crash_reroutes_and_completes_everything(self, data, model,
                                                     embeddings, trace):
        mid = trace[len(trace) // 3].arrival
        fleet = FleetEngine(
            data, model, partition="metis-v", num_replicas=4,
            mode="precomputed", policy=POLICY, embeddings=embeddings,
            routing=RoutingPolicy(spill_threshold=32),
            crashes=[(mid, 0, 0.05)], seed=2)
        report = fleet.run(trace)
        assert report.completed == len(trace)
        assert report.rejected == 0
        assert report.failovers > 0
        down = [r for r in report.replicas if r.crashes == 1]
        assert len(down) == 1 and down[0].replica == 0
        assert down[0].down_seconds == pytest.approx(0.05)
        # Predictions still bit-match the single server.
        single = ServeEngine(data, model, mode="precomputed",
                             policy=POLICY, embeddings=embeddings,
                             seed=2)
        want = {r.request.request_id: r.prediction
                for r in single.run(trace).responses}
        got = {r.request.request_id: r.prediction
               for r in report.responses}
        assert want == got

    def test_whole_fleet_down_rejects(self, data, model, embeddings,
                                      trace):
        fleet = FleetEngine(
            data, model, partition="hash", num_replicas=2,
            mode="precomputed", policy=POLICY, embeddings=embeddings,
            crashes=[(0.0, 0, 10.0), (0.0, 1, 10.0)], seed=2)
        report = fleet.run(trace)
        assert report.rejected > 0
        assert report.completed + report.rejected >= len(trace)


class TestAutoscale:
    def test_scales_up_under_load(self, data, model, embeddings,
                                  trace):
        fleet = FleetEngine(
            data, model, partition="metis-v", num_replicas=4,
            mode="precomputed", policy=POLICY, embeddings=embeddings,
            routing=RoutingPolicy(spill_threshold=4),
            autoscale=AutoscalePolicy(min_replicas=1,
                                      high_watermark=4.0,
                                      low_watermark=0.5,
                                      cooldown=0.001),
            seed=2)
        report = fleet.run(trace)
        ups = [e for e in report.scale_events if e[1] == "up"]
        assert ups, "expected scale-up events under 10x load"
        assert report.replicas_active_max > 1
        assert report.completed == len(trace)


class TestReport:
    def test_report_round_trips_through_json(self, data, model,
                                             embeddings, trace):
        fleet = FleetEngine(data, model, partition="metis-ve",
                            num_replicas=2, mode="precomputed",
                            policy=POLICY, embeddings=embeddings,
                            cache_policy="lfu", cache_ratio=0.1,
                            warm_ratio=0.1, seed=2)
        report = fleet.run(trace)
        assert isinstance(report, FleetReport)
        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["num_replicas"] == 2
        assert payload["partitioner"] == "metis-ve"
        assert payload["completed"] == len(trace)
        assert 0.0 <= payload["routing_locality"] <= 1.0
        assert 0.0 <= payload["remote_row_fraction"] <= 1.0
        assert payload["throughput"] > 0
        assert len(payload["replicas"]) == 2
        assert "hot_hit_rate" in payload
        shares = payload["breakdown"]
        assert sum(shares.values()) == pytest.approx(1.0)
        assert payload["reject_rate"] == 0.0

    def test_zero_traffic_replica_reports_null_latency(self, data,
                                                       model,
                                                       embeddings):
        """A shard no request ever lands on must render null latency
        fields, not raise (satellite regression test)."""
        # All 30 requests target vertices owned by one metis-v shard.
        fleet = FleetEngine(data, model, partition="metis-v",
                            num_replicas=4, mode="precomputed",
                            policy=POLICY, embeddings=embeddings,
                            seed=2)
        owned = fleet.shards.shard_vertices(0)
        trace = LoadGenerator(owned, rate=2000.0, num_requests=30,
                              seed=4).generate()
        report = fleet.run(trace)
        idle = [r for r in report.replicas if r.completed == 0]
        assert idle, "expected at least one idle replica"
        for replica in idle:
            assert replica.latency_p99 is None
            assert replica.latency_mean is None
        # The busy shard still has numbers.
        busy = next(r for r in report.replicas if r.replica == 0)
        assert busy.latency_p99 is not None
        json.dumps(report.to_dict())   # nulls serialize


class TestValidation:
    def test_empty_trace_rejected(self, data, model, embeddings):
        fleet = FleetEngine(data, model, partition="hash",
                            num_replicas=2, mode="precomputed",
                            embeddings=embeddings)
        with pytest.raises(ServingError):
            fleet.run([])

    def test_partition_name_requires_num_replicas(self, data, model,
                                                  embeddings):
        with pytest.raises(FleetError):
            FleetEngine(data, model, partition="hash",
                        embeddings=embeddings)

    def test_num_replicas_must_match_partition(self, data, model,
                                               embeddings):
        part = fleet_partition(data, 4)
        with pytest.raises(FleetError):
            FleetEngine(data, model, partition=part, num_replicas=2,
                        embeddings=embeddings)

    def test_bad_crash_triples_rejected(self, data, model, embeddings):
        for crashes in ([(0.0, 9, 1.0)],     # unknown replica
                        [(-1.0, 0, 1.0)],    # negative time
                        [(0.0, 0, 0.0)]):    # zero downtime
            with pytest.raises(FleetError):
                FleetEngine(data, model, partition="hash",
                            num_replicas=2, embeddings=embeddings,
                            crashes=crashes)

    def test_unknown_mode_rejected(self, data, model):
        with pytest.raises(ServingError):
            FleetEngine(data, model, partition="hash", num_replicas=2,
                        mode="telepathy")


def fleet_partition(data, parts):
    from repro.core import make_partitioner
    return make_partitioner("hash").partition(
        data.graph, parts, rng=np.random.default_rng(0))
