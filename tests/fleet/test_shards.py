"""Shard-ownership round-trips and halo-set correctness."""

import numpy as np
import pytest

from repro import load_dataset
from repro.core import make_partitioner
from repro.errors import FleetError
from repro.fleet import ShardMap
from repro.graph import from_edges

PARTITIONERS = ["hash", "metis-v", "metis-ve", "metis-vet"]


@pytest.fixture(scope="module")
def data():
    return load_dataset("ogb-arxiv", scale=0.15)


def shard_map(data, name, parts=4):
    part = make_partitioner(name).partition(
        data.graph, parts, split=data.split,
        rng=np.random.default_rng(0))
    return ShardMap(part, data.graph)


class TestOwnershipRoundTrip:
    @pytest.mark.parametrize("name", PARTITIONERS)
    def test_every_vertex_owned_exactly_once(self, data, name):
        shards = shard_map(data, name)
        counts = np.zeros(data.graph.num_vertices, dtype=np.int64)
        for shard in range(shards.num_shards):
            counts[shards.shard_vertices(shard)] += 1
        assert np.array_equal(
            counts, np.ones(data.graph.num_vertices, dtype=np.int64))

    @pytest.mark.parametrize("name", PARTITIONERS)
    def test_owner_agrees_with_assignment(self, data, name):
        shards = shard_map(data, name)
        everyone = np.arange(data.graph.num_vertices)
        owners = shards.owner(everyone)
        assert np.array_equal(owners, shards.assignment)
        # Scalar queries agree with the vectorized answer.
        for v in (0, 1, data.graph.num_vertices - 1):
            assert shards.owner(v) == owners[v]
        # And round-trip: every shard's vertex list maps back to it.
        for shard in range(shards.num_shards):
            vertices = shards.shard_vertices(shard)
            assert (shards.owner(vertices) == shard).all()

    @pytest.mark.parametrize("name", PARTITIONERS)
    def test_sizes_sum_to_graph(self, data, name):
        shards = shard_map(data, name)
        assert shards.shard_sizes().sum() == data.graph.num_vertices

    def test_split_local_remote_partitions_input(self, data):
        shards = shard_map(data, "metis-v")
        query = np.arange(0, data.graph.num_vertices, 3)
        local, remote = shards.split_local_remote(1, query)
        assert len(local) + len(remote) == len(query)
        assert (shards.owner(local) == 1).all()
        assert (shards.owner(remote) != 1).all()
        both = np.sort(np.concatenate([local, remote]))
        assert np.array_equal(both, np.sort(query))


class TestHaloSets:
    def make_map(self):
        # A path 0 -> 1 -> 2 -> 3 plus a chord 0 -> 3, symmetrized:
        #   in-neighbors: 0:{1,3} 1:{0,2} 2:{1,3} 3:{2,0}.
        graph = from_edges([0, 1, 2, 0], [1, 2, 3, 3], 4,
                           symmetrize_edges=True)
        from repro.partition.base import PartitionResult
        assignment = np.array([0, 0, 1, 1])
        return ShardMap(PartitionResult(assignment, 2, "manual"), graph)

    def test_hand_checked_one_hop(self):
        shards = self.make_map()
        # Shard 0 owns {0, 1}; in-neighbors reachable in one hop are
        # {1, 3} u {0, 2} => foreign part {2, 3}.
        assert np.array_equal(shards.halo(0, hops=1), [2, 3])
        # Shard 1 owns {2, 3}; one hop reaches {1, 3} u {2, 0} =>
        # foreign part {0, 1}.
        assert np.array_equal(shards.halo(1, hops=1), [0, 1])

    def test_zero_hops_is_empty(self):
        shards = self.make_map()
        assert len(shards.halo(0, hops=0)) == 0

    def test_halo_is_memoized(self):
        shards = self.make_map()
        assert shards.halo(0, hops=1) is shards.halo(0, hops=1)

    def test_halo_never_contains_owned_vertices(self, data):
        shards = shard_map(data, "metis-v")
        for shard in range(shards.num_shards):
            halo = shards.halo(shard, hops=2)
            assert (shards.owner(halo) != shard).all()

    def test_halo_grows_with_hops(self, data):
        shards = shard_map(data, "metis-v")
        one = shards.halo(0, hops=1)
        two = shards.halo(0, hops=2)
        assert set(one) <= set(two)

    def test_halo_matches_bruteforce_bfs(self, data):
        shards = shard_map(data, "hash")
        graph = data.graph
        in_indptr, in_indices = graph.in_csr()
        owned = set(shards.shard_vertices(2).tolist())
        frontier, reached = set(owned), set(owned)
        for _ in range(2):
            frontier = {
                int(n)
                for v in frontier
                for n in in_indices[in_indptr[v]:in_indptr[v + 1]]
            } - reached
            reached |= frontier
        expected = np.array(sorted(reached - owned))
        assert np.array_equal(shards.halo(2, hops=2), expected)


class TestValidation:
    def test_rejects_mismatched_graph(self, data):
        part = make_partitioner("hash").partition(
            data.graph, 4, rng=np.random.default_rng(0))
        other = from_edges([0], [1], 2)
        with pytest.raises(FleetError):
            ShardMap(part, other)

    def test_rejects_non_partition(self, data):
        with pytest.raises(FleetError):
            ShardMap("not a partition", data.graph)

    def test_rejects_bad_shard_id(self, data):
        shards = shard_map(data, "hash")
        with pytest.raises(FleetError):
            shards.shard_vertices(99)
        with pytest.raises(FleetError):
            shards.halo(-1)

    def test_rejects_negative_hops(self, data):
        shards = shard_map(data, "hash")
        with pytest.raises(FleetError):
            shards.halo(0, hops=-1)

    def test_locality_of_owned_query_is_one(self, data):
        shards = shard_map(data, "metis-v")
        owned = shards.shard_vertices(0)[:10]
        assert shards.locality(0, owned) == 1.0
        assert shards.locality(1, owned) == 0.0
        assert shards.locality(3, np.array([], dtype=np.int64)) == 1.0
