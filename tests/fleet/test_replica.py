"""ShardExecutor billing (local/remote split, single-shard reduction)
and the ReplicaServer queueing shell."""

import numpy as np
import pytest

from repro import load_dataset
from repro.core import make_partitioner
from repro.errors import FleetError
from repro.fleet import ReplicaServer, ShardExecutor, ShardMap
from repro.fleet.metrics import ReplicaReport
from repro.nn import build_model
from repro.serve import BatchPolicy
from repro.serve.executor import BatchExecutor
from repro.serve.requests import InferenceRequest
from repro.transfer.hardware import DEFAULT_SPEC


@pytest.fixture(scope="module")
def data():
    return load_dataset("ogb-arxiv", scale=0.15)


@pytest.fixture(scope="module")
def model(data):
    return build_model("gcn", data.feature_dim, data.num_classes,
                       rng=np.random.default_rng(7))


def make_shards(data, parts, name="metis-v"):
    part = make_partitioner(name).partition(
        data.graph, parts, split=data.split,
        rng=np.random.default_rng(0))
    return ShardMap(part, data.graph)


class TestSingleShardReduction:
    """With one shard everything is local: the shard executor must
    charge *bit-identical* seconds to the base executor."""

    @pytest.mark.parametrize("kwargs", [
        dict(cache_policy="lfu", cache_ratio=0.1, warm_ratio=0.1),
        dict(cache_policy="lru", cache_ratio=0.2),
        dict(cache_ratio=0.0),
    ])
    def test_precomputed_billing_reduces(self, data, model, kwargs):
        shards = make_shards(data, 1, name="hash")
        base = BatchExecutor(data, model, mode="precomputed", **kwargs)
        sharded = ShardExecutor(shards, 0, data, model,
                                mode="precomputed",
                                embeddings=base.embeddings, **kwargs)
        rng = np.random.default_rng(0)
        vertices = rng.choice(data.test_ids, size=48)
        for batch in np.split(vertices, 3):
            want = base.execute(batch, np.random.default_rng(1))
            got = sharded.execute(batch, np.random.default_rng(1))
            assert np.array_equal(want[0], got[0])
            assert want[1:] == got[1:]       # bp/dt/nn, bit-exact
        assert sharded.remote_rows == 0
        assert sharded.remote_seconds == 0.0
        assert sharded.local_rows > 0

    def test_sampled_flat_billing_reduces(self, data, model):
        shards = make_shards(data, 1, name="hash")
        model.eval()   # engines do this in run(); we call execute raw
        base = BatchExecutor(data, model, mode="sampled",
                             cache_ratio=0.2)
        sharded = ShardExecutor(shards, 0, data, model, mode="sampled",
                                cache_ratio=0.2)
        vertices = data.test_ids[:16]
        want = base.execute(vertices, np.random.default_rng(5))
        got = sharded.execute(vertices, np.random.default_rng(5))
        assert np.array_equal(want[0], got[0])
        assert want[1:] == got[1:]


class TestRemoteBilling:
    def test_remote_rows_cost_more_than_local(self, data, model):
        """The same cold fetch priced remotely must cost at least the
        network latency more than priced locally."""
        shards = make_shards(data, 4)
        executor = ShardExecutor(shards, 0, data, model,
                                 mode="precomputed", cache_ratio=0.0)
        local = shards.shard_vertices(0)[:8]
        remote = shards.shard_vertices(1)[:8]
        row_bytes = 256
        local_cost = executor._bill_flat(local, row_bytes)
        assert executor.last_remote_rows == 0
        remote_cost = executor._bill_flat(remote, row_bytes)
        assert executor.last_remote_rows == len(remote)
        assert remote_cost > local_cost
        assert remote_cost - local_cost \
            >= DEFAULT_SPEC.network_latency * 0.99
        assert executor.remote_rows == len(remote)
        assert executor.remote_seconds > 0

    def test_messages_scale_with_owner_count(self, data, model):
        """Remote rows spread over three owner shards pay three
        network messages; the same count from one shard pays one."""
        shards = make_shards(data, 4)
        executor = ShardExecutor(shards, 0, data, model,
                                 mode="precomputed", cache_ratio=0.0)
        one_owner = shards.shard_vertices(1)[:6]
        three_owners = np.concatenate([
            shards.shard_vertices(1)[:2],
            shards.shard_vertices(2)[:2],
            shards.shard_vertices(3)[:2]])
        row_bytes = 128
        single = executor._bill_flat(one_owner, row_bytes)
        spread = executor._bill_flat(three_owners, row_bytes)
        assert spread == pytest.approx(
            single + 2 * DEFAULT_SPEC.network_latency)

    def test_tiered_cold_split_accumulates_tiers(self, data, model):
        shards = make_shards(data, 4)
        executor = ShardExecutor(shards, 0, data, model,
                                 mode="precomputed",
                                 cache_policy="lfu", cache_ratio=0.05,
                                 warm_ratio=0.05)
        mixed = np.concatenate([shards.shard_vertices(0)[:8],
                                shards.shard_vertices(2)[:8]])
        seconds = executor.fetch_seconds(mixed, 256)
        assert seconds > 0
        assert executor.remote_rows == 8
        assert executor.tier_seconds["cold"] > 0
        assert executor.remote_seconds > 0
        # Remote network time is part of the fetch total.
        assert executor.remote_seconds < seconds

    def test_replica_id_validated(self, data, model):
        shards = make_shards(data, 2)
        with pytest.raises(FleetError):
            ShardExecutor(shards, 5, data, model, mode="precomputed")


class TestReplicaServer:
    def make_replica(self, data, model, shards, replica_id=0,
                     **kwargs):
        executor = ShardExecutor(shards, replica_id, data, model,
                                 mode="precomputed", cache_ratio=0.0)
        return ReplicaServer(replica_id, shards, executor,
                             policy=BatchPolicy(max_batch_size=4,
                                                max_wait=1e-3),
                             **kwargs)

    def test_dispatch_serves_fifo_and_stamps_replica(self, data,
                                                     model):
        shards = make_shards(data, 2)
        replica = self.make_replica(data, model, shards, replica_id=1)
        owned = shards.shard_vertices(1)
        for i in range(4):
            ok = replica.submit(
                InferenceRequest(i, int(owned[i]), arrival=i * 1e-4),
                is_owner=True)
            assert ok
        assert replica.next_dispatch_time(False) == 0.0  # full batch
        responses = replica.dispatch(clock=5e-4)
        assert [r.request.request_id for r in responses] == [0, 1, 2, 3]
        assert all(r.replica == 1 for r in responses)
        assert all(r.completion > 5e-4 for r in responses)
        assert replica.completed == 4
        assert replica.free_at == responses[0].completion

    def test_bounded_queue_rejects(self, data, model):
        shards = make_shards(data, 1, name="hash")
        replica = self.make_replica(data, model, shards, max_queue=2)
        for i in range(2):
            assert replica.submit(InferenceRequest(i, 0, 0.0), True)
        assert not replica.submit(InferenceRequest(9, 0, 0.0), True)
        assert replica.rejected == 1
        assert replica.queue_depth == 2

    def test_crash_drains_queue_and_stops_accepting(self, data, model):
        shards = make_shards(data, 1, name="hash")
        replica = self.make_replica(data, model, shards)
        for i in range(3):
            replica.submit(InferenceRequest(i, 0, 0.0), True)
        orphans = replica.crash(clock=1e-3, down_seconds=5e-3)
        assert [r.request_id for r in orphans] == [0, 1, 2]
        assert replica.queue_depth == 0
        assert not replica.accepting
        assert replica.next_dispatch_time(True) is None
        replica.recover(clock=6e-3)
        assert replica.accepting
        assert replica.crashes == 1
        assert replica.down_seconds == 5e-3

    def test_partial_batch_waits_for_deadline(self, data, model):
        shards = make_shards(data, 1, name="hash")
        replica = self.make_replica(data, model, shards)
        replica.submit(InferenceRequest(0, 0, arrival=2e-3), True)
        # Not draining: flush at arrival + max_wait.
        assert replica.next_dispatch_time(False) \
            == pytest.approx(3e-3)
        # Draining: flush as soon as the server is free.
        assert replica.next_dispatch_time(True) == replica.free_at

    def test_zero_traffic_report_has_null_latency(self, data, model):
        shards = make_shards(data, 2)
        replica = self.make_replica(data, model, shards)
        report = replica.report()
        assert isinstance(report, ReplicaReport)
        assert report.completed == 0
        assert report.latency_mean is None
        assert report.latency_p50 is None
        assert report.latency_p99 is None
        assert report.latency_max is None
        # ... and it still serializes (JSON null, not an exception).
        import json
        assert json.loads(json.dumps(report.to_dict()))[
            "latency_p99"] is None

    def test_executor_shard_mismatch_rejected(self, data, model):
        shards = make_shards(data, 2)
        executor = ShardExecutor(shards, 0, data, model,
                                 mode="precomputed")
        with pytest.raises(FleetError):
            ReplicaServer(1, shards, executor)
