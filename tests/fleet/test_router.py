"""Router dispatch rules and the queue-depth autoscaler, exercised
against lightweight replica stubs (no model, no dataset)."""

import pytest

from repro.errors import FleetError
from repro.fleet import AutoscalePolicy, Autoscaler, Router, \
    RoutingPolicy
from repro.serve.requests import InferenceRequest


class StubShards:
    """owner(v) = v mod num_shards — enough for routing tests."""

    def __init__(self, num_shards):
        self.num_shards = num_shards

    def owner(self, vertex):
        return int(vertex) % self.num_shards


class StubReplica:
    def __init__(self, replica_id, queue_depth=0):
        self.replica_id = replica_id
        self.queue_depth = queue_depth
        self.alive = True
        self.active = True
        self.draining = False

    @property
    def accepting(self):
        return self.alive and self.active and not self.draining


def make_router(depths, policy=None):
    replicas = [StubReplica(i, d) for i, d in enumerate(depths)]
    router = Router(StubShards(len(depths)), replicas, policy)
    return router, replicas


def request(vertex, request_id=0):
    return InferenceRequest(request_id, vertex, arrival=0.0)


class TestRouting:
    def test_owner_first(self):
        router, replicas = make_router([50, 0, 0, 0])
        # No spillover configured: the owner wins however deep its
        # queue is.
        replica, is_owner = router.route(request(vertex=4))
        assert replica is replicas[0]
        assert is_owner
        assert router.spillovers == 0

    def test_spillover_over_threshold(self):
        policy = RoutingPolicy(spill_threshold=8, remote_penalty=2.0)
        router, replicas = make_router([10, 5, 3, 7], policy)
        # Owner 0 is over threshold; penalized depths are 10 (owner,
        # exempt), 7, 5, 9 -> replica 2 wins.
        replica, is_owner = router.route(request(vertex=0))
        assert replica is replicas[2]
        assert not is_owner
        assert router.spillovers == 1
        assert router.failovers == 0

    def test_busy_owner_still_wins_under_penalty(self):
        policy = RoutingPolicy(spill_threshold=8, remote_penalty=8.0)
        router, replicas = make_router([9, 4, 4, 4], policy)
        # Penalized: owner 9 vs 12/12/12 -> owner keeps the request
        # (and it does not count as a spillover).
        replica, is_owner = router.route(request(vertex=0))
        assert replica is replicas[0]
        assert is_owner
        assert router.spillovers == 0

    def test_spillover_ties_break_to_lower_id(self):
        policy = RoutingPolicy(spill_threshold=4, remote_penalty=0.0)
        router, replicas = make_router([6, 2, 2, 2], policy)
        replica, _ = router.route(request(vertex=0))
        assert replica is replicas[1]

    def test_failover_skips_dead_owner(self):
        router, replicas = make_router([0, 3, 1, 2])
        replicas[0].alive = False
        replica, is_owner = router.route(request(vertex=0))
        assert replica is replicas[2]      # min depth among survivors
        assert not is_owner
        assert router.failovers == 1

    def test_draining_owner_fails_over(self):
        router, replicas = make_router([0, 1])
        replicas[0].draining = True
        replica, is_owner = router.route(request(vertex=0))
        assert replica is replicas[1]
        assert not is_owner

    def test_unroutable_when_all_down(self):
        router, replicas = make_router([0, 0])
        for replica in replicas:
            replica.alive = False
        with pytest.raises(FleetError):
            router.route(request(vertex=0))

    def test_replica_count_must_match_shards(self):
        with pytest.raises(FleetError):
            Router(StubShards(4), [StubReplica(0), StubReplica(1)])

    def test_policy_validation(self):
        with pytest.raises(FleetError):
            RoutingPolicy(spill_threshold=0)
        with pytest.raises(FleetError):
            RoutingPolicy(remote_penalty=-1.0)


class TestAutoscalePolicy:
    def test_watermark_ordering_enforced(self):
        with pytest.raises(FleetError):
            AutoscalePolicy(high_watermark=2.0, low_watermark=2.0)

    def test_min_replicas_floor(self):
        with pytest.raises(FleetError):
            AutoscalePolicy(min_replicas=0)

    def test_negative_cooldown_rejected(self):
        with pytest.raises(FleetError):
            AutoscalePolicy(cooldown=-1.0)


class TestAutoscaler:
    def make(self, depths, **policy_kwargs):
        policy_kwargs.setdefault("min_replicas", 1)
        policy_kwargs.setdefault("high_watermark", 10.0)
        policy_kwargs.setdefault("low_watermark", 2.0)
        policy_kwargs.setdefault("cooldown", 1.0)
        replicas = [StubReplica(i, d) for i, d in enumerate(depths)]
        scaler = Autoscaler(AutoscalePolicy(**policy_kwargs), replicas)
        return scaler, replicas

    def test_starts_at_min_replicas(self):
        scaler, replicas = self.make([0, 0, 0, 0], min_replicas=2)
        assert [r.active for r in replicas] == [True, True, False,
                                                False]
        assert scaler.active_max == 2

    def test_scales_up_over_high_watermark(self):
        scaler, replicas = self.make([20, 0, 0])
        scaler.evaluate(clock=5.0)
        assert replicas[1].active
        assert not replicas[2].active          # one step per call
        assert scaler.events == [(5.0, "up", 1, 20.0)]
        assert scaler.active_max == 2

    def test_cooldown_blocks_back_to_back_changes(self):
        scaler, replicas = self.make([30, 0, 0], cooldown=1.0)
        scaler.evaluate(clock=5.0)
        scaler.evaluate(clock=5.5)             # inside cooldown
        assert not replicas[2].active
        scaler.evaluate(clock=6.5)             # cooldown elapsed
        assert replicas[2].active

    def test_hysteresis_band_holds_steady(self):
        scaler, replicas = self.make([5, 5], min_replicas=2)
        scaler.evaluate(clock=5.0)             # 2.0 < 5 < 10.0
        assert scaler.events == []

    def test_scales_down_via_drain(self):
        scaler, replicas = self.make([1, 1], min_replicas=1)
        replicas[1].active = True       # as if scaled up earlier
        scaler.evaluate(clock=5.0)
        assert replicas[1].draining            # highest id drains
        assert replicas[1].active              # still serving its queue
        assert scaler.events == [(5.0, "drain", 1, 1.0)]
        # Queue empties -> deactivate.
        replicas[1].queue_depth = 0
        scaler.finalize_drains(clock=6.0)
        assert not replicas[1].active
        assert not replicas[1].draining
        assert scaler.events[-1] == (6.0, "down", 1, 0.0)

    def test_never_drains_below_min(self):
        scaler, replicas = self.make([0, 0], min_replicas=2)
        scaler.evaluate(clock=5.0)
        assert not any(r.draining for r in replicas)

    def test_min_replicas_cannot_exceed_fleet(self):
        with pytest.raises(FleetError):
            self.make([0, 0], min_replicas=3)


class ReplicatedStubShards(StubShards):
    """StubShards plus k-redundant holders: owner + cyclic successors
    (mirrors partition.replication's placement)."""

    replicated = True

    def __init__(self, num_shards, k=2):
        super().__init__(num_shards)
        self.k = k

    def holders(self, vertex):
        owner = self.owner(vertex)
        return [(owner + off) % self.num_shards
                for off in range(self.k)]

    def backups(self, vertex):
        return self.holders(vertex)[1:]


def make_replicated_router(depths, policy=None, k=2):
    replicas = [StubReplica(i, d) for i, d in enumerate(depths)]
    router = Router(ReplicatedStubShards(len(depths), k=k), replicas,
                    policy)
    return router, replicas


class TestReplicatedRouting:
    def test_dead_owner_fails_over_to_backup(self):
        policy = RoutingPolicy(remote_penalty=8.0)
        router, replicas = make_replicated_router([0, 5, 2, 2], policy)
        replicas[0].alive = False
        # vertex 0: owner 0 (dead), backup 1.  Penalized costs:
        # r1 (holder, exempt) 5; r2/r3 2+8=10 -> the backup wins even
        # with the deepest queue among survivors.
        replica, is_owner = router.route(request(vertex=0))
        assert replica is replicas[1]
        assert not is_owner
        assert router.failovers == 1
        assert router.backup_routed == 1

    def test_draining_owner_fails_over_to_backup(self):
        policy = RoutingPolicy(remote_penalty=8.0)
        router, replicas = make_replicated_router([0, 5, 2, 2], policy)
        replicas[0].draining = True
        replica, is_owner = router.route(request(vertex=0))
        assert replica is replicas[1]
        assert not is_owner
        assert router.failovers == 1
        assert router.backup_routed == 1

    def test_backup_exempt_from_penalty_on_spillover(self):
        policy = RoutingPolicy(spill_threshold=4, remote_penalty=8.0)
        router, replicas = make_replicated_router([6, 5, 2, 2], policy)
        # Owner over threshold; costs: owner 6, backup 5 (exempt),
        # r2/r3 10.  The backup's local copy wins the spill.
        replica, is_owner = router.route(request(vertex=0))
        assert replica is replicas[1]
        assert not is_owner
        assert router.spillovers == 1

    def test_non_holder_failover_not_counted_as_backup(self):
        router, replicas = make_replicated_router([0, 9, 0, 0])
        replicas[0].alive = False
        replicas[1].alive = False          # the backup too
        replica, _ = router.route(request(vertex=0))
        assert replica is replicas[2]
        assert router.backup_routed == 0


class TestBreakerRouting:
    def make(self, depths, reset_timeout=1e-3):
        from repro.fleet import BreakerPolicy, CircuitBreaker
        replicas = [StubReplica(i, d) for i, d in enumerate(depths)]
        breakers = [CircuitBreaker(BreakerPolicy(
            reset_timeout=reset_timeout)) for _ in replicas]
        router = Router(StubShards(len(depths)), replicas,
                        breakers=breakers)
        return router, replicas, breakers

    def test_open_breaker_excludes_owner(self):
        router, replicas, breakers = self.make([0, 3])
        breakers[0].trip(0.0)
        replica, is_owner = router.route(request(vertex=0), now=5e-4)
        assert replica is replicas[1]
        assert not is_owner
        assert router.failovers == 1

    def test_half_open_probe_after_reset_timeout(self):
        router, replicas, breakers = self.make([0, 3],
                                               reset_timeout=1e-3)
        breakers[0].trip(0.0)
        replica, is_owner = router.route(request(vertex=0), now=1.5e-3)
        assert replica is replicas[0]
        assert is_owner
        assert breakers[0].state == "half-open"

    def test_all_breakers_open_is_unroutable(self):
        router, replicas, breakers = self.make([0, 0])
        for breaker in breakers:
            breaker.trip(0.0)
        with pytest.raises(FleetError, match="unroutable"):
            router.route(request(vertex=0), now=1e-4)


class TestRouteHedge:
    def test_excludes_assigned_replicas(self):
        router, replicas = make_replicated_router([0, 5, 2, 2])
        hedged = router.route_hedge(request(vertex=0), exclude={0})
        assert hedged is not None
        replica, is_owner = hedged
        assert replica.replica_id != 0
        assert not is_owner
        # vertex 0's backup (r1) is penalty-exempt: 5 vs 2+8.
        assert replica is replicas[1]
        assert router.backup_routed == 1

    def test_none_when_no_distinct_replica(self):
        router, replicas = make_replicated_router([0, 0], k=2)
        assert router.route_hedge(request(vertex=0),
                                  exclude={0, 1}) is None

    def test_skips_dead_candidates(self):
        router, replicas = make_replicated_router([0, 0, 1, 2])
        replicas[1].alive = False
        replica, _ = router.route_hedge(request(vertex=0), exclude={0})
        assert replica is replicas[2]

    def test_hedge_never_raises_when_empty(self):
        router, replicas = make_router([0, 0])
        for replica in replicas:
            replica.alive = False
        assert router.route_hedge(request(vertex=0),
                                  exclude=set()) is None


class TestAutoscalerReplace:
    def test_activates_standby_for_dead_replica(self):
        replicas = [StubReplica(0), StubReplica(1)]
        scaler = Autoscaler(AutoscalePolicy(min_replicas=1), replicas)
        assert not replicas[1].active
        replicas[0].alive = False
        assert scaler.replace(clock=0.002, dead_id=0)
        assert replicas[1].active
        assert scaler.events[-1] == (0.002, "replace", 1, 0.0)
        assert scaler.active_max == 2

    def test_false_when_no_standby_left(self):
        replicas = [StubReplica(0), StubReplica(1)]
        scaler = Autoscaler(AutoscalePolicy(min_replicas=2), replicas)
        replicas[0].alive = False
        assert not scaler.replace(clock=0.002, dead_id=0)
