"""GPU cache policy comparison — the paper's §7.3.3 (Figure 17).

Sweeps the cache ratio for degree-based and pre-sampling-based caching
on a power-law graph (Amazon stand-in) and a flat-degree graph
(OGB-Papers stand-in), reporting hit rates and simulated transfer time.

Usage::

    python examples/cache_policy_comparison.py
"""

import numpy as np

from repro import load_dataset
from repro.core import format_table
from repro.sampling import NeighborSampler
from repro.transfer import (DEFAULT_SPEC, BatchStats, DegreeCache,
                            PreSampleCache, RandomCache, ZeroCopy)


def transfer_ms(dataset, cache, sampler, seeds, rounds=4):
    method = ZeroCopy()
    rng = np.random.default_rng(3)
    total = 0.0
    for _round in range(rounds):
        batch = rng.permutation(seeds)[:400]
        subgraph = sampler.sample(dataset.graph, batch, rng)
        stats = BatchStats.from_subgraph(subgraph, dataset)
        total += method.transfer(stats, DEFAULT_SPEC,
                                 cache=cache).total_seconds
    return 1e3 * total


def main():
    sampler = NeighborSampler((10, 5))
    rows = []
    for name in ("amazon", "ogb-papers"):
        dataset = load_dataset(name, scale=0.5)
        # Small hot seed set: the big-graph regime where one epoch
        # touches a limited working set (see DESIGN.md).
        seeds = dataset.train_ids[:max(
            16, int(0.02 * dataset.num_vertices))]
        for ratio in (0.1, 0.2, 0.4):
            caches = {
                "random": RandomCache(dataset.graph, ratio,
                                      np.random.default_rng(0)),
                "degree": DegreeCache(dataset.graph, ratio),
                "presample": PreSampleCache(
                    dataset.graph, sampler, seeds, ratio,
                    rng=np.random.default_rng(1)),
            }
            row = {"dataset": name, "ratio": ratio}
            for policy, cache in caches.items():
                ms = transfer_ms(dataset, cache, sampler, seeds)
                row[f"{policy} (ms)"] = round(ms, 3)
                row[f"{policy} hit"] = round(cache.hit_rate, 2)
            rows.append(row)
    print(format_table(rows, title="Cache policies (Figure 17)"))
    print("\nTakeaway: on the flat-degree graph, degree-based caching "
          "degrades toward random; pre-sampling keeps working.")


if __name__ == "__main__":
    main()
