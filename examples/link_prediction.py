"""Link prediction: GNN embeddings on the paper's second downstream
task.

Splits the graph's edges into train/val/test, trains a GCN encoder on
positive-vs-negative pair classification through the same sampled-batch
pipeline as vertex classification, and reports ROC-AUC.

Usage::

    python examples/link_prediction.py [dataset]
"""

import sys

from repro import load_dataset
from repro.sampling import NeighborSampler
from repro.tasks import train_link_prediction


def main(dataset_name="ogb-arxiv"):
    dataset = load_dataset(dataset_name, scale=0.5)
    print(f"dataset: {dataset.name}  |V|={dataset.num_vertices}  "
          f"|E|={dataset.num_edges}")
    result = train_link_prediction(
        dataset, NeighborSampler((6, 6)), epochs=10, batch_edges=512,
        hidden_dim=64)
    print("\nepoch  loss    val AUC")
    for epoch, (loss, auc) in enumerate(zip(result.losses,
                                            result.val_auc_curve)):
        print(f"{epoch:5d}  {loss:.4f}  {auc:.3f}")
    print(f"\ntest ROC-AUC: {result.test_auc:.3f}  "
          f"(0.5 = random ranking)")


if __name__ == "__main__":
    main(*sys.argv[1:2])
