"""Adaptive batch size training — the paper's proposed method (§6.3.1).

Trains the same model three ways: a small fixed batch, a large fixed
batch, and the adaptive plateau-driven schedule that starts small and
grows.  Prints the accuracy-vs-time trajectories so the adaptive
schedule's "fast start, precise finish" behaviour is visible.

Usage::

    python examples/adaptive_batch_training.py
"""

from repro import Trainer, TrainingConfig, load_dataset
from repro.batching import PlateauAdaptiveBatchSize
from repro.core import format_table


def run(dataset, batch_size, label):
    config = TrainingConfig(batch_size=batch_size, num_workers=1,
                            partitioner="hash", fanout=(10, 10),
                            epochs=20)
    result = Trainer(dataset, config).run()
    return {
        "schedule": label,
        "best val acc": round(result.best_val_accuracy, 3),
        "time to 97% best (sim ms)": round(
            1e3 * (result.curve.convergence_time(0.97) or float("nan")),
            3),
        "batch sizes": sorted(set(result.curve.batch_sizes)),
    }, result


def main():
    dataset = load_dataset("reddit")
    rows = []
    curves = {}
    for label, batch in (
            ("fixed-128", 128),
            ("fixed-2048", 2048),
            ("adaptive 128->2048",
             PlateauAdaptiveBatchSize(128, 2048, factor=2.0, patience=2))):
        row, result = run(dataset, batch, label)
        rows.append(row)
        curves[label] = result.curve

    print(format_table(rows, title="Adaptive vs fixed batch size"))
    print("\ntrajectories (simulated ms -> val accuracy):")
    for label, curve in curves.items():
        points = "  ".join(f"{1e3 * t:6.2f}:{a:.2f}"
                           for t, a in curve.series()[:10])
        print(f"  {label:20s} {points}")


if __name__ == "__main__":
    main()
