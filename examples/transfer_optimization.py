"""Transfer optimization walk-through — the paper's §7 in one script.

On a feature-heavy LiveJournal stand-in, stacks the three optimizations
the paper evaluates and shows where the time goes at each step:

1. Baseline: explicit extract-load transfer, fully sequential;
2. +Z: zero-copy (UVA) transfer — no extraction phase;
3. +Z+P: plus full BP/DT/NN pipelining;
4. +Z+P+C: plus a pre-sampling GPU feature cache.

Usage::

    python examples/transfer_optimization.py
"""

from repro import Trainer, TrainingConfig, load_dataset
from repro.core import format_table

VARIANTS = (
    ("Baseline", dict(transfer="extract-load", pipeline="none")),
    ("+Z", dict(transfer="zero-copy", pipeline="none")),
    ("+Z+P", dict(transfer="zero-copy", pipeline="bp+dt")),
    ("+Z+P+C", dict(transfer="zero-copy", pipeline="bp+dt",
                    cache_policy="presample", cache_ratio=0.3)),
)


def main():
    dataset = load_dataset("livejournal")
    base = TrainingConfig(batch_size=512, num_workers=1,
                          partitioner="hash", epochs=3)
    rows = []
    baseline_seconds = None
    for label, overrides in VARIANTS:
        result = Trainer(dataset, base.with_overrides(**overrides)).run()
        seconds = result.mean_epoch_seconds
        if baseline_seconds is None:
            baseline_seconds = seconds
        shares = result.step_breakdown()
        rows.append({
            "variant": label,
            "epoch (sim ms)": round(1e3 * seconds, 4),
            "speedup": f"{baseline_seconds / seconds:.2f}x",
            "BP share": round(shares["batch_preparation"], 3),
            "DT share": round(shares["data_transferring"], 3),
            "NN share": round(shares["nn_computation"], 3),
        })
    print(format_table(rows,
                       title=f"Transfer optimizations ({dataset.name})"))
    print("\nNote: shares are of the sequential work; the pipelined "
          "epoch time overlaps them.")


if __name__ == "__main__":
    main()
