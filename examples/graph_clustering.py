"""Graph clustering: the paper's third downstream task.

Trains GNN embeddings with the normal pipeline, k-means them, and
checks how well the clusters recover the planted communities
(normalized mutual information), comparing against untrained
embeddings as a baseline.

Usage::

    python examples/graph_clustering.py
"""

import numpy as np

from repro import Trainer, TrainingConfig, load_dataset
from repro.core import format_table
from repro.nn import build_model
from repro.tasks import cluster_dataset


def main():
    dataset = load_dataset("ogb-arxiv", scale=0.5)
    config = TrainingConfig(epochs=10, batch_size=128, fanout=(8, 8),
                            num_workers=1, partitioner="hash")
    trainer = Trainer(dataset, config)
    engine, _partition, sampler, model, _opt = trainer._build_engine()
    rng = config.rng(100)
    for _epoch in range(config.epochs):
        engine.run_epoch(128, rng)

    untrained = build_model("gcn", dataset.feature_dim,
                            dataset.num_classes,
                            rng=np.random.default_rng(123))
    rows = []
    for label, candidate in (("untrained GCN", untrained),
                             ("trained GCN", model)):
        result = cluster_dataset(dataset, candidate, sampler,
                                 rng=np.random.default_rng(0))
        rows.append({
            "embeddings": label,
            "NMI vs planted communities":
                round(result.nmi_vs_communities, 3),
            "NMI vs label classes": round(result.nmi_vs_classes, 3),
        })
    print(format_table(rows, title=f"k-means on GNN embeddings "
                                   f"({dataset.name})"))
    print("\n(1.0 = clusters match the planted communities exactly; "
          "~0 = independent)")


if __name__ == "__main__":
    main()
