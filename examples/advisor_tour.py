"""Advisor tour: apply the paper's lessons learned automatically.

``repro.core.advise`` encodes the paper's §5.4/§6.4/§7.4 lessons; this
example asks it for recommendations on two structurally different
datasets, then *verifies* one of them by training with and without the
advice.

Usage::

    python examples/advisor_tour.py
"""

from repro import Trainer, TrainingConfig, load_dataset
from repro.core import advise, format_table


def main():
    for name in ("amazon", "ogb-papers"):
        dataset = load_dataset(name, scale=0.5)
        report = advise(dataset)
        print(f"--- {name} ---")
        for recommendation in report.recommendations:
            print(f"  [{recommendation.topic:15s}] "
                  f"{recommendation.choice}")
        print()

    # Put the advice to the test on the skewed graph: advised config vs
    # an un-advised baseline (extract-load, no pipeline, no cache).
    dataset = load_dataset("ogb-products", scale=0.5)
    advised_kwargs = advise(dataset).as_config_kwargs()
    advised_kwargs["cache_ratio"] = 0.3
    base = TrainingConfig(epochs=15, batch_size=128, num_workers=4,
                          fanout=(8, 8))
    naive = base.with_overrides(partitioner="hash",
                                transfer="extract-load", pipeline="none")
    advised = base.with_overrides(**advised_kwargs)

    rows = []
    for label, config in (("naive", naive), ("advised", advised)):
        result = Trainer(dataset, config).run()
        rows.append({
            "config": label,
            "best val acc": round(result.best_val_accuracy, 3),
            "mean epoch (sim ms)":
                round(1e3 * result.curve.mean_epoch_seconds, 3),
        })
    print(format_table(rows, title="Advice, verified (ogb-products)"))
    speedup = (rows[0]["mean epoch (sim ms)"]
               / rows[1]["mean epoch (sim ms)"])
    print(f"\nadvised configuration trains {speedup:.2f}x faster per "
          f"epoch at comparable accuracy")


if __name__ == "__main__":
    main()
