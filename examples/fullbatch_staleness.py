"""Full-batch distributed training and Sancus-style staleness.

Trains the same full-graph GCN three ways — synchronous full-batch
(boundary embeddings exchanged every epoch), staleness 1, and
staleness 3 — and prints the epoch-time / accuracy trade Sancus's
communication avoidance buys.

Usage::

    python examples/fullbatch_staleness.py
"""

import numpy as np

from repro import load_dataset
from repro.core import format_table
from repro.dist import FullBatchEngine, FullGraphGCN
from repro.nn import Adam
from repro.partition import MetisPartitioner
from repro.transfer import DEFAULT_SPEC

EPOCHS = 25


def run(dataset, partition, staleness):
    model = FullGraphGCN(dataset.feature_dim, 128, dataset.num_classes,
                         2, np.random.default_rng(1))
    engine = FullBatchEngine(dataset, partition, model,
                             Adam(model.parameters(), lr=0.003),
                             spec=DEFAULT_SPEC, staleness=staleness)
    elapsed, best, comm_bytes = 0.0, 0.0, 0
    for _epoch in range(EPOCHS):
        stats = engine.run_epoch()
        elapsed += stats.epoch_seconds
        comm_bytes += stats.remote_feature_bytes
        best = max(best, engine.evaluate(dataset.val_ids))
    return {
        "staleness": staleness,
        "best val acc": round(best, 3),
        "mean epoch (sim ms)": round(1e3 * elapsed / EPOCHS, 4),
        "boundary traffic (MB)": round(comm_bytes / 1e6, 2),
    }


def main():
    dataset = load_dataset("ogb-arxiv", scale=0.5)
    partition = MetisPartitioner("ve").partition(
        dataset.graph, 4, split=dataset.split,
        rng=np.random.default_rng(0))
    rows = [run(dataset, partition, staleness)
            for staleness in (0, 1, 3)]
    print(format_table(rows, title="Full-batch training with "
                                   "staleness-aware communication"))
    fresh, stale = rows[0], rows[-1]
    saved = 1 - stale["boundary traffic (MB)"] / max(
        fresh["boundary traffic (MB)"], 1e-9)
    print(f"\nstaleness=3 removes {100 * saved:.0f}% of the boundary "
          f"traffic at {fresh['best val acc'] - stale['best val acc']:+.3f} "
          f"accuracy delta")


if __name__ == "__main__":
    main()
