"""Partitioning study: the paper's §5 in one script.

Compares the six evaluated partitioning methods (Hash, Metis-V/VE/VET,
Stream-V, Stream-B) on one dataset along every axis the paper measures:
structural quality (edge cut, balance, replication), per-machine
computational and communication workload (Figures 4-5), partitioning
time (Figure 6), and training convergence (Figure 7 / Table 4).

Usage::

    python examples/partitioning_study.py [dataset]
"""

import sys

import numpy as np

from repro import Trainer, TrainingConfig, load_dataset, measure_workload
from repro.core import format_table, make_partitioner
from repro.partition import clustering_coefficient_variance, quality_report
from repro.sampling import NeighborSampler

METHODS = ("hash", "metis-v", "metis-ve", "metis-vet", "stream-v",
           "stream-b")


def main(dataset_name="ogb-products"):
    dataset = load_dataset(dataset_name, scale=0.5)
    sampler = NeighborSampler((10, 10))
    print(f"dataset: {dataset.name}  |V|={dataset.num_vertices}  "
          f"|E|={dataset.num_edges}\n")

    quality_rows, workload_rows, training_rows = [], [], []
    for name in METHODS:
        partitioner = make_partitioner(name)
        result = partitioner.partition(dataset.graph, 4,
                                       split=dataset.split,
                                       rng=np.random.default_rng(1))

        quality = quality_report(dataset.graph, result, dataset.split)
        quality["cc variance"] = clustering_coefficient_variance(
            dataset.graph, result)
        quality_rows.append({k: (round(v, 4) if isinstance(v, float)
                                 else v)
                             for k, v in quality.items()})

        workload = measure_workload(dataset, result, sampler,
                                    batch_size=256,
                                    rng=np.random.default_rng(2))
        summary = workload.summary()
        workload_rows.append({k: (round(v, 3) if isinstance(v, float)
                                  else v)
                              for k, v in summary.items()})

        config = TrainingConfig(partitioner=name, num_workers=4,
                                batch_size=128, fanout=(10, 10),
                                epochs=15)
        training = Trainer(dataset, config).run()
        training_rows.append({
            "method": name,
            "best val acc": round(training.best_val_accuracy, 3),
            "epoch (sim ms)": round(
                1e3 * training.mean_epoch_seconds, 3),
            "time to 95% best (sim ms)": round(
                1e3 * (training.curve.convergence_time(0.95) or 0), 3),
        })

    print(format_table(quality_rows, title="Partition quality"))
    print()
    print(format_table(workload_rows,
                       title="Workload (one epoch, Figures 4-5)"))
    print()
    print(format_table(training_rows,
                       title="Training (Figure 7 / Table 4)"))


if __name__ == "__main__":
    main(*sys.argv[1:2])
