"""Quickstart: train a GCN on a synthetic OGB-Arxiv stand-in with the
full simulated data-management pipeline.

Runs the paper's default recipe — Metis-extend partitioning over 4
machines, fanout sampling, zero-copy transfer, full pipelining — and
prints accuracy, simulated epoch time, and the Figure 2-style step
breakdown.

Usage::

    python examples/quickstart.py
"""

from repro import Trainer, TrainingConfig, load_dataset


def main():
    dataset = load_dataset("ogb-arxiv")
    print(f"dataset: {dataset.name}  |V|={dataset.num_vertices}  "
          f"|E|={dataset.num_edges}  #F={dataset.feature_dim}  "
          f"#L={dataset.num_classes}")

    config = TrainingConfig(
        model="gcn",            # or "graphsage"
        partitioner="metis-ve",  # DistDGL's partitioning
        num_workers=4,           # the paper's 4-node cluster
        batch_size=256,
        fanout=(25, 10),         # the paper's default fanout
        transfer="zero-copy",
        pipeline="bp+dt",
        epochs=20,
    )
    result = Trainer(dataset, config).run()

    print(f"\nbest validation accuracy: "
          f"{result.best_val_accuracy:.3f}")
    print(f"test accuracy (best-val checkpoint): "
          f"{result.test_accuracy:.3f}")
    print(f"partitioning took {result.partition_seconds:.3f}s wall")
    print(f"mean simulated epoch time: "
          f"{1e3 * result.mean_epoch_seconds:.3f} ms")

    print("\nstep time breakdown (simulated):")
    for step, share in result.step_breakdown().items():
        print(f"  {step:20s} {100 * share:5.1f}%")

    print("\nconvergence (simulated time -> val accuracy):")
    for seconds, accuracy in result.curve.series()[:8]:
        print(f"  t={1e3 * seconds:8.3f} ms  acc={accuracy:.3f}")


if __name__ == "__main__":
    main()
