# Developer entry points. `make help` lists targets.

.PHONY: help install test lint arch-lint bench serve-bench fleet-bench cache-bench chaos fleet-chaos kernel-bench examples docs reproduce clean

help:
	@echo "install     editable install (falls back past missing wheel pkg)"
	@echo "test        run the unit/integration/property test suite"
	@echo "lint        both static-analysis passes (repro lint + arch-lint)"
	@echo "arch-lint   whole-program architectural analysis alone"
	@echo "bench       run every table/figure benchmark (includes serving)"
	@echo "serve-bench run the online-serving latency benchmark alone"
	@echo "fleet-bench run the sharded multi-replica serving benchmark"
	@echo "cache-bench run the tiered feature-cache benchmark alone"
	@echo "chaos       run the fault-recovery benchmark alone"
	@echo "fleet-chaos run the fleet resilience chaos certification"
	@echo "kernel-bench time sparse-kernel backends vs the reference"
	@echo "examples    run all runnable examples"
	@echo "docs        regenerate docs/api.md"
	@echo "reproduce   write reproduction_report.md from all benchmarks"

install:
	pip install -e . || python setup.py develop

test:
	pytest tests/

# Fails on findings not grandfathered by the checked-in baselines
# (src/repro/analysis/baseline.json and arch_baseline.json, both
# currently empty). The CI `lint` and `arch-lint` jobs run the same
# gates and upload the JSON reports.
lint: arch-lint
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} \
	  python -m repro lint --baseline

# Whole-program architectural analysis (layering DAG, kernel-seam and
# billing bypasses, simulated-clock purity, interprocedural RNG
# provenance, public-API drift). Stdlib+numpy only.
arch-lint:
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} \
	  python -m repro arch-lint --baseline

# The benchmarks are runnable scripts with a __main__ block (like the
# examples); `pytest --benchmark-only` can't collect them without the
# package importable, so run them the same way the examples target does.
# The glob includes bench_serve_latency.py, so `make bench` covers the
# serving benchmark; `make serve-bench` runs just that one.
bench:
	@for f in benchmarks/bench_*.py; do echo "== $$f"; \
	  PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} python $$f || exit 1; done

# Both standalone benchmark runs arm the runtime sanitizers: they are
# behaviour-preserving (checks only), and a NaN or malformed CSR inside
# a benchmark should fail the run, not skew its numbers.
serve-bench:
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} \
	  python benchmarks/bench_serve_latency.py --sanitize

# Sharded multi-replica serving: scaling/locality/elasticity sweeps
# plus the fleet == single-server bit-match check.
fleet-bench:
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} \
	  python benchmarks/bench_fleet.py --sanitize

# Tiered-cache sweep (policy x budget x Zipf skew, training + serving
# billing modes). No sanitizer flag: the sweep never runs a model.
cache-bench:
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} \
	  python benchmarks/bench_cache_tiers.py

chaos:
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} \
	  python benchmarks/bench_fault_recovery.py --sanitize

# Fleet resilience certification: baseline vs detector/replication/
# hedging under identical fault schedules, with the PR 7 bit-parity
# and availability/p99 gates.
fleet-chaos:
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} \
	  python benchmarks/bench_fleet_chaos.py --sanitize

# Per-backend sparse-kernel timings (repro.kernels registry); merges
# the kernel_backends rows into BENCH_hotpath.json and fails if no
# accelerated backend beats the pinned reference on the SpMM.
kernel-bench:
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} \
	  python -m repro kernel-bench

examples:
	@for f in examples/*.py; do echo "== $$f"; python $$f || exit 1; done

docs:
	python tools/gen_api_docs.py

reproduce:
	python -m repro reproduce --out reproduction_report.md

clean:
	rm -rf build dist *.egg-info src/*.egg-info .pytest_cache
	find . -name __pycache__ -type d -exec rm -rf {} +
