"""Layer-wise precomputed embeddings and the exact on-demand reference.

Full-fanout GNN inference has a classic data-management identity: the
seed embeddings a model produces from a query's full L-hop neighborhood
are *the same rows* a layer-by-layer full-graph forward pass produces
for the whole vertex set.  Serving systems exploit it by running the
full-graph pass offline ("layer-wise inference" in DGL's terminology)
and answering queries with an embedding-table lookup plus the final
classifier head — trading one big offline pass for per-query work that
no longer explodes with depth.

:class:`LayerwiseEmbeddings` implements both sides:

* :meth:`logits` — the serving path: gather precomputed final-layer
  embeddings, run the MLP head;
* :meth:`ondemand_logits` — the reference path: expand the query's full
  (every-neighbor) L-hop neighborhood and compute embeddings from raw
  features at query time, metering the edges/vertices/FLOPs a real
  on-demand server would pay.

The two are **bit-identical by construction**, not just numerically
close.  Floating-point addition is order-sensitive, so equality needs
both paths to execute the same per-row operations in the same order:

* both aggregate through one shared CSR operator per layer, dispatched
  through :mod:`repro.kernels` — the on-demand path multiplies *row
  slices* of that operator, and every registered backend evaluates a
  sliced row's dot product over the same stored non-zeros in the same
  order as the full product;
* the on-demand path scatters its intermediate rows into full-width
  ``(num_vertices, dim)`` buffers before every dense transform, so each
  GEMM has exactly the table build's shape and each output row depends
  only on its own (identical) input row.

The full-width buffers make the on-demand path as *computationally*
expensive as a full-graph pass — which is the point it demonstrates:
neighborhood explosion means full-fanout on-demand inference touches
nearly the whole graph anyway.  The metered costs report the honest
needed-set sizes, not the implementation's padded GEMMs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..analysis.sanitize import check_finite
from ..dist.fullbatch import full_aggregation_matrix
from ..errors import ServingError
from ..kernels import gspmm_forward
from ..nn.layers import GCNConv, SAGEConv
from ..nn.tensor import Tensor

__all__ = ["LayerwiseEmbeddings", "OndemandStats"]


@dataclass(frozen=True)
class OndemandStats:
    """Metered cost of one exact on-demand (full-fanout) batch.

    Attributes
    ----------
    edges:
        Aggregation edges touched across all layers (the
        batch-preparation work a real server would do).
    input_ids:
        Distinct vertices whose raw features the batch needs (the rows
        a feature cache is consulted for).
    flops:
        Forward FLOPs over the needed sets (aggregation + dense
        transforms + classifier head).
    """

    edges: int
    input_ids: np.ndarray
    flops: float

    @property
    def input_vertices(self):
        return len(self.input_ids)


def _relu(x):
    """The rectifier both paths share (rows are independent, so the
    table build and the on-demand path produce identical bits)."""
    return np.maximum(x, 0)


class LayerwiseEmbeddings:
    """Full-graph layer-wise embedding table for a trained block model.

    Parameters
    ----------
    model:
        A :class:`~repro.nn.layers.GCN` or
        :class:`~repro.nn.layers.GraphSAGE` (anything stacking
        ``GCNConv``/``SAGEConv`` layers with a ``head`` MLP).  GAT's
        data-dependent attention has no precomputable linear operator,
        so it is rejected.
    graph, features:
        The graph and raw input features served against.

    The build runs eval-mode semantics (dropout is identity), matching
    what on-demand inference computes.
    """

    def __init__(self, model, graph, features):
        convs = getattr(model, "convs", None)
        head = getattr(model, "head", None)
        if not convs or head is None:
            raise ServingError(
                "layer-wise precompute needs a conv-stack model with a "
                "classifier head (GCN or GraphSAGE)")
        for conv in convs:
            if not isinstance(conv, (GCNConv, SAGEConv)):
                raise ServingError(
                    f"layer-wise precompute supports GCNConv/SAGEConv "
                    f"stacks, not {type(conv).__name__}")
        self.graph = graph
        self.convs = list(convs)
        self.head = head
        self.num_vertices = graph.num_vertices
        self.features = np.asarray(features)

        # One shared aggregation operator per self-loop convention;
        # GCN aggregates itself in the mean, SAGE keeps an explicit
        # self path.
        self._operators = {}
        for conv in self.convs:
            loops = isinstance(conv, GCNConv)
            if loops not in self._operators:
                self._operators[loops] = full_aggregation_matrix(
                    graph, self_loops=loops)

        # Offline table build: the full-graph pass every vertex shares.
        self.build_edges = 0
        self.build_flops = 0.0
        everyone = np.arange(self.num_vertices, dtype=np.int64)
        h = self.features
        for conv in self.convs:
            h, edges, flops = self._apply_conv(conv, h, everyone)
            self.build_edges += edges
            self.build_flops += flops
        self.table = check_finite(h, name="precomputed embedding table")

    # ------------------------------------------------------------------
    # Shared layer math
    # ------------------------------------------------------------------
    def _operator(self, conv):
        return self._operators[isinstance(conv, GCNConv)]

    def _apply_conv(self, conv, h_in, dst):
        """Rows ``dst`` of ``relu(conv(h_in))`` in a full-width buffer.

        ``h_in`` must be a ``(num_vertices, d_in)`` buffer whose rows
        are valid for ``dst`` and every in-neighbor of ``dst``; the
        returned buffer's rows are valid exactly for ``dst``.  All
        shapes are full-width so the per-row float operations match the
        table build bit-for-bit.
        """
        operator = self._operator(conv)
        rows = operator.take_rows(dst) \
            if len(dst) < self.num_vertices else operator
        aggregated = gspmm_forward(rows, h_in)
        full = np.zeros((self.num_vertices, aggregated.shape[1]),
                        dtype=aggregated.dtype)
        full[dst] = aggregated
        edges = int(rows.nnz)
        if isinstance(conv, GCNConv):
            out = full @ conv.weight.data + conv.bias.data
        else:
            out = (h_in @ conv.weight_self.data
                   + full @ conv.weight_neigh.data + conv.bias.data)
            if conv.normalize:
                norms = np.sqrt((out * out).sum(axis=1, keepdims=True))
                out = out / np.maximum(norms, 1e-12)
        d_in = h_in.shape[1]
        d_out = out.shape[1]
        flops = 2.0 * edges * d_in + 2.0 * len(dst) * d_in * d_out
        if isinstance(conv, SAGEConv):
            flops += 2.0 * len(dst) * d_in * d_out
        result = np.zeros_like(out)
        result[dst] = _relu(out[dst])
        return result, edges, flops

    def _head_logits(self, rows):
        """Classifier head over gathered embedding rows (one shared
        code path, so both serving modes transform identical inputs
        identically)."""
        return self.head.forward(Tensor(np.ascontiguousarray(rows))).data

    def head_flops(self, batch_size):
        """Forward FLOPs of the MLP head for ``batch_size`` rows."""
        flops = 0.0
        for layer in self.head.layers:
            in_dim, out_dim = layer.weight.data.shape
            flops += 2.0 * batch_size * in_dim * out_dim
        return flops

    # ------------------------------------------------------------------
    # Serving paths
    # ------------------------------------------------------------------
    def logits(self, vertices):
        """Precomputed-mode logits: table lookup + head."""
        vertices = np.asarray(vertices, dtype=np.int64)
        return self._head_logits(self.table[vertices])

    def rowwise_logits(self, vertices):
        """Precomputed-mode logits, one row at a time.

        BLAS dispatches different kernels for ``(1, d)`` and ``(m, d)``
        operands, so the *bits* of a row's logits through
        :meth:`logits` can depend on the size of the batch it rode in.
        Serving answers must instead be a pure function of the queried
        vertex — the property that lets a sharded fleet re-batch,
        spill, and fail over requests while remaining bit-identical to
        a single server.  This method pins one shape: every row is
        evaluated as its own ``(1, d)`` head pass, so identical
        vertices produce identical bits under any batching.
        """
        vertices = np.asarray(vertices, dtype=np.int64)
        if len(vertices) == 0:
            raise ServingError("cannot serve an empty query batch")
        return np.concatenate(
            [self._head_logits(self.table[v:v + 1])
             for v in vertices], axis=0)

    def ondemand_logits(self, vertices):
        """Exact full-fanout on-demand logits plus metered cost.

        Returns ``(logits, OndemandStats)``; the logits bit-match
        :meth:`logits` on the same ``vertices``.
        """
        vertices = np.asarray(vertices, dtype=np.int64)
        if len(vertices) == 0:
            raise ServingError("cannot serve an empty query batch")

        # Needed row sets, outermost first: needed[l] are the rows of
        # layer l's *output* the query depends on.
        in_indptr, in_indices = self.graph.in_csr()
        needed = [None] * (len(self.convs) + 1)
        needed[-1] = np.unique(vertices)
        for level in range(len(self.convs) - 1, -1, -1):
            out_rows = needed[level + 1]
            chunks = [in_indices[in_indptr[v]:in_indptr[v + 1]]
                      for v in out_rows]
            chunks.append(out_rows)
            needed[level] = np.unique(np.concatenate(chunks))

        total_edges = 0
        total_flops = 0.0
        h = self.features
        for level, conv in enumerate(self.convs):
            h, edges, flops = self._apply_conv(conv, h, needed[level + 1])
            total_edges += edges
            total_flops += flops
        total_flops += self.head_flops(len(vertices))

        logits = self._head_logits(h[vertices])
        return logits, OndemandStats(edges=total_edges,
                                     input_ids=needed[0],
                                     flops=total_flops)
