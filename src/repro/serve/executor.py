"""The batch-execution layer: one micro-batch in, answers + billed
seconds out.

:class:`BatchExecutor` is the piece of the old monolithic
``ServeEngine`` that actually *serves* — sampling, feature/embedding
fetches through an optional cache, the model forward — factored out so
two hosts can drive it:

* :class:`~repro.serve.engine.ServeEngine` wraps one executor in a
  single-server queueing loop;
* :class:`~repro.fleet.replica.ReplicaServer` wraps one executor *per
  shard*, with :class:`~repro.fleet.replica.ShardExecutor` overriding
  the transfer billing to split fetches into local rows and
  remote-shard rows paid over the cluster network.

The executor is deliberately ignorant of queueing, clocks, and
routing: it maps a vertex batch to ``(predictions, bp, dt, nn)``
simulated stage seconds, and accumulates cache/tier counters.  Answers
in ``precomputed`` mode flow through
:meth:`~repro.serve.precompute.LayerwiseEmbeddings.rowwise_logits`, so
they are a pure function of the queried vertex — independent of how
requests were batched, spilled, or failed over.
"""

from __future__ import annotations

import numpy as np

from ..errors import ServingError, TransferError
from ..sampling import NeighborSampler
from ..transfer.cache import DegreeCache, LRUCache
from ..transfer.hardware import DEFAULT_SPEC, estimate_flops
from ..transfer.tiered import TieredCache, make_tiered_cache
from .precompute import LayerwiseEmbeddings

__all__ = ["BatchExecutor", "SERVE_MODES", "model_hidden_dim"]

SERVE_MODES = ("sampled", "full", "precomputed")


def model_hidden_dim(model):
    """Output width of the model's conv stack (for FLOP estimates)."""
    conv = model.convs[-1]
    for attr in ("weight", "weight_self"):
        weight = getattr(conv, attr, None)
        if weight is not None:
            return weight.data.shape[1]
    return 128


class BatchExecutor:
    """Executes micro-batches for one serving node.

    Parameters mirror the serving knobs of
    :class:`~repro.serve.engine.ServeEngine` (which documents them);
    ``need_embeddings`` additionally forces the offline table build in
    ``sampled`` mode (the degraded-fallback path needs it).
    """

    def __init__(self, dataset, model, mode="sampled", fanout=(10, 10),
                 cache_policy="lru", cache_ratio=0.0, warm_ratio=0.0,
                 cache_scores=None, spec=None, embeddings=None,
                 need_embeddings=False):
        if mode not in SERVE_MODES:
            raise ServingError(
                f"unknown serve mode {mode!r}; known: {SERVE_MODES}")
        self.dataset = dataset
        self.model = model
        self.mode = mode
        self.spec = spec or DEFAULT_SPEC
        self.cache_ratio = float(cache_ratio)
        self.warm_ratio = float(warm_ratio)
        if self.warm_ratio < 0:
            raise ServingError(
                f"warm_ratio must be non-negative, got {warm_ratio}")
        self.cache_policy = cache_policy
        self.cache_scores = cache_scores
        self.hidden_dim = model_hidden_dim(model)
        self._feat_bytes = (dataset.feature_dim
                            * dataset.features.itemsize)

        self.sampler = None
        self.embeddings = None
        self.precompute_seconds = 0.0
        if mode == "sampled":
            self.sampler = NeighborSampler(fanout)
            if need_embeddings:
                self.embeddings = embeddings if embeddings is not None \
                    else LayerwiseEmbeddings(model, dataset.graph,
                                             dataset.features)
                self.precompute_seconds = self._precompute_cost()
        else:
            self.embeddings = embeddings if embeddings is not None else \
                LayerwiseEmbeddings(model, dataset.graph,
                                    dataset.features)
            # Offline pass cost, reported separately from latency: one
            # full feature transfer plus the per-layer full-graph
            # forward.
            self.precompute_seconds = self._precompute_cost()

        self.cache = self._build_cache()
        self.tier_seconds = {"hot": 0.0, "warm": 0.0, "cold": 0.0}

    def _precompute_cost(self):
        """Simulated cost of the one-off offline embedding pass."""
        table_bytes = self.dataset.feature_bytes()
        return (self.spec.gather_time(table_bytes)
                + self.spec.pcie_time(table_bytes)
                + self.spec.compute_time(self.embeddings.build_flops))

    def _build_cache(self):
        if self.cache_ratio <= 0 and self.warm_ratio <= 0:
            return None
        if self.warm_ratio > 0 or self.cache_policy == "lfu":
            # Multi-tier cache over the disk-backed hierarchy — the
            # same TieredCache the training workers use, here caching
            # feature rows (sampled/full) or embedding-table rows
            # (precomputed; row ids are vertex ids, so graph-degree
            # placement stays meaningful).
            try:
                return make_tiered_cache(
                    self.cache_policy, self.dataset.graph,
                    self.cache_ratio, self.warm_ratio,
                    scores=self.cache_scores)
            except TransferError as exc:
                raise ServingError(str(exc)) from exc
        if self.mode == "precomputed":
            # Historical-embedding cache: LRU over table rows.
            return LRUCache(self.embeddings.num_vertices,
                            self.cache_ratio)
        if self.cache_policy == "degree":
            return DegreeCache(self.dataset.graph, self.cache_ratio)
        if self.cache_policy == "lru":
            return LRUCache(self.dataset.graph, self.cache_ratio)
        raise ServingError(
            f"unknown serving cache policy {self.cache_policy!r}; "
            f"known: lru, degree (flat) and lru, lfu, degree, "
            f"presample, static (tiered, warm_ratio > 0)")

    def reset_counters(self):
        """Zero the per-run tier-seconds accumulator."""
        self.tier_seconds = {"hot": 0.0, "warm": 0.0, "cold": 0.0}

    # ------------------------------------------------------------------
    # Transfer billing
    # ------------------------------------------------------------------
    def fetch_seconds(self, row_ids, row_bytes):
        """Simulated time to materialize ``row_ids`` on the GPU through
        the cache (hits are resident; misses cross host + PCIe; with a
        tiered cache each tier is billed its own path and the split is
        accumulated for the report)."""
        if isinstance(self.cache, TieredCache):
            return self._bill_tiered(self.cache.lookup(row_ids),
                                     row_bytes)
        if self.cache is not None:
            _hits, misses = self.cache.lookup(row_ids)
        else:
            misses = np.asarray(row_ids, dtype=np.int64)
        return self._bill_flat(misses, row_bytes)

    def _bill_tiered(self, lookup, row_bytes):
        """Charge one tiered lookup and accumulate the per-tier split.
        Overridden by the fleet's :class:`ShardExecutor` to price
        remote-shard rows over the network instead of local disk."""
        bill = self.cache.bill(lookup, row_bytes, self.spec)
        for tier, value in sorted(bill.tier_seconds().items()):
            self.tier_seconds[tier] += value
        return bill.total_seconds

    def _bill_flat(self, misses, row_bytes):
        """Charge a flat-cache (or cache-less) fetch of ``misses``."""
        num_bytes = len(misses) * row_bytes
        if num_bytes == 0:
            return 0.0
        return (self.spec.gather_time(num_bytes)
                + self.spec.pcie_time(num_bytes))

    # ------------------------------------------------------------------
    # Per-batch execution
    # ------------------------------------------------------------------
    def execute(self, vertices, rng):
        """Run one micro-batch; returns ``(predictions, bp, dt, nn)``
        — per-request predictions plus the simulated seconds of each
        serving stage (batch preparation / data transfer / NN)."""
        if self.mode == "sampled":
            subgraph = self.sampler.sample(self.dataset.graph, vertices,
                                           rng)
            logits = self.model.forward(
                subgraph,
                self.dataset.features[subgraph.input_nodes]).data
            rows = np.searchsorted(subgraph.seeds, vertices)
            predictions = logits.argmax(axis=-1)[rows]
            bp = self.spec.sample_time(subgraph.total_edges)
            dt = self.fetch_seconds(subgraph.input_nodes,
                                    self._feat_bytes)
            nn = self.spec.compute_time(estimate_flops(
                subgraph, self.dataset.feature_dim, self.hidden_dim,
                self.dataset.num_classes, backward_factor=1.0))
            return predictions, bp, dt, nn

        if self.mode == "full":
            logits, stats = self.embeddings.ondemand_logits(vertices)
            predictions = logits.argmax(axis=-1)
            bp = self.spec.sample_time(stats.edges)
            dt = self.fetch_seconds(stats.input_ids, self._feat_bytes)
            nn = self.spec.compute_time(stats.flops)
            return predictions, bp, dt, nn

        # precomputed: row-wise table lookup through the embedding
        # cache + head (row-wise so every answer is batching-invariant
        # — see LayerwiseEmbeddings.rowwise_logits).
        logits = self.embeddings.rowwise_logits(vertices)
        predictions = logits.argmax(axis=-1)
        row_bytes = (self.embeddings.table.shape[1]
                     * self.embeddings.table.itemsize)
        dt = self.fetch_seconds(np.unique(vertices), row_bytes)
        nn = self.spec.compute_time(
            self.embeddings.head_flops(len(vertices)))
        return predictions, 0.0, dt, nn

    def execute_degraded(self, vertices):
        """Degraded-mode batch: answer from the precomputed table
        instead of sampling (no feature cache involved — the fallback
        table rows are fetched directly)."""
        logits = self.embeddings.rowwise_logits(vertices)
        predictions = logits.argmax(axis=-1)
        row_bytes = (self.embeddings.table.shape[1]
                     * self.embeddings.table.itemsize)
        num_bytes = len(np.unique(vertices)) * row_bytes
        dt = (self.spec.gather_time(num_bytes)
              + self.spec.pcie_time(num_bytes)) if num_bytes else 0.0
        nn = self.spec.compute_time(
            self.embeddings.head_flops(len(vertices)))
        return predictions, 0.0, dt, nn
