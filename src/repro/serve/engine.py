"""The online inference engine: a single simulated serving node.

Ties the layer together: an admission queue + micro-batcher
(:mod:`repro.serve.batcher`) feeds one of three execution modes, and
every byte/edge/FLOP a batch touches is converted to simulated seconds
through the same :class:`~repro.transfer.hardware.HardwareSpec` cost
model the training engines use.

Execution modes
---------------
``sampled``
    On-demand sampled inference: the batch's seeds go through the
    training stack's :class:`~repro.sampling.NeighborSampler` and
    ``build_block`` hot path, features are fetched through an optional
    GPU feature cache, and the model runs forward.  Approximate (it
    samples), cheap, the BGL/Serafini-style serving answer.
``full``
    On-demand *full-fanout* inference: the query's entire L-hop
    neighborhood, computed exactly via
    :class:`~repro.serve.precompute.LayerwiseEmbeddings`'s reference
    path.  Exact but explodes with depth — the mode that motivates
    precomputation.
``precomputed``
    Layer-wise precomputed embeddings: serving is an embedding-table
    lookup (through an LRU *historical-embedding cache*) plus the MLP
    head.  Bit-identical to ``full`` by construction.

The event loop is deterministic: simulated arrivals come from a seeded
:class:`~repro.serve.requests.LoadGenerator` trace, sampling uses one
seeded rng, and no wall clock is ever read on the simulated-time path.

Graceful degradation (``deadline``/``fallback``): with a per-request
deadline, requests that are already past it at dispatch are *shed*
(load shedding — answering them late wastes capacity the live requests
need), and in ``sampled`` mode with ``fallback=True`` a batch whose
predicted sampled-path service time would miss the deadline is served
from precomputed layer-wise embeddings instead (exact-but-stale beats
sampled-but-late).  Sheds, degraded answers, and residual deadline
misses are all reported on :class:`~repro.serve.metrics.ServeReport`.
"""

from __future__ import annotations

import numpy as np

from ..errors import AdmissionError, ServingError, TransferError
from ..perf import PERF, StageProfiler
from ..sampling import NeighborSampler
from ..transfer.cache import DegreeCache, LRUCache
from ..transfer.hardware import DEFAULT_SPEC, estimate_flops
from ..transfer.tiered import TieredCache, make_tiered_cache
from .batcher import BatchPolicy, MicroBatcher
from .metrics import ServeReport
from .precompute import LayerwiseEmbeddings
from .requests import InferenceResponse

__all__ = ["ServeEngine", "SERVE_MODES"]

SERVE_MODES = ("sampled", "full", "precomputed")


def _model_hidden_dim(model):
    """Output width of the model's conv stack (for FLOP estimates)."""
    conv = model.convs[-1]
    for attr in ("weight", "weight_self"):
        weight = getattr(conv, attr, None)
        if weight is not None:
            return weight.data.shape[1]
    return 128


class ServeEngine:
    """Single-node online inference over a trained model.

    Parameters
    ----------
    dataset:
        The :class:`~repro.graph.datasets.Dataset` being served.
    model:
        A trained block-stack model (``GCN``/``GraphSAGE``; ``sampled``
        mode also accepts ``GAT``).
    mode:
        One of :data:`SERVE_MODES`.
    policy, max_queue:
        Micro-batching policy and admission bound (see
        :class:`~repro.serve.batcher.MicroBatcher`).
    fanout:
        Per-layer fanout for ``sampled`` mode.
    cache_policy, cache_ratio:
        ``sampled``/``full``: the GPU *feature* cache ("lru" or
        "degree"); ``precomputed``: the *embedding-row* cache.
        ``cache_ratio=0`` disables caching (every row is fetched).
    warm_ratio, cache_scores:
        ``warm_ratio > 0`` (or ``cache_policy="lfu"``, which has no
        flat equivalent) upgrades the cache to a multi-tier
        :class:`~repro.transfer.tiered.TieredCache`: ``cache_ratio``
        of the rows GPU-hot, ``warm_ratio`` pinned-host-warm, the rest
        disk-cold — the policies grow to "lru"/"lfu"/"degree"/
        "presample"/"static" ("presample"/"static" need
        ``cache_scores``, e.g. measured request frequencies from a
        trace prefix).  The report then carries per-tier hit rates and
        the per-tier split of ``dt_seconds``.
    spec:
        Hardware cost model; defaults to the paper's simulated node.
    seed:
        Seeds the sampling rng — the only randomness in the engine.
    embeddings:
        Optional prebuilt :class:`LayerwiseEmbeddings` to share across
        engines (skips the offline pass).
    deadline:
        Optional per-request deadline in simulated seconds.  At
        dispatch, requests already past their deadline are *shed*
        (dropped without an answer — serving a guaranteed-stale reply
        wastes capacity the queued requests need); completed requests
        that still finish late are counted as deadline misses.
    fallback:
        ``sampled`` mode only: when True, a batch whose sampled-path
        service time is predicted to miss the deadline is served from
        precomputed layer-wise embeddings instead (graceful
        degradation: exact-but-stale beats sampled-but-late).  Builds a
        :class:`LayerwiseEmbeddings` table unless ``embeddings`` is
        supplied; the offline cost lands in ``precompute_seconds``.
    """

    def __init__(self, dataset, model, mode="sampled", policy=None,
                 max_queue=None, fanout=(10, 10), cache_policy="lru",
                 cache_ratio=0.0, warm_ratio=0.0, cache_scores=None,
                 spec=None, seed=0, embeddings=None, deadline=None,
                 fallback=False):
        if mode not in SERVE_MODES:
            raise ServingError(
                f"unknown serve mode {mode!r}; known: {SERVE_MODES}")
        if deadline is not None and deadline <= 0:
            raise ServingError(
                f"deadline must be positive, got {deadline}")
        if fallback and mode != "sampled":
            raise ServingError(
                "fallback degradation only applies to 'sampled' mode "
                f"(mode {mode!r} already serves from the table)")
        if fallback and deadline is None:
            raise ServingError(
                "fallback degradation needs a deadline to degrade "
                "against")
        self.dataset = dataset
        self.model = model
        self.mode = mode
        self.policy = policy or BatchPolicy()
        self.max_queue = max_queue
        self.spec = spec or DEFAULT_SPEC
        self.seed = int(seed)
        self.cache_ratio = float(cache_ratio)
        self.warm_ratio = float(warm_ratio)
        if self.warm_ratio < 0:
            raise ServingError(
                f"warm_ratio must be non-negative, got {warm_ratio}")
        self.cache_policy = cache_policy
        self.cache_scores = cache_scores
        self.hidden_dim = _model_hidden_dim(model)
        self._feat_bytes = (dataset.feature_dim
                            * dataset.features.itemsize)

        self.deadline = None if deadline is None else float(deadline)
        self.fallback = bool(fallback)

        self.sampler = None
        self.embeddings = None
        self.precompute_seconds = 0.0
        if mode == "sampled":
            self.sampler = NeighborSampler(fanout)
            if self.fallback:
                self.embeddings = embeddings if embeddings is not None \
                    else LayerwiseEmbeddings(model, dataset.graph,
                                             dataset.features)
                self.precompute_seconds = self._precompute_cost()
        else:
            self.embeddings = embeddings if embeddings is not None else \
                LayerwiseEmbeddings(model, dataset.graph,
                                    dataset.features)
            # Offline pass cost, reported separately from latency: one
            # full feature transfer plus the per-layer full-graph
            # forward.
            self.precompute_seconds = self._precompute_cost()

        self.cache = self._build_cache()
        self._tier_seconds = {"hot": 0.0, "warm": 0.0, "cold": 0.0}

    def _precompute_cost(self):
        """Simulated cost of the one-off offline embedding pass."""
        table_bytes = self.dataset.feature_bytes()
        return (self.spec.gather_time(table_bytes)
                + self.spec.pcie_time(table_bytes)
                + self.spec.compute_time(self.embeddings.build_flops))

    def _build_cache(self):
        if self.cache_ratio <= 0 and self.warm_ratio <= 0:
            return None
        if self.warm_ratio > 0 or self.cache_policy == "lfu":
            # Multi-tier cache over the disk-backed hierarchy — the
            # same TieredCache the training workers use, here caching
            # feature rows (sampled/full) or embedding-table rows
            # (precomputed; row ids are vertex ids, so graph-degree
            # placement stays meaningful).
            try:
                return make_tiered_cache(
                    self.cache_policy, self.dataset.graph,
                    self.cache_ratio, self.warm_ratio,
                    scores=self.cache_scores)
            except TransferError as exc:
                raise ServingError(str(exc)) from exc
        if self.mode == "precomputed":
            # Historical-embedding cache: LRU over table rows.
            return LRUCache(self.embeddings.num_vertices,
                            self.cache_ratio)
        if self.cache_policy == "degree":
            return DegreeCache(self.dataset.graph, self.cache_ratio)
        if self.cache_policy == "lru":
            return LRUCache(self.dataset.graph, self.cache_ratio)
        raise ServingError(
            f"unknown serving cache policy {self.cache_policy!r}; "
            f"known: lru, degree (flat) and lru, lfu, degree, "
            f"presample, static (tiered, warm_ratio > 0)")

    # ------------------------------------------------------------------
    # Per-batch execution
    # ------------------------------------------------------------------
    def _fetch_seconds(self, row_ids, row_bytes):
        """Simulated time to materialize ``row_ids`` on the GPU through
        the cache (hits are resident; misses cross host + PCIe; with a
        tiered cache each tier is billed its own path and the split is
        accumulated for the report)."""
        if isinstance(self.cache, TieredCache):
            seconds, bill = self.cache.fetch_seconds(
                row_ids, row_bytes, self.spec)
            for tier, value in sorted(bill.tier_seconds().items()):
                self._tier_seconds[tier] += value
            return seconds
        if self.cache is not None:
            _hits, misses = self.cache.lookup(row_ids)
        else:
            misses = row_ids
        num_bytes = len(misses) * row_bytes
        if num_bytes == 0:
            return 0.0
        return (self.spec.gather_time(num_bytes)
                + self.spec.pcie_time(num_bytes))

    def _execute(self, vertices, rng):
        """Run one micro-batch; returns ``(predictions, bp, dt, nn)``
        — per-request predictions plus the simulated seconds of each
        serving stage (batch preparation / data transfer / NN)."""
        if self.mode == "sampled":
            subgraph = self.sampler.sample(self.dataset.graph, vertices,
                                           rng)
            logits = self.model.forward(
                subgraph,
                self.dataset.features[subgraph.input_nodes]).data
            rows = np.searchsorted(subgraph.seeds, vertices)
            predictions = logits.argmax(axis=-1)[rows]
            bp = self.spec.sample_time(subgraph.total_edges)
            dt = self._fetch_seconds(subgraph.input_nodes,
                                     self._feat_bytes)
            nn = self.spec.compute_time(estimate_flops(
                subgraph, self.dataset.feature_dim, self.hidden_dim,
                self.dataset.num_classes, backward_factor=1.0))
            return predictions, bp, dt, nn

        if self.mode == "full":
            logits, stats = self.embeddings.ondemand_logits(vertices)
            predictions = logits.argmax(axis=-1)
            bp = self.spec.sample_time(stats.edges)
            dt = self._fetch_seconds(stats.input_ids, self._feat_bytes)
            nn = self.spec.compute_time(stats.flops)
            return predictions, bp, dt, nn

        # precomputed: table lookup through the embedding cache + head.
        logits = self.embeddings.logits(vertices)
        predictions = logits.argmax(axis=-1)
        row_bytes = (self.embeddings.table.shape[1]
                     * self.embeddings.table.itemsize)
        dt = self._fetch_seconds(np.unique(vertices), row_bytes)
        nn = self.spec.compute_time(
            self.embeddings.head_flops(len(vertices)))
        return predictions, 0.0, dt, nn

    def _execute_degraded(self, vertices):
        """Degraded-mode batch: answer from the precomputed table
        instead of sampling (no feature cache involved — the fallback
        table rows are fetched directly)."""
        logits = self.embeddings.logits(vertices)
        predictions = logits.argmax(axis=-1)
        row_bytes = (self.embeddings.table.shape[1]
                     * self.embeddings.table.itemsize)
        num_bytes = len(np.unique(vertices)) * row_bytes
        dt = (self.spec.gather_time(num_bytes)
              + self.spec.pcie_time(num_bytes)) if num_bytes else 0.0
        nn = self.spec.compute_time(
            self.embeddings.head_flops(len(vertices)))
        return predictions, 0.0, dt, nn

    # ------------------------------------------------------------------
    # The simulated-time serving loop
    # ------------------------------------------------------------------
    def run(self, requests):
        """Serve a request trace; returns a
        :class:`~repro.serve.metrics.ServeReport`.

        ``requests`` must be sorted by arrival time (what
        :meth:`LoadGenerator.generate` produces).  The loop is a
        single-server queueing simulation: arrivals at time ``t`` are
        admitted (in order) before any dispatch decision at ``t``; a
        batch launches when the server is free and the batcher is ready
        (full, past the oldest deadline, or draining).
        """
        was_training = self.model.training
        self.model.eval()
        try:
            return self._run(list(requests))
        finally:
            self.model.train() if was_training else self.model.eval()

    def _run(self, requests):
        if not requests:
            raise ServingError("cannot serve an empty request trace")
        batcher = MicroBatcher(self.policy, self.max_queue)
        metrics = StageProfiler()
        self._tier_seconds = {"hot": 0.0, "warm": 0.0, "cold": 0.0}
        rng = np.random.default_rng(self.seed)
        labels = self.dataset.labels

        responses = []
        rejected = []
        shed = []
        degraded_count = 0
        service_estimate = None     # EWMA of sampled-path service time
        bp_total = dt_total = nn_total = 0.0
        correct = 0
        clock = 0.0
        i, n = 0, len(requests)
        batch_id = 0

        while i < n or len(batcher):
            if not len(batcher):
                clock = max(clock, requests[i].arrival)
            while i < n and requests[i].arrival <= clock:
                try:
                    batcher.submit(requests[i])
                    metrics.observe("queue_depth", len(batcher))
                except AdmissionError:
                    rejected.append(requests[i])
                i += 1
            if not batcher.ready(clock, draining=(i >= n)):
                flush_at = batcher.oldest_deadline()
                clock = max(clock, min(flush_at, requests[i].arrival))
                continue

            batch = batcher.take()
            if self.deadline is not None:
                # Load shedding: a request already past its deadline at
                # dispatch cannot be answered in time no matter how
                # fast the batch runs — drop it and spend the capacity
                # on requests that can still make it.
                expired = [r for r in batch
                           if clock > r.arrival + self.deadline]
                if expired:
                    shed.extend(expired)
                    batch = [r for r in batch
                             if clock <= r.arrival + self.deadline]
                    if not batch:
                        continue

            # Graceful degradation: when the sampled path's predicted
            # service time would push the batch's oldest request past
            # its deadline, answer from the precomputed table instead.
            degrade = (
                self.fallback and service_estimate is not None
                and clock + service_estimate
                > min(r.arrival for r in batch) + self.deadline)

            vertices = np.array([r.vertex for r in batch],
                                dtype=np.int64)
            if degrade:
                predictions, bp, dt, nn = self._execute_degraded(vertices)
                degraded_count += len(batch)
            else:
                predictions, bp, dt, nn = self._execute(vertices, rng)
                if self.mode == "sampled":
                    service = bp + dt + nn
                    service_estimate = service \
                        if service_estimate is None \
                        else 0.5 * (service_estimate + service)
            clock += bp + dt + nn
            bp_total += bp
            dt_total += dt
            nn_total += nn
            metrics.observe("batch_size", len(batch))
            for request, prediction in zip(batch, predictions):
                responses.append(InferenceResponse(
                    request=request, prediction=int(prediction),
                    completion=clock, batch_id=batch_id,
                    batch_size=len(batch), degraded=degrade))
                metrics.observe("latency", clock - request.arrival)
                correct += int(prediction == labels[request.vertex])
            batch_id += 1
            PERF.count("serve_batches")

        PERF.count("serve_requests", len(responses))
        latency = metrics.summary("latency")
        batch_stats = metrics.summary("batch_size")
        depth = metrics.summary("queue_depth")
        duration = max(r.completion for r in responses) if responses \
            else 0.0
        tiered = isinstance(self.cache, TieredCache)
        return ServeReport(
            mode=self.mode,
            policy=self.policy.describe(),
            cache_ratio=self.cache_ratio,
            num_requests=n,
            completed=len(responses),
            rejected=len(rejected),
            duration_seconds=duration,
            throughput=len(responses) / duration if duration else 0.0,
            latency_mean=latency["mean"] if latency else 0.0,
            latency_p50=latency["p50"] if latency else 0.0,
            latency_p95=latency["p95"] if latency else 0.0,
            latency_p99=latency["p99"] if latency else 0.0,
            latency_max=latency["max"] if latency else 0.0,
            num_batches=batch_id,
            mean_batch_size=batch_stats["mean"] if batch_stats else 0.0,
            batch_occupancy=(batch_stats["mean"]
                             / self.policy.max_batch_size
                             if batch_stats else 0.0),
            queue_depth_mean=depth["mean"] if depth else 0.0,
            queue_depth_max=depth["max"] if depth else 0.0,
            cache_hit_rate=(self.cache.hit_rate
                            if self.cache is not None else 0.0),
            bp_seconds=bp_total,
            dt_seconds=dt_total,
            nn_seconds=nn_total,
            precompute_seconds=self.precompute_seconds,
            accuracy=correct / len(responses) if responses else 0.0,
            deadline=self.deadline or 0.0,
            shed=len(shed),
            degraded=degraded_count,
            deadline_misses=(sum(
                1 for r in responses
                if r.latency > self.deadline)
                if self.deadline is not None else 0),
            cache_policy=self.cache_policy,
            warm_ratio=self.warm_ratio,
            hot_hit_rate=(self.cache.hot_hit_rate if tiered else 0.0),
            warm_hit_rate=(self.cache.warm_hit_rate if tiered else 0.0),
            tier_seconds=(dict(self._tier_seconds) if tiered else {}),
            responses=responses,
        )
