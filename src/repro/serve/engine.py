"""The online inference engine: a single simulated serving node.

Ties the layer together: an admission queue + micro-batcher
(:mod:`repro.serve.batcher`) feeds a :class:`~repro.serve.executor.
BatchExecutor`, and every byte/edge/FLOP a batch touches is converted
to simulated seconds through the same
:class:`~repro.transfer.hardware.HardwareSpec` cost model the training
engines use.  The executor is a separate layer on purpose: the fleet
tier (:mod:`repro.fleet`) runs one executor per graph shard behind a
partition-aware router, while this engine is the single-server
baseline the fleet must bit-match.

Execution modes
---------------
``sampled``
    On-demand sampled inference: the batch's seeds go through the
    training stack's :class:`~repro.sampling.NeighborSampler` and
    ``build_block`` hot path, features are fetched through an optional
    GPU feature cache, and the model runs forward.  Approximate (it
    samples), cheap, the BGL/Serafini-style serving answer.
``full``
    On-demand *full-fanout* inference: the query's entire L-hop
    neighborhood, computed exactly via
    :class:`~repro.serve.precompute.LayerwiseEmbeddings`'s reference
    path.  Exact but explodes with depth — the mode that motivates
    precomputation.
``precomputed``
    Layer-wise precomputed embeddings: serving is an embedding-table
    lookup (through an LRU *historical-embedding cache*) plus the MLP
    head, evaluated row-wise so each answer is a pure function of the
    queried vertex (batching-invariant — see
    :meth:`~repro.serve.precompute.LayerwiseEmbeddings.rowwise_logits`).

The event loop is deterministic: simulated arrivals come from a seeded
:class:`~repro.serve.requests.LoadGenerator` trace, sampling uses one
seeded rng, and no wall clock is ever read on the simulated-time path.

Graceful degradation (``deadline``/``fallback``): with a per-request
deadline, requests that are already past it at dispatch are *shed*
(load shedding — answering them late wastes capacity the live requests
need), and in ``sampled`` mode with ``fallback=True`` a batch whose
predicted sampled-path service time would miss the deadline is served
from precomputed layer-wise embeddings instead (exact-but-stale beats
sampled-but-late).  Sheds, degraded answers, and residual deadline
misses are all reported on :class:`~repro.serve.metrics.ServeReport`.
"""

from __future__ import annotations

import numpy as np

from ..errors import AdmissionError, ServingError
from ..perf import PERF, StageProfiler
from ..transfer.hardware import DEFAULT_SPEC
from ..transfer.tiered import TieredCache
from .batcher import BatchPolicy, MicroBatcher
from .executor import SERVE_MODES, BatchExecutor
from .metrics import ServeReport
from .requests import InferenceResponse

__all__ = ["ServeEngine", "SERVE_MODES"]


class ServeEngine:
    """Single-node online inference over a trained model.

    Parameters
    ----------
    dataset:
        The :class:`~repro.graph.datasets.Dataset` being served.
    model:
        A trained block-stack model (``GCN``/``GraphSAGE``; ``sampled``
        mode also accepts ``GAT``).
    mode:
        One of :data:`SERVE_MODES`.
    policy, max_queue:
        Micro-batching policy and admission bound (see
        :class:`~repro.serve.batcher.MicroBatcher`).
    fanout:
        Per-layer fanout for ``sampled`` mode.
    cache_policy, cache_ratio:
        ``sampled``/``full``: the GPU *feature* cache ("lru" or
        "degree"); ``precomputed``: the *embedding-row* cache.
        ``cache_ratio=0`` disables caching (every row is fetched).
    warm_ratio, cache_scores:
        ``warm_ratio > 0`` (or ``cache_policy="lfu"``, which has no
        flat equivalent) upgrades the cache to a multi-tier
        :class:`~repro.transfer.tiered.TieredCache`: ``cache_ratio``
        of the rows GPU-hot, ``warm_ratio`` pinned-host-warm, the rest
        disk-cold — the policies grow to "lru"/"lfu"/"degree"/
        "presample"/"static" ("presample"/"static" need
        ``cache_scores``, e.g. measured request frequencies from a
        trace prefix).  The report then carries per-tier hit rates and
        the per-tier split of ``dt_seconds``.
    spec:
        Hardware cost model; defaults to the paper's simulated node.
    seed:
        Seeds the sampling rng — the only randomness in the engine.
    embeddings:
        Optional prebuilt :class:`LayerwiseEmbeddings` to share across
        engines (skips the offline pass).
    deadline:
        Optional per-request deadline in simulated seconds.  At
        dispatch, requests already past their deadline are *shed*
        (dropped without an answer — serving a guaranteed-stale reply
        wastes capacity the queued requests need); completed requests
        that still finish late are counted as deadline misses.
    fallback:
        ``sampled`` mode only: when True, a batch whose sampled-path
        service time is predicted to miss the deadline is served from
        precomputed layer-wise embeddings instead (graceful
        degradation: exact-but-stale beats sampled-but-late).  Builds a
        :class:`LayerwiseEmbeddings` table unless ``embeddings`` is
        supplied; the offline cost lands in ``precompute_seconds``.
    """

    def __init__(self, dataset, model, mode="sampled", policy=None,
                 max_queue=None, fanout=(10, 10), cache_policy="lru",
                 cache_ratio=0.0, warm_ratio=0.0, cache_scores=None,
                 spec=None, seed=0, embeddings=None, deadline=None,
                 fallback=False):
        if deadline is not None and deadline <= 0:
            raise ServingError(
                f"deadline must be positive, got {deadline}")
        if fallback and mode != "sampled":
            raise ServingError(
                "fallback degradation only applies to 'sampled' mode "
                f"(mode {mode!r} already serves from the table)")
        if fallback and deadline is None:
            raise ServingError(
                "fallback degradation needs a deadline to degrade "
                "against")
        self.dataset = dataset
        self.model = model
        self.mode = mode
        self.policy = policy or BatchPolicy()
        self.max_queue = max_queue
        self.spec = spec or DEFAULT_SPEC
        self.seed = int(seed)
        self.deadline = None if deadline is None else float(deadline)
        self.fallback = bool(fallback)
        self.executor = BatchExecutor(
            dataset, model, mode=mode, fanout=fanout,
            cache_policy=cache_policy, cache_ratio=cache_ratio,
            warm_ratio=warm_ratio, cache_scores=cache_scores,
            spec=self.spec, embeddings=embeddings,
            need_embeddings=self.fallback)

    # Back-compatible views onto the execution layer (the pre-fleet
    # engine owned these directly; tests and callers still read them).
    @property
    def sampler(self):
        return self.executor.sampler

    @property
    def embeddings(self):
        return self.executor.embeddings

    @property
    def cache(self):
        return self.executor.cache

    @property
    def cache_ratio(self):
        return self.executor.cache_ratio

    @property
    def warm_ratio(self):
        return self.executor.warm_ratio

    @property
    def cache_policy(self):
        return self.executor.cache_policy

    @property
    def hidden_dim(self):
        return self.executor.hidden_dim

    @property
    def precompute_seconds(self):
        return self.executor.precompute_seconds

    # ------------------------------------------------------------------
    # The simulated-time serving loop
    # ------------------------------------------------------------------
    def run(self, requests):
        """Serve a request trace; returns a
        :class:`~repro.serve.metrics.ServeReport`.

        ``requests`` must be sorted by arrival time (what
        :meth:`LoadGenerator.generate` produces).  The loop is a
        single-server queueing simulation: arrivals at time ``t`` are
        admitted (in order) before any dispatch decision at ``t``; a
        batch launches when the server is free and the batcher is ready
        (full, past the oldest deadline, or draining).
        """
        was_training = self.model.training
        self.model.eval()
        try:
            return self._run(list(requests))
        finally:
            self.model.train() if was_training else self.model.eval()

    def _run(self, requests):
        if not requests:
            raise ServingError("cannot serve an empty request trace")
        batcher = MicroBatcher(self.policy, self.max_queue)
        metrics = StageProfiler()
        self.executor.reset_counters()
        rng = np.random.default_rng(self.seed)
        labels = self.dataset.labels

        responses = []
        rejected = []
        shed = []
        degraded_count = 0
        service_estimate = None     # EWMA of sampled-path service time
        bp_total = dt_total = nn_total = 0.0
        correct = 0
        clock = 0.0
        i, n = 0, len(requests)
        batch_id = 0

        while i < n or len(batcher):
            if not len(batcher):
                clock = max(clock, requests[i].arrival)
            while i < n and requests[i].arrival <= clock:
                try:
                    batcher.submit(requests[i])
                    metrics.observe("queue_depth", len(batcher))
                except AdmissionError:
                    rejected.append(requests[i])
                i += 1
            if not batcher.ready(clock, draining=(i >= n)):
                flush_at = batcher.oldest_deadline()
                clock = max(clock, min(flush_at, requests[i].arrival))
                continue

            batch = batcher.take()
            if self.deadline is not None:
                # Load shedding: a request already past its deadline at
                # dispatch cannot be answered in time no matter how
                # fast the batch runs — drop it and spend the capacity
                # on requests that can still make it.
                expired = [r for r in batch
                           if clock > r.arrival + self.deadline]
                if expired:
                    shed.extend(expired)
                    batch = [r for r in batch
                             if clock <= r.arrival + self.deadline]
                    if not batch:
                        continue

            # Graceful degradation: when the sampled path's predicted
            # service time would push the batch's oldest request past
            # its deadline, answer from the precomputed table instead.
            degrade = (
                self.fallback and service_estimate is not None
                and clock + service_estimate
                > min(r.arrival for r in batch) + self.deadline)

            vertices = np.array([r.vertex for r in batch],
                                dtype=np.int64)
            if degrade:
                predictions, bp, dt, nn = \
                    self.executor.execute_degraded(vertices)
                degraded_count += len(batch)
            else:
                predictions, bp, dt, nn = self.executor.execute(
                    vertices, rng)
                if self.mode == "sampled":
                    service = bp + dt + nn
                    service_estimate = service \
                        if service_estimate is None \
                        else 0.5 * (service_estimate + service)
            clock += bp + dt + nn
            bp_total += bp
            dt_total += dt
            nn_total += nn
            metrics.observe("batch_size", len(batch))
            for request, prediction in zip(batch, predictions):
                responses.append(InferenceResponse(
                    request=request, prediction=int(prediction),
                    completion=clock, batch_id=batch_id,
                    batch_size=len(batch), degraded=degrade))
                metrics.observe("latency", clock - request.arrival)
                correct += int(prediction == labels[request.vertex])
            batch_id += 1
            PERF.count("serve_batches")

        PERF.count("serve_requests", len(responses))
        latency = metrics.summary("latency")
        batch_stats = metrics.summary("batch_size")
        depth = metrics.summary("queue_depth")
        duration = max(r.completion for r in responses) if responses \
            else 0.0
        tiered = isinstance(self.cache, TieredCache)
        return ServeReport(
            mode=self.mode,
            policy=self.policy.describe(),
            cache_ratio=self.cache_ratio,
            num_requests=n,
            completed=len(responses),
            rejected=len(rejected),
            duration_seconds=duration,
            throughput=len(responses) / duration if duration else 0.0,
            latency_mean=latency["mean"] if latency else 0.0,
            latency_p50=latency["p50"] if latency else 0.0,
            latency_p95=latency["p95"] if latency else 0.0,
            latency_p99=latency["p99"] if latency else 0.0,
            latency_max=latency["max"] if latency else 0.0,
            num_batches=batch_id,
            mean_batch_size=batch_stats["mean"] if batch_stats else 0.0,
            batch_occupancy=(batch_stats["mean"]
                             / self.policy.max_batch_size
                             if batch_stats else 0.0),
            queue_depth_mean=depth["mean"] if depth else 0.0,
            queue_depth_max=depth["max"] if depth else 0.0,
            cache_hit_rate=(self.cache.hit_rate
                            if self.cache is not None else 0.0),
            bp_seconds=bp_total,
            dt_seconds=dt_total,
            nn_seconds=nn_total,
            precompute_seconds=self.precompute_seconds,
            accuracy=correct / len(responses) if responses else 0.0,
            deadline=self.deadline or 0.0,
            shed=len(shed),
            degraded=degraded_count,
            deadline_misses=(sum(
                1 for r in responses
                if r.latency > self.deadline)
                if self.deadline is not None else 0),
            cache_policy=self.cache_policy,
            warm_ratio=self.warm_ratio,
            hot_hit_rate=(self.cache.hot_hit_rate if tiered else 0.0),
            warm_hit_rate=(self.cache.warm_hit_rate if tiered else 0.0),
            tier_seconds=(dict(self.executor.tier_seconds)
                          if tiered else {}),
            responses=responses,
        )
