"""The latency-SLO serving benchmark: one reusable sweep.

Trains a small model, generates one shared seeded request trace, then
serves it under every ``mode x batching policy x cache ratio``
combination, reporting the throughput/latency curves an operator would
use to pick a policy against a latency SLO.  Shared by the
``repro serve-bench`` CLI command and
``benchmarks/bench_serve_latency.py`` (which writes
``BENCH_serve.json``).

Every run also verifies the subsystem's core invariant: precomputed
-mode logits must be *bit-identical* (``atol=0``) to on-demand
full-fanout logits on a probe query set.
"""

from __future__ import annotations

import numpy as np

from ..core import Trainer
from ..core.config import TrainingConfig
from ..errors import ServingError
from ..graph import load_dataset
from .batcher import BatchPolicy
from .engine import ServeEngine
from .precompute import LayerwiseEmbeddings
from .requests import LoadGenerator

__all__ = ["run_serve_bench", "QUICK_OVERRIDES"]

#: Parameter overrides for smoke runs (CI, ``--quick``).
QUICK_OVERRIDES = dict(scale=0.15, train_epochs=1, num_requests=120,
                       policies=((4, 0.0005), (16, 0.002)),
                       cache_ratios=(0.1, 0.5),
                       tiered_policies=("lfu",))


def run_serve_bench(dataset="ogb-arxiv", scale=0.3, model="gcn",
                    train_epochs=2, fanout=(10, 10), rate=2000.0,
                    num_requests=400, skew=0.8, seed=0,
                    policies=((4, 0.0005), (32, 0.004)),
                    cache_ratios=(0.1, 0.5),
                    modes=("sampled", "precomputed"),
                    tiered_policies=("lfu", "static"),
                    max_queue=256, quick=False):
    """Run the full serving sweep; returns a JSON-serializable dict.

    ``policies`` are ``(max_batch_size, max_wait_seconds)`` pairs;
    ``quick=True`` applies :data:`QUICK_OVERRIDES` for a fast smoke.

    Besides the flat ``mode x policy x cache_ratio`` grid, each
    ``tiered_policies`` entry is swept once per cache ratio in
    precomputed mode with the same *total* budget split half GPU-hot,
    half pinned-host-warm ("static" places rows by request frequencies
    measured on the first quarter of the trace — the BGL-style
    presampled admission, serving edition); those rows carry per-tier
    hit rates and a per-tier ``dt_seconds`` split.
    """
    if quick:
        scale = QUICK_OVERRIDES["scale"]
        train_epochs = QUICK_OVERRIDES["train_epochs"]
        num_requests = QUICK_OVERRIDES["num_requests"]
        policies = QUICK_OVERRIDES["policies"]
        cache_ratios = QUICK_OVERRIDES["cache_ratios"]
        tiered_policies = QUICK_OVERRIDES["tiered_policies"]
    if len(policies) < 1 or len(cache_ratios) < 1:
        raise ServingError("need at least one policy and cache ratio")

    data = load_dataset(dataset, scale=scale)
    result = Trainer(data, TrainingConfig(
        model=model, epochs=train_epochs, num_workers=2,
        batch_size=256, fanout=tuple(fanout), seed=seed)).run()
    trained = result.model

    trace = LoadGenerator(data.test_ids, rate=rate,
                          num_requests=num_requests, seed=seed,
                          skew=skew).generate()

    # One shared offline table for every precomputed/full engine.
    embeddings = LayerwiseEmbeddings(trained, data.graph, data.features)

    # The subsystem invariant, checked on every benchmark run: serving
    # from the table must be bit-identical to exact on-demand
    # inference.
    probe = data.test_ids[:min(64, len(data.test_ids))]
    precomputed_logits = embeddings.logits(probe)
    ondemand_logits, _stats = embeddings.ondemand_logits(probe)
    exact = bool(np.array_equal(precomputed_logits, ondemand_logits))
    if not exact:
        raise ServingError(
            "precomputed-mode logits diverged from on-demand "
            "full-fanout logits (bit-match invariant violated)")

    results = []
    for mode in modes:
        for size, wait in policies:
            for ratio in cache_ratios:
                engine = ServeEngine(
                    data, trained, mode=mode,
                    policy=BatchPolicy(max_batch_size=int(size),
                                       max_wait=float(wait)),
                    max_queue=max_queue, fanout=tuple(fanout),
                    cache_ratio=float(ratio), seed=seed,
                    embeddings=(embeddings if mode != "sampled"
                                else None))
                results.append(engine.run(trace).to_dict())

    # Tiered sweep: same total budget as each flat row, split half
    # GPU-hot / half pinned-host-warm, served in precomputed mode with
    # the first policy's batching.  "static" admission scores rows by
    # request frequencies measured on the first quarter of the trace.
    size, wait = policies[0]
    measured = np.zeros(data.graph.num_vertices)
    # Request-frequency histogram over the warmup trace — admission
    # scoring, not a graph aggregation; no kernel seam applies.
    np.add.at(measured,  # repro: noqa[ARC002]
              [r.vertex for r in trace[:max(1, len(trace) // 4)]], 1)
    for tier_policy in tiered_policies:
        for ratio in cache_ratios:
            engine = ServeEngine(
                data, trained, mode="precomputed",
                policy=BatchPolicy(max_batch_size=int(size),
                                   max_wait=float(wait)),
                max_queue=max_queue, fanout=tuple(fanout),
                cache_policy=tier_policy,
                cache_ratio=float(ratio) / 2,
                warm_ratio=float(ratio) / 2,
                cache_scores=(measured if tier_policy
                              in ("static", "presample") else None),
                seed=seed, embeddings=embeddings)
            results.append(engine.run(trace).to_dict())

    return {
        "dataset": data.name,
        "scale": scale,
        "model": model,
        "train_epochs": train_epochs,
        "test_accuracy": result.test_accuracy,
        "load": {"rate": rate, "num_requests": num_requests,
                 "skew": skew, "seed": seed},
        "fanout": list(fanout),
        "max_queue": max_queue,
        "invariant_exact_match": exact,
        "results": results,
    }
