"""The serving metrics surface: one report per run.

Latency percentiles come from the
:meth:`~repro.perf.StageProfiler.observe` distribution API (every
request latency, batch size, and queue depth is an observation on a
per-run profiler), so the serving layer's histogram math is the same
code the rest of the perf layer uses — and unit-tested there.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["ServeReport"]


@dataclass
class ServeReport:
    """Everything one serving run measured, in simulated seconds.

    ``precompute_seconds`` is the one-off offline cost of building the
    embedding table (zero for on-demand modes); it is reported next to
    — never folded into — per-request latency, exactly as the paper
    reports partitioning time next to training time.
    """

    mode: str
    policy: str
    cache_ratio: float
    num_requests: int
    completed: int
    rejected: int
    duration_seconds: float        # first arrival to last completion
    throughput: float              # completed requests per sim. second
    latency_mean: float
    latency_p50: float
    latency_p95: float
    latency_p99: float
    latency_max: float
    num_batches: int
    mean_batch_size: float
    batch_occupancy: float         # mean batch size / max_batch_size
    queue_depth_mean: float
    queue_depth_max: float
    cache_hit_rate: float
    bp_seconds: float              # batch preparation (sampling)
    dt_seconds: float              # feature/embedding transfer
    nn_seconds: float              # NN computation
    precompute_seconds: float
    accuracy: float
    # Deadline/degradation accounting (zero when no deadline is set):
    # the per-request deadline in simulated seconds, requests shed
    # because they were already past their deadline at dispatch,
    # requests answered by the precomputed fallback instead of the
    # sampled path, and completed requests that still finished late.
    deadline: float = 0.0
    shed: int = 0
    degraded: int = 0
    deadline_misses: int = 0
    # Tiered-cache accounting (present when the engine serves through a
    # :class:`~repro.transfer.tiered.TieredCache`): the admission
    # policy, the pinned-host budget, per-tier hit rates, and the
    # per-tier split of ``dt_seconds``.  ``cache_hit_rate`` above stays
    # the GPU-resident (hot) rate, comparable to the flat caches'.
    cache_policy: str = "lru"
    warm_ratio: float = 0.0
    hot_hit_rate: float = 0.0
    warm_hit_rate: float = 0.0
    tier_seconds: dict = field(default_factory=dict)
    responses: list = field(repr=False, default_factory=list)

    @property
    def reject_rate(self):
        return self.rejected / self.num_requests \
            if self.num_requests else 0.0

    @property
    def shed_rate(self):
        return self.shed / self.num_requests if self.num_requests else 0.0

    @property
    def deadline_miss_rate(self):
        """Fraction of *completed* requests that finished past their
        deadline (sheds and rejects are counted separately)."""
        return self.deadline_misses / self.completed \
            if self.completed else 0.0

    def breakdown(self):
        """Serving-time shares of the three data-management steps —
        the Figure 2 quantities, now for inference."""
        total = self.bp_seconds + self.dt_seconds + self.nn_seconds
        if total == 0:
            return {"batch_preparation": 0.0, "data_transferring": 0.0,
                    "nn_computation": 0.0}
        return {
            "batch_preparation": self.bp_seconds / total,
            "data_transferring": self.dt_seconds / total,
            "nn_computation": self.nn_seconds / total,
        }

    def to_dict(self):
        """JSON-serializable summary (responses omitted)."""
        out = {name: getattr(self, name)
               for name in self.__dataclass_fields__
               if name != "responses"}
        out["reject_rate"] = self.reject_rate
        out["shed_rate"] = self.shed_rate
        out["deadline_miss_rate"] = self.deadline_miss_rate
        out["breakdown"] = self.breakdown()
        return out
