"""Dynamic micro-batching with bounded-queue backpressure.

GNN inference is throughput-friendly but latency-sensitive: a bigger
micro-batch amortizes sampling and PCIe transfer over more queries
(the same economics as training batch preparation), but every query in
the batch pays the wait for the last one to arrive.  The
:class:`MicroBatcher` implements the standard two-knob policy —
``max_batch_size`` (flush when full) and ``max_wait`` (flush when the
oldest queued request has waited long enough) — plus a bounded
admission queue: when more requests are waiting than ``max_queue``
allows, new arrivals are rejected with a typed
:class:`~repro.errors.AdmissionError` instead of growing the tail
latency without bound (open-loop load cannot be slowed down, so
shedding is the only backpressure available).

Like :mod:`repro.dist.engine`, everything runs in *simulated* time:
the batcher never reads a clock — callers pass ``now`` in.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from ..errors import AdmissionError, ServingError

__all__ = ["BatchPolicy", "MicroBatcher"]


@dataclass(frozen=True)
class BatchPolicy:
    """The two batching knobs.

    Attributes
    ----------
    max_batch_size:
        Flush as soon as this many requests are queued.
    max_wait:
        Flush (a possibly partial batch) once the oldest queued request
        has waited this many simulated seconds.  ``0`` degenerates to
        per-request dispatch.
    """

    max_batch_size: int = 32
    max_wait: float = 2e-3

    def __post_init__(self):
        if self.max_batch_size < 1:
            raise ServingError(
                f"max_batch_size must be >= 1, got {self.max_batch_size}")
        if self.max_wait < 0:
            raise ServingError(
                f"max_wait must be >= 0, got {self.max_wait}")

    def describe(self):
        """Short policy label used in reports and benchmark tables."""
        return f"b{self.max_batch_size}/w{1e3 * self.max_wait:g}ms"


class MicroBatcher:
    """FIFO admission queue with size/deadline flush semantics.

    Parameters
    ----------
    policy:
        The :class:`BatchPolicy` deciding when a batch is ready.
    max_queue:
        Bound on *queued* (admitted, not yet dispatched) requests;
        ``None`` means unbounded.  :meth:`submit` raises
        :class:`~repro.errors.AdmissionError` when full — the request
        is rejected, the queue is unchanged.
    """

    def __init__(self, policy=None, max_queue=None):
        self.policy = policy or BatchPolicy()
        if max_queue is not None and max_queue < 1:
            raise ServingError(
                f"max_queue must be >= 1 or None, got {max_queue}")
        self.max_queue = max_queue
        self._queue = deque()
        self.admitted = 0
        self.rejected = 0

    def __len__(self):
        return len(self._queue)

    def submit(self, request):
        """Admit ``request``, or raise :class:`AdmissionError` if the
        queue is at capacity."""
        if self.max_queue is not None and len(self._queue) >= self.max_queue:
            self.rejected += 1
            raise AdmissionError(
                f"admission queue full ({self.max_queue} waiting); "
                f"rejecting request {request.request_id}")
        self._queue.append(request)
        self.admitted += 1

    def oldest_deadline(self):
        """Simulated time at which the current head of the queue forces
        a flush, or ``None`` when the queue is empty."""
        if not self._queue:
            return None
        return self._queue[0].arrival + self.policy.max_wait

    def ready(self, now, draining=False):
        """Whether a batch should be dispatched at time ``now``.

        True when the queue holds a full batch, the oldest request's
        ``max_wait`` deadline has passed, or ``draining`` (no further
        arrivals will ever come, so waiting is pointless).
        """
        if not self._queue:
            return False
        if len(self._queue) >= self.policy.max_batch_size:
            return True
        if draining:
            return True
        return now >= self.oldest_deadline()

    def drain(self):
        """Remove and return every queued request, FIFO order.  Used by
        the fleet's crash failover: a dead replica's queue is handed
        back to the router for re-routing (the requests were admitted
        but never served, so they do not count as rejected here)."""
        drained = list(self._queue)
        self._queue.clear()
        return drained

    def cancel(self, request_id):
        """Remove the queued request with ``request_id`` if present;
        returns whether one was removed.  Used by the fleet's hedged
        requests: when one copy of a hedged pair completes, the twin
        still sitting in another replica's queue is cancelled so it
        never consumes service time (first-response-wins)."""
        for index, queued in enumerate(self._queue):
            if queued.request_id == request_id:
                del self._queue[index]
                return True
        return False

    def take(self):
        """Pop the next batch (up to ``max_batch_size`` requests, FIFO
        order).  Raises :class:`ServingError` on an empty queue."""
        if not self._queue:
            raise ServingError("take() from an empty batch queue")
        size = min(len(self._queue), self.policy.max_batch_size)
        return [self._queue.popleft() for _ in range(size)]
