"""repro.serve — online GNN inference serving.

The training side of this library prepares batches to *learn*; this
package prepares batches to *answer queries*.  The same data-management
steps reappear with serving economics: batch preparation becomes
dynamic micro-batching of user requests under a latency SLO, data
transferring becomes feature/embedding fetches through a GPU cache, and
NN computation can be moved offline entirely via layer-wise
precomputed embedding tables.

Pieces:

* :mod:`~repro.serve.requests` — typed requests/responses and a seeded
  open-loop Poisson :class:`LoadGenerator` (fully reproducible traces);
* :mod:`~repro.serve.batcher` — :class:`MicroBatcher` with
  ``max_batch_size``/``max_wait`` flush policies and bounded-queue
  backpressure (:class:`~repro.errors.AdmissionError`);
* :mod:`~repro.serve.precompute` — :class:`LayerwiseEmbeddings`,
  bit-identical precomputed vs on-demand full-fanout inference;
* :mod:`~repro.serve.engine` — the :class:`ServeEngine` simulated
  single-node server with three execution modes;
* :mod:`~repro.serve.metrics` — :class:`ServeReport` latency/throughput
  digests built on :meth:`repro.perf.StageProfiler.observe`;
* :mod:`~repro.serve.bench` — the ``repro serve-bench`` sweep.
"""

from .batcher import BatchPolicy, MicroBatcher
from .bench import run_serve_bench
from .engine import SERVE_MODES, ServeEngine
from .metrics import ServeReport
from .precompute import LayerwiseEmbeddings, OndemandStats
from .requests import InferenceRequest, InferenceResponse, LoadGenerator

__all__ = [
    "InferenceRequest", "InferenceResponse", "LoadGenerator",
    "BatchPolicy", "MicroBatcher",
    "LayerwiseEmbeddings", "OndemandStats",
    "ServeEngine", "SERVE_MODES", "ServeReport",
    "run_serve_bench",
]
