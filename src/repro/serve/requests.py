"""The serving request layer: typed requests/responses and a
reproducible open-loop load generator.

Online inference is evaluated the way the training engines are: in
*simulated* seconds.  A :class:`LoadGenerator` draws a Poisson arrival
process and a query-vertex stream from one seeded rng up front, so a
serving run is a pure function of ``(trace, engine config)`` — no
wall-clock reads, no unseeded randomness — and two runs with the same
seed produce bit-identical latency distributions.  Open-loop means
arrivals do not react to server backpressure (the standard way to
measure tail latency under load: closed-loop generators hide queueing
delay by slowing down with the server).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ServingError

__all__ = ["InferenceRequest", "InferenceResponse", "LoadGenerator"]


@dataclass(frozen=True)
class InferenceRequest:
    """One node-classification query.

    Attributes
    ----------
    request_id:
        Position in the generated trace (unique, dense).
    vertex:
        Global id of the vertex whose label is queried.
    arrival:
        Simulated arrival time in seconds from the start of the run.
    """

    request_id: int
    vertex: int
    arrival: float


@dataclass(frozen=True)
class InferenceResponse:
    """The served answer to one :class:`InferenceRequest`.

    ``completion - request.arrival`` is the request's end-to-end
    latency: queueing delay + batching delay + service time of the
    micro-batch it rode in.  ``degraded`` marks answers served by the
    precomputed-embedding fallback because the sampled path would have
    missed the request's deadline (see ``ServeEngine``).  ``replica``
    identifies the fleet replica that served the answer (always 0 on a
    single-server :class:`~repro.serve.engine.ServeEngine`).
    """

    request: InferenceRequest
    prediction: int
    completion: float
    batch_id: int
    batch_size: int
    degraded: bool = False
    replica: int = 0

    @property
    def latency(self):
        """End-to-end simulated latency in seconds."""
        return self.completion - self.request.arrival


class LoadGenerator:
    """Seeded open-loop Poisson request generator.

    Parameters
    ----------
    population:
        Candidate query vertices (e.g. a dataset's test split).
    rate:
        Mean arrival rate in requests per simulated second.
    num_requests:
        Trace length.
    seed:
        Seeds both the arrival process and the vertex draw.
    skew:
        Query popularity skew: ``0`` draws vertices uniformly; ``s > 0``
        draws with probability proportional to ``rank**-s`` over a
        seeded shuffle of the population (Zipf-like — the
        "heavy traffic from a few hot entities" regime caches exploit).
    """

    def __init__(self, population, rate, num_requests, seed=0, skew=0.0):
        self.population = np.unique(
            np.asarray(population, dtype=np.int64))
        if len(self.population) == 0:
            raise ServingError("load generator needs a non-empty "
                               "query population")
        if rate <= 0:
            raise ServingError(f"arrival rate must be positive, "
                               f"got {rate}")
        if num_requests < 1:
            raise ServingError("need at least one request")
        if skew < 0:
            raise ServingError(f"skew must be >= 0, got {skew}")
        self.rate = float(rate)
        self.num_requests = int(num_requests)
        self.seed = int(seed)
        self.skew = float(skew)

    def generate(self):
        """The full request trace, as a list of
        :class:`InferenceRequest` sorted by arrival time."""
        rng = np.random.default_rng(self.seed)
        gaps = rng.exponential(1.0 / self.rate, size=self.num_requests)
        arrivals = np.cumsum(gaps)

        if self.skew > 0:
            # Popularity ranks are assigned by a seeded shuffle so the
            # hot set is arbitrary but reproducible (and uncorrelated
            # with vertex ids or degrees).
            shuffled = rng.permutation(self.population)
            ranks = np.arange(1, len(shuffled) + 1, dtype=np.float64)
            weights = ranks ** -self.skew
            weights /= weights.sum()
            vertices = rng.choice(shuffled, size=self.num_requests,
                                  p=weights)
        else:
            vertices = rng.choice(self.population,
                                  size=self.num_requests)

        return [InferenceRequest(request_id=i, vertex=int(vertices[i]),
                                 arrival=float(arrivals[i]))
                for i in range(self.num_requests)]

    def describe(self):
        """Short human-readable parameter summary."""
        return (f"poisson(rate={self.rate:g}/s, n={self.num_requests}, "
                f"skew={self.skew:g}, seed={self.seed})")
