"""Task pipelining across CPU / PCIe / GPU (§7.3.2, Figures 13 & 14).

One batch passes through three stages on three resources:

1. **BP** — batch preparation (sampling) on the CPU;
2. **DT** — data transfer over PCIe;
3. **NN** — forward/backward on the GPU.

Without pipelining the stages run strictly sequentially across batches.
Pipelining lets stage ``s`` of batch ``b`` overlap stage ``s'`` of batch
``b+1`` — bounded by the classic pipeline recurrence

    finish[b][g] = max(finish[b][g-1], finish[b-1][g]) + time[b][g]

where ``g`` ranges over *resource groups*: stages fused into one group
still serialize with each other.  Figure 14's ablation is exactly a
choice of grouping: ``No pipe`` = one group, ``Pipeline BP`` = BP in its
own group, ``Pipeline BP and DT`` = all three stages in separate groups.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import TransferError

__all__ = ["PipelineResult", "simulate_pipeline", "PIPELINE_MODES",
           "pipeline_groups"]

PIPELINE_MODES = ("none", "bp", "bp+dt")


def pipeline_groups(mode):
    """Stage grouping for a named pipeline mode.

    ``none``  -> [[0, 1, 2]]      (fully sequential)
    ``bp``    -> [[0], [1, 2]]    (sampling overlaps transfer+compute)
    ``bp+dt`` -> [[0], [1], [2]]  (full 3-stage pipeline)
    """
    groups = {"none": [[0, 1, 2]], "bp": [[0], [1, 2]],
              "bp+dt": [[0], [1], [2]]}
    if mode not in groups:
        raise TransferError(
            f"unknown pipeline mode {mode!r}; known: {PIPELINE_MODES}")
    return groups[mode]


@dataclass
class PipelineResult:
    """Outcome of simulating one epoch's batches through the pipeline."""

    makespan: float                # wall time of the epoch
    stage_busy: np.ndarray         # total busy seconds per resource group
    num_batches: int

    @property
    def bottleneck_group(self):
        return int(np.argmax(self.stage_busy))

    @property
    def utilization(self):
        """Busy fraction of the busiest resource (1.0 = perfectly
        saturated pipeline)."""
        if self.makespan == 0:
            return 0.0
        return float(self.stage_busy.max() / self.makespan)


def simulate_pipeline(stage_times, mode="bp+dt"):
    """Simulate an epoch of batches through the (partially) pipelined
    BP → DT → NN stages.

    Parameters
    ----------
    stage_times:
        Sequence of ``(bp, dt, nn)`` second-triples, one per batch.
    mode:
        One of :data:`PIPELINE_MODES`.

    Returns
    -------
    :class:`PipelineResult`
    """
    times = np.asarray(stage_times, dtype=np.float64)
    if times.ndim != 2 or times.shape[1] != 3:
        raise TransferError("stage_times must be an (n, 3) array-like")
    if np.any(times < 0):
        raise TransferError("stage times must be non-negative")
    groups = pipeline_groups(mode)
    num_batches = times.shape[0]
    if num_batches == 0:
        return PipelineResult(0.0, np.zeros(len(groups)), 0)

    # Per-batch time of each resource group = sum of its fused stages.
    group_times = np.stack(
        [times[:, group].sum(axis=1) for group in groups], axis=1)

    finish = np.zeros((num_batches, len(groups)))
    for b in range(num_batches):
        for g in range(len(groups)):
            ready = finish[b][g - 1] if g > 0 else 0.0
            free = finish[b - 1][g] if b > 0 else 0.0
            finish[b][g] = max(ready, free) + group_times[b, g]
    return PipelineResult(makespan=float(finish[-1, -1]),
                          stage_busy=group_times.sum(axis=0),
                          num_batches=num_batches)
