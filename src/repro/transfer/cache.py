"""GPU feature caching (§7.3.3).

Caching vertex features in spare GPU memory is the only optimization that
*reduces* CPU-GPU traffic instead of just overlapping or streamlining it.
Two policies from the literature:

* **degree-based** (PaGraph): statically cache the highest out-degree
  vertices — cheap, works when degree predicts sampling frequency
  (power-law graphs + uniform samplers), fails otherwise;
* **pre-sampling-based** (GNNLab): run a few sampling epochs up front,
  count how often each vertex's features are actually requested, cache
  the hottest — robust to both flat-degree graphs and biased samplers.
"""

from __future__ import annotations

import numpy as np

from ..errors import TransferError

__all__ = ["GPUCache", "DegreeCache", "PreSampleCache", "RandomCache",
           "LRUCache", "presample_frequencies"]


class GPUCache:
    """A static GPU-resident feature cache over a chosen vertex set.

    Parameters
    ----------
    cached_ids:
        Global vertex ids resident in GPU memory.
    num_vertices:
        Total vertex count (for the membership bitmap).

    The cache tracks hit/miss counts across :meth:`lookup` calls.
    """

    policy = "static"

    def __init__(self, cached_ids, num_vertices):
        cached_ids = np.unique(np.asarray(cached_ids, dtype=np.int64))
        if len(cached_ids) and (cached_ids[0] < 0
                                or cached_ids[-1] >= num_vertices):
            raise TransferError("cached vertex id out of range")
        self._bitmap = np.zeros(num_vertices, dtype=bool)
        self._bitmap[cached_ids] = True
        self.capacity = len(cached_ids)
        self.hits = 0
        self.misses = 0

    @property
    def num_vertices(self):
        return len(self._bitmap)

    @property
    def ratio(self):
        """Cached fraction of all vertices."""
        return self.capacity / max(self.num_vertices, 1)

    def contains(self, vertices):
        """Boolean mask: which of ``vertices`` are cached (no counting)."""
        return self._bitmap[np.asarray(vertices, dtype=np.int64)]

    def lookup(self, vertices):
        """Split a request into hits and misses, updating statistics.

        Returns ``(hit_ids, miss_ids)``.
        """
        vertices = np.asarray(vertices, dtype=np.int64)
        mask = self._bitmap[vertices]
        self.hits += int(mask.sum())
        self.misses += int((~mask).sum())
        return vertices[mask], vertices[~mask]

    @property
    def hit_rate(self):
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def reset_stats(self):
        """Zero the hit/miss counters."""
        self.hits = 0
        self.misses = 0


def _capacity_from_ratio(num_vertices, cache_ratio):
    if not 0.0 <= cache_ratio <= 1.0:
        raise TransferError(
            f"cache_ratio must be in [0, 1], got {cache_ratio}")
    return int(round(num_vertices * cache_ratio))


class DegreeCache(GPUCache):
    """Cache the ``cache_ratio`` fraction of vertices with the highest
    out-degree (PaGraph's static policy)."""

    policy = "degree"

    def __init__(self, graph, cache_ratio):
        capacity = _capacity_from_ratio(graph.num_vertices, cache_ratio)
        order = np.argsort(-graph.out_degrees, kind="stable")
        super().__init__(order[:capacity], graph.num_vertices)


class RandomCache(GPUCache):
    """Cache a uniform random vertex subset — the ablation baseline that
    separates "any cache helps" from "this policy helps"."""

    policy = "random"

    def __init__(self, graph, cache_ratio, rng=None):
        rng = rng if rng is not None else np.random.default_rng(0)
        capacity = _capacity_from_ratio(graph.num_vertices, cache_ratio)
        chosen = rng.choice(graph.num_vertices, size=capacity,
                            replace=False) if capacity else []
        super().__init__(chosen, graph.num_vertices)


def presample_frequencies(graph, sampler, seeds, rng, epochs=3,
                          batch_size=512):
    """Feature-request frequency of every vertex, measured by running
    ``epochs`` of sampling exactly as training would."""
    seeds = np.asarray(seeds, dtype=np.int64)
    frequency = np.zeros(graph.num_vertices, dtype=np.int64)
    for _epoch in range(epochs):
        order = rng.permutation(seeds)
        for start in range(0, len(order), batch_size):
            batch = order[start:start + batch_size]
            subgraph = sampler.sample(graph, batch, rng)
            np.add.at(frequency, subgraph.input_nodes, 1)
    return frequency


class LRUCache(GPUCache):
    """Dynamic least-recently-used feature cache (BGL-family).

    Unlike the static policies, every lookup *admits* its misses: missed
    vertices are inserted and, at capacity, the least recently used
    residents are evicted.  No pre-pass is needed, and the cache adapts
    when the access distribution drifts — at the cost of per-access
    bookkeeping on the critical path (the trade BGL's dynamic cache
    makes).

    Bookkeeping is batched array work: the resident set is maintained
    as an id array (no full-bitmap scan per lookup) and eviction picks
    the ``overflow`` least-recent residents with an O(residents)
    partition instead of a full sort (see
    :func:`~repro.transfer.tiered.select_lowest`;
    ``benchmarks/bench_cache_tiers.py --micro`` measures the win over
    the scan-and-sort implementation this replaced).
    """

    policy = "lru"

    def __init__(self, graph, cache_ratio):
        # ``graph`` may be a CSRGraph-like object or a bare row count:
        # the serving layer LRU-caches *embedding-table* rows, which
        # have no graph behind them — only a row universe.
        num_vertices = (int(graph) if isinstance(graph, (int, np.integer))
                        else graph.num_vertices)
        capacity = _capacity_from_ratio(num_vertices, cache_ratio)
        super().__init__([], num_vertices)
        self.capacity = capacity
        self._clock = 0
        # Last-use timestamp per vertex; -1 = not resident.
        self._last_used = np.full(num_vertices, -1, dtype=np.int64)
        self._resident = 0
        self._resident_ids = np.empty(0, dtype=np.int64)

    def lookup(self, vertices):
        """Split into hits/misses, then admit the misses (LRU evict)."""
        from .tiered import select_lowest
        vertices = np.asarray(vertices, dtype=np.int64)
        mask = self._bitmap[vertices]
        self.hits += int(mask.sum())
        self.misses += int((~mask).sum())
        hits, missed = vertices[mask], vertices[~mask]
        self._clock += 1
        # Refresh recency of hits.
        self._last_used[hits] = self._clock
        if self.capacity > 0 and len(missed):
            admit = np.unique(missed)
            overflow = self._resident + len(admit) - self.capacity
            if overflow > 0:
                # Misses are by definition not resident, so the admit
                # set never collides with the eviction candidates.
                ids = self._resident_ids
                evict = select_lowest(ids, self._last_used[ids],
                                      min(overflow, len(ids)))
                self._bitmap[evict] = False
                self._last_used[evict] = -1
                self._resident_ids = ids[self._bitmap[ids]]
                self._resident = len(self._resident_ids)
            room = self.capacity - self._resident
            admit = admit[:max(room, 0)]
            self._bitmap[admit] = True
            self._last_used[admit] = self._clock
            self._resident_ids = np.concatenate(
                [self._resident_ids, admit])
            self._resident += len(admit)
        return hits, missed


class PreSampleCache(GPUCache):
    """Cache the most frequently requested vertices, measured by
    pre-sampling (GNNLab's policy).

    Parameters
    ----------
    graph, sampler, seeds:
        The training configuration whose access pattern is profiled.
    cache_ratio:
        Fraction of all vertices to cache.
    epochs:
        Pre-sampling epochs (more epochs, less variance).
    """

    policy = "presample"

    def __init__(self, graph, sampler, seeds, cache_ratio, rng=None,
                 epochs=3, batch_size=512):
        rng = rng if rng is not None else np.random.default_rng(0)
        capacity = _capacity_from_ratio(graph.num_vertices, cache_ratio)
        frequency = presample_frequencies(graph, sampler, seeds, rng,
                                          epochs=epochs,
                                          batch_size=batch_size)
        order = np.argsort(-frequency, kind="stable")
        super().__init__(order[:capacity], graph.num_vertices)
        self.frequency = frequency
