"""Data transferring: hardware model, methods, caching, pipelining."""

from .blocks import (BlockActivity, active_block_ratio, block_activity,
                     threshold_sweep)
from .cache import (DegreeCache, GPUCache, LRUCache, PreSampleCache,
                    RandomCache, presample_frequencies)
from .hardware import DEFAULT_SPEC, HardwareSpec, estimate_flops
from .memory import (MemoryEstimate, estimate_batch_memory,
                     estimate_subgraph_memory, max_batch_size)
from .methods import (TOPOLOGY_BYTES_PER_EDGE, BatchStats, ExtractLoad,
                      HybridTransfer, TransferBreakdown, TransferMethod,
                      ZeroCopy, make_transfer)
from .pipeline import (PIPELINE_MODES, PipelineResult, pipeline_groups,
                       simulate_pipeline)
from .tiered import (DYNAMIC_TIER_POLICIES, TIER_POLICIES, TierBill,
                     TieredCache, TierLookup, make_tiered_cache,
                     select_lowest)
from .platform import (PLATFORM_NAMES, NoTransfer, Platform, cpu_cluster,
                       gpu_cluster, multi_gpu)
from .trace import epoch_trace_events, worker_trace, write_epoch_trace

__all__ = [
    "HardwareSpec", "DEFAULT_SPEC", "estimate_flops",
    "BatchStats", "TransferBreakdown", "TransferMethod", "ExtractLoad",
    "ZeroCopy", "HybridTransfer", "make_transfer",
    "TOPOLOGY_BYTES_PER_EDGE",
    "GPUCache", "DegreeCache", "PreSampleCache", "RandomCache",
    "LRUCache", "presample_frequencies",
    "TieredCache", "TierLookup", "TierBill", "make_tiered_cache",
    "select_lowest", "TIER_POLICIES", "DYNAMIC_TIER_POLICIES",
    "BlockActivity", "block_activity", "active_block_ratio",
    "threshold_sweep",
    "PipelineResult", "simulate_pipeline", "PIPELINE_MODES",
    "pipeline_groups",
    "Platform", "cpu_cluster", "multi_gpu", "gpu_cluster", "NoTransfer",
    "PLATFORM_NAMES",
    "MemoryEstimate", "estimate_batch_memory", "estimate_subgraph_memory",
    "max_batch_size",
    "epoch_trace_events", "worker_trace", "write_epoch_trace",
]
