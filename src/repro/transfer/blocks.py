"""Feature-memory block activity analysis (Figures 15 & 16).

Host feature memory is viewed as consecutive 256 KB blocks (the paper's
unit, following PyTorch-Direct).  For a batch, a vertex is *active* if
its feature row must be moved this iteration.  The distribution of active
vertices over blocks decides whether hybrid (block-wise DMA) transfer can
help: only blocks whose active fraction exceeds a threshold are worth
DMA-ing whole.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import TransferError

__all__ = ["BlockActivity", "block_activity", "active_block_ratio",
           "threshold_sweep"]


@dataclass
class BlockActivity:
    """Active-vertex statistics over the feature blocks of one batch."""

    active_counts: np.ndarray      # active vertices per block
    vertices_per_block: int
    num_blocks: int

    @property
    def fractions(self):
        """Active fraction per block (last partial block pro-rated by the
        full block size, matching the fixed 256 KB granularity)."""
        return self.active_counts / self.vertices_per_block


def block_activity(active_ids, num_vertices, feature_bytes_per_vertex,
                   block_bytes=262144):
    """Count active vertices per 256 KB feature block.

    Parameters
    ----------
    active_ids:
        Global vertex ids whose features must move (deduplicated or not —
        duplicates are collapsed).
    num_vertices:
        Total vertices in the feature store.
    feature_bytes_per_vertex:
        Row size in bytes; with the paper's 600-float features one block
        holds ~109 vertices.
    block_bytes:
        Block granularity.
    """
    if feature_bytes_per_vertex <= 0:
        raise TransferError("feature_bytes_per_vertex must be positive")
    vertices_per_block = max(1, block_bytes // feature_bytes_per_vertex)
    num_blocks = int(np.ceil(num_vertices / vertices_per_block))
    active_ids = np.unique(np.asarray(active_ids, dtype=np.int64))
    if len(active_ids) and (active_ids[0] < 0
                            or active_ids[-1] >= num_vertices):
        raise TransferError("active vertex id out of range")
    counts = np.bincount(active_ids // vertices_per_block,
                         minlength=max(num_blocks, 1))
    return BlockActivity(active_counts=counts[:max(num_blocks, 1)],
                         vertices_per_block=vertices_per_block,
                         num_blocks=max(num_blocks, 1))


def active_block_ratio(activity, threshold):
    """Fraction of blocks whose active fraction is at least
    ``threshold`` — the quantity on Figure 16's y-axis."""
    if activity.num_blocks == 0:
        return 0.0
    return float((activity.fractions >= threshold).mean())


def threshold_sweep(activity, thresholds=(0.1, 0.2, 0.3, 0.4, 0.5,
                                          0.6, 0.7, 0.8, 0.9)):
    """Active-block ratio at each threshold (Figure 16's x-sweep)."""
    return {float(t): active_block_ratio(activity, t) for t in thresholds}
