"""The unified multi-tier feature cache (BGL direction).

``transfer.cache`` models a single flat GPU-resident cache; this module
generalizes it to the storage hierarchy BGL-style systems actually
manage:

* **hot** tier — feature/embedding rows resident in spare GPU memory;
  a hit costs nothing (the row is already device-side);
* **warm** tier — rows staged in page-locked (pinned) host memory; a
  hit pays a fast pinned-memory read plus the PCIe crossing;
* **cold** tier — everything else, backed by local NVMe or a remote
  feature store; a miss pays the disk fetch *and* the host + PCIe path.

One :class:`TieredCache` serves both consumers: the training engines'
feature fetch (:mod:`repro.transfer.methods` bills misses tier by tier)
and the serving engine's embedding lookup (the precomputed-mode LRU
becomes the hot tier of the same structure), so admission policy code
and hit-rate metrics are shared instead of duplicated.

Admission/eviction is pluggable:

* ``"degree"`` — static degree-weighted placement (PaGraph): hottest
  tiers hold the highest out-degree vertices;
* ``"presample"`` — static frequency placement measured by
  pre-sampling the real access pattern (GNNLab/BGL);
* ``"static"`` — static placement by any caller-supplied score
  (serving uses measured request frequencies here);
* ``"lfu"`` — dynamic frequency: every access bumps a counter, touched
  rows are promoted to hot, overflow demotes the lowest-frequency rows
  down the hierarchy;
* ``"lru"`` — dynamic recency: same machinery with a clock score.
  With ``warm_capacity=0`` this is exactly the flat single-tier LRU
  baseline, living in the same disk-backed cost model.

All bookkeeping is vectorized — bitmap/array operations per lookup, no
per-vertex Python on hits or misses — and fully deterministic:
demotion/eviction picks the lowest ``(score, vertex id)`` pairs via
:func:`select_lowest`, so identical lookup sequences produce
bit-identical hit/miss sequences and residency states.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import TransferError
from .cache import presample_frequencies

__all__ = ["TieredCache", "TierLookup", "TierBill", "make_tiered_cache",
           "select_lowest", "TIER_POLICIES", "DYNAMIC_TIER_POLICIES"]

#: Admission policies `make_tiered_cache` understands.
TIER_POLICIES = ("lru", "lfu", "degree", "presample", "static")
#: The subset that adapts online (the rest place rows once, up front).
DYNAMIC_TIER_POLICIES = ("lru", "lfu")

# Tier codes in the residency array.
_COLD, _WARM, _HOT = 0, 1, 2


def select_lowest(ids, scores, k):
    """The ``k`` elements of ``ids`` with the lowest ``(score, id)``.

    Deterministic and platform-stable: strictly-lowest scores win, ties
    at the threshold score break toward lower ids.  O(n) partition plus
    a sort over only the tied group.
    """
    if k <= 0:
        return ids[:0]
    if k >= len(ids):
        return ids
    kth = np.partition(scores, k - 1)[k - 1]
    below = ids[scores < kth]
    tied = np.sort(ids[scores == kth])
    return np.concatenate([below, tied[:k - len(below)]])


@dataclass(frozen=True)
class TierLookup:
    """Per-tier split of one batched lookup.

    ``hot_mask``/``warm_mask``/``cold_mask`` are parallel to
    ``vertices`` (duplicates keep their own entry, mirroring the flat
    caches' request-level accounting).
    """

    vertices: np.ndarray
    hot_mask: np.ndarray
    warm_mask: np.ndarray
    cold_mask: np.ndarray

    @property
    def hot_ids(self):
        return self.vertices[self.hot_mask]

    @property
    def warm_ids(self):
        return self.vertices[self.warm_mask]

    @property
    def cold_ids(self):
        return self.vertices[self.cold_mask]

    @property
    def num_hot(self):
        return int(self.hot_mask.sum())

    @property
    def num_warm(self):
        return int(self.warm_mask.sum())

    @property
    def num_cold(self):
        return int(self.cold_mask.sum())

    @property
    def misses(self):
        """Rows not GPU-resident (what a flat cache calls misses)."""
        return self.vertices[~self.hot_mask]


@dataclass(frozen=True)
class TierBill:
    """Simulated seconds and bytes of one tiered fetch, per tier."""

    hot_seconds: float
    warm_seconds: float
    cold_seconds: float
    hot_bytes: int
    warm_bytes: int
    cold_bytes: int

    @property
    def total_seconds(self):
        return self.hot_seconds + self.warm_seconds + self.cold_seconds

    @property
    def bytes_moved(self):
        """Bytes that crossed a boundary (hot rows never move)."""
        return self.warm_bytes + self.cold_bytes

    def tier_seconds(self):
        """The per-tier seconds as a ``{"hot", "warm", "cold"}`` dict
        (the shape reports and perf counters carry)."""
        return {"hot": self.hot_seconds, "warm": self.warm_seconds,
                "cold": self.cold_seconds}


class TieredCache:
    """A two-resident-tier (hot GPU / warm pinned-host) cache over a
    disk-backed cold tier.

    Parameters
    ----------
    num_vertices:
        Size of the row universe (graph vertices or embedding-table
        rows).
    hot_capacity, warm_capacity:
        Row budgets of the GPU and pinned-host tiers.  Both zero makes
        the cache *disabled*: every lookup is a zero-bookkeeping
        pass-through reporting all rows cold.
    policy:
        One of :data:`TIER_POLICIES`.
    scores:
        Static placement score per vertex (required for the static
        policies; higher scores land in hotter tiers).

    Invariants, preserved under arbitrary lookup sequences: a row is
    resident in at most one tier, and each tier holds at most its
    capacity.  :meth:`residency` exposes the live counts for tests.
    """

    def __init__(self, num_vertices, hot_capacity, warm_capacity,
                 policy="lfu", scores=None):
        num_vertices = int(num_vertices)
        if num_vertices < 0:
            raise TransferError("num_vertices must be non-negative")
        if policy not in TIER_POLICIES:
            raise TransferError(
                f"unknown tier policy {policy!r}; known: {TIER_POLICIES}")
        hot_capacity = int(hot_capacity)
        warm_capacity = int(warm_capacity)
        if hot_capacity < 0 or warm_capacity < 0:
            raise TransferError("tier capacities must be non-negative")
        if hot_capacity + warm_capacity > num_vertices:
            raise TransferError(
                f"total tier budget {hot_capacity + warm_capacity} "
                f"exceeds the {num_vertices}-row universe")
        self.num_vertices = num_vertices
        self.hot_capacity = hot_capacity
        self.warm_capacity = warm_capacity
        self.policy = policy
        self.dynamic = policy in DYNAMIC_TIER_POLICIES
        self.enabled = (hot_capacity + warm_capacity) > 0

        self.hot_hits = 0
        self.warm_hits = 0
        self.cold_misses = 0

        if not self.enabled:
            # Disabled cache: no residency state at all.  lookup() takes
            # the pass-through path and never touches these.
            self._tier = None
            return

        self._tier = np.zeros(num_vertices, dtype=np.int8)
        self._clock = 0
        if self.dynamic:
            # Priority score per row: LRU keeps a last-use clock, LFU an
            # access count.  Rows start cold with score 0.
            self._score = np.zeros(num_vertices, dtype=np.int64)
            self._hot_ids = np.empty(0, dtype=np.int64)
            self._warm_ids = np.empty(0, dtype=np.int64)
        else:
            if scores is None:
                raise TransferError(
                    f"static tier policy {policy!r} needs a score array")
            scores = np.asarray(scores, dtype=np.float64)
            if scores.shape != (num_vertices,):
                raise TransferError(
                    f"scores must have shape ({num_vertices},), got "
                    f"{scores.shape}")
            # Stable sort on -score => ties broken toward lower ids.
            order = np.argsort(-scores, kind="stable")
            hot = order[:hot_capacity]
            warm = order[hot_capacity:hot_capacity + warm_capacity]
            self._tier[hot] = _HOT
            self._tier[warm] = _WARM
            self._hot_ids = np.sort(hot)
            self._warm_ids = np.sort(warm)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def capacity(self):
        """Total resident budget across hot + warm."""
        return self.hot_capacity + self.warm_capacity

    def residency(self):
        """Live resident-row counts per tier (for invariant checks)."""
        if not self.enabled:
            return {"hot": 0, "warm": 0}
        return {"hot": int((self._tier == _HOT).sum()),
                "warm": int((self._tier == _WARM).sum())}

    @property
    def requests(self):
        return self.hot_hits + self.warm_hits + self.cold_misses

    @property
    def hot_hit_rate(self):
        total = self.requests
        return self.hot_hits / total if total else 0.0

    @property
    def warm_hit_rate(self):
        total = self.requests
        return self.warm_hits / total if total else 0.0

    @property
    def hit_rate(self):
        """GPU-resident hit rate — comparable to the flat caches'."""
        return self.hot_hit_rate

    def hit_rates(self):
        """All three tiers' request shares in one dict."""
        return {"hot": self.hot_hit_rate, "warm": self.warm_hit_rate,
                "cold": (self.cold_misses / self.requests
                         if self.requests else 0.0)}

    def reset_stats(self):
        """Zero the hit/miss counters (residency is untouched)."""
        self.hot_hits = 0
        self.warm_hits = 0
        self.cold_misses = 0

    # ------------------------------------------------------------------
    # Snapshot / restore (fleet crash recovery)
    # ------------------------------------------------------------------
    def snapshot(self):
        """Capture residency state + counters as a picklable dict.

        Restoring the snapshot on a fresh (or crashed-and-replaced)
        cache reproduces the exact tier assignments, admission scores,
        and logical clock, so a recovered replica replays the same
        hit/miss sequence the uninterrupted one would have (the fleet's
        deterministic cache re-warm after crash recovery).
        """
        state = {
            "policy": self.policy,
            "num_vertices": self.num_vertices,
            "hot_capacity": self.hot_capacity,
            "warm_capacity": self.warm_capacity,
            "hot_hits": self.hot_hits,
            "warm_hits": self.warm_hits,
            "cold_misses": self.cold_misses,
        }
        if self.enabled:
            state["tier"] = self._tier.copy()
            state["clock"] = self._clock
            state["hot_ids"] = self._hot_ids.copy()
            state["warm_ids"] = self._warm_ids.copy()
            if self.dynamic:
                state["score"] = self._score.copy()
        return state

    def restore(self, state):
        """Adopt a :meth:`snapshot` taken from a same-shaped cache."""
        same = (state.get("policy") == self.policy
                and state.get("num_vertices") == self.num_vertices
                and state.get("hot_capacity") == self.hot_capacity
                and state.get("warm_capacity") == self.warm_capacity)
        if not same:
            raise TransferError(
                "cache snapshot does not match this cache's "
                "policy/shape; refusing to restore")
        self.hot_hits = int(state["hot_hits"])
        self.warm_hits = int(state["warm_hits"])
        self.cold_misses = int(state["cold_misses"])
        if self.enabled:
            self._tier = np.asarray(state["tier"], dtype=np.int8).copy()
            self._clock = int(state["clock"])
            self._hot_ids = np.asarray(state["hot_ids"],
                                       dtype=np.int64).copy()
            self._warm_ids = np.asarray(state["warm_ids"],
                                        dtype=np.int64).copy()
            if self.dynamic:
                self._score = np.asarray(state["score"],
                                         dtype=np.int64).copy()

    def evict_all(self):
        """Drop all residency (a crashed process lost its memory);
        hit/miss counters are kept — they are run-level statistics.
        Static policies are untouched: their placement is a pure
        function of the score array, so a restart reproduces it
        immediately.  Dynamic policies return to the cold initial
        state and re-learn (or are re-warmed from a snapshot via
        :meth:`restore`)."""
        if not self.enabled or not self.dynamic:
            return
        self._tier[:] = _COLD
        self._clock = 0
        self._score[:] = 0
        self._hot_ids = np.empty(0, dtype=np.int64)
        self._warm_ids = np.empty(0, dtype=np.int64)

    # ------------------------------------------------------------------
    # The lookup fast path
    # ------------------------------------------------------------------
    def lookup(self, vertices):
        """Split a batched request into per-tier hits; dynamic policies
        then promote/admit the touched rows.  Returns a
        :class:`TierLookup`."""
        vertices = np.asarray(vertices, dtype=np.int64)
        if not self.enabled:
            # Zero-cost pass-through: no residency, no score updates.
            none = np.zeros(len(vertices), dtype=bool)
            self.cold_misses += len(vertices)
            return TierLookup(vertices, none, none, ~none)

        tiers = self._tier[vertices]
        hot = tiers == _HOT
        warm = tiers == _WARM
        cold = tiers == _COLD
        self.hot_hits += int(hot.sum())
        self.warm_hits += int(warm.sum())
        self.cold_misses += int(cold.sum())

        if self.dynamic and len(vertices):
            self._admit(vertices)
        return TierLookup(vertices, hot, warm, cold)

    def _admit(self, vertices):
        """Promote every row touched this call to the hot tier,
        cascading demotions/evictions down the hierarchy (batched
        array ops throughout)."""
        self._clock += 1
        touched = np.unique(vertices)
        if self.policy == "lru":
            self._score[touched] = self._clock
        else:  # lfu: each access counts, duplicates included
            np.add.at(self._score, vertices, 1)

        if self.hot_capacity == 0:
            # Degenerate warm-only configuration: admit the rows not
            # already resident (touched residents keep their slot, with
            # their score freshly bumped above).
            new = touched[self._tier[touched] != _WARM]
            if len(new):
                self._admit_into_warm(new)
            return

        prev = self._tier[touched]
        newly_hot = touched[prev != _HOT]
        if len(newly_hot) == 0:
            return
        promoted_from_warm = int((prev == _WARM).sum())
        self._tier[newly_hot] = _HOT
        if promoted_from_warm:
            self._warm_ids = self._warm_ids[
                self._tier[self._warm_ids] == _WARM]
        self._hot_ids = np.concatenate([self._hot_ids, newly_hot])

        overflow = len(self._hot_ids) - self.hot_capacity
        if overflow > 0:
            # Rows touched this very call are protected: demote among
            # the rest first, and only spill into the touched set when
            # the batch alone overfills the tier.
            candidates = self._hot_ids[:-len(newly_hot)]
            demote = select_lowest(candidates, self._score[candidates],
                                   min(overflow, len(candidates)))
            spill = overflow - len(demote)
            if spill > 0:
                demote = np.concatenate([
                    demote,
                    select_lowest(newly_hot, self._score[newly_hot],
                                  spill)])
            self._tier[demote] = _WARM
            self._hot_ids = self._hot_ids[
                self._tier[self._hot_ids] == _HOT]
            self._admit_into_warm(demote)

    def _admit_into_warm(self, rows):
        """Place ``rows`` in the warm tier, evicting the lowest-score
        residents to cold when over capacity."""
        if self.warm_capacity == 0:
            self._tier[rows] = _COLD
            return
        self._tier[rows] = _WARM
        self._warm_ids = np.concatenate([self._warm_ids, rows])
        overflow = len(self._warm_ids) - self.warm_capacity
        if overflow > 0:
            candidates = self._warm_ids[:-len(rows)]
            evict = select_lowest(candidates, self._score[candidates],
                                  min(overflow, len(candidates)))
            spill = overflow - len(evict)
            if spill > 0:
                evict = np.concatenate([
                    evict, select_lowest(rows, self._score[rows], spill)])
            self._tier[evict] = _COLD
            self._warm_ids = self._warm_ids[
                self._tier[self._warm_ids] == _WARM]

    # ------------------------------------------------------------------
    # Cost charging
    # ------------------------------------------------------------------
    def bill(self, lookup, row_bytes, spec):
        """Extract-load-style :class:`TierBill` for one lookup.

        Hot rows are free (already device-resident).  Warm rows pay the
        pinned-host read plus their PCIe share; cold rows pay the disk
        fetch, the pageable gather, and their PCIe share.  The PCIe
        DMA's cost over all moved rows is split between the tiers in
        proportion to bytes.
        """
        hot_bytes = lookup.num_hot * row_bytes
        warm_bytes = lookup.num_warm * row_bytes
        cold_bytes = lookup.num_cold * row_bytes
        moved = warm_bytes + cold_bytes
        pcie = spec.pcie_time(moved) if moved else 0.0
        warm_share = pcie * warm_bytes / moved if moved else 0.0
        cold_share = pcie - warm_share if moved else 0.0
        warm_seconds = spec.host_cache_time(warm_bytes) + warm_share \
            if warm_bytes else 0.0
        cold_seconds = (spec.disk_time(cold_bytes)
                        + spec.gather_time(cold_bytes) + cold_share) \
            if cold_bytes else 0.0
        return TierBill(hot_seconds=0.0, warm_seconds=warm_seconds,
                        cold_seconds=cold_seconds, hot_bytes=hot_bytes,
                        warm_bytes=warm_bytes, cold_bytes=cold_bytes)

    def fetch_seconds(self, vertices, row_bytes, spec):
        """Convenience: lookup + bill in one call; returns
        ``(total_seconds, TierBill)``."""
        bill = self.bill(self.lookup(vertices), row_bytes, spec)
        return bill.total_seconds, bill


def make_tiered_cache(policy, graph, hot_ratio, warm_ratio,
                      sampler=None, seeds=None, rng=None, scores=None):
    """Build a :class:`TieredCache` for one worker or serving node.

    Parameters
    ----------
    policy:
        One of :data:`TIER_POLICIES`.
    graph:
        A CSR graph (for ``num_vertices`` and degree scores) or a bare
        row-universe size (the serving layer caches embedding-table
        rows, which have no graph behind them).
    hot_ratio, warm_ratio:
        Tier budgets as fractions of the row universe.
    sampler, seeds, rng:
        Pre-sampling configuration (``policy="presample"`` only).
    scores:
        Caller-supplied placement score (``policy="static"``, e.g.
        measured request frequencies on the serving side).
    """
    bare = isinstance(graph, (int, np.integer))
    num_vertices = int(graph) if bare else graph.num_vertices
    for name, ratio in (("hot_ratio", hot_ratio),
                        ("warm_ratio", warm_ratio)):
        if not 0.0 <= ratio <= 1.0:
            raise TransferError(f"{name} must be in [0, 1], got {ratio}")
    if hot_ratio + warm_ratio > 1.0:
        raise TransferError(
            f"hot_ratio + warm_ratio must be <= 1, got "
            f"{hot_ratio + warm_ratio}")
    hot = int(round(num_vertices * hot_ratio))
    warm = int(round(num_vertices * warm_ratio))
    warm = min(warm, num_vertices - hot)

    key = policy.lower() if isinstance(policy, str) else policy
    if key in DYNAMIC_TIER_POLICIES:
        return TieredCache(num_vertices, hot, warm, policy=key)
    if key == "degree":
        if bare:
            raise TransferError(
                "degree tier policy needs a graph, not a row count")
        scores = graph.out_degrees.astype(np.float64)
    elif key == "presample":
        if scores is None:
            if bare or sampler is None or seeds is None:
                raise TransferError(
                    "presample tier policy needs sampler and seeds "
                    "(or a precomputed score array)")
            rng = rng if rng is not None else np.random.default_rng(0)
            scores = presample_frequencies(
                graph, sampler, seeds, rng).astype(np.float64)
    elif key == "static":
        if scores is None:
            raise TransferError("static tier policy needs a score array")
    else:
        raise TransferError(
            f"unknown tier policy {policy!r}; known: {TIER_POLICIES}")
    return TieredCache(num_vertices, hot, warm, policy=key,
                       scores=scores)
