"""The hardware cost model (substitute for the paper's physical testbed).

The paper measures seconds on a 4-node Aliyun cluster (NVIDIA T4, PCIe
3.0 x16, 10 Gbps Ethernet, 40 vCPU).  We have none of that, so every
experiment in this library produces *counts* (bytes moved, edges
sampled/aggregated, FLOPs) through the real data-management code paths,
and :class:`HardwareSpec` converts counts into simulated seconds at the
very end.

Default constants are calibrated so the step shares of Figure 2
reproduce: data transferring dominates GNN training (~70%, split between
feature extraction and loading roughly 3:4), batch preparation is a
minor share, and NN computation dominates *DNN* training.  Absolute
seconds are not meaningful — only ratios are, which is also all the
paper's transfer-optimization figures report.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..errors import TransferError

__all__ = ["HardwareSpec", "DEFAULT_SPEC", "estimate_flops"]


@dataclass(frozen=True)
class HardwareSpec:
    """Throughput/latency constants of the simulated training node.

    All bandwidths in bytes/second, latencies in seconds, rates in
    operations/second.
    """

    # PCIe 3.0 x16 between host and GPU.
    pcie_bandwidth: float = 16e9
    pcie_latency: float = 10e-6
    # Fraction of PCIe peak achieved by fine-grained zero-copy (UVA)
    # reads.  Raw random requests run far below peak, but orchestrated
    # coalesced accesses (PyTorch-Direct style) approach it — and unlike
    # the explicit path they skip staging entirely.
    zero_copy_efficiency: float = 0.95
    # Multithreaded scattered-row gather on the 40-vCPU host (feature
    # extraction into a contiguous staging buffer).
    cpu_gather_bandwidth: float = 21e9
    # Neighbor sampling throughput (sampled edges per second).
    cpu_sample_rate: float = 160e6
    # 10 Gbps Ethernet between nodes.
    network_bandwidth: float = 1.25e9
    network_latency: float = 50e-6
    # Warm tier: page-locked (pinned) host memory holding staged
    # feature rows.  Reads out of the pinned region skip the page-fault
    # path, so they run faster than the scattered-row gather from
    # pageable memory (`cpu_gather_bandwidth`).
    host_cache_bandwidth: float = 32e9
    # Cold tier: NVMe-class local storage (or a remote feature store)
    # behind the host.  Sequential-ish batched reads of feature rows;
    # the latency term charges the request round-trip once per batch.
    disk_bandwidth: float = 0.5e9
    disk_latency: float = 100e-6
    # T4: ~8.1 TFLOPS fp32 peak; the GEMM-dominated layers of a
    # 128-hidden GNN run near peak, calibrated so NN computation is the
    # minor share of GNN training that Figure 2 reports.
    gpu_flops: float = 8.1e12
    gpu_efficiency: float = 0.85
    gpu_memory: int = 16_000_000_000

    def __post_init__(self):
        positive = ("pcie_bandwidth", "cpu_gather_bandwidth",
                    "cpu_sample_rate", "network_bandwidth", "gpu_flops",
                    "host_cache_bandwidth", "disk_bandwidth")
        for name in positive:
            if getattr(self, name) <= 0:
                raise TransferError(f"{name} must be positive")
        for name in ("pcie_latency", "network_latency", "disk_latency"):
            if getattr(self, name) < 0:
                raise TransferError(f"{name} must be non-negative")
        if not 0 < self.zero_copy_efficiency <= 1:
            raise TransferError("zero_copy_efficiency must be in (0, 1]")
        if not 0 < self.gpu_efficiency <= 1:
            raise TransferError("gpu_efficiency must be in (0, 1]")

    # ------------------------------------------------------------------
    # Count -> seconds conversions
    # ------------------------------------------------------------------
    def pcie_time(self, num_bytes, transfers=1):
        """Explicit DMA transfer of contiguous ``num_bytes``."""
        return num_bytes / self.pcie_bandwidth + transfers * self.pcie_latency

    def zero_copy_time(self, num_bytes):
        """Implicit UVA reads of ``num_bytes`` at reduced efficiency."""
        return num_bytes / (self.pcie_bandwidth * self.zero_copy_efficiency)

    def gather_time(self, num_bytes):
        """CPU-side scattered feature extraction into staging memory."""
        return num_bytes / self.cpu_gather_bandwidth

    def host_cache_time(self, num_bytes):
        """Warm-tier read: scattered rows out of the pinned host cache
        (no page faults, so faster than the pageable gather)."""
        return num_bytes / self.host_cache_bandwidth

    def disk_time(self, num_bytes, reads=1):
        """Cold-tier fetch: ``num_bytes`` of feature rows from local
        NVMe / remote feature store, ``reads`` batched requests."""
        if num_bytes == 0:
            return 0.0
        return num_bytes / self.disk_bandwidth + reads * self.disk_latency

    def sample_time(self, num_edges):
        """CPU-side neighbor sampling of ``num_edges`` sampled edges."""
        return num_edges / self.cpu_sample_rate

    def network_time(self, num_bytes, messages=1):
        """Inter-node transfer over the cluster network."""
        return (num_bytes / self.network_bandwidth
                + messages * self.network_latency)

    def compute_time(self, flops):
        """GPU NN computation of ``flops`` floating point operations."""
        return flops / (self.gpu_flops * self.gpu_efficiency)

    def with_overrides(self, **kwargs):
        """A copy of the spec with some constants replaced."""
        return replace(self, **kwargs)


DEFAULT_SPEC = HardwareSpec()


def estimate_flops(subgraph, feature_dim, hidden_dim, num_classes,
                   backward_factor=3.0):
    """Training FLOPs of one mini-batch on a 2-phase GNN layer stack.

    Per block: sparse aggregation (2 FLOPs per edge per input channel)
    plus the dense transform (2 * dst * in * out).  The classifier head
    runs on the seeds.  ``backward_factor`` folds in backward propagation
    (~2x forward) on top of the forward pass.
    """
    dims = [feature_dim] + [hidden_dim] * len(subgraph.blocks)
    forward = 0.0
    for i, block in enumerate(subgraph.blocks):
        forward += 2.0 * block.num_edges * dims[i]
        forward += 2.0 * block.num_dst * dims[i] * dims[i + 1]
    forward += 2.0 * len(subgraph.seeds) * hidden_dim * num_classes
    return forward * backward_factor
