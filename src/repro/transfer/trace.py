"""Chrome-tracing export of simulated training epochs.

``chrome://tracing`` (or Perfetto) renders JSON event lists on a
per-resource timeline — ideal for *seeing* what the pipeline simulator
computes: when each batch occupies the CPU (batch preparation), the
PCIe link (data transfer), and the GPU (NN computation), and where the
bubbles are under each pipelining mode.

The exporter re-runs the pipeline recurrence to recover per-batch start
times, so a trace is exactly consistent with the makespan the engine
reported.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from ..errors import TransferError
from .pipeline import pipeline_groups

__all__ = ["epoch_trace_events", "write_epoch_trace", "worker_trace"]

STAGE_NAMES = ("batch preparation", "data transfer", "NN computation")
RESOURCE_NAMES = {"none": ("serial",),
                  "bp": ("CPU", "PCIe+GPU"),
                  "bp+dt": ("CPU", "PCIe", "GPU")}


def _schedule(stage_times, mode):
    """Per-batch (start, end) per resource group, via the same
    recurrence as :func:`simulate_pipeline`."""
    times = np.asarray(stage_times, dtype=np.float64)
    groups = pipeline_groups(mode)
    group_times = np.stack(
        [times[:, group].sum(axis=1) for group in groups], axis=1)
    num_batches = times.shape[0]
    start = np.zeros((num_batches, len(groups)))
    finish = np.zeros((num_batches, len(groups)))
    for b in range(num_batches):
        for g in range(len(groups)):
            ready = finish[b][g - 1] if g > 0 else 0.0
            free = finish[b - 1][g] if b > 0 else 0.0
            start[b][g] = max(ready, free)
            finish[b][g] = start[b][g] + group_times[b, g]
    return groups, start, finish


def epoch_trace_events(stage_times, mode="bp+dt", worker=0,
                       time_scale=1e6):
    """Chrome-tracing "X" (complete) events for one worker's epoch.

    Parameters
    ----------
    stage_times:
        Per-batch ``(bp, dt, nn)`` seconds.
    mode:
        Pipeline mode used for the schedule.
    worker:
        Process id to file the events under.
    time_scale:
        Seconds -> trace microseconds multiplier (traces are in µs;
        scale up tiny simulated epochs to stay readable).
    """
    stage_times = np.asarray(stage_times, dtype=np.float64)
    if stage_times.ndim != 2 or stage_times.shape[1] != 3:
        raise TransferError("stage_times must be an (n, 3) array-like")
    groups, start, finish = _schedule(stage_times, mode)
    resources = RESOURCE_NAMES[mode]
    events = []
    for b in range(stage_times.shape[0]):
        for g, group in enumerate(groups):
            label = "+".join(STAGE_NAMES[s] for s in group)
            events.append({
                "name": f"batch {b}: {label}",
                "ph": "X",
                "ts": start[b][g] * time_scale,
                "dur": (finish[b][g] - start[b][g]) * time_scale,
                "pid": worker,
                "tid": g,
                "cat": label,
            })
    # Thread-name metadata so the viewer labels resources.
    for g, name in enumerate(resources):
        events.append({"name": "thread_name", "ph": "M", "pid": worker,
                       "tid": g, "args": {"name": name}})
    events.append({"name": "process_name", "ph": "M", "pid": worker,
                   "args": {"name": f"worker {worker}"}})
    return events


def worker_trace(workers, mode="bp+dt", time_scale=1e6):
    """Events for every worker of an epoch (one process per worker).

    ``workers`` is a list of per-worker stage-time lists, e.g. from
    ``Worker.epoch_stage_times``.
    """
    events = []
    for worker_id, stage_times in enumerate(workers):
        if len(stage_times) == 0:
            continue
        events.extend(epoch_trace_events(stage_times, mode=mode,
                                         worker=worker_id,
                                         time_scale=time_scale))
    return events


def write_epoch_trace(path, workers, mode="bp+dt", time_scale=1e6):
    """Write a chrome://tracing JSON file; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {"traceEvents": worker_trace(workers, mode=mode,
                                           time_scale=time_scale),
               "displayTimeUnit": "ms"}
    with open(path, "w") as handle:
        json.dump(payload, handle)
    return path
