"""Deployment platforms (Table 1's first axis).

The paper classifies systems by where they run: **CPU-cluster**
(AliGraph, DistDGL, ByteGNN — no accelerator, network-bound),
**Multi-GPU** (DGL, PaGraph, GNNLab — one node, several GPUs over
NVLink/PCIe-P2P), and **GPU-cluster** (P3, DistDGLv2, SALIENT++ — both
a network and a PCIe hop).  A :class:`Platform` captures one such
deployment and produces the pieces the training engine needs: the
hardware spec (with the right compute device and "network" between
workers), the appropriate transfer method, and the worker count.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import TransferError
from .hardware import HardwareSpec
from .methods import ExtractLoad, TransferBreakdown, TransferMethod, ZeroCopy

__all__ = ["Platform", "cpu_cluster", "multi_gpu", "gpu_cluster",
           "NoTransfer", "PLATFORM_NAMES"]

PLATFORM_NAMES = ("cpu-cluster", "multi-gpu", "gpu-cluster")

# 40-vCPU Skylake node: ~1.3 TFLOPS fp32 peak with AVX-512, GNN kernels
# well below that.
CPU_NODE_FLOPS = 1.3e12
CPU_NODE_EFFICIENCY = 0.35
# NVLink / PCIe-P2P between GPUs of one node.
INTRA_NODE_BANDWIDTH = 50e9
INTRA_NODE_LATENCY = 5e-6


class NoTransfer(TransferMethod):
    """CPU-only training: features never cross a PCIe link."""

    name = "cpu-local"

    def transfer(self, stats, spec, cache=None):
        # A cache slot is meaningless without a device; ignore it.
        return TransferBreakdown(0.0, 0.0, 0)

    def _transfer_flat(self, stats, spec, cache):
        return self.transfer(stats, spec, cache)

    def _transfer_tiered(self, stats, spec, lookup):
        return TransferBreakdown(0.0, 0.0, 0)


@dataclass(frozen=True)
class Platform:
    """One deployment choice.

    Attributes
    ----------
    name:
        "cpu-cluster" | "multi-gpu" | "gpu-cluster".
    num_workers:
        Machines (or GPUs) participating in training.
    spec:
        Cost model seen by each worker — ``network_*`` fields describe
        whatever link connects workers (Ethernet or NVLink),
        ``gpu_flops``/``gpu_efficiency`` describe the compute device
        (GPU or CPU cores).
    supports_gpu_cache:
        Whether a GPU feature cache makes sense here.
    """

    name: str
    num_workers: int
    spec: HardwareSpec
    supports_gpu_cache: bool

    def default_transfer(self):
        """The transfer method this platform's systems typically use."""
        if self.name == "cpu-cluster":
            return NoTransfer()
        if self.name == "multi-gpu":
            return ZeroCopy()
        return ExtractLoad()

    def __str__(self):
        return f"{self.name} x{self.num_workers}"


def cpu_cluster(num_nodes=4, base=None):
    """A cluster of CPU-only nodes (AliGraph/DistDGL/ByteGNN's world)."""
    if num_nodes < 1:
        raise TransferError("need at least one node")
    base = base or HardwareSpec()
    spec = base.with_overrides(gpu_flops=CPU_NODE_FLOPS,
                               gpu_efficiency=CPU_NODE_EFFICIENCY)
    return Platform("cpu-cluster", num_nodes, spec,
                    supports_gpu_cache=False)


def multi_gpu(num_gpus=4, base=None):
    """Several GPUs in one node: workers talk over NVLink/PCIe-P2P
    instead of Ethernet (PaGraph/GNNLab/Legion's world)."""
    if num_gpus < 1:
        raise TransferError("need at least one GPU")
    base = base or HardwareSpec()
    spec = base.with_overrides(network_bandwidth=INTRA_NODE_BANDWIDTH,
                               network_latency=INTRA_NODE_LATENCY)
    return Platform("multi-gpu", num_gpus, spec, supports_gpu_cache=True)


def gpu_cluster(num_nodes=4, base=None):
    """One GPU per node across an Ethernet cluster (P3/DistDGLv2/
    SALIENT++'s world) — the paper's own testbed."""
    if num_nodes < 1:
        raise TransferError("need at least one node")
    base = base or HardwareSpec()
    return Platform("gpu-cluster", num_nodes, base,
                    supports_gpu_cache=True)
