"""GPU memory footprint model.

The paper's batch preparation step sizes each batch "according to the
GPU's available memory" (§1, step 2).  This module estimates the device
memory one training batch needs — input features, per-layer activations
(kept for backward), block topology, model parameters and optimizer
state — and solves for the largest batch size that fits a given GPU.

The estimate works from the same expansion model as the samplers: a
batch of ``b`` seeds with fanouts ``(f_1, ..., f_L)`` touches at most
``b * (1 + f_1 + f_1 * f_2 + ...)`` vertices, with deduplication
discounting that bound on real graphs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import TransferError

__all__ = ["MemoryEstimate", "estimate_batch_memory",
           "estimate_subgraph_memory", "max_batch_size"]

FLOAT_BYTES = 4
INDEX_BYTES = 8
# Adam keeps two moments per parameter alongside the gradient.
OPTIMIZER_STATE_FACTOR = 3


@dataclass
class MemoryEstimate:
    """Bytes of GPU memory for one training batch."""

    feature_bytes: int       # raw input rows on device
    activation_bytes: int    # per-layer outputs kept for backward
    topology_bytes: int      # block CSR structures
    model_bytes: int         # parameters + gradients + optimizer state

    @property
    def total_bytes(self):
        return (self.feature_bytes + self.activation_bytes
                + self.topology_bytes + self.model_bytes)

    def fits(self, spec, headroom=0.1):
        """Does this batch fit the spec's GPU with ``headroom`` spare?"""
        return self.total_bytes <= (1.0 - headroom) * spec.gpu_memory


def _model_bytes(feature_dim, hidden_dim, num_classes, num_layers):
    params = 0
    dims = [feature_dim] + [hidden_dim] * num_layers
    for i in range(num_layers):
        params += dims[i] * dims[i + 1] + dims[i + 1]
    params += hidden_dim * num_classes + num_classes
    return params * FLOAT_BYTES * (1 + OPTIMIZER_STATE_FACTOR)


def _expansion_profile(batch_size, fanout, dedup_factor):
    """Expected vertices per layer, deepest (input) layer first."""
    sizes = [float(batch_size)]
    for f in fanout:
        sizes.append(sizes[-1] * (1 + f) * dedup_factor)
    return list(reversed(sizes))


def estimate_batch_memory(batch_size, fanout, feature_dim,
                          hidden_dim=128, num_classes=40,
                          dedup_factor=0.7, num_vertices=None):
    """Estimate GPU memory for a fanout-sampled training batch.

    Parameters
    ----------
    batch_size, fanout:
        The batch-preparation parameters (fanout outermost first).
    feature_dim, hidden_dim, num_classes:
        Model dimensions.
    dedup_factor:
        Discount on the worst-case expansion from shared neighbors
        (0.7 is typical for the paper's graphs at moderate batch sizes).
    num_vertices:
        Optional graph size capping every layer's vertex count.
    """
    if batch_size < 1 or not fanout:
        raise TransferError("need a positive batch size and fanout")
    if not 0 < dedup_factor <= 1:
        raise TransferError("dedup_factor must be in (0, 1]")
    layers = _expansion_profile(batch_size, fanout, dedup_factor)
    if num_vertices is not None:
        layers = [min(size, float(num_vertices)) for size in layers]
    dims = [feature_dim] + [hidden_dim] * len(fanout)
    feature_bytes = int(layers[0] * feature_dim * FLOAT_BYTES)
    activation_bytes = int(sum(
        layers[i + 1] * dims[i + 1] * FLOAT_BYTES
        for i in range(len(fanout))))
    # Block j (innermost first) aggregates into layers[j + 1]
    # destinations, each drawing its layer's fanout.
    edges = sum(layers[j + 1] * fanout[len(fanout) - 1 - j]
                for j in range(len(fanout)))
    topology_bytes = int(2 * edges * INDEX_BYTES)
    return MemoryEstimate(
        feature_bytes=feature_bytes,
        activation_bytes=activation_bytes,
        topology_bytes=topology_bytes,
        model_bytes=_model_bytes(feature_dim, hidden_dim, num_classes,
                                 len(fanout)))


def estimate_subgraph_memory(subgraph, feature_dim, hidden_dim=128,
                             num_classes=40):
    """Exact footprint of an already-sampled subgraph (no expansion
    model needed)."""
    feature_bytes = len(subgraph.input_nodes) * feature_dim * FLOAT_BYTES
    activation_bytes = sum(block.num_dst * hidden_dim * FLOAT_BYTES
                           for block in subgraph.blocks)
    topology_bytes = 2 * subgraph.total_edges * INDEX_BYTES
    return MemoryEstimate(
        feature_bytes=int(feature_bytes),
        activation_bytes=int(activation_bytes),
        topology_bytes=int(topology_bytes),
        model_bytes=_model_bytes(feature_dim, hidden_dim, num_classes,
                                 len(subgraph.blocks)))


def max_batch_size(spec, fanout, feature_dim, hidden_dim=128,
                   num_classes=40, dedup_factor=0.7, num_vertices=None,
                   headroom=0.1, ceiling=1_048_576):
    """Largest batch size whose estimated footprint fits the GPU.

    Binary search over the (monotone) memory estimate; returns 0 when
    even a single seed does not fit.
    """
    def fits(size):
        estimate = estimate_batch_memory(
            size, fanout, feature_dim, hidden_dim=hidden_dim,
            num_classes=num_classes, dedup_factor=dedup_factor,
            num_vertices=num_vertices)
        return estimate.fits(spec, headroom=headroom)

    if not fits(1):
        return 0
    low, high = 1, 2
    while high < ceiling and fits(high):
        low, high = high, high * 2
    while low + 1 < high:
        mid = (low + high) // 2
        if fits(mid):
            low = mid
        else:
            high = mid
    return low
