"""CPU→GPU data transfer methods (§7.2, §7.3.1).

Three methods, all consuming the same :class:`BatchStats` counts:

* **Extract-Load** — the explicit path: gather the batch's (uncached)
  feature rows into a contiguous staging buffer on the CPU, then
  ``cudaMemcpy`` staging + topology to the GPU at full PCIe bandwidth.
* **Zero-Copy** — the implicit UVA path: the GPU reads exactly the
  needed feature rows straight from host memory; no extraction, but the
  fine-grained reads run below peak PCIe bandwidth.
* **Hybrid** — HyTGraph-style: features live in 256 KB blocks; dense
  blocks (active fraction >= threshold) are DMA'd whole (no gather
  needed for a full contiguous block), sparse blocks are zero-copied.

The paper's §7.3.1 finding — hybrid does not help GNN training because
sampled vertices are too scattered for dense blocks to exist (especially
under caching) — emerges directly from the block activity statistics.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from ..errors import TransferError
from .blocks import block_activity
from .tiered import TieredCache

__all__ = ["BatchStats", "TransferBreakdown", "TransferMethod",
           "ExtractLoad", "ZeroCopy", "HybridTransfer", "make_transfer",
           "TOPOLOGY_BYTES_PER_EDGE"]

# A subgraph edge shipped to the GPU: two 4-byte local ids.
TOPOLOGY_BYTES_PER_EDGE = 8


@dataclass
class BatchStats:
    """Counts describing one mini-batch's transfer needs."""

    input_nodes: np.ndarray        # global ids whose features are needed
    feature_bytes_per_vertex: int
    subgraph_edges: int            # topology size shipped alongside
    num_vertices_total: int        # |V| of the dataset (for block layout)

    @classmethod
    def from_subgraph(cls, subgraph, dataset):
        return cls(input_nodes=subgraph.input_nodes,
                   feature_bytes_per_vertex=(dataset.feature_dim
                                             * dataset.features.itemsize),
                   subgraph_edges=subgraph.total_edges,
                   num_vertices_total=dataset.num_vertices)

    @property
    def feature_bytes(self):
        return len(self.input_nodes) * self.feature_bytes_per_vertex

    @property
    def topology_bytes(self):
        return self.subgraph_edges * TOPOLOGY_BYTES_PER_EDGE


@dataclass
class TransferBreakdown:
    """Seconds and bytes of one batch's CPU→GPU movement.

    With a :class:`~repro.transfer.tiered.TieredCache` in front of the
    features, ``disk_seconds`` carries the cold tier's storage fetch
    (charged on top of the host + PCIe path) and ``tier_seconds`` /
    ``tier_bytes`` split the feature movement per tier (topology bytes
    are not attributed to a tier).  Flat caches leave them zero/empty.
    """

    extract_seconds: float
    load_seconds: float
    bytes_moved: int
    disk_seconds: float = 0.0
    tier_seconds: dict = None
    tier_bytes: dict = None

    @property
    def total_seconds(self):
        return self.extract_seconds + self.load_seconds \
            + self.disk_seconds


class TransferMethod(abc.ABC):
    """Base class: compute a :class:`TransferBreakdown` for a batch.

    ``cache`` is either a flat :class:`~repro.transfer.cache.GPUCache`
    (misses all pay the host + PCIe path — the features live in host
    RAM) or a :class:`~repro.transfer.tiered.TieredCache` (misses are
    billed tier by tier: warm rows come from pinned host memory, cold
    rows additionally pay the disk fetch).
    """

    name = "abstract"

    def transfer(self, stats, spec, cache=None):
        """Time one batch; ``cache`` filters and tiers feature rows."""
        if isinstance(cache, TieredCache):
            return self._transfer_tiered(
                stats, spec, cache.lookup(stats.input_nodes))
        return self._transfer_flat(stats, spec, cache)

    @abc.abstractmethod
    def _transfer_flat(self, stats, spec, cache):
        """The single-tier path (features host-resident)."""

    @abc.abstractmethod
    def _transfer_tiered(self, stats, spec, lookup):
        """The multi-tier path, billed per tier of ``lookup``."""

    def _miss_nodes(self, stats, cache):
        if cache is None:
            return np.asarray(stats.input_nodes, dtype=np.int64)
        _hits, misses = cache.lookup(stats.input_nodes)
        return misses

    @staticmethod
    def _tier_split(breakdown, warm_bytes, cold_bytes, warm_own,
                    cold_own, pcie_shared):
        """Attach per-tier seconds/bytes to ``breakdown``: each tier's
        own cost plus a bytes-proportional share of the shared PCIe
        crossing."""
        moved = warm_bytes + cold_bytes
        warm_share = pcie_shared * warm_bytes / moved if moved else 0.0
        cold_share = pcie_shared - warm_share if moved else 0.0
        breakdown.tier_seconds = {"hot": 0.0,
                                  "warm": warm_own + warm_share,
                                  "cold": cold_own + cold_share}
        breakdown.tier_bytes = {"warm": warm_bytes, "cold": cold_bytes}
        return breakdown


class ExtractLoad(TransferMethod):
    """Explicit extract-then-DMA transfer."""

    name = "extract-load"

    def _transfer_flat(self, stats, spec, cache):
        misses = self._miss_nodes(stats, cache)
        miss_bytes = len(misses) * stats.feature_bytes_per_vertex
        extract = spec.gather_time(miss_bytes)
        payload = miss_bytes + stats.topology_bytes
        load = spec.pcie_time(payload, transfers=2)
        return TransferBreakdown(extract, load, payload)

    def _transfer_tiered(self, stats, spec, lookup):
        row = stats.feature_bytes_per_vertex
        warm_bytes = lookup.num_warm * row
        cold_bytes = lookup.num_cold * row
        # Warm rows are staged out of the pinned cache, cold rows are
        # gathered from the (disk-fetched) pageable pages; both then
        # ride the same DMA alongside the topology.
        extract = (spec.host_cache_time(warm_bytes)
                   + spec.gather_time(cold_bytes))
        disk = spec.disk_time(cold_bytes)
        payload = warm_bytes + cold_bytes + stats.topology_bytes
        load = spec.pcie_time(payload, transfers=2)
        pcie_rows = load - spec.pcie_time(stats.topology_bytes,
                                          transfers=2) \
            if warm_bytes + cold_bytes else 0.0
        return self._tier_split(
            TransferBreakdown(extract, load, payload, disk_seconds=disk),
            warm_bytes, cold_bytes,
            warm_own=spec.host_cache_time(warm_bytes),
            cold_own=disk + spec.gather_time(cold_bytes),
            pcie_shared=pcie_rows)


class ZeroCopy(TransferMethod):
    """UVA zero-copy transfer: no extraction, reduced-efficiency reads."""

    name = "zero-copy"

    def _transfer_flat(self, stats, spec, cache):
        misses = self._miss_nodes(stats, cache)
        miss_bytes = len(misses) * stats.feature_bytes_per_vertex
        # Topology is still shipped explicitly (it is contiguous anyway).
        load = (spec.zero_copy_time(miss_bytes)
                + spec.pcie_time(stats.topology_bytes, transfers=1))
        return TransferBreakdown(0.0, load,
                                 miss_bytes + stats.topology_bytes)

    def _transfer_tiered(self, stats, spec, lookup):
        row = stats.feature_bytes_per_vertex
        warm_bytes = lookup.num_warm * row
        cold_bytes = lookup.num_cold * row
        # The warm tier is pinned memory — exactly what UVA zero-copy
        # reads from — so warm rows need no staging at all.  Cold rows
        # must land in the pinned region first (disk fetch + gather)
        # before the GPU can read them.
        disk = spec.disk_time(cold_bytes)
        extract = spec.gather_time(cold_bytes)
        load = (spec.zero_copy_time(warm_bytes + cold_bytes)
                + spec.pcie_time(stats.topology_bytes, transfers=1))
        zc_rows = spec.zero_copy_time(warm_bytes + cold_bytes)
        return self._tier_split(
            TransferBreakdown(extract, load,
                              warm_bytes + cold_bytes
                              + stats.topology_bytes,
                              disk_seconds=disk),
            warm_bytes, cold_bytes,
            warm_own=0.0,
            cold_own=disk + extract,
            pcie_shared=zc_rows)


class HybridTransfer(TransferMethod):
    """HyTGraph-style per-block decision between DMA and zero-copy.

    Parameters
    ----------
    threshold:
        Active-vertex fraction above which a 256 KB feature block is
        transferred whole by DMA.
    block_bytes:
        Feature block granularity (the paper uses 256 KB units).
    """

    name = "hybrid"

    def __init__(self, threshold=0.5, block_bytes=262144):
        if not 0.0 < threshold <= 1.0:
            raise TransferError(
                f"threshold must be in (0, 1], got {threshold}")
        self.threshold = float(threshold)
        self.block_bytes = int(block_bytes)

    def _transfer_flat(self, stats, spec, cache):
        misses = self._miss_nodes(stats, cache)
        return self._block_breakdown(misses, stats, spec)

    def _transfer_tiered(self, stats, spec, lookup):
        # The per-block dense/sparse decision applies to every row that
        # is not GPU-resident; cold rows additionally pay the storage
        # fetch before they are host-readable at all.
        row = stats.feature_bytes_per_vertex
        warm_bytes = lookup.num_warm * row
        cold_bytes = lookup.num_cold * row
        breakdown = self._block_breakdown(lookup.misses, stats, spec)
        disk = spec.disk_time(cold_bytes)
        breakdown.disk_seconds = disk
        # The block machinery does not preserve which rows came from
        # which tier, so the host+PCIe cost is split by bytes.
        return self._tier_split(breakdown, warm_bytes, cold_bytes,
                                warm_own=0.0, cold_own=disk,
                                pcie_shared=breakdown.load_seconds)

    def _block_breakdown(self, misses, stats, spec):
        activity = block_activity(misses, stats.num_vertices_total,
                                  stats.feature_bytes_per_vertex,
                                  block_bytes=self.block_bytes)
        dense = activity.fractions >= self.threshold
        vertices_per_block = activity.vertices_per_block
        # Dense blocks: whole contiguous block DMA'd, no gather.
        dense_bytes = int(dense.sum()) * vertices_per_block \
            * stats.feature_bytes_per_vertex
        # Sparse blocks: only the active rows, via zero-copy.
        sparse_active = int(activity.active_counts[~dense].sum())
        sparse_bytes = sparse_active * stats.feature_bytes_per_vertex
        load = (spec.pcie_time(dense_bytes + stats.topology_bytes,
                               transfers=1 + int(dense.sum() > 0))
                + spec.zero_copy_time(sparse_bytes))
        return TransferBreakdown(
            0.0, load, dense_bytes + sparse_bytes + stats.topology_bytes)


def make_transfer(name, **kwargs):
    """Factory: ``extract-load``, ``zero-copy``, or ``hybrid``."""
    methods = {"extract-load": ExtractLoad, "zero-copy": ZeroCopy,
               "hybrid": HybridTransfer}
    key = name.lower()
    if key not in methods:
        raise TransferError(
            f"unknown transfer method {name!r}; known: {sorted(methods)}")
    return methods[key](**kwargs)
