"""Common types for graph partitioners.

A partitioning assigns every vertex an owning machine (``assignment``).
Some methods additionally *replicate* vertices: PaGraph-style streaming
(Stream-V) caches each training vertex's L-hop neighborhood locally, so a
vertex can be readable on machines other than its owner.  Replication is
recorded as a boolean matrix so the workload model can distinguish "local
because owned" from "local because cached".
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

import numpy as np

from ..errors import PartitionError
from ..perf.profiler import wall_clock

__all__ = ["PartitionResult", "Partitioner", "check_num_parts"]


def check_num_parts(num_vertices, num_parts):
    """Validate a partition count against the vertex count."""
    if num_parts < 1:
        raise PartitionError(f"num_parts must be >= 1, got {num_parts}")
    if num_parts > num_vertices:
        raise PartitionError(
            f"cannot split {num_vertices} vertices into {num_parts} parts")


@dataclass
class PartitionResult:
    """Outcome of partitioning one graph.

    Attributes
    ----------
    assignment:
        ``int64 (n,)`` owning partition per vertex, in ``0..k-1``.
    num_parts:
        Partition count ``k``.
    method:
        Human-readable method name ("hash", "metis-v", "stream-b", ...).
    seconds:
        Wall-clock partitioning time — the quantity of Figure 6.
    replicas:
        Optional ``bool (k, n)`` matrix; ``replicas[p, v]`` means vertex
        ``v``'s data is available on machine ``p`` (always true for the
        owner).  ``None`` means "owner only".
    """

    assignment: np.ndarray
    num_parts: int
    method: str
    seconds: float = 0.0
    replicas: np.ndarray | None = field(default=None, repr=False)

    def __post_init__(self):
        self.assignment = np.asarray(self.assignment, dtype=np.int64)
        if len(self.assignment) and (self.assignment.min() < 0 or
                                     self.assignment.max() >= self.num_parts):
            raise PartitionError("assignment ids out of range")
        if self.replicas is not None:
            self.replicas = np.asarray(self.replicas, dtype=bool)
            if self.replicas.shape != (self.num_parts, len(self.assignment)):
                raise PartitionError("replicas matrix has wrong shape")
            # The owner always holds its vertices.
            self.replicas[self.assignment,
                          np.arange(len(self.assignment))] = True

    @property
    def num_vertices(self):
        return len(self.assignment)

    def part_vertices(self, part):
        """Vertex ids owned by partition ``part``."""
        return np.flatnonzero(self.assignment == part)

    def owner(self, vertices):
        """Owning partition of ``vertices`` — a scalar for a scalar id,
        an ``int64`` array for an array (the shard-ownership query the
        serving fleet's router answers per request)."""
        if np.isscalar(vertices) or getattr(vertices, "ndim", 1) == 0:
            return int(self.assignment[int(vertices)])
        return self.assignment[np.asarray(vertices, dtype=np.int64)]

    def sizes(self):
        """Vertices owned per partition as an ``int64 (k,)`` array."""
        return np.bincount(self.assignment, minlength=self.num_parts)

    def is_local(self, part, vertices):
        """Boolean array: is each vertex readable on ``part`` without
        network traffic (owned or replicated there)?"""
        vertices = np.asarray(vertices, dtype=np.int64)
        local = self.assignment[vertices] == part
        if self.replicas is not None:
            local |= self.replicas[part, vertices]
        return local

    def replication_factor(self):
        """Average number of machines holding each vertex (1.0 = no
        replication)."""
        if self.replicas is None:
            return 1.0
        return float(self.replicas.sum() / max(self.num_vertices, 1))


class Partitioner(abc.ABC):
    """Base class for all partitioning methods.

    Subclasses implement :meth:`_partition`; the public :meth:`partition`
    wraps it with validation and wall-clock timing.
    """

    name = "abstract"

    @abc.abstractmethod
    def _partition(self, graph, num_parts, split, rng):
        """Return a :class:`PartitionResult` (``seconds`` filled by caller)."""

    def partition(self, graph, num_parts, split=None, rng=None):
        """Partition ``graph`` into ``num_parts`` machines.

        Parameters
        ----------
        graph:
            :class:`~repro.graph.csr.CSRGraph`.
        num_parts:
            Number of machines ``k``.
        split:
            Optional :class:`~repro.graph.splits.Split`; required by
            methods that balance train/val/test vertices.
        rng:
            :class:`numpy.random.Generator`; defaults to a fresh seeded
            generator.
        """
        check_num_parts(graph.num_vertices, num_parts)
        if rng is None:
            rng = np.random.default_rng(0)
        start = wall_clock()
        result = self._partition(graph, num_parts, split, rng)
        result.seconds = wall_clock() - start
        result.method = self.name
        return result
