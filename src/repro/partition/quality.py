"""Partition quality metrics.

These are the structural statistics §5.3 reads off a partitioning before
any training happens: edge cut, balance ratios per vertex class, storage
replication, and the per-partition clustering-coefficient variance the
paper uses to explain streaming partitioners' computational imbalance
("the variance of the clustering coefficient of the Hash partition graph
is only 3.6e-6, while the variances of Stream-V and Stream-B are 0.01 and
0.03").
"""

from __future__ import annotations

import numpy as np

__all__ = ["edge_cut", "edge_cut_fraction", "balance_ratio",
           "partition_subgraphs", "clustering_coefficient_variance",
           "quality_report"]


def edge_cut(graph, assignment):
    """Number of directed edges crossing partitions."""
    src, dst = graph.edges()
    assignment = np.asarray(assignment)
    return int((assignment[src] != assignment[dst]).sum())


def edge_cut_fraction(graph, assignment):
    """Fraction of edges crossing partitions (0 = perfectly local)."""
    if graph.num_edges == 0:
        return 0.0
    return edge_cut(graph, assignment) / graph.num_edges


def balance_ratio(assignment, num_parts, weights=None):
    """``max load / mean load`` over partitions (1.0 = perfect balance).

    ``weights`` defaults to 1 per vertex (count balance); pass e.g. a
    train mask or degrees to measure that dimension's balance.
    """
    assignment = np.asarray(assignment)
    if weights is None:
        weights = np.ones(len(assignment))
    loads = np.zeros(num_parts)
    np.add.at(loads, assignment, np.asarray(weights, dtype=np.float64))
    mean = loads.mean()
    if mean == 0:
        return 1.0
    return float(loads.max() / mean)


def partition_subgraphs(graph, result):
    """The subgraph each machine physically stores.

    For replicating methods (Stream-V) that is the induced subgraph on
    all replicated vertices; otherwise the induced subgraph on owned
    vertices.
    """
    subgraphs = []
    for part in range(result.num_parts):
        if result.replicas is not None:
            vertices = np.flatnonzero(result.replicas[part])
        else:
            vertices = result.part_vertices(part)
        sub, _ = graph.induced_subgraph(vertices)
        subgraphs.append(sub)
    return subgraphs


def clustering_coefficient_variance(graph, result):
    """Variance, across partitions, of the mean local clustering
    coefficient of each partition's *owned* vertices — the paper's
    density-imbalance metric (§5.3.1).

    Random (hash) assignment gives every partition a statistically
    identical vertex sample, so the variance is tiny; structure-following
    assignment (streaming) concentrates dense regions in some partitions
    and drives the variance up.
    """
    from ..graph.metrics import local_clustering_coefficients
    coeffs = local_clustering_coefficients(graph)
    values = []
    for part in range(result.num_parts):
        vertices = result.part_vertices(part)
        values.append(coeffs[vertices].mean() if len(vertices) else 0.0)
    return float(np.var(values))


def quality_report(graph, result, split=None):
    """One dict summarizing a partitioning's structural quality."""
    report = {
        "method": result.method,
        "num_parts": result.num_parts,
        "edge_cut_fraction": edge_cut_fraction(graph, result.assignment),
        "vertex_balance": balance_ratio(result.assignment, result.num_parts),
        "degree_balance": balance_ratio(
            result.assignment, result.num_parts,
            graph.out_degrees.astype(np.float64)),
        "replication_factor": result.replication_factor(),
        "seconds": result.seconds,
    }
    if split is not None:
        report["train_balance"] = balance_ratio(
            result.assignment, result.num_parts,
            split.train_mask.astype(np.float64))
    return report
