"""Per-machine computational and communication workload accounting.

This module measures exactly what Figures 4 and 5 of the paper plot: for
a given partitioning, run one epoch's worth of sampling on every machine
and count, per machine,

* **sampling load** — neighbor expansions executed for the machine's own
  batches (*local*) plus expansions it executes on behalf of other
  machines that need one of its vertices expanded (*served*);
* **aggregation load** — edges aggregated during training of the
  machine's own batches (graph aggregation dominates NN compute, so the
  paper counts aggregations);
* **communication** — sampled-subgraph edges and feature bytes received
  from remote machines (deduplicated per batch, as in §2).

Replication matters: a PaGraph (Stream-V) machine holds the L-hop
neighborhood of its training vertices, so its expansions and feature
reads are all local — reproducing Stream-V's zero-communication bars.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["MachineWorkload", "WorkloadReport", "measure_workload",
           "BYTES_PER_EDGE"]

# A transferred subgraph edge carries two 8-byte vertex ids.
BYTES_PER_EDGE = 16


@dataclass
class MachineWorkload:
    """Workload counters for one machine (one epoch)."""

    sample_local: int = 0
    sample_served: int = 0
    aggregation_edges: int = 0
    recv_subgraph_edges: int = 0
    recv_feature_vertices: int = 0
    recv_feature_bytes: int = 0

    @property
    def compute_load(self):
        """Figure 4's stacked height: sampling work + aggregation work."""
        return self.sample_local + self.sample_served + self.aggregation_edges

    @property
    def comm_bytes(self):
        """Figure 5's stacked height: subgraph + feature traffic."""
        return (self.recv_subgraph_edges * BYTES_PER_EDGE
                + self.recv_feature_bytes)


@dataclass
class WorkloadReport:
    """Workload of every machine plus summary statistics."""

    method: str
    machines: list = field(default_factory=list)

    @property
    def num_machines(self):
        return len(self.machines)

    def _imbalance(self, values):
        values = np.asarray(values, dtype=np.float64)
        mean = values.mean()
        if mean == 0:
            return 1.0
        return float(values.max() / mean)

    @property
    def total_compute(self):
        return sum(m.compute_load for m in self.machines)

    @property
    def total_comm_bytes(self):
        return sum(m.comm_bytes for m in self.machines)

    @property
    def compute_imbalance(self):
        return self._imbalance([m.compute_load for m in self.machines])

    @property
    def comm_imbalance(self):
        comm = [m.comm_bytes for m in self.machines]
        if sum(comm) == 0:
            return 1.0
        return self._imbalance(comm)

    def summary(self):
        """Headline totals and imbalance ratios as a dict."""
        return {
            "method": self.method,
            "total_compute": self.total_compute,
            "compute_imbalance": self.compute_imbalance,
            "total_comm_MB": self.total_comm_bytes / 1e6,
            "comm_imbalance": self.comm_imbalance,
        }


def _machine_batches(train_ids, batch_size, rng):
    order = rng.permutation(np.asarray(train_ids, dtype=np.int64))
    for start in range(0, len(order), batch_size):
        yield order[start:start + batch_size]


def measure_workload(dataset, result, sampler, batch_size=512, rng=None):
    """Account one epoch of distributed sampling + training.

    Parameters
    ----------
    dataset:
        :class:`~repro.graph.datasets.Dataset`.
    result:
        :class:`~repro.partition.base.PartitionResult` for ``k`` machines.
    sampler:
        Any :class:`~repro.sampling.base.Sampler`.
    batch_size:
        Seeds per batch on each machine.
    rng:
        :class:`numpy.random.Generator`.

    Returns
    -------
    :class:`WorkloadReport`
    """
    if rng is None:
        rng = np.random.default_rng(0)
    graph = dataset.graph
    assignment = result.assignment
    feat_bytes = dataset.features.shape[1] * dataset.features.itemsize
    machines = [MachineWorkload() for _p in range(result.num_parts)]
    train_ids = dataset.train_ids

    for part in range(result.num_parts):
        own_train = train_ids[assignment[train_ids] == part]
        if len(own_train) == 0:
            continue
        me = machines[part]
        for batch in _machine_batches(own_train, batch_size, rng):
            subgraph = sampler.sample(graph, batch, rng)
            me.aggregation_edges += subgraph.total_edges
            # Expansion accounting per block.
            for block in subgraph.blocks:
                dst = block.dst_nodes
                degrees = block.degrees()
                local = result.is_local(part, dst)
                me.sample_local += int(local.sum())
                remote_dst = dst[~local]
                if len(remote_dst):
                    owners = assignment[remote_dst]
                    for owner in np.unique(owners):
                        machines[owner].sample_served += int(
                            (owners == owner).sum())
                    me.recv_subgraph_edges += int(degrees[~local].sum())
            # Feature fetch accounting (deduplicated per batch).
            inputs = subgraph.input_nodes
            remote_inputs = ~result.is_local(part, inputs)
            count = int(remote_inputs.sum())
            me.recv_feature_vertices += count
            me.recv_feature_bytes += count * feat_bytes
    return WorkloadReport(method=result.method, machines=machines)
