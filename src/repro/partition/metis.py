"""A multilevel, multi-constraint graph partitioner ("Metis-extend").

This is our from-scratch stand-in for METIS [Karypis & Kumar 1998] plus
the constraint extensions the paper calls *Metis-extend* (§5.2): the
partitioner minimizes edge cut while keeping *every column* of a vertex
weight matrix balanced across partitions.  The three paper variants are
thin wrappers choosing the constraint columns:

* **Metis-V**  — balance training-vertex counts (DistDGL's core idea);
* **Metis-VE** — additionally balance vertex degrees (edge counts);
* **Metis-VET** — additionally balance validation/test vertex counts
  (SALIENT++).

The classic three phases are implemented directly:

1. *Coarsening* by heavy-edge matching, accumulating edge weights and
   constraint vectors, until the graph is small;
2. *Initial partitioning* of the coarsest graph by greedy streaming
   assignment in BFS order (maximize connectivity to the target part,
   subject to capacity);
3. *Uncoarsening with refinement*: project the assignment up one level at
   a time and run boundary Fiduccia–Mattheyses passes — move a boundary
   vertex to the neighboring part with the largest positive cut gain
   whose capacities all still hold.
"""

from __future__ import annotations

import numpy as np

try:  # METIS-style coarsening needs scipy; hash/range partitioners don't.
    import scipy.sparse as sp
except ImportError:  # pragma: no cover - exercised by the no-scipy CI job
    sp = None

from ..errors import PartitionError
from .base import PartitionResult, Partitioner

__all__ = ["metis_partition", "MetisPartitioner", "metis_clusters"]


def _weighted_adjacency(graph):
    """The graph as a symmetric weighted scipy CSR matrix (weight 1 per
    edge, symmetrized so matching sees every neighbor)."""
    if sp is None:
        raise PartitionError(
            "metis-style partitioning requires scipy; use the hash or "
            "range partitioner instead")
    n = graph.num_vertices
    data = np.ones(graph.num_edges, dtype=np.float64)
    adj = sp.csr_matrix((data, graph.indices.astype(np.int32),
                         graph.indptr.astype(np.int64)), shape=(n, n))
    if not graph.is_symmetric:
        adj = adj.maximum(adj.T)
    adj.setdiag(0)
    adj.eliminate_zeros()
    return adj


def _heavy_edge_matching(adj, rng):
    """Greedy heavy-edge matching.

    Returns ``cmap`` (coarse id per fine vertex) and the coarse vertex
    count.  Unmatched vertices map to their own coarse vertex.
    """
    n = adj.shape[0]
    match = np.full(n, -1, dtype=np.int64)
    order = rng.permutation(n)
    indptr, indices, data = adj.indptr, adj.indices, adj.data
    for v in order:
        if match[v] != -1:
            continue
        best, best_w = -1, 0.0
        for idx in range(indptr[v], indptr[v + 1]):
            u = indices[idx]
            if match[u] == -1 and u != v and data[idx] > best_w:
                best, best_w = u, data[idx]
        if best == -1:
            match[v] = v
        else:
            match[v] = best
            match[best] = v

    cmap = np.full(n, -1, dtype=np.int64)
    next_id = 0
    for v in range(n):
        if cmap[v] != -1:
            continue
        cmap[v] = next_id
        partner = match[v]
        if partner != v and cmap[partner] == -1:
            cmap[partner] = next_id
        next_id += 1
    return cmap, next_id


def _contract(adj, weights, cmap, num_coarse):
    """Contract matched pairs: sum adjacency weights and constraint rows."""
    coo = adj.tocoo()
    coarse = sp.csr_matrix(
        (coo.data, (cmap[coo.row], cmap[coo.col])),
        shape=(num_coarse, num_coarse))
    coarse.setdiag(0)
    coarse.eliminate_zeros()
    coarse_weights = np.zeros((num_coarse, weights.shape[1]))
    np.add.at(coarse_weights, cmap, weights)
    return coarse, coarse_weights


def _bfs_order(adj, rng):
    """Vertices in BFS order from a random start (covers all components)."""
    n = adj.shape[0]
    seen = np.zeros(n, dtype=bool)
    order = []
    queue = []
    for start in rng.permutation(n):
        if seen[start]:
            continue
        queue.append(start)
        seen[start] = True
        while queue:
            v = queue.pop(0)
            order.append(v)
            for u in adj.indices[adj.indptr[v]:adj.indptr[v + 1]]:
                if not seen[u]:
                    seen[u] = True
                    queue.append(u)
    return np.array(order, dtype=np.int64)


def _capacities(weights, num_parts, imbalance):
    """Per-part capacity for each constraint column, with slack for the
    largest single vertex so assignment can never deadlock."""
    totals = weights.sum(axis=0)
    biggest = weights.max(axis=0) if len(weights) else totals
    return (1.0 + imbalance) * totals / num_parts + biggest


def _initial_partition(adj, weights, num_parts, caps, rng):
    """Greedy streaming assignment of the coarsest graph in BFS order."""
    n = adj.shape[0]
    assignment = np.full(n, -1, dtype=np.int64)
    loads = np.zeros((num_parts, weights.shape[1]))
    for v in _bfs_order(adj, rng):
        row = slice(adj.indptr[v], adj.indptr[v + 1])
        neighbors = adj.indices[row]
        edge_w = adj.data[row]
        conn = np.zeros(num_parts)
        assigned = assignment[neighbors] >= 0
        if assigned.any():
            np.add.at(conn, assignment[neighbors[assigned]],
                      edge_w[assigned])
        fits = np.all(loads + weights[v] <= caps, axis=1)
        load_ratio = (loads / caps).max(axis=1)
        if not fits.any():
            # All parts nominally full: pick the least-loaded one.
            candidate = int(load_ratio.argmin())
        else:
            # LDG-style multiplicative penalty: connectivity matters, but
            # a nearly-full part is strongly discouraged.
            score = (conn + 1e-3) * (1.0 - load_ratio)
            score[~fits] = -np.inf
            candidate = int(score.argmax())
        assignment[v] = candidate
        loads[candidate] += weights[v]
    return assignment, loads


def _refine(adj, weights, assignment, num_parts, caps, rng, passes):
    """Boundary FM refinement: greedy positive-gain moves under all
    capacity constraints."""
    indptr, indices, data = adj.indptr, adj.indices, adj.data
    loads = np.zeros((num_parts, weights.shape[1]))
    np.add.at(loads, assignment, weights)
    for _pass in range(passes):
        moved = 0
        for v in rng.permutation(adj.shape[0]):
            row = slice(indptr[v], indptr[v + 1])
            neighbors = indices[row]
            if len(neighbors) == 0:
                continue
            cur = assignment[v]
            parts = assignment[neighbors]
            if np.all(parts == cur):
                continue  # interior vertex
            conn = np.zeros(num_parts)
            np.add.at(conn, parts, data[row])
            gain = conn - conn[cur]
            gain[cur] = -np.inf
            # Capacity check for every candidate part.
            fits = np.all(loads + weights[v] <= caps, axis=1)
            gain[~fits] = -np.inf
            target = int(gain.argmax())
            if gain[target] > 0:
                assignment[v] = target
                loads[cur] -= weights[v]
                loads[target] += weights[v]
                moved += 1
        if moved == 0:
            break
    _balance_pass(adj, weights, assignment, num_parts, caps, rng)
    return assignment


def _balance_pass(adj, weights, assignment, num_parts, caps, rng,
                  floor_ratio=0.85, max_moves_factor=0.25):
    """Pull vertices into under-loaded parts, one constraint at a time.

    FM refinement only makes cut-improving moves, so a part left starved
    by the initial assignment stays starved.  For every constraint column
    this pass moves vertices carrying that constraint's weight from
    over-loaded parts into any part below ``floor_ratio`` of the average,
    choosing, among sampled candidates, the vertex with the smallest cut
    damage.  Enforcing *every* column is what makes Metis-VE/VET pay for
    their extra constraints with a higher edge cut, as the paper observes
    (§5.3.2).
    """
    indptr, indices, data = adj.indptr, adj.indices, adj.data
    loads = np.zeros((num_parts, weights.shape[1]))
    np.add.at(loads, assignment, weights)
    avg = weights.sum(axis=0) / num_parts
    max_moves = int(max_moves_factor * adj.shape[0]) + 1
    for column in range(weights.shape[1]):
        if avg[column] <= 0:
            continue
        for _move in range(max_moves):
            col_load = loads[:, column]
            needy = int(col_load.argmin())
            if col_load[needy] >= floor_ratio * avg[column]:
                break
            donors = np.flatnonzero(col_load > avg[column])
            if len(donors) == 0:
                break
            carries = weights[:, column] > 0
            candidates = np.flatnonzero(
                np.isin(assignment, donors) & carries)
            if len(candidates) == 0:
                break
            sample = candidates if len(candidates) <= 256 else rng.choice(
                candidates, size=256, replace=False)
            best_v, best_score = -1, np.inf
            for v in sample:
                row = slice(indptr[v], indptr[v + 1])
                parts = assignment[indices[row]]
                conn_needy = data[row][parts == needy].sum()
                conn_cur = data[row][parts == assignment[v]].sum()
                # Cut damage per unit of constraint weight moved.
                score = (conn_cur - conn_needy) / weights[v, column]
                if score < best_score:
                    best_v, best_score = int(v), score
            if best_v == -1:
                break
            loads[assignment[best_v]] -= weights[best_v]
            loads[needy] += weights[best_v]
            assignment[best_v] = needy


def metis_partition(graph, num_parts, constraints=None, rng=None,
                    imbalance=0.1, coarsen_to=None, refine_passes=3):
    """Multilevel multi-constraint partitioning.

    Parameters
    ----------
    graph:
        :class:`~repro.graph.csr.CSRGraph`.
    num_parts:
        Number of parts ``k``.
    constraints:
        ``(n, c)`` non-negative weight matrix to balance.  A unit
        vertex-count column is always prepended, so ``None`` balances
        vertex counts only.
    rng:
        :class:`numpy.random.Generator` (default: seeded fresh).
    imbalance:
        Allowed relative imbalance ``epsilon`` per constraint.
    coarsen_to:
        Stop coarsening below this many vertices
        (default ``max(128, 16 * num_parts)``).
    refine_passes:
        FM passes per uncoarsening level.

    Returns
    -------
    ``int64 (n,)`` assignment array.
    """
    n = graph.num_vertices
    if rng is None:
        rng = np.random.default_rng(0)
    unit = np.ones((n, 1))
    if constraints is None:
        weights = unit
    else:
        constraints = np.asarray(constraints, dtype=np.float64)
        if constraints.ndim == 1:
            constraints = constraints[:, None]
        if constraints.shape[0] != n or np.any(constraints < 0):
            raise PartitionError(
                "constraints must be a non-negative (n, c) matrix")
        weights = np.hstack([unit, constraints])
    if coarsen_to is None:
        coarsen_to = max(128, 16 * num_parts)

    # Phase 1: coarsen.
    adj = _weighted_adjacency(graph)
    levels = []  # (adjacency, cmap) pairs, finest first
    cur_adj, cur_weights = adj, weights
    while cur_adj.shape[0] > coarsen_to:
        cmap, num_coarse = _heavy_edge_matching(cur_adj, rng)
        if num_coarse >= cur_adj.shape[0] * 0.95:
            break  # matching stalled (e.g. near-empty graph)
        levels.append((cur_adj, cmap))
        cur_adj, cur_weights = _contract(cur_adj, cur_weights, cmap,
                                         num_coarse)

    # Phase 2: initial partition of the coarsest graph.
    caps_coarse = _capacities(cur_weights, num_parts, imbalance)
    assignment, _ = _initial_partition(cur_adj, cur_weights, num_parts,
                                       caps_coarse, rng)
    assignment = _refine(cur_adj, cur_weights, assignment, num_parts,
                         caps_coarse, rng, refine_passes)

    # Phase 3: uncoarsen + refine, finest last.  weight_stack[i] holds the
    # constraint matrix of level i (finest first).
    weight_stack = [weights]
    for fine_adj, cmap in levels:
        num_coarse = cmap.max() + 1 if len(cmap) else 0
        coarse_w = np.zeros((num_coarse, weights.shape[1]))
        np.add.at(coarse_w, cmap, weight_stack[-1])
        weight_stack.append(coarse_w)
    for (fine_adj, cmap), fine_w in zip(reversed(levels),
                                        reversed(weight_stack[:-1])):
        assignment = assignment[cmap]
        caps = _capacities(fine_w, num_parts, imbalance)
        assignment = _refine(fine_adj, fine_w, assignment, num_parts, caps,
                             rng, refine_passes)
    return assignment


def metis_clusters(graph, num_clusters, rng=None):
    """Cluster the graph into ``num_clusters`` dense pieces (used by
    cluster-based batch selection, §6.3.2).  Pure min-cut clustering, no
    extra constraints."""
    return metis_partition(graph, num_clusters, rng=rng, imbalance=0.3)


class MetisPartitioner(Partitioner):
    """Metis-extend partitioning with the paper's constraint presets.

    Parameters
    ----------
    variant:
        ``"v"`` (balance train vertices), ``"ve"`` (train vertices +
        degrees), or ``"vet"`` (train/val/test vertices + degrees).
    imbalance:
        Allowed relative imbalance per constraint.
    """

    VARIANTS = ("v", "ve", "vet")

    def __init__(self, variant="ve", imbalance=0.1, refine_passes=3):
        if variant not in self.VARIANTS:
            raise PartitionError(
                f"variant must be one of {self.VARIANTS}, got {variant!r}")
        self.variant = variant
        self.imbalance = imbalance
        self.refine_passes = refine_passes
        self.name = f"metis-{variant}"

    def _constraints(self, graph, split):
        if split is None:
            raise PartitionError(
                f"{self.name} needs a train/val/test split to balance")
        columns = [split.train_mask.astype(np.float64)]
        if self.variant in ("ve", "vet"):
            columns.append(graph.out_degrees.astype(np.float64))
        if self.variant == "vet":
            columns.append(split.val_mask.astype(np.float64))
            columns.append(split.test_mask.astype(np.float64))
        return np.column_stack(columns)

    def _partition(self, graph, num_parts, split, rng):
        constraints = self._constraints(graph, split)
        assignment = metis_partition(
            graph, num_parts, constraints=constraints, rng=rng,
            imbalance=self.imbalance, refine_passes=self.refine_passes)
        return PartitionResult(assignment, num_parts, self.name)
