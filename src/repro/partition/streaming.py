"""Streaming graph partitioning (PaGraph's Stream-V, ByteGNN's Stream-B).

Streaming partitioners make an irrevocable placement decision per vertex
(or block of vertices) in a single pass, scoring each candidate partition
with a connectivity term multiplied by a balance term.

* **Stream-V** (PaGraph): streams *training* vertices; the score counts
  how much of the vertex's L-hop neighborhood a partition already caches,
  discounted by the partition's remaining training-vertex capacity.  The
  winning partition then *replicates the entire L-hop neighborhood*, so
  sampling later needs no communication at all (the paper's Figure 5
  shows Stream-V with zero communication) at the cost of heavy storage
  redundancy and density imbalance.

* **Stream-B** (ByteGNN): first groups vertices into small BFS blocks
  grown from training vertices, then streams blocks, assigning each to
  the partition with the most edges into it while balancing
  train/val/test counts.

Both are deliberately sequential scan-and-score algorithms — the paper's
§5.3.3 finding that streaming partitioning dominates end-to-end time
(99.4% / 84.9% of it) is a direct consequence of this per-vertex set
intersection work, which our implementation shares.
"""

from __future__ import annotations

import numpy as np

from ..errors import PartitionError
from .base import PartitionResult, Partitioner

__all__ = ["StreamVPartitioner", "StreamBPartitioner", "l_hop_neighborhood",
           "build_bfs_blocks"]


def l_hop_neighborhood(graph, vertex, hops, hop_cap=None, rng=None):
    """Vertices within ``hops`` steps of ``vertex`` (excluding it).

    ``hop_cap`` limits the neighbors taken per vertex per hop — PaGraph
    caches the part of the L-hop neighborhood that sample-based training
    will actually touch, and an uncapped L-hop closure of a dense graph
    is simply the whole graph.  ``hop_cap=None`` takes everything.
    """
    frontier = np.array([vertex], dtype=np.int64)
    seen = np.zeros(graph.num_vertices, dtype=bool)
    seen[vertex] = True
    result = []
    for _hop in range(hops):
        if len(frontier) == 0:
            break
        chunks = []
        for v in frontier:
            neighbors = graph.out_neighbors(v)
            if hop_cap is not None and len(neighbors) > hop_cap:
                if rng is None:
                    neighbors = neighbors[:hop_cap]
                else:
                    neighbors = rng.choice(neighbors, size=hop_cap,
                                           replace=False)
            chunks.append(neighbors)
        candidates = np.unique(np.concatenate(chunks))
        fresh = candidates[~seen[candidates]]
        seen[fresh] = True
        result.append(fresh)
        frontier = fresh
    if not result:
        return np.empty(0, dtype=np.int64)
    return np.concatenate(result)


class StreamVPartitioner(Partitioner):
    """PaGraph-style vertex streaming with L-hop neighborhood caching.

    Parameters
    ----------
    hops:
        Neighborhood depth ``L`` to replicate (the GNN's layer count).
    hop_cap:
        Neighbors replicated per vertex per hop; generous relative to the
        training fanout, so sampling stays (almost always) local while
        hubs do not drag the entire graph into every cache.
    """

    name = "stream-v"

    def __init__(self, hops=2, hop_cap=16):
        if hops < 1:
            raise PartitionError(f"hops must be >= 1, got {hops}")
        self.hops = hops
        self.hop_cap = hop_cap

    def _partition(self, graph, num_parts, split, rng):
        if split is None:
            raise PartitionError("stream-v needs a split (train vertices)")
        n = graph.num_vertices
        train_ids = split.train_ids
        replicas = np.zeros((num_parts, n), dtype=bool)
        assignment = np.full(n, -1, dtype=np.int64)
        tv_count = np.zeros(num_parts)
        capacity = max(1.0, len(train_ids) / num_parts)

        for v in rng.permutation(train_ids):
            neighborhood = l_hop_neighborhood(graph, v, self.hops,
                                              hop_cap=self.hop_cap, rng=rng)
            if len(neighborhood):
                overlap = replicas[:, neighborhood].sum(axis=1)
            else:
                overlap = np.zeros(num_parts)
            remaining = np.maximum(capacity - tv_count, 0.0) / capacity
            score = (overlap + 1.0) * remaining
            part = int(score.argmax())
            assignment[v] = part
            tv_count[part] += 1
            replicas[part, neighborhood] = True
            replicas[part, v] = True

        # Non-train vertices are owned by a partition that already caches
        # them (least-loaded such partition); untouched vertices fall back
        # to the least-loaded partition overall.
        unassigned = np.flatnonzero(assignment < 0)
        owned = np.bincount(assignment[assignment >= 0],
                            minlength=num_parts).astype(np.float64)
        for v in unassigned:
            holders = np.flatnonzero(replicas[:, v])
            pool = holders if len(holders) else np.arange(num_parts)
            part = int(pool[owned[pool].argmin()])
            assignment[v] = part
            owned[part] += 1
        return PartitionResult(assignment, num_parts, self.name,
                               replicas=replicas)


def build_bfs_blocks(graph, train_ids, rng, block_size=32):
    """Group vertices into blocks by BFS growth from training vertices.

    Every vertex lands in exactly one block; leftovers unreachable from
    any training vertex become their own blocks (round-robin chunks).
    Returns a list of int64 arrays.
    """
    n = graph.num_vertices
    claimed = np.zeros(n, dtype=bool)
    blocks = []
    for v in rng.permutation(train_ids):
        if claimed[v]:
            continue
        block = [int(v)]
        claimed[v] = True
        frontier = [int(v)]
        while frontier and len(block) < block_size:
            nxt = []
            for u in frontier:
                for w in graph.out_neighbors(u):
                    w = int(w)
                    if not claimed[w]:
                        claimed[w] = True
                        block.append(w)
                        nxt.append(w)
                        if len(block) >= block_size:
                            break
                if len(block) >= block_size:
                    break
            frontier = nxt
        blocks.append(np.array(block, dtype=np.int64))
    leftovers = np.flatnonzero(~claimed)
    for start in range(0, len(leftovers), block_size):
        blocks.append(leftovers[start:start + block_size])
    return blocks


class StreamBPartitioner(Partitioner):
    """ByteGNN-style block streaming.

    Parameters
    ----------
    block_size:
        Maximum vertices per BFS block.
    balance_types:
        Balance train/val/test counts (ByteGNN's multi-type balance); if
        false only training vertices are balanced.
    """

    name = "stream-b"

    def __init__(self, block_size=32, balance_types=True):
        if block_size < 1:
            raise PartitionError(f"block_size must be >= 1, got {block_size}")
        self.block_size = block_size
        self.balance_types = balance_types

    def _partition(self, graph, num_parts, split, rng):
        if split is None:
            raise PartitionError("stream-b needs a split")
        n = graph.num_vertices
        blocks = build_bfs_blocks(graph, split.train_ids, rng,
                                  self.block_size)
        type_masks = [split.train_mask]
        if self.balance_types:
            type_masks += [split.val_mask, split.test_mask]
        type_weights = np.stack(
            [m.astype(np.float64) for m in type_masks], axis=1)
        capacity = type_weights.sum(axis=0) / num_parts + 1.0

        assignment = np.full(n, -1, dtype=np.int64)
        loads = np.zeros((num_parts, type_weights.shape[1]))
        order = rng.permutation(len(blocks))
        for bi in order:
            block = blocks[bi]
            # Edges from the block into each partition's current holdings.
            conn = np.zeros(num_parts)
            for v in block:
                parts = assignment[graph.out_neighbors(v)]
                held = parts >= 0
                if held.any():
                    np.add.at(conn, parts[held], 1.0)
            block_w = type_weights[block].sum(axis=0)
            load_ratio = (loads / capacity).max(axis=1)
            # Hard capacity: a partition at its per-type quota scores 0,
            # so the connectivity term cannot starve the others.
            score = (conn + 1.0) * np.maximum(1.0 - load_ratio, 0.0)
            if score.max() <= 0:
                part = int(load_ratio.argmin())
            else:
                part = int(score.argmax())
            assignment[block] = part
            loads[part] += block_w
        return PartitionResult(assignment, num_parts, self.name)
