"""Hash partitioning (the P3 baseline).

P3 randomly assigns vertices to machines with equal probability, which
balances computation and communication (goals 2 and 4) but ignores all
vertex dependencies, so total communication is maximal (§5.3).  We also
provide edge hashing (NeuGraph/DistGNN-style) for completeness; vertex
ownership is then derived by majority vote over incident edges.
"""

from __future__ import annotations

import numpy as np

from ..errors import PartitionError
from .base import PartitionResult, Partitioner

__all__ = ["HashPartitioner", "hash_vertices"]


def hash_vertices(num_vertices, num_parts, rng):
    """Balanced random vertex assignment: a random permutation dealt
    round-robin, so part sizes differ by at most one vertex."""
    order = rng.permutation(num_vertices)
    assignment = np.empty(num_vertices, dtype=np.int64)
    assignment[order] = np.arange(num_vertices) % num_parts
    return assignment


class HashPartitioner(Partitioner):
    """Random hash partitioning by vertex or by edge.

    Parameters
    ----------
    by:
        ``"vertex"`` (P3, AGL, NeutronStar, ...) assigns vertices
        uniformly at random.  ``"edge"`` (NeuGraph, DistGNN, Sancus)
        assigns edges uniformly and derives vertex ownership as the
        partition holding the most of the vertex's edges.
    """

    def __init__(self, by="vertex"):
        if by not in ("vertex", "edge"):
            raise PartitionError(f"by must be 'vertex' or 'edge', got {by!r}")
        self.by = by
        self.name = "hash" if by == "vertex" else "hash-edge"

    def _partition(self, graph, num_parts, split, rng):
        n = graph.num_vertices
        if self.by == "vertex":
            assignment = hash_vertices(n, num_parts, rng)
        else:
            src, _ = graph.edges()
            edge_parts = rng.integers(0, num_parts, size=graph.num_edges)
            # Vertex owner = partition with most of its out-edges; isolated
            # vertices fall back to random assignment.
            votes = np.zeros((n, num_parts), dtype=np.int64)
            np.add.at(votes, (src, edge_parts), 1)
            assignment = votes.argmax(axis=1)
            isolated = graph.out_degrees == 0
            assignment[isolated] = rng.integers(
                0, num_parts, size=int(isolated.sum()))
        return PartitionResult(assignment, num_parts, self.name)
