"""Data partitioning: methods, quality metrics, workload accounting."""

from .base import PartitionResult, Partitioner, check_num_parts
from .hashing import HashPartitioner, hash_vertices
from .metis import MetisPartitioner, metis_clusters, metis_partition
from .quality import (balance_ratio, clustering_coefficient_variance,
                      edge_cut, edge_cut_fraction, partition_subgraphs,
                      quality_report)
from .replication import (k_redundant_replication,
                          partition_aware_replication,
                          remote_access_frequencies)
from .streaming import (StreamBPartitioner, StreamVPartitioner,
                        build_bfs_blocks, l_hop_neighborhood)
from .workload import (BYTES_PER_EDGE, MachineWorkload, WorkloadReport,
                       measure_workload)

__all__ = [
    "PartitionResult", "Partitioner", "check_num_parts",
    "HashPartitioner", "hash_vertices",
    "MetisPartitioner", "metis_partition", "metis_clusters",
    "StreamVPartitioner", "StreamBPartitioner", "l_hop_neighborhood",
    "build_bfs_blocks",
    "edge_cut", "edge_cut_fraction", "balance_ratio", "partition_subgraphs",
    "clustering_coefficient_variance", "quality_report",
    "MachineWorkload", "WorkloadReport", "measure_workload",
    "BYTES_PER_EDGE",
    "k_redundant_replication", "partition_aware_replication",
    "remote_access_frequencies",
    "all_partitioners",
]


def all_partitioners(hops=2):
    """The paper's six evaluated methods (Table 3), ready to run."""
    return [
        HashPartitioner(),
        MetisPartitioner("v"),
        MetisPartitioner("ve"),
        MetisPartitioner("vet"),
        StreamVPartitioner(hops=hops),
        StreamBPartitioner(),
    ]
