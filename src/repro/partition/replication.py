"""Partition-aware feature replication (SALIENT++'s caching idea).

SALIENT++ reduces distributed feature traffic by letting every machine
cache the *remote* vertices its own training workload requests most
often — measured, like GNNLab's GPU cache, by pre-sampling.  Here that
becomes a transformation on a :class:`PartitionResult`: given a
replication budget (fraction of the vertex count per machine), each
machine adds the hottest remote vertices to its replica set, and all
downstream accounting (workload reports, the training engine's
communication metering) automatically sees them as local.
"""

from __future__ import annotations

import numpy as np

from ..errors import PartitionError
from .base import PartitionResult

__all__ = ["k_redundant_replication", "partition_aware_replication",
           "remote_access_frequencies"]


def k_redundant_replication(partition, k):
    """Give every vertex a primary owner plus ``k - 1`` backup holders.

    Backups are the ``k - 1`` cyclic successors of the owning partition
    (vertex owned by part ``p`` is also held by ``p+1, ..., p+k-1`` mod
    the partition count), so replica placement is deterministic, every
    partition carries an equal share of backup load, and the backup set
    for any vertex is always ``k - 1`` *distinct* non-owner machines.
    This is the fleet-resilience scheme: any single replica can die and
    every one of its rows stays servable on the next shard over.

    Parameters
    ----------
    partition:
        The :class:`PartitionResult` to replicate.  Pre-existing
        replicas (e.g. SALIENT++ hot-set caching) are preserved and
        unioned with the redundancy copies.
    k:
        Total holders per vertex (owner included).  ``k = 1`` returns a
        copy with ownership-only replicas — the identity placement.

    Returns
    -------
    A new :class:`PartitionResult` (same ownership, method suffixed
    ``+k{k}``) whose replica matrix has at least ``k`` holders per
    vertex.
    """
    if not 1 <= int(k) <= partition.num_parts:
        raise PartitionError(
            f"replication factor must be in [1, {partition.num_parts}] "
            f"(num_parts), got {k}")
    k = int(k)
    n = partition.num_vertices
    replicas = (partition.replicas.copy()
                if partition.replicas is not None
                else np.zeros((partition.num_parts, n), dtype=bool))
    vertex_ids = np.arange(n)
    for offset in range(k):
        holders = (partition.assignment + offset) % partition.num_parts
        replicas[holders, vertex_ids] = True
    return PartitionResult(
        assignment=partition.assignment.copy(),
        num_parts=partition.num_parts,
        method=f"{partition.method}+k{k}",
        seconds=partition.seconds,
        replicas=replicas)


def remote_access_frequencies(dataset, partition, sampler, rng, epochs=2,
                              batch_size=512):
    """Per-machine access counts of *remote* vertices, measured by
    pre-sampling each machine's own training workload.

    Returns an ``(k, n)`` int64 matrix; row ``p`` counts how often
    machine ``p`` requested each vertex it does not hold locally.
    """
    graph = dataset.graph
    k = partition.num_parts
    n = dataset.num_vertices
    counts = np.zeros((k, n), dtype=np.int64)
    train_ids = dataset.train_ids
    owners = partition.assignment[train_ids]
    for part in range(k):
        own_train = train_ids[owners == part]
        if len(own_train) == 0:
            continue
        for _epoch in range(epochs):
            order = rng.permutation(own_train)
            for start in range(0, len(order), batch_size):
                batch = order[start:start + batch_size]
                subgraph = sampler.sample(graph, batch, rng)
                inputs = subgraph.input_nodes
                remote = inputs[~partition.is_local(part, inputs)]
                np.add.at(counts[part], remote, 1)
    return counts


def partition_aware_replication(dataset, partition, sampler, budget_ratio,
                                rng=None, epochs=2, batch_size=512):
    """Extend a partitioning with per-machine hot-remote-vertex replicas.

    Parameters
    ----------
    dataset, partition, sampler:
        The training setup whose access pattern decides what to
        replicate.
    budget_ratio:
        Replication budget per machine, as a fraction of ``|V|``.
    rng:
        Generator for the pre-sampling pass.

    Returns
    -------
    A new :class:`PartitionResult` (same ownership, method name suffixed
    with ``+repl``) whose replica matrix includes the chosen vertices.
    """
    if not 0.0 <= budget_ratio <= 1.0:
        raise PartitionError(
            f"budget_ratio must be in [0, 1], got {budget_ratio}")
    if rng is None:
        rng = np.random.default_rng(0)
    n = dataset.num_vertices
    budget = int(round(budget_ratio * n))
    counts = remote_access_frequencies(dataset, partition, sampler, rng,
                                       epochs=epochs,
                                       batch_size=batch_size)
    replicas = (partition.replicas.copy() if partition.replicas is not None
                else np.zeros((partition.num_parts, n), dtype=bool))
    replicas[partition.assignment, np.arange(n)] = True
    for part in range(partition.num_parts):
        if budget == 0:
            break
        hot = np.argsort(-counts[part], kind="stable")[:budget]
        hot = hot[counts[part][hot] > 0]
        replicas[part, hot] = True
    return PartitionResult(
        assignment=partition.assignment.copy(),
        num_parts=partition.num_parts,
        method=f"{partition.method}+repl",
        seconds=partition.seconds,
        replicas=replicas)
