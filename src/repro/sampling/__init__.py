"""Batch-preparation samplers and sampled-subgraph structures."""

from .base import Sampler, draw_neighbors, expand_layers
from .block import (SampledBlock, SampledSubgraph, build_block,
                    build_block_reference)
from .hybrid import HybridSampler
from .layerwise import LayerWiseSampler
from .neighbor import DEFAULT_FANOUT, NeighborSampler
from .rate import RateSampler
from .subgraph import SubgraphSampler

__all__ = [
    "Sampler", "draw_neighbors", "expand_layers",
    "SampledBlock", "SampledSubgraph", "build_block",
    "build_block_reference",
    "NeighborSampler", "DEFAULT_FANOUT", "RateSampler", "HybridSampler",
    "LayerWiseSampler", "SubgraphSampler",
]
