"""Sampler interface and the shared vectorized neighbor-draw kernel."""

from __future__ import annotations

import abc

import numpy as np

from ..errors import SamplingError
from ..perf import FLAGS, PERF
from .block import SampledSubgraph, build_block

__all__ = ["Sampler", "draw_neighbors", "expand_layers"]

# Largest vertex-id universe for which ``dst * V + src`` stays inside
# int64 — the fused single-key dedup is valid below it.
_FUSED_KEY_MAX_VERTICES = np.int64(1) << 31


def draw_neighbors(graph, frontier, counts, rng):
    """Sample ``counts[i]`` in-neighbors of ``frontier[i]``, vectorized.

    Draws are with replacement and then deduplicated per ``(dst, src)``
    pair, so a vertex ends up with *at most* ``counts[i]`` distinct
    sampled neighbors (exactly that many when its degree is large).  This
    keeps the kernel a single vectorized gather — the same trade DGL's
    samplers make in their fast paths.

    Returns ``(edge_dst, edge_src)`` global-id arrays (deduplicated).
    """
    frontier = np.asarray(frontier, dtype=np.int64)
    counts = np.asarray(counts, dtype=np.int64)
    if len(frontier) != len(counts):
        raise SamplingError("frontier and counts must align")
    indptr, indices = graph.in_csr()
    degrees = indptr[frontier + 1] - indptr[frontier]
    counts = np.minimum(counts, np.maximum(degrees, 0))
    counts = np.maximum(counts, 0)
    total = int(counts.sum())
    if total == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty

    edge_dst = np.repeat(frontier, counts)
    start = np.repeat(indptr[frontier], counts)
    degree_rep = np.repeat(degrees, counts)
    offsets = (rng.random(total) * degree_rep).astype(np.int64)
    edge_src = indices[start + offsets]

    # Dedup (dst, src) pairs, keeping (dst, src) sort order.
    num_vertices = np.int64(graph.num_vertices)
    if FLAGS.fused_block_assembly and num_vertices < _FUSED_KEY_MAX_VERTICES:
        # Fused fast path: one np.unique over the packed pair key
        # replaces a two-key lexsort plus gathers and mask compares —
        # same pairs, same order.
        with PERF.timed("neighbor_dedup"):
            key = np.unique(edge_dst * num_vertices + edge_src)
            edge_dst, edge_src = np.divmod(key, num_vertices)
        return edge_dst, edge_src
    order = np.lexsort((edge_src, edge_dst))
    edge_dst, edge_src = edge_dst[order], edge_src[order]
    keep = np.concatenate(([True], (edge_dst[1:] != edge_dst[:-1])
                           | (edge_src[1:] != edge_src[:-1])))
    return edge_dst[keep], edge_src[keep]


def expand_layers(graph, seeds, count_fn, num_layers, rng):
    """Build an L-layer :class:`SampledSubgraph` by recursive expansion.

    ``count_fn(layer, frontier, degrees)`` returns how many neighbors to
    draw per frontier vertex for that layer (layer 0 is the outermost,
    next to the seeds).
    """
    seeds = np.unique(np.asarray(seeds, dtype=np.int64))
    if len(seeds) == 0:
        raise SamplingError("cannot sample an empty seed set")
    indptr, _ = graph.in_csr()
    blocks_outer_first = []
    frontier = seeds
    for layer in range(num_layers):
        degrees = indptr[frontier + 1] - indptr[frontier]
        counts = count_fn(layer, frontier, degrees)
        edge_dst, edge_src = draw_neighbors(graph, frontier, counts, rng)
        # draw_neighbors already collapsed duplicate (dst, src) pairs,
        # so assembly can skip its dedup pass.
        block = build_block(frontier, edge_dst, edge_src,
                            assume_deduped=True)
        blocks_outer_first.append(block)
        frontier = block.src_nodes
    return SampledSubgraph(seeds=seeds,
                           blocks=list(reversed(blocks_outer_first)))


class Sampler(abc.ABC):
    """Base class for batch-preparation samplers.

    A sampler turns a set of seed (training) vertices into the
    :class:`SampledSubgraph` a GNN trains on.
    """

    name = "abstract"

    def __init__(self, num_layers):
        if num_layers < 1:
            raise SamplingError(f"num_layers must be >= 1, got {num_layers}")
        self.num_layers = num_layers

    @abc.abstractmethod
    def sample(self, graph, seeds, rng):
        """Sample the training subgraph for ``seeds``."""

    def describe(self):
        """Short human-readable parameter summary."""
        return self.name
