"""Subgraph-wise sampling (Cluster-GCN / GraphSAINT style).

The sampling operation is confined to one induced subgraph of the input
graph: the batch's seed vertices plus whatever other vertices belong to
the same sampled subgraph.  Every GNN layer then aggregates over the same
vertex set, so no neighborhood search escapes the subgraph — the cheap
extreme of the batch-preparation design space (§6.2).
"""

from __future__ import annotations

import numpy as np

from ..errors import SamplingError
from .base import Sampler
from .block import SampledSubgraph, build_block

__all__ = ["SubgraphSampler"]


class SubgraphSampler(Sampler):
    """Train on the subgraph induced by the seeds (plus optional random
    walk padding).

    Parameters
    ----------
    num_layers:
        GNN depth ``L`` (each layer reuses the same induced subgraph).
    walk_padding:
        Extra vertices added by 1-hop expansion of the seeds before
        induction, as a fraction of the seed count (0 = pure Cluster-GCN
        behaviour).
    """

    name = "subgraph"

    def __init__(self, num_layers=2, walk_padding=0.0):
        super().__init__(num_layers=num_layers)
        if walk_padding < 0:
            raise SamplingError(
                f"walk_padding must be >= 0, got {walk_padding}")
        self.walk_padding = float(walk_padding)

    def sample(self, graph, seeds, rng):
        seeds = np.unique(np.asarray(seeds, dtype=np.int64))
        if len(seeds) == 0:
            raise SamplingError("cannot sample an empty seed set")
        vertices = seeds
        if self.walk_padding > 0:
            budget = int(np.ceil(self.walk_padding * len(seeds)))
            neighbor_chunks = [graph.in_neighbors(v) for v in seeds]
            pool = np.setdiff1d(np.concatenate(neighbor_chunks), seeds) \
                if neighbor_chunks else np.empty(0, dtype=np.int64)
            if len(pool) > budget:
                pool = rng.choice(pool, size=budget, replace=False)
            vertices = np.union1d(seeds, pool)

        # Edges of the induced subgraph (in global ids).
        indptr, indices = graph.in_csr()
        member = np.zeros(graph.num_vertices, dtype=bool)
        member[vertices] = True
        counts = indptr[vertices + 1] - indptr[vertices]
        edge_dst_all = np.repeat(vertices, counts)
        gather = np.concatenate(
            [np.arange(indptr[v], indptr[v + 1]) for v in vertices]) if \
            counts.sum() else np.empty(0, dtype=np.int64)
        edge_src_all = indices[gather]
        keep = member[edge_src_all]
        edge_dst_all, edge_src_all = edge_dst_all[keep], edge_src_all[keep]

        # Every layer reuses the same induced-edge set.  The outermost
        # block targets only the seeds; inner blocks target all members.
        blocks_outer_first = []
        frontier = seeds
        for _layer in range(self.num_layers):
            on_frontier = np.isin(edge_dst_all, frontier)
            block = build_block(frontier, edge_dst_all[on_frontier],
                                edge_src_all[on_frontier])
            blocks_outer_first.append(block)
            frontier = block.src_nodes
        return SampledSubgraph(seeds=seeds,
                               blocks=list(reversed(blocks_outer_first)))

    def describe(self):
        return f"subgraph(pad={self.walk_padding})x{self.num_layers}"
