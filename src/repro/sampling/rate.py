"""Ratio-based sampling: draw a fixed *fraction* of each vertex's
neighbors (BNS-GCN, GraphSAINT, AliGraph's ratio mode).

Compared to fanout sampling this treats high- and low-degree vertices
"fairly" — both lose the same fraction — but the paper shows it
disadvantages low-degree vertices in absolute terms (§6.3.4): at rate 0.1
a degree-20 vertex keeps only 2 neighbors.
"""

from __future__ import annotations

import numpy as np

from ..errors import SamplingError
from .base import Sampler, expand_layers

__all__ = ["RateSampler"]


class RateSampler(Sampler):
    """Sample ``ceil(rate * degree)`` neighbors per vertex per layer.

    Parameters
    ----------
    rate:
        Sampling rate in ``(0, 1]``.
    num_layers:
        GNN depth ``L``.
    min_neighbors:
        Floor on the per-vertex draw (default 1) so no vertex is starved
        outright.
    """

    name = "rate"

    def __init__(self, rate, num_layers=2, min_neighbors=1):
        if not 0.0 < rate <= 1.0:
            raise SamplingError(f"rate must be in (0, 1], got {rate}")
        super().__init__(num_layers=num_layers)
        self.rate = float(rate)
        self.min_neighbors = int(min_neighbors)

    def sample(self, graph, seeds, rng):
        def counts(layer, frontier, degrees):
            want = np.ceil(self.rate * degrees).astype(np.int64)
            return np.maximum(want, self.min_neighbors)

        return expand_layers(graph, seeds, counts, self.num_layers, rng)

    def describe(self):
        return f"rate({self.rate})x{self.num_layers}"
