"""Sampled subgraph data structures (message-flow graphs).

A mini-batch for an L-layer GNN is a stack of L bipartite *blocks*.
Block ``l`` aggregates features of its *source* vertices (layer ``l``
inputs) into its *destination* vertices (layer ``l`` outputs).  Following
the usual MFG convention, every destination vertex is also the first
entry of the source list, so a layer can combine a vertex's own
representation with its aggregated neighbors by slicing.

Vertex ids inside a block are *local* (0-based positions); the mapping
back to global graph ids is kept in ``src_nodes``/``dst_nodes``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..analysis.sanitize import check_csr
from ..errors import SamplingError
from ..perf import FLAGS, PERF, get_workspace

__all__ = ["SampledBlock", "SampledSubgraph", "build_block",
           "build_block_reference"]


@dataclass
class SampledBlock:
    """One bipartite aggregation layer.

    Attributes
    ----------
    dst_nodes:
        Global ids of output vertices (the layer's frontier).
    src_nodes:
        Global ids of input vertices; ``src_nodes[:len(dst_nodes)] ==
        dst_nodes`` (self-inclusion).
    indptr, indices:
        CSR over destinations: ``indices[indptr[i]:indptr[i+1]]`` are
        *local* positions into ``src_nodes`` of the sampled in-neighbors
        of ``dst_nodes[i]``.
    """

    dst_nodes: np.ndarray
    src_nodes: np.ndarray
    indptr: np.ndarray
    indices: np.ndarray

    def __post_init__(self):
        # Memoization slots for derived operators (see
        # ``repro.nn.layers.block_aggregation_matrix``).  Blocks are
        # structurally immutable after assembly, so derived operators
        # can be built once and reused across forward/backward calls
        # and across epochs when the block itself is cached.
        self._agg_cache = {}
        self._edge_list_cache = None

    def clear_caches(self):
        """Drop memoized derived operators (aggregation CSR, edge
        lists).  Only needed if a caller mutates the block's arrays in
        place, which nothing in the library does."""
        self._agg_cache = {}
        self._edge_list_cache = None

    @property
    def num_dst(self):
        return len(self.dst_nodes)

    @property
    def num_src(self):
        return len(self.src_nodes)

    @property
    def num_edges(self):
        return len(self.indices)

    def validate(self):
        """Raise :class:`SamplingError` on structural inconsistencies."""
        if len(self.indptr) != self.num_dst + 1:
            raise SamplingError("block indptr length mismatch")
        if self.indptr[0] != 0 or self.indptr[-1] != self.num_edges:
            raise SamplingError("block indptr endpoints wrong")
        if np.any(np.diff(self.indptr) < 0):
            raise SamplingError("block indptr must be non-decreasing")
        if self.num_edges and (self.indices.min() < 0
                               or self.indices.max() >= self.num_src):
            raise SamplingError("block edge index out of range")
        if not np.array_equal(self.src_nodes[:self.num_dst], self.dst_nodes):
            raise SamplingError("src_nodes must start with dst_nodes")

    def degrees(self):
        """Sampled in-degree per destination vertex."""
        return np.diff(self.indptr)


@dataclass
class SampledSubgraph:
    """A full L-layer mini-batch sample.

    ``blocks[0]`` is the *innermost* block (consumes raw input features);
    ``blocks[-1]`` produces the embeddings of the batch ``seeds``.
    """

    seeds: np.ndarray
    blocks: list

    @property
    def num_layers(self):
        return len(self.blocks)

    @property
    def input_nodes(self):
        """Global ids whose raw features must be fetched."""
        if not self.blocks:
            return self.seeds
        return self.blocks[0].src_nodes

    @property
    def total_edges(self):
        """Total aggregation work (edges across all blocks)."""
        return int(sum(block.num_edges for block in self.blocks))

    @property
    def total_vertices(self):
        """Total vertex slots across all blocks (with inter-layer
        duplicates, i.e. the computation footprint)."""
        return int(sum(block.num_src for block in self.blocks))

    def unique_vertices(self):
        """Distinct global vertex ids touched anywhere in the sample."""
        parts = [self.seeds] + [b.src_nodes for b in self.blocks]
        return np.unique(np.concatenate(parts))

    def validate(self):
        """Validate every block and their layer chaining."""
        for block in self.blocks:
            block.validate()
        if self.blocks and not np.array_equal(
                self.blocks[-1].dst_nodes, self.seeds):
            raise SamplingError("outermost block must target the seeds")
        # Layer chaining: dst of block l == src of block l-1's consumer.
        for inner, outer in zip(self.blocks[:-1], self.blocks[1:]):
            if not np.array_equal(inner.dst_nodes, outer.src_nodes):
                raise SamplingError("blocks do not chain")


def _assemble(dst_nodes, src_nodes, dst_local, src_local, dedup):
    """Order localized edges by ``(dst_local, src_local)``, optionally
    collapse duplicate pairs, and wrap everything in a
    :class:`SampledBlock`."""
    if len(dst_local):
        # Fused sort key: one argsort over ``dst * num_src + src``
        # replaces a two-key lexsort (two stable sorts + gathers).
        # Safe in int64: num_dst * num_src is far below 2**63 for any
        # block this library builds.  Tie order is irrelevant — equal
        # keys mean equal (dst, src) values — so the gathered value
        # arrays are identical to the lexsort path's.
        key = dst_local * np.int64(len(src_nodes)) + src_local
        if dedup:
            key = np.unique(key)
        else:
            key.sort()
        dst_local, src_local = np.divmod(key, np.int64(len(src_nodes)))

    counts = np.bincount(dst_local, minlength=len(dst_nodes))
    indptr = np.concatenate(([0], np.cumsum(counts))).astype(np.int64)
    if FLAGS.sanitize:
        # Guarded at the call site so the off path costs one attribute
        # read in this hot loop; rows are sorted by the key sort above.
        # Block CSRs are rectangular: destination rows, source columns.
        check_csr(indptr, src_local, len(dst_nodes), name="build_block",
                  sorted_rows=True, num_cols=len(src_nodes))
    return SampledBlock(dst_nodes=dst_nodes, src_nodes=src_nodes,
                        indptr=indptr, indices=src_local)


def build_block_reference(dst_nodes, edge_dst, edge_src):
    """Sort-based reference assembly (the original implementation).

    Kept as the ground truth for the fused fast path: the equivalence
    tests and ``benchmarks/bench_hotpath_kernels.py`` compare
    :func:`build_block` against this function on identical inputs.
    """
    dst_nodes = np.asarray(dst_nodes, dtype=np.int64)
    edge_dst = np.asarray(edge_dst, dtype=np.int64)
    edge_src = np.asarray(edge_src, dtype=np.int64)
    if len(edge_dst) != len(edge_src):
        raise SamplingError("edge arrays must have equal length")

    # Source list: destinations first (self-inclusion), then new sources.
    extra = np.setdiff1d(edge_src, dst_nodes, assume_unique=False)
    src_nodes = np.concatenate([dst_nodes, extra])

    # Global -> local translation, vectorized with searchsorted over a
    # stable sort of the id arrays.
    def localize(universe, queries, what):
        sorter = np.argsort(universe, kind="stable")
        spots = np.searchsorted(universe, queries, sorter=sorter)
        if len(queries) and (spots.max() >= len(universe)
                             or np.any(universe[sorter[spots]] != queries)):
            raise SamplingError(f"edge {what} not found in block vertices")
        return sorter[spots]

    dst_local = localize(dst_nodes, edge_dst, "destination")
    src_local = localize(src_nodes, edge_src, "source")

    if len(dst_local):
        order = np.lexsort((src_local, dst_local))
        dst_local, src_local = dst_local[order], src_local[order]
        keep = np.concatenate(([True], (dst_local[1:] != dst_local[:-1])
                               | (src_local[1:] != src_local[:-1])))
        dst_local, src_local = dst_local[keep], src_local[keep]

    counts = np.bincount(dst_local, minlength=len(dst_nodes))
    indptr = np.concatenate(([0], np.cumsum(counts))).astype(np.int64)
    return SampledBlock(dst_nodes=dst_nodes, src_nodes=src_nodes,
                        indptr=indptr, indices=src_local)


def build_block(dst_nodes, edge_dst, edge_src, assume_deduped=False):
    """Assemble a :class:`SampledBlock` from sampled global edge pairs.

    Parameters
    ----------
    dst_nodes:
        Global ids of this layer's destinations (unique).
    edge_dst, edge_src:
        Parallel arrays of sampled edges in *global* ids; every
        ``edge_dst`` value must appear in ``dst_nodes``.  Duplicate
        ``(dst, src)`` pairs are collapsed.
    assume_deduped:
        Promise that ``(edge_dst, edge_src)`` pairs are already
        distinct (true for edges straight out of
        :func:`~repro.sampling.base.draw_neighbors`), skipping the
        dedup pass.  Passing ``True`` for inputs with duplicate pairs
        silently double-counts edges — only set it when the producer
        guarantees distinctness.

    The default path localizes global ids through a pooled dense
    lookup table (one O(edges) gather pass) instead of the reference
    path's two argsort+searchsorted rounds; both produce bit-identical
    blocks.
    """
    if not FLAGS.fused_block_assembly:
        return build_block_reference(dst_nodes, edge_dst, edge_src)

    with PERF.timed("block_assembly"):
        dst_nodes = np.asarray(dst_nodes, dtype=np.int64)
        edge_dst = np.asarray(edge_dst, dtype=np.int64)
        edge_src = np.asarray(edge_src, dtype=np.int64)
        if len(edge_dst) != len(edge_src):
            raise SamplingError("edge arrays must have equal length")

        high = 1
        if len(dst_nodes):
            if int(dst_nodes.min()) < 0:
                raise SamplingError("vertex ids must be non-negative")
            high = max(high, int(dst_nodes.max()) + 1)
        if len(edge_src):
            if int(edge_src.min()) < 0 or int(edge_dst.min()) < 0:
                raise SamplingError("vertex ids must be non-negative")
            high = max(high, int(edge_src.max()) + 1,
                       int(edge_dst.max()) + 1)

        num_dst = len(dst_nodes)
        extra = np.empty(0, dtype=np.int64)
        with get_workspace().id_map(high) as lookup:
            try:
                lookup[dst_nodes] = np.arange(num_dst, dtype=np.int64)
                dst_local = lookup[edge_dst]
                if len(dst_local) and dst_local.min() < 0:
                    raise SamplingError(
                        "edge destination not found in block vertices")
                src_local = lookup[edge_src]
                fresh = src_local < 0
                if fresh.any():
                    # Sources not already destinations, sorted unique —
                    # the same ordering ``np.setdiff1d`` yields.
                    extra = np.unique(edge_src[fresh])
                    lookup[extra] = np.arange(
                        num_dst, num_dst + len(extra), dtype=np.int64)
                    src_local = lookup[edge_src]
            finally:
                # Restore the pool invariant (all -1), touching only
                # the entries this call wrote.
                lookup[dst_nodes] = -1
                if len(extra):
                    lookup[extra] = -1

        src_nodes = np.concatenate([dst_nodes, extra])
        return _assemble(dst_nodes, src_nodes, dst_local, src_local,
                         dedup=not assume_deduped)
