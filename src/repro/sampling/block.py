"""Sampled subgraph data structures (message-flow graphs).

A mini-batch for an L-layer GNN is a stack of L bipartite *blocks*.
Block ``l`` aggregates features of its *source* vertices (layer ``l``
inputs) into its *destination* vertices (layer ``l`` outputs).  Following
the usual MFG convention, every destination vertex is also the first
entry of the source list, so a layer can combine a vertex's own
representation with its aggregated neighbors by slicing.

Vertex ids inside a block are *local* (0-based positions); the mapping
back to global graph ids is kept in ``src_nodes``/``dst_nodes``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import SamplingError

__all__ = ["SampledBlock", "SampledSubgraph", "build_block"]


@dataclass
class SampledBlock:
    """One bipartite aggregation layer.

    Attributes
    ----------
    dst_nodes:
        Global ids of output vertices (the layer's frontier).
    src_nodes:
        Global ids of input vertices; ``src_nodes[:len(dst_nodes)] ==
        dst_nodes`` (self-inclusion).
    indptr, indices:
        CSR over destinations: ``indices[indptr[i]:indptr[i+1]]`` are
        *local* positions into ``src_nodes`` of the sampled in-neighbors
        of ``dst_nodes[i]``.
    """

    dst_nodes: np.ndarray
    src_nodes: np.ndarray
    indptr: np.ndarray
    indices: np.ndarray

    @property
    def num_dst(self):
        return len(self.dst_nodes)

    @property
    def num_src(self):
        return len(self.src_nodes)

    @property
    def num_edges(self):
        return len(self.indices)

    def validate(self):
        """Raise :class:`SamplingError` on structural inconsistencies."""
        if len(self.indptr) != self.num_dst + 1:
            raise SamplingError("block indptr length mismatch")
        if self.indptr[0] != 0 or self.indptr[-1] != self.num_edges:
            raise SamplingError("block indptr endpoints wrong")
        if np.any(np.diff(self.indptr) < 0):
            raise SamplingError("block indptr must be non-decreasing")
        if self.num_edges and (self.indices.min() < 0
                               or self.indices.max() >= self.num_src):
            raise SamplingError("block edge index out of range")
        if not np.array_equal(self.src_nodes[:self.num_dst], self.dst_nodes):
            raise SamplingError("src_nodes must start with dst_nodes")

    def degrees(self):
        """Sampled in-degree per destination vertex."""
        return np.diff(self.indptr)


@dataclass
class SampledSubgraph:
    """A full L-layer mini-batch sample.

    ``blocks[0]`` is the *innermost* block (consumes raw input features);
    ``blocks[-1]`` produces the embeddings of the batch ``seeds``.
    """

    seeds: np.ndarray
    blocks: list

    @property
    def num_layers(self):
        return len(self.blocks)

    @property
    def input_nodes(self):
        """Global ids whose raw features must be fetched."""
        if not self.blocks:
            return self.seeds
        return self.blocks[0].src_nodes

    @property
    def total_edges(self):
        """Total aggregation work (edges across all blocks)."""
        return int(sum(block.num_edges for block in self.blocks))

    @property
    def total_vertices(self):
        """Total vertex slots across all blocks (with inter-layer
        duplicates, i.e. the computation footprint)."""
        return int(sum(block.num_src for block in self.blocks))

    def unique_vertices(self):
        """Distinct global vertex ids touched anywhere in the sample."""
        parts = [self.seeds] + [b.src_nodes for b in self.blocks]
        return np.unique(np.concatenate(parts))

    def validate(self):
        """Validate every block and their layer chaining."""
        for block in self.blocks:
            block.validate()
        if self.blocks and not np.array_equal(
                self.blocks[-1].dst_nodes, self.seeds):
            raise SamplingError("outermost block must target the seeds")
        # Layer chaining: dst of block l == src of block l-1's consumer.
        for inner, outer in zip(self.blocks[:-1], self.blocks[1:]):
            if not np.array_equal(inner.dst_nodes, outer.src_nodes):
                raise SamplingError("blocks do not chain")


def build_block(dst_nodes, edge_dst, edge_src):
    """Assemble a :class:`SampledBlock` from sampled global edge pairs.

    Parameters
    ----------
    dst_nodes:
        Global ids of this layer's destinations (unique).
    edge_dst, edge_src:
        Parallel arrays of sampled edges in *global* ids; every
        ``edge_dst`` value must appear in ``dst_nodes``.  Duplicate
        ``(dst, src)`` pairs are collapsed.
    """
    dst_nodes = np.asarray(dst_nodes, dtype=np.int64)
    edge_dst = np.asarray(edge_dst, dtype=np.int64)
    edge_src = np.asarray(edge_src, dtype=np.int64)
    if len(edge_dst) != len(edge_src):
        raise SamplingError("edge arrays must have equal length")

    # Source list: destinations first (self-inclusion), then new sources.
    extra = np.setdiff1d(edge_src, dst_nodes, assume_unique=False)
    src_nodes = np.concatenate([dst_nodes, extra])

    # Global -> local translation, vectorized with searchsorted over a
    # stable sort of the id arrays.
    def localize(universe, queries, what):
        sorter = np.argsort(universe, kind="stable")
        spots = np.searchsorted(universe, queries, sorter=sorter)
        if len(queries) and (spots.max() >= len(universe)
                             or np.any(universe[sorter[spots]] != queries)):
            raise SamplingError(f"edge {what} not found in block vertices")
        return sorter[spots]

    dst_local = localize(dst_nodes, edge_dst, "destination")
    src_local = localize(src_nodes, edge_src, "source")

    if len(dst_local):
        order = np.lexsort((src_local, dst_local))
        dst_local, src_local = dst_local[order], src_local[order]
        keep = np.concatenate(([True], (dst_local[1:] != dst_local[:-1])
                               | (src_local[1:] != src_local[:-1])))
        dst_local, src_local = dst_local[keep], src_local[keep]

    counts = np.bincount(dst_local, minlength=len(dst_nodes))
    indptr = np.concatenate(([0], np.cumsum(counts))).astype(np.int64)
    return SampledBlock(dst_nodes=dst_nodes, src_nodes=src_nodes,
                        indptr=indptr, indices=src_local)
