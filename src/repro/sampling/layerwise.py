"""Layer-wise (importance) sampling, FastGCN-style.

Instead of expanding every vertex independently — which grows the
frontier exponentially with depth — layer-wise sampling draws one shared
pool of vertices per layer (with probability proportional to degree, the
usual importance proxy) and keeps only edges from the frontier into that
pool.  This caps the per-layer cost at ``layer_budget`` vertices but can
drop vertex dependencies, which the paper notes may hurt accuracy
(§6.2).
"""

from __future__ import annotations

import numpy as np

from ..errors import SamplingError
from .base import Sampler
from .block import SampledSubgraph, build_block

__all__ = ["LayerWiseSampler"]


class LayerWiseSampler(Sampler):
    """Sample a shared budgeted vertex pool per layer.

    Parameters
    ----------
    layer_budget:
        Maximum distinct source vertices added per layer.
    num_layers:
        GNN depth ``L``.
    """

    name = "layerwise"

    def __init__(self, layer_budget=512, num_layers=2):
        if layer_budget < 1:
            raise SamplingError(
                f"layer_budget must be >= 1, got {layer_budget}")
        super().__init__(num_layers=num_layers)
        self.layer_budget = int(layer_budget)

    def sample(self, graph, seeds, rng):
        seeds = np.unique(np.asarray(seeds, dtype=np.int64))
        if len(seeds) == 0:
            raise SamplingError("cannot sample an empty seed set")
        indptr, indices = graph.in_csr()
        blocks_outer_first = []
        frontier = seeds
        for _layer in range(self.num_layers):
            # Candidate pool: all in-neighbors of the frontier.
            starts = indptr[frontier]
            ends = indptr[frontier + 1]
            counts = ends - starts
            edge_dst = np.repeat(frontier, counts)
            gather = np.concatenate(
                [np.arange(s, e) for s, e in zip(starts, ends)]) if \
                counts.sum() else np.empty(0, dtype=np.int64)
            edge_src = indices[gather]
            pool = np.unique(edge_src)
            if len(pool) > self.layer_budget:
                # Importance-sample the pool proportional to in-degree.
                weight = (indptr[pool + 1] - indptr[pool]).astype(np.float64)
                weight += 1.0
                chosen = rng.choice(len(pool), size=self.layer_budget,
                                    replace=False, p=weight / weight.sum())
                pool = pool[np.sort(chosen)]
            keep = np.isin(edge_src, pool)
            block = build_block(frontier, edge_dst[keep], edge_src[keep])
            blocks_outer_first.append(block)
            frontier = block.src_nodes
        return SampledSubgraph(seeds=seeds,
                               blocks=list(reversed(blocks_outer_first)))

    def describe(self):
        return f"layerwise(budget={self.layer_budget})x{self.num_layers}"
