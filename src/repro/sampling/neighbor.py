"""Fanout-based vertex-wise neighbor sampling (GraphSAGE-style).

The dominant sampling method in Table 1: every frontier vertex draws a
fixed number of in-neighbors per layer.  The paper's default fanout is
``(25, 10)`` — 25 neighbors for the first (outermost) layer, 10 for the
second.
"""

from __future__ import annotations

import numpy as np

from ..errors import SamplingError
from .base import Sampler, expand_layers

__all__ = ["NeighborSampler", "DEFAULT_FANOUT"]

DEFAULT_FANOUT = (25, 10)


class NeighborSampler(Sampler):
    """Sample a fixed ``fanout[l]`` neighbors per vertex per layer.

    Parameters
    ----------
    fanout:
        Sequence of per-layer fanouts, outermost first, e.g. ``(25, 10)``
        for a 2-layer GNN.
    """

    name = "fanout"

    def __init__(self, fanout=DEFAULT_FANOUT):
        fanout = tuple(int(f) for f in fanout)
        if not fanout or any(f < 1 for f in fanout):
            raise SamplingError(f"fanout must be positive, got {fanout}")
        super().__init__(num_layers=len(fanout))
        self.fanout = fanout

    def sample(self, graph, seeds, rng):
        def counts(layer, frontier, degrees):
            return np.full(len(frontier), self.fanout[layer],
                           dtype=np.int64)

        return expand_layers(graph, seeds, counts, self.num_layers, rng)

    def describe(self):
        return f"fanout{self.fanout}"
