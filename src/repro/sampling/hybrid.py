"""Fanout–rate hybrid sampling — the paper's proposed method (§6.3.4).

The analysis in §6.3.3 shows a fixed fanout is wrong for skewed graphs:
low-degree vertices predict best with small fanouts (randomness +
complete neighborhoods) while high-degree vertices need more neighbors to
be representative.  The hybrid method therefore applies *fanout* sampling
to low-degree vertices and *rate* sampling to high-degree vertices:

    count(v) = fanout                   if degree(v) <= threshold
    count(v) = ceil(rate * degree(v))   otherwise

The paper reports this converges 1.74x faster than the best fixed fanout
(8, 8) at equal accuracy (Table 8).
"""

from __future__ import annotations

import numpy as np

from ..errors import SamplingError
from .base import Sampler, expand_layers

__all__ = ["HybridSampler"]


class HybridSampler(Sampler):
    """Fanout for low-degree vertices, rate for high-degree vertices.

    Parameters
    ----------
    fanout:
        Per-layer fanout applied below the degree threshold (outermost
        first), e.g. ``(8, 8)``.
    rate:
        Sampling rate applied above the threshold.
    degree_threshold:
        Degree at which a vertex switches from fanout to rate sampling.
    """

    name = "hybrid"

    def __init__(self, fanout=(8, 8), rate=0.3, degree_threshold=32):
        fanout = tuple(int(f) for f in fanout)
        if not fanout or any(f < 1 for f in fanout):
            raise SamplingError(f"fanout must be positive, got {fanout}")
        if not 0.0 < rate <= 1.0:
            raise SamplingError(f"rate must be in (0, 1], got {rate}")
        if degree_threshold < 1:
            raise SamplingError(
                f"degree_threshold must be >= 1, got {degree_threshold}")
        super().__init__(num_layers=len(fanout))
        self.fanout = fanout
        self.rate = float(rate)
        self.degree_threshold = int(degree_threshold)

    def sample(self, graph, seeds, rng):
        def counts(layer, frontier, degrees):
            low = degrees <= self.degree_threshold
            out = np.ceil(self.rate * degrees).astype(np.int64)
            out[low] = self.fanout[layer]
            return np.maximum(out, 1)

        return expand_layers(graph, seeds, counts, self.num_layers, rng)

    def describe(self):
        return (f"hybrid(fanout={self.fanout}, rate={self.rate}, "
                f"thresh={self.degree_threshold})")
