"""The high-level trainer: one call runs the full simulated distributed
training pipeline of Figure 1.

``Trainer(dataset, config).run()``:

1. partitions the graph (data partitioning step, timed);
2. builds per-worker GPU caches if configured;
3. trains with the synchronous engine epoch by epoch (batch
   preparation, data transferring, NN computation — all metered);
4. evaluates validation accuracy each epoch (real numpy inference) and
   finally reports test accuracy at the best-validation checkpoint.

Robustness (``repro.faults``): ``run`` optionally takes a
:class:`~repro.faults.checkpoint.Checkpointer` (epoch-boundary
checkpoints: model + optimizer + rng state + curve, atomic and
checksummed) and a fault plan/injector replayed by the engine.  A run
killed by an injected ``halt`` (or a real crash) and restarted with
``resume=True`` continues from the last checkpoint and reproduces the
uninterrupted run's loss/accuracy curve bit-identically: mini-batch
formation consumes the restored rng exactly where the original left
off, and evaluation rngs are reseeded per epoch anyway.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..dist.engine import SyncEngine
from ..errors import CheckpointError, TrainingError
from ..nn import Adam, build_model
from ..perf import FLAGS, PERF, EvalSubgraphCache, wall_clock
from .config import TrainingConfig, make_cache
from .convergence import TrainingCurve

__all__ = ["Trainer", "TrainingResult", "evaluate_model"]


def evaluate_model(model, dataset, vertex_ids, sampler, rng,
                   batch_size=1024, cache=None, cache_token=0):
    """Sample-based inference accuracy over ``vertex_ids``.

    With ``cache`` (an :class:`~repro.perf.EvalSubgraphCache`), the
    sampled mini-batch subgraphs are stored under a key derived from
    the sampler, vertex set, batch size, and ``cache_token`` (the
    caller's rng seed) and replayed on later identical calls — valid
    precisely because such callers reseed ``rng`` identically, so
    re-sampling would reproduce byte-identical subgraphs anyway.
    """
    vertex_ids = np.asarray(vertex_ids, dtype=np.int64)
    if len(vertex_ids) == 0:
        return 0.0
    was_training = model.training
    model.eval()
    try:
        prepared = None
        if cache is not None:
            key = cache.make_key(sampler, vertex_ids, batch_size,
                                 cache_token)
            prepared = cache.get(key)
        replay = prepared is not None
        if not replay:
            prepared = []
            with PERF.timed("eval_sampling"):
                for start in range(0, len(vertex_ids), batch_size):
                    batch = vertex_ids[start:start + batch_size]
                    prepared.append(
                        sampler.sample(dataset.graph, batch, rng))
            if cache is not None:
                cache.put(key, prepared)

        correct = 0
        for subgraph in prepared:
            # Offline accuracy eval sits outside the transfer cost
            # model on purpose: nothing here is billed or benched.
            logits = model.forward(
                subgraph,
                dataset.features[subgraph.input_nodes])  # repro: noqa[ARC003]
            predictions = logits.data.argmax(axis=-1)
            correct += int((predictions
                            == dataset.labels[subgraph.seeds]).sum())
    finally:
        # Restore whatever mode the caller had the model in (the old
        # behaviour unconditionally flipped it into training mode).
        model.train() if was_training else model.eval()
    return correct / len(vertex_ids)


@dataclass
class TrainingResult:
    """Everything a benchmark needs from one training run."""

    curve: TrainingCurve
    test_accuracy: float
    partition_seconds: float
    partition_method: str
    epoch_stats: list = field(repr=False, default_factory=list)
    config: TrainingConfig = None
    # Measured (not simulated) hot-path profile of this run: wall
    # seconds and counters from ``repro.perf.PERF`` — block assembly,
    # aggregation-matrix builds, eval-subgraph cache hits/misses.
    perf: dict = field(repr=False, default=None)
    # The trained model at the best-validation checkpoint — what the
    # serving layer (``repro.serve``) answers queries against.
    model: object = field(repr=False, default=None)

    def __post_init__(self):
        # Same normalization as EpochStats.perf: downstream `.get()`
        # calls must never see None.
        if self.perf is None:
            self.perf = {}

    @property
    def best_val_accuracy(self):
        return self.curve.best_accuracy

    @property
    def total_train_seconds(self):
        """Total simulated training time (partitioning excluded, as in
        the paper's Figure 6 which reports them separately)."""
        return float(np.sum(self.curve.epoch_seconds))

    @property
    def mean_epoch_seconds(self):
        return self.curve.mean_epoch_seconds

    @property
    def total_wall_seconds(self):
        """Actually measured (not simulated) training wall time; Figure 6
        compares this against the measured partitioning time."""
        return float(np.sum(self.curve.wall_seconds))

    def partitioning_time_share(self):
        """Figure 6's quantity: partitioning time as a share of
        partitioning + training, both wall-clock measured."""
        total = self.partition_seconds + self.total_wall_seconds
        return self.partition_seconds / total if total else 0.0

    def step_breakdown(self):
        """Average Figure 2-style step shares across epochs.

        Data partitioning is excluded, exactly as in the paper ("its
        runtime is ignorable" — a one-off preprocessing step); shares are
        over the simulated batch-preparation / data-transferring / NN
        times.
        """
        if not self.epoch_stats:
            raise TrainingError("run() has not been called")
        bp = sum(s.bp_seconds for s in self.epoch_stats)
        dt = sum(s.dt_seconds for s in self.epoch_stats)
        nn = sum(s.nn_seconds + s.allreduce_seconds
                 for s in self.epoch_stats)
        total = bp + dt + nn
        return {
            "batch_preparation": bp / total,
            "data_transferring": dt / total,
            "nn_computation": nn / total,
        }

    def involved_totals(self):
        """Total vertices/edges involved per epoch (Table 6's columns),
        averaged across epochs."""
        vertices = np.mean([s.involved_vertices for s in self.epoch_stats])
        edges = np.mean([s.involved_edges for s in self.epoch_stats])
        return {"vertices": float(vertices), "edges": float(edges)}


class Trainer:
    """Runs one full configuration on one dataset."""

    def __init__(self, dataset, config=None):
        self.dataset = dataset
        self.config = config or TrainingConfig()
        if dataset.num_vertices < self.config.num_workers:
            raise TrainingError("more workers than vertices")

    def _build_engine(self, injector=None, retry=None):
        config = self.config
        dataset = self.dataset

        partitioner = config.build_partitioner()
        partition = partitioner.partition(
            dataset.graph, config.num_workers, split=dataset.split,
            rng=config.rng(salt=1))

        sampler = config.build_sampler()
        if config.replication_budget > 0:
            from ..partition.replication import partition_aware_replication
            partition = partition_aware_replication(
                dataset, partition, sampler, config.replication_budget,
                rng=config.rng(salt=42))
        model = build_model(config.model, dataset.feature_dim,
                            dataset.num_classes,
                            num_layers=config.num_layers,
                            hidden_dim=config.hidden_dim,
                            rng=config.rng(salt=2),
                            dropout=config.dropout)
        optimizer = Adam(model.parameters(), lr=config.learning_rate)

        caches = []
        train_ids = dataset.train_ids
        owners = partition.assignment[train_ids]
        for part in range(config.num_workers):
            caches.append(make_cache(
                config.cache_policy, dataset, config.cache_ratio,
                sampler=sampler, seeds=train_ids[owners == part],
                rng=config.rng(salt=3 + part),
                warm_ratio=config.cache_warm_ratio))

        engine = SyncEngine(
            dataset, partition, sampler, model, optimizer,
            spec=config.spec, transfer=config.build_transfer(),
            caches=caches, pipeline_mode=config.pipeline,
            hidden_dim=config.hidden_dim,
            num_classes=dataset.num_classes,
            injector=injector, retry=retry,
            crash_policy=config.crash_policy)
        return engine, partition, sampler, model, optimizer

    def _memory_batch_cap(self, sampler):
        """Largest batch the simulated GPU fits (None = no cap).

        Applies the paper's "batch prepared according to the GPU's
        available memory" rule for fanout samplers, whose expansion the
        memory model can predict.
        """
        from ..sampling import NeighborSampler
        from ..transfer.memory import max_batch_size
        if not self.config.enforce_gpu_memory:
            return None
        if not isinstance(sampler, NeighborSampler):
            return None
        cap = max_batch_size(
            self.config.spec, sampler.fanout, self.dataset.feature_dim,
            hidden_dim=self.config.hidden_dim,
            num_classes=self.dataset.num_classes,
            num_vertices=self.dataset.num_vertices)
        if cap < 1:
            raise TrainingError(
                "even a single-seed batch exceeds the simulated GPU "
                "memory; lower the fanout or feature width")
        return cap

    def _fingerprint(self):
        """Identity of (dataset, architecture, seed) a checkpoint must
        match to be resumable under this trainer."""
        config = self.config
        model = config.model if isinstance(config.model, str) \
            else type(config.model).__name__
        return {
            "dataset": self.dataset.name,
            "num_vertices": int(self.dataset.num_vertices),
            "model": model,
            "hidden_dim": config.hidden_dim,
            "num_layers": config.num_layers,
            "num_workers": config.num_workers,
            "seed": config.seed,
        }

    @staticmethod
    def _build_injector(faults):
        """Normalize ``faults`` (None / plan / spec string / injector)
        into a :class:`~repro.faults.plan.FaultInjector` or None."""
        if faults is None:
            return None
        from ..faults import FaultInjector, FaultPlan
        if isinstance(faults, FaultInjector):
            return faults
        if isinstance(faults, (FaultPlan, str)):
            return FaultInjector(faults)
        raise TrainingError(
            f"faults must be a FaultPlan, spec string, or "
            f"FaultInjector, got {type(faults).__name__}")

    def run(self, checkpointer=None, resume=False, faults=None,
            retry=None):
        """Train to completion and return a :class:`TrainingResult`.

        Parameters
        ----------
        checkpointer:
            Optional :class:`~repro.faults.checkpoint.Checkpointer`;
            training state is saved after every ``checkpointer.every``-th
            epoch (and the final one).
        resume:
            Continue from ``checkpointer``'s file when it exists (a
            missing file starts from scratch; a corrupt or mismatched
            one raises :class:`~repro.errors.CheckpointError`).
        faults:
            Optional fault schedule replayed by the engine: a
            :class:`~repro.faults.plan.FaultPlan`, a spec string (see
            :meth:`FaultPlan.parse`), or a prebuilt injector.
        retry:
            :class:`~repro.faults.retry.RetryPolicy` for flaky remote
            fetches (engine default applies when faults are given).
        """
        config = self.config
        injector = self._build_injector(faults)
        engine, partition, sampler, model, optimizer = \
            self._build_engine(injector=injector, retry=retry)
        schedule = config.build_schedule()
        batch_cap = self._memory_batch_cap(sampler)
        rng = config.rng(salt=100)
        eval_rng_seed = config.seed * 7_777_777 + 13
        # The eval rng is reseeded identically every epoch, so the
        # sampled validation subgraphs are byte-identical across epochs
        # — prepare them once and replay (keyed on sampler/batch
        # size/seed, so any change invalidates).
        eval_cache = EvalSubgraphCache() if FLAGS.eval_subgraph_cache \
            else None
        perf_before = PERF.snapshot()

        curve = TrainingCurve()
        epoch_stats = []
        best_val = -1.0
        best_state = None
        stale = 0
        start_epoch = 0

        if resume and checkpointer is not None and checkpointer.exists():
            # load_latest falls back to the previous valid checkpoint
            # when the newest save was interrupted mid-commit.
            state = checkpointer.load_latest()
            if state.get("fingerprint") != self._fingerprint():
                raise CheckpointError(
                    f"checkpoint at {checkpointer.path} belongs to a "
                    f"different configuration "
                    f"({state.get('fingerprint')}); refusing to resume")
            model.load_state_dict(state["model"])
            model.load_rng_state(state["model_rng"])
            optimizer.load_state_dict(state["optimizer"])
            rng.bit_generator.state = state["rng_state"]
            schedule = state["schedule"]
            curve = state["curve"]
            epoch_stats = state["epoch_stats"]
            best_val = state["best_val"]
            best_state = state["best_state"]
            stale = state["stale"]
            start_epoch = state["epoch"]
            if injector is not None:
                # The halt that killed the previous incarnation already
                # happened; it must not re-fire on the replayed epochs
                # (which may start before the halt epoch when the
                # checkpoint cadence is sparse).
                injector.disarm_for_resume(start_epoch)

        for epoch in range(start_epoch, config.epochs):
            batch_size = schedule.size(epoch)
            if batch_cap is not None:
                batch_size = min(batch_size, batch_cap)
            wall_start = wall_clock()
            stats = engine.run_epoch(batch_size, rng, epoch=epoch)
            wall = wall_clock() - wall_start
            epoch_stats.append(stats)

            if epoch % config.eval_every == 0 or epoch == config.epochs - 1:
                val_acc = evaluate_model(
                    model, self.dataset, self.dataset.val_ids, sampler,
                    np.random.default_rng(eval_rng_seed),
                    cache=eval_cache, cache_token=eval_rng_seed)
            else:
                val_acc = curve.val_accuracies[-1] if curve.num_epochs \
                    else 0.0
            schedule.observe(epoch, val_acc)
            curve.record(val_acc, stats.loss, stats.epoch_seconds, wall,
                         batch_size)

            if val_acc > best_val:
                best_val = val_acc
                best_state = model.state_dict()
                stale = 0
                stopping = False
            else:
                stale += 1
                stopping = (config.early_stop_patience
                            and stale >= config.early_stop_patience)

            if checkpointer is not None and (
                    checkpointer.due(epoch) or stopping
                    or epoch == config.epochs - 1):
                checkpointer.save({
                    "fingerprint": self._fingerprint(),
                    "epoch": epoch + 1,
                    "model": model.state_dict(),
                    "model_rng": model.rng_state(),
                    "optimizer": optimizer.state_dict(),
                    "rng_state": rng.bit_generator.state,
                    "schedule": schedule,
                    "curve": curve,
                    "epoch_stats": epoch_stats,
                    "best_val": best_val,
                    "best_state": best_state,
                    "stale": stale,
                })
            if stopping:
                break

        if best_state is not None:
            model.load_state_dict(best_state)
        test_acc = evaluate_model(
            model, self.dataset, self.dataset.test_ids, sampler,
            np.random.default_rng(eval_rng_seed + 1),
            cache=eval_cache, cache_token=eval_rng_seed + 1)
        return TrainingResult(
            curve=curve, test_accuracy=test_acc,
            partition_seconds=partition.seconds,
            partition_method=partition.method,
            epoch_stats=epoch_stats, config=config,
            perf=PERF.delta(perf_before), model=model)
