"""The high-level trainer: one call runs the full simulated distributed
training pipeline of Figure 1.

``Trainer(dataset, config).run()``:

1. partitions the graph (data partitioning step, timed);
2. builds per-worker GPU caches if configured;
3. trains with the synchronous engine epoch by epoch (batch
   preparation, data transferring, NN computation — all metered);
4. evaluates validation accuracy each epoch (real numpy inference) and
   finally reports test accuracy at the best-validation checkpoint.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..dist.engine import SyncEngine
from ..errors import TrainingError
from ..nn import Adam, build_model
from .config import TrainingConfig, make_cache
from .convergence import TrainingCurve

__all__ = ["Trainer", "TrainingResult", "evaluate_model"]


def evaluate_model(model, dataset, vertex_ids, sampler, rng,
                   batch_size=1024):
    """Sample-based inference accuracy over ``vertex_ids``."""
    vertex_ids = np.asarray(vertex_ids, dtype=np.int64)
    if len(vertex_ids) == 0:
        return 0.0
    model.eval()
    correct = 0
    for start in range(0, len(vertex_ids), batch_size):
        batch = vertex_ids[start:start + batch_size]
        subgraph = sampler.sample(dataset.graph, batch, rng)
        logits = model.forward(subgraph,
                               dataset.features[subgraph.input_nodes])
        predictions = logits.data.argmax(axis=-1)
        correct += int((predictions
                        == dataset.labels[subgraph.seeds]).sum())
    model.train()
    return correct / len(vertex_ids)


@dataclass
class TrainingResult:
    """Everything a benchmark needs from one training run."""

    curve: TrainingCurve
    test_accuracy: float
    partition_seconds: float
    partition_method: str
    epoch_stats: list = field(repr=False, default_factory=list)
    config: TrainingConfig = None

    @property
    def best_val_accuracy(self):
        return self.curve.best_accuracy

    @property
    def total_train_seconds(self):
        """Total simulated training time (partitioning excluded, as in
        the paper's Figure 6 which reports them separately)."""
        return float(np.sum(self.curve.epoch_seconds))

    @property
    def mean_epoch_seconds(self):
        return self.curve.mean_epoch_seconds

    @property
    def total_wall_seconds(self):
        """Actually measured (not simulated) training wall time; Figure 6
        compares this against the measured partitioning time."""
        return float(np.sum(self.curve.wall_seconds))

    def partitioning_time_share(self):
        """Figure 6's quantity: partitioning time as a share of
        partitioning + training, both wall-clock measured."""
        total = self.partition_seconds + self.total_wall_seconds
        return self.partition_seconds / total if total else 0.0

    def step_breakdown(self):
        """Average Figure 2-style step shares across epochs.

        Data partitioning is excluded, exactly as in the paper ("its
        runtime is ignorable" — a one-off preprocessing step); shares are
        over the simulated batch-preparation / data-transferring / NN
        times.
        """
        if not self.epoch_stats:
            raise TrainingError("run() has not been called")
        bp = sum(s.bp_seconds for s in self.epoch_stats)
        dt = sum(s.dt_seconds for s in self.epoch_stats)
        nn = sum(s.nn_seconds + s.allreduce_seconds
                 for s in self.epoch_stats)
        total = bp + dt + nn
        return {
            "batch_preparation": bp / total,
            "data_transferring": dt / total,
            "nn_computation": nn / total,
        }

    def involved_totals(self):
        """Total vertices/edges involved per epoch (Table 6's columns),
        averaged across epochs."""
        vertices = np.mean([s.involved_vertices for s in self.epoch_stats])
        edges = np.mean([s.involved_edges for s in self.epoch_stats])
        return {"vertices": float(vertices), "edges": float(edges)}


class Trainer:
    """Runs one full configuration on one dataset."""

    def __init__(self, dataset, config=None):
        self.dataset = dataset
        self.config = config or TrainingConfig()
        if dataset.num_vertices < self.config.num_workers:
            raise TrainingError("more workers than vertices")

    def _build_engine(self):
        config = self.config
        dataset = self.dataset

        partitioner = config.build_partitioner()
        partition = partitioner.partition(
            dataset.graph, config.num_workers, split=dataset.split,
            rng=config.rng(salt=1))

        sampler = config.build_sampler()
        if config.replication_budget > 0:
            from ..partition.replication import partition_aware_replication
            partition = partition_aware_replication(
                dataset, partition, sampler, config.replication_budget,
                rng=config.rng(salt=42))
        model = build_model(config.model, dataset.feature_dim,
                            dataset.num_classes,
                            num_layers=config.num_layers,
                            hidden_dim=config.hidden_dim,
                            rng=config.rng(salt=2),
                            dropout=config.dropout)
        optimizer = Adam(model.parameters(), lr=config.learning_rate)

        caches = []
        train_ids = dataset.train_ids
        owners = partition.assignment[train_ids]
        for part in range(config.num_workers):
            caches.append(make_cache(
                config.cache_policy, dataset, config.cache_ratio,
                sampler=sampler, seeds=train_ids[owners == part],
                rng=config.rng(salt=3 + part)))

        engine = SyncEngine(
            dataset, partition, sampler, model, optimizer,
            spec=config.spec, transfer=config.build_transfer(),
            caches=caches, pipeline_mode=config.pipeline,
            hidden_dim=config.hidden_dim,
            num_classes=dataset.num_classes)
        return engine, partition, sampler, model

    def _memory_batch_cap(self, sampler):
        """Largest batch the simulated GPU fits (None = no cap).

        Applies the paper's "batch prepared according to the GPU's
        available memory" rule for fanout samplers, whose expansion the
        memory model can predict.
        """
        from ..sampling import NeighborSampler
        from ..transfer.memory import max_batch_size
        if not self.config.enforce_gpu_memory:
            return None
        if not isinstance(sampler, NeighborSampler):
            return None
        cap = max_batch_size(
            self.config.spec, sampler.fanout, self.dataset.feature_dim,
            hidden_dim=self.config.hidden_dim,
            num_classes=self.dataset.num_classes,
            num_vertices=self.dataset.num_vertices)
        if cap < 1:
            raise TrainingError(
                "even a single-seed batch exceeds the simulated GPU "
                "memory; lower the fanout or feature width")
        return cap

    def run(self):
        """Train to completion and return a :class:`TrainingResult`."""
        config = self.config
        engine, partition, sampler, model = self._build_engine()
        schedule = config.build_schedule()
        batch_cap = self._memory_batch_cap(sampler)
        rng = config.rng(salt=100)
        eval_rng_seed = config.seed * 7_777_777 + 13

        curve = TrainingCurve()
        epoch_stats = []
        best_val = -1.0
        best_state = None
        stale = 0
        for epoch in range(config.epochs):
            batch_size = schedule.size(epoch)
            if batch_cap is not None:
                batch_size = min(batch_size, batch_cap)
            wall_start = time.perf_counter()
            stats = engine.run_epoch(batch_size, rng)
            wall = time.perf_counter() - wall_start
            epoch_stats.append(stats)

            if epoch % config.eval_every == 0 or epoch == config.epochs - 1:
                val_acc = evaluate_model(
                    model, self.dataset, self.dataset.val_ids, sampler,
                    np.random.default_rng(eval_rng_seed))
            else:
                val_acc = curve.val_accuracies[-1] if curve.num_epochs \
                    else 0.0
            schedule.observe(epoch, val_acc)
            curve.record(val_acc, stats.loss, stats.epoch_seconds, wall,
                         batch_size)

            if val_acc > best_val:
                best_val = val_acc
                best_state = model.state_dict()
                stale = 0
            else:
                stale += 1
                if (config.early_stop_patience
                        and stale >= config.early_stop_patience):
                    break

        if best_state is not None:
            model.load_state_dict(best_state)
        test_acc = evaluate_model(
            model, self.dataset, self.dataset.test_ids, sampler,
            np.random.default_rng(eval_rng_seed + 1))
        return TrainingResult(
            curve=curve, test_accuracy=test_acc,
            partition_seconds=partition.seconds,
            partition_method=partition.method,
            epoch_stats=epoch_stats, config=config)
