"""Experiment sweep helpers used by the benchmark suite."""

from __future__ import annotations

import numpy as np

from ..errors import TrainingError
from .trainer import Trainer

__all__ = ["sweep", "compare_partitioners", "run_config", "repeat",
           "RepeatedResult"]


def run_config(dataset, config):
    """Train one configuration; returns its TrainingResult."""
    return Trainer(dataset, config).run()


def sweep(dataset, base_config, field_name, values):
    """Run ``base_config`` once per value of ``field_name``.

    Returns ``{value: TrainingResult}`` in input order.
    """
    if not values:
        raise TrainingError("sweep needs at least one value")
    results = {}
    for value in values:
        config = base_config.with_overrides(**{field_name: value})
        results[value] = Trainer(dataset, config).run()
    return results


def compare_partitioners(dataset, base_config,
                         methods=("hash", "metis-v", "metis-ve",
                                  "metis-vet", "stream-v", "stream-b")):
    """§5.3's main sweep: one training run per partitioning method."""
    return sweep(dataset, base_config, "partitioner", list(methods))


class RepeatedResult:
    """Aggregate of one configuration run under several seeds.

    Small-graph experiments are noisy; repeated runs report mean ±
    standard deviation of the headline metrics instead of a single
    draw.
    """

    def __init__(self, results):
        if not results:
            raise TrainingError("no results to aggregate")
        self.results = list(results)

    def _stats(self, values):
        values = np.asarray(values, dtype=np.float64)
        return float(values.mean()), float(values.std())

    @property
    def best_val_accuracy(self):
        """(mean, std) of the best validation accuracy."""
        return self._stats([r.best_val_accuracy for r in self.results])

    @property
    def test_accuracy(self):
        return self._stats([r.test_accuracy for r in self.results])

    @property
    def mean_epoch_seconds(self):
        return self._stats([r.mean_epoch_seconds for r in self.results])

    def convergence_time(self, fraction=0.98):
        """(mean, std) over the runs that reached the target; also
        returns how many did as the third element."""
        times = [r.curve.convergence_time(fraction)
                 for r in self.results]
        reached = [t for t in times if t is not None]
        if not reached:
            return None, None, 0
        mean, std = self._stats(reached)
        return mean, std, len(reached)

    def summary(self):
        """Printable mean±std headline metrics."""
        acc_mean, acc_std = self.best_val_accuracy
        time_mean, time_std = self.mean_epoch_seconds
        return {
            "runs": len(self.results),
            "best_val_acc": f"{acc_mean:.3f} ± {acc_std:.3f}",
            "epoch_seconds": f"{time_mean:.5f} ± {time_std:.5f}",
        }


def repeat(dataset, config, seeds=(0, 1, 2)):
    """Run one configuration once per seed; returns a
    :class:`RepeatedResult`."""
    if not seeds:
        raise TrainingError("repeat needs at least one seed")
    results = []
    for seed in seeds:
        results.append(Trainer(dataset,
                               config.with_overrides(seed=seed)).run())
    return RepeatedResult(results)
