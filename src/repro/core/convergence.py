"""Training curves and convergence-speed measurement.

The paper's convergence plots (Figures 7, 9, 10, 11, 12) put *simulated
training time* on the x-axis and validation accuracy on the y-axis;
"convergence speed" is the time needed to first reach a target accuracy.
:class:`TrainingCurve` stores exactly those series and answers those
queries.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import TrainingError

__all__ = ["TrainingCurve", "time_to_accuracy"]


@dataclass
class TrainingCurve:
    """Per-epoch series of one training run."""

    val_accuracies: list = field(default_factory=list)
    losses: list = field(default_factory=list)
    epoch_seconds: list = field(default_factory=list)   # simulated
    wall_seconds: list = field(default_factory=list)    # actually measured
    batch_sizes: list = field(default_factory=list)

    def record(self, val_accuracy, loss, epoch_second, wall_second,
               batch_size):
        """Append one epoch's measurements."""
        self.val_accuracies.append(float(val_accuracy))
        self.losses.append(float(loss))
        self.epoch_seconds.append(float(epoch_second))
        self.wall_seconds.append(float(wall_second))
        self.batch_sizes.append(int(batch_size))

    @property
    def num_epochs(self):
        return len(self.val_accuracies)

    @property
    def cumulative_seconds(self):
        """Simulated time axis (cumulative epoch seconds)."""
        return np.cumsum(self.epoch_seconds)

    @property
    def best_accuracy(self):
        if not self.val_accuracies:
            raise TrainingError("empty curve")
        return max(self.val_accuracies)

    @property
    def best_epoch(self):
        if not self.val_accuracies:
            raise TrainingError("empty curve")
        return int(np.argmax(self.val_accuracies))

    @property
    def mean_epoch_seconds(self):
        if not self.epoch_seconds:
            return 0.0
        return float(np.mean(self.epoch_seconds))

    def time_to_accuracy(self, target):
        """Simulated seconds to first reach ``target`` validation
        accuracy, or None if never reached."""
        times = self.cumulative_seconds
        for accuracy, when in zip(self.val_accuracies, times):
            if accuracy >= target:
                return float(when)
        return None

    def convergence_time(self, fraction=0.98):
        """Simulated seconds to first reach ``fraction`` of the curve's
        best accuracy — the paper's convergence-speed metric."""
        return self.time_to_accuracy(fraction * self.best_accuracy)

    def series(self):
        """(time, accuracy) pairs for plotting/printing."""
        return list(zip(self.cumulative_seconds.tolist(),
                        self.val_accuracies))


def time_to_accuracy(curve, target):
    """Module-level convenience mirroring
    :meth:`TrainingCurve.time_to_accuracy`."""
    return curve.time_to_accuracy(target)
