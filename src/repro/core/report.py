"""Plain-text table and series rendering for benchmark output.

Benchmarks print the same rows/series the paper's tables and figures
report; these helpers keep that output aligned and consistent.
"""

from __future__ import annotations

__all__ = ["format_table", "format_series", "format_bar"]


def _cell(value):
    if value is None:
        return "N/A"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    if isinstance(value, (list, tuple)):
        return ", ".join(str(v) for v in value)
    return str(value)


def format_table(rows, columns=None, title=None):
    """Render dict-rows as an aligned ASCII table."""
    if not rows:
        return f"{title}\n(empty)" if title else "(empty)"
    columns = columns or list(rows[0].keys())
    cells = [[_cell(row.get(col)) for col in columns] for row in rows]
    widths = [max(len(str(col)), *(len(line[i]) for line in cells))
              for i, col in enumerate(columns)]
    header = " | ".join(str(col).ljust(w)
                        for col, w in zip(columns, widths))
    rule = "-+-".join("-" * w for w in widths)
    body = "\n".join(" | ".join(cell.ljust(w)
                                for cell, w in zip(line, widths))
                     for line in cells)
    out = f"{header}\n{rule}\n{body}"
    if title:
        out = f"{title}\n{'=' * len(title)}\n{out}"
    return out


def format_series(points, label="series", x_name="x", y_name="y"):
    """Render (x, y) pairs as one labelled line per point."""
    lines = [f"[{label}]"]
    for x, y in points:
        lines.append(f"  {x_name}={_cell(float(x)):>10s}  "
                     f"{y_name}={_cell(float(y))}")
    return "\n".join(lines)


def format_bar(values, label="", width=40):
    """Render a dict of name -> value as a text bar chart."""
    if not values:
        return "(empty)"
    peak = max(abs(v) for v in values.values()) or 1.0
    name_width = max(len(str(k)) for k in values)
    lines = [label] if label else []
    for name, value in values.items():
        bar = "#" * int(round(width * abs(value) / peak))
        lines.append(f"  {str(name).ljust(name_width)} "
                     f"{_cell(float(value)):>10s} |{bar}")
    return "\n".join(lines)
