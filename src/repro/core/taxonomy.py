"""Machine-readable taxonomy of GNN training systems (Tables 1, 3, 5).

The paper's Table 1 classifies 24 representative systems along the four
data-management axes; Table 3 summarizes the six evaluated partitioning
methods and which of the four partitioning goals (G1-G4, §5.1) each
meets; Table 5 records the default batch-size/fanout settings several
systems ship with.  Encoding them as data makes the taxonomy queryable
and testable, and the table benchmarks simply print these rows.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["SystemEntry", "SYSTEMS", "table1_rows", "table3_rows",
           "table5_rows", "systems_by_platform", "systems_with_cache",
           "PARTITIONING_GOALS"]


@dataclass(frozen=True)
class SystemEntry:
    """One row of Table 1."""

    year: int
    name: str
    platform: str          # CPU-cluster / Multi-GPU / GPU-cluster / ...
    partition: str         # Hash / Metis / Metis-extend / Streaming / N/A
    train_method: str      # Mini-batch / Full-batch
    sample: bool
    sample_method: str     # Fanout-based / Ratio-based / both / N/A
    transfer_method: str   # Extract-Load / GPU direct access / N/A
    pipeline: bool
    cache: bool


SYSTEMS = [
    SystemEntry(2019, "DGL", "Multi-GPU", "N/A", "Mini-batch", True,
                "Fanout-based", "Extract-Load", True, False),
    SystemEntry(2019, "PyG", "Multi-GPU", "N/A", "Mini-batch", True,
                "Fanout-based", "Extract-Load", False, False),
    SystemEntry(2019, "AliGraph", "CPU-cluster", "Hash/Metis/Streaming",
                "Mini-batch", True, "Fanout-based/Ratio-based", "N/A",
                False, False),
    SystemEntry(2019, "NeuGraph", "Multi-GPU", "Hash", "Full-batch",
                False, "N/A", "Extract-Load", False, False),
    SystemEntry(2020, "AGL", "CPU-cluster", "Hash", "Mini-batch", True,
                "Fanout-based", "N/A", False, False),
    SystemEntry(2020, "DistDGL", "CPU-cluster", "Metis-extend",
                "Mini-batch", True, "Fanout-based/Ratio-based", "N/A",
                True, False),
    SystemEntry(2020, "ROC", "GPU-cluster", "Hash", "Full-batch", False,
                "N/A", "Extract-Load", False, False),
    SystemEntry(2020, "PaGraph", "Multi-GPU", "Streaming", "Mini-batch",
                True, "Fanout-based", "Extract-Load", False, True),
    SystemEntry(2021, "P3", "GPU-cluster", "Hash", "Mini-batch", True,
                "Fanout-based", "Extract-Load", False, False),
    SystemEntry(2021, "DistGNN", "CPU-cluster", "Hash", "Full-batch",
                False, "N/A", "N/A", False, False),
    SystemEntry(2021, "DGCL", "GPU-cluster", "Hash", "Full-batch", False,
                "N/A", "Extract-Load", False, False),
    SystemEntry(2021, "Dorylus", "Serverless", "Hash", "Full-batch",
                False, "N/A", "N/A", True, False),
    SystemEntry(2021, "Pytorch-direct", "Multi-GPU", "N/A", "Mini-batch",
                True, "Fanout-based", "GPU direct access", True, False),
    SystemEntry(2022, "GNNLab", "Multi-GPU", "N/A", "Mini-batch", True,
                "Fanout-based", "Extract-Load", True, True),
    SystemEntry(2022, "ByteGNN", "CPU-cluster", "Streaming", "Mini-batch",
                True, "Fanout-based", "N/A", True, False),
    SystemEntry(2022, "BNS-GCN", "GPU-cluster", "Metis", "Full-batch",
                True, "Ratio-based", "Extract-Load", False, False),
    SystemEntry(2022, "DistDGLv2", "GPU-cluster", "Metis-extend",
                "Mini-batch", True, "Fanout-based", "Extract-Load", True,
                False),
    SystemEntry(2022, "NeutronStar", "GPU-cluster", "Hash", "Full-batch",
                False, "N/A", "Extract-Load", False, False),
    SystemEntry(2022, "Sancus", "GPU-cluster", "Hash", "Full-batch",
                False, "N/A", "Extract-Load", False, True),
    SystemEntry(2022, "SALIENT", "Multi-GPU", "N/A", "Mini-batch", True,
                "Fanout-based", "GPU direct access", True, False),
    SystemEntry(2023, "MariusGNN", "GPU-only", "Hash", "Mini-batch",
                True, "Fanout-based", "Extract-Load", True, False),
    SystemEntry(2023, "Legion", "Multi-GPU", "Metis/Hash", "Mini-batch",
                True, "Fanout-based", "Extract-Load", True, True),
    SystemEntry(2023, "SALIENT++", "GPU-cluster", "Metis-extend",
                "Mini-batch", True, "Fanout-based", "GPU direct access",
                True, True),
    SystemEntry(2023, "BGL", "Multi-GPU", "Streaming", "Mini-batch",
                True, "Fanout-based", "Extract-Load", True, True),
]

#: §5.1's four goals of GNN graph partitioning.
PARTITIONING_GOALS = {
    "G1": "minimize communication",
    "G2": "balance computational load",
    "G3": "minimize total computational load",
    "G4": "balance communication load",
}


def table1_rows():
    """Table 1 as a list of dicts (one per system)."""
    return [{
        "year": s.year, "system": s.name, "platform": s.platform,
        "partition": s.partition, "train": s.train_method,
        "sample": "yes" if s.sample else "no",
        "sample_method": s.sample_method, "transfer": s.transfer_method,
        "pipeline": "yes" if s.pipeline else "no",
        "cache": "yes" if s.cache else "no",
    } for s in SYSTEMS]


def table3_rows():
    """Table 3: the six evaluated partitioning methods, their strategy,
    representative system, and which goals they meet."""
    return [
        {"method": "Hash",
         "strategy": "randomly assign vertices or edges",
         "system": "P3", "goals": ["G2", "G4"]},
        {"method": "Metis-V",
         "strategy": "Metis + training-vertex balance constraint",
         "system": "(study)", "goals": ["G1", "G2", "G3"]},
        {"method": "Metis-VE",
         "strategy": "Metis + training-vertex and degree constraints",
         "system": "DistDGL", "goals": ["G1", "G2", "G3", "G4"]},
        {"method": "Metis-VET",
         "strategy": "Metis + train/val/test and degree constraints",
         "system": "SALIENT++", "goals": ["G1", "G2", "G3", "G4"]},
        {"method": "Stream-V",
         "strategy": "stream vertices to max-edge partition, cache L-hop",
         "system": "PaGraph", "goals": ["G1", "G2"]},
        {"method": "Stream-B",
         "strategy": "stream BFS blocks to max-edge partition",
         "system": "ByteGNN", "goals": ["G1", "G2"]},
    ]


def table5_rows():
    """Table 5: default batch size and sampling parameters of systems."""
    return [
        {"system": "P3", "batch_size": 1000, "fanout": "(25, 10)",
         "sampling_rate": None},
        {"system": "DistDGL", "batch_size": 2000,
         "fanout": "(25, 10) / (15, 10, 5)", "sampling_rate": None},
        {"system": "PaGraph", "batch_size": 6000, "fanout": "(2, 2)",
         "sampling_rate": None},
        {"system": "GNNLab", "batch_size": 8000,
         "fanout": "(10, 25) / (15, 10, 5)", "sampling_rate": None},
        {"system": "ByteGNN", "batch_size": 512, "fanout": "(10, 5, 3)",
         "sampling_rate": None},
        {"system": "BNS-GCN", "batch_size": "full", "fanout": None,
         "sampling_rate": 0.1},
        {"system": "SALIENT++", "batch_size": 1024,
         "fanout": "(25, 15) / (15, 10, 5)", "sampling_rate": None},
    ]


def systems_by_platform(platform):
    """Systems deployed on the given platform."""
    return [s for s in SYSTEMS if platform.lower() in s.platform.lower()]


def systems_with_cache():
    """Systems that cache vertex features in GPU memory."""
    return [s for s in SYSTEMS if s.cache]
