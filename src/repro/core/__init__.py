"""Core: training configuration, trainer, convergence, taxonomy,
reporting."""

from .adaptive import adaptive_batch_training, compare_adaptive_to_fixed
from .advisor import AdviceReport, Recommendation, advise
from .artifacts import (compare_records, load_record, result_to_record,
                        save_result)
from .config import (PARTITIONER_NAMES, TrainingConfig,
                     config_for_platform, make_cache, make_partitioner,
                     make_sampler)
from .convergence import TrainingCurve, time_to_accuracy
from .experiment import (RepeatedResult, compare_partitioners, repeat,
                         run_config, sweep)
from .report import format_bar, format_series, format_table
from .taxonomy import (PARTITIONING_GOALS, SYSTEMS, SystemEntry,
                       systems_by_platform, systems_with_cache,
                       table1_rows, table3_rows, table5_rows)
from .trainer import Trainer, TrainingResult, evaluate_model

__all__ = [
    "TrainingConfig", "make_partitioner", "make_sampler", "make_cache",
    "config_for_platform", "PARTITIONER_NAMES",
    "Trainer", "TrainingResult", "evaluate_model",
    "TrainingCurve", "time_to_accuracy",
    "adaptive_batch_training", "compare_adaptive_to_fixed",
    "sweep", "compare_partitioners", "run_config", "repeat",
    "RepeatedResult",
    "SystemEntry", "SYSTEMS", "PARTITIONING_GOALS", "table1_rows",
    "table3_rows", "table5_rows", "systems_by_platform",
    "systems_with_cache",
    "format_table", "format_series", "format_bar",
    "advise", "AdviceReport", "Recommendation",
    "result_to_record", "save_result", "load_record", "compare_records",
]
