"""Training configuration and component factories.

:class:`TrainingConfig` is the single declarative knob panel for the
whole evaluation: it names the partitioner, sampler, transfer method,
cache policy, pipeline mode, and optimization hyper-parameters, mirroring
the paper's experimental setup (§4: GCN/GraphSAGE, hidden dim 128,
default fanout (25, 10), 4 machines).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from ..batching.schedule import BatchSizeSchedule, FixedBatchSize
from ..errors import TrainingError
from ..partition import (HashPartitioner, MetisPartitioner,
                         StreamBPartitioner, StreamVPartitioner)
from ..sampling import (HybridSampler, LayerWiseSampler, NeighborSampler,
                        RateSampler, Sampler, SubgraphSampler)
from ..transfer import (DEFAULT_SPEC, DegreeCache, HardwareSpec, LRUCache,
                        PreSampleCache, RandomCache, TransferMethod,
                        make_tiered_cache, make_transfer)

__all__ = ["TrainingConfig", "make_partitioner", "make_sampler",
           "make_cache", "config_for_platform", "PARTITIONER_NAMES"]

PARTITIONER_NAMES = ("hash", "hash-edge", "metis-v", "metis-ve",
                     "metis-vet", "stream-v", "stream-b")


def make_partitioner(name, **kwargs):
    """Partitioner factory by the names used throughout the paper."""
    key = name.lower()
    if key == "hash":
        return HashPartitioner(by="vertex", **kwargs)
    if key == "hash-edge":
        return HashPartitioner(by="edge", **kwargs)
    if key.startswith("metis-"):
        return MetisPartitioner(variant=key.split("-", 1)[1], **kwargs)
    if key == "stream-v":
        return StreamVPartitioner(**kwargs)
    if key == "stream-b":
        return StreamBPartitioner(**kwargs)
    raise TrainingError(
        f"unknown partitioner {name!r}; known: {PARTITIONER_NAMES}")


def make_sampler(name, fanout=(25, 10), rate=0.1, num_layers=2, **kwargs):
    """Sampler factory: fanout / rate / hybrid / layerwise / subgraph."""
    key = name.lower()
    if key == "fanout":
        return NeighborSampler(fanout)
    if key == "rate":
        return RateSampler(rate, num_layers=num_layers, **kwargs)
    if key == "hybrid":
        return HybridSampler(fanout=fanout, rate=rate, **kwargs)
    if key == "layerwise":
        return LayerWiseSampler(num_layers=num_layers, **kwargs)
    if key == "subgraph":
        return SubgraphSampler(num_layers=num_layers, **kwargs)
    raise TrainingError(f"unknown sampler {name!r}")


def make_cache(policy, dataset, ratio, sampler=None, seeds=None, rng=None,
               warm_ratio=0.0):
    """Feature cache factory for one worker.

    ``policy`` is ``None`` (no cache), "degree", "presample", "random",
    "lru", or "lfu"; pre-sampling needs the worker's sampler and seed
    set.  With ``warm_ratio == 0`` a flat single-tier GPU cache is
    built (features host-resident — the paper's §7.3.3 setting).  With
    ``warm_ratio > 0`` the worker gets a
    :class:`~repro.transfer.tiered.TieredCache` — ``ratio`` of the
    vertices GPU-hot, ``warm_ratio`` pinned-host-warm, the rest
    disk-cold — and the transfer methods bill misses tier by tier.
    "lfu" has no flat equivalent and always builds a tiered cache.
    """
    if policy is None or (ratio <= 0 and warm_ratio <= 0):
        return None
    key = policy.lower()
    if warm_ratio > 0 or key == "lfu":
        if key == "random":
            raise TrainingError(
                "random is a flat-cache ablation policy; tiered caches "
                "support lru, lfu, degree, and presample")
        return make_tiered_cache(key, dataset.graph, ratio, warm_ratio,
                                 sampler=sampler, seeds=seeds, rng=rng)
    if key == "degree":
        return DegreeCache(dataset.graph, ratio)
    if key == "random":
        return RandomCache(dataset.graph, ratio, rng)
    if key == "lru":
        return LRUCache(dataset.graph, ratio)
    if key == "presample":
        if sampler is None or seeds is None:
            raise TrainingError("presample cache needs sampler and seeds")
        return PreSampleCache(dataset.graph, sampler, seeds, ratio, rng=rng)
    raise TrainingError(f"unknown cache policy {policy!r}")


@dataclass
class TrainingConfig:
    """Declarative description of one training run.

    Component fields accept either a name (factory-built) or an already
    constructed object, so experiments can inject custom variants.
    """

    # Model (paper §4: 2-layer GCN/GraphSAGE, hidden 128).
    model: str = "gcn"
    hidden_dim: int = 128
    num_layers: int = 2
    dropout: float = 0.1
    learning_rate: float = 0.003
    # Batch preparation.
    batch_size: object = 512            # int or BatchSizeSchedule
    sampler: object = "fanout"          # name or Sampler
    fanout: tuple = (25, 10)
    sample_rate: float = 0.1
    # Cluster + data management.
    num_workers: int = 4
    partitioner: object = "metis-ve"    # name or Partitioner
    transfer: object = "zero-copy"      # name or TransferMethod
    cache_policy: object = None         # None / "degree" / "presample" / ...
    cache_ratio: float = 0.0
    # Warm-tier (pinned host) budget as a fraction of |V|.  Non-zero
    # upgrades each worker's cache to a multi-tier TieredCache with
    # `cache_ratio` GPU-hot, `cache_warm_ratio` host-warm, and the
    # remaining features disk-cold (the BGL/out-of-core scenario).
    cache_warm_ratio: float = 0.0
    # SALIENT++-style hot-remote-vertex replication budget per machine
    # (fraction of |V|; 0 disables).
    replication_budget: float = 0.0
    pipeline: str = "bp+dt"
    # What the engine does with a crashed worker's training vertices
    # when a fault plan kills a machine: "redistribute" to survivors or
    # "drop" for the rest of the run (see repro.faults).
    crash_policy: str = "redistribute"
    spec: HardwareSpec = field(default=DEFAULT_SPEC)
    # The paper's batch-preparation step sizes batches "according to the
    # GPU's available memory"; when enabled, the trainer clamps the
    # schedule to the memory model's max batch size for the fanout.
    enforce_gpu_memory: bool = True
    # Loop control.
    epochs: int = 30
    eval_every: int = 1
    early_stop_patience: int = 0        # 0 = disabled
    seed: int = 0

    # ------------------------------------------------------------------
    # Materialization helpers
    # ------------------------------------------------------------------
    def build_schedule(self):
        """The batch-size schedule (wrapping plain ints)."""
        if isinstance(self.batch_size, BatchSizeSchedule):
            return self.batch_size
        return FixedBatchSize(int(self.batch_size))

    def build_sampler(self):
        """The sampler instance (built from a name if needed)."""
        if isinstance(self.sampler, Sampler):
            return self.sampler
        return make_sampler(self.sampler, fanout=self.fanout,
                            rate=self.sample_rate,
                            num_layers=self.num_layers)

    def build_partitioner(self):
        """The partitioner instance (built from a name if needed)."""
        if isinstance(self.partitioner, str):
            return make_partitioner(self.partitioner)
        return self.partitioner

    def build_transfer(self):
        """The transfer method (built from a name if needed)."""
        if isinstance(self.transfer, TransferMethod):
            return self.transfer
        return make_transfer(self.transfer)

    def with_overrides(self, **kwargs):
        """A copy of this config with fields replaced."""
        return replace(self, **kwargs)

    def rng(self, salt=0):
        """A generator derived deterministically from the seed."""
        return np.random.default_rng(self.seed * 1_000_003 + salt)


def config_for_platform(platform, **overrides):
    """A :class:`TrainingConfig` matching a deployment
    :class:`~repro.transfer.platform.Platform`.

    Sets the worker count, hardware spec, and the platform's typical
    transfer method; disables GPU caching on platforms without a GPU.
    Any field can still be overridden explicitly.
    """
    kwargs = dict(num_workers=platform.num_workers, spec=platform.spec,
                  transfer=platform.default_transfer())
    if not platform.supports_gpu_cache:
        kwargs["cache_policy"] = None
        kwargs["cache_ratio"] = 0.0
    kwargs.update(overrides)
    return TrainingConfig(**kwargs)
