"""Run artifacts: persist training results as JSON.

Benchmark campaigns produce many :class:`TrainingResult` objects; these
helpers serialize the reproducible part of a result (configuration
echo, curves, breakdowns) to JSON files, and load them back as plain
dicts for offline comparison/plotting.
"""

from __future__ import annotations

import json
from pathlib import Path

from ..errors import TrainingError

__all__ = ["result_to_record", "save_result", "load_record",
           "compare_records"]


def _config_echo(config):
    if config is None:
        return {}
    echo = {}
    for key in ("model", "hidden_dim", "num_layers", "learning_rate",
                "dropout", "num_workers", "pipeline", "cache_ratio",
                "epochs", "seed"):
        echo[key] = getattr(config, key)
    # Component fields may be objects; store their printable identity.
    for key in ("partitioner", "sampler", "transfer", "cache_policy",
                "batch_size"):
        value = getattr(config, key)
        echo[key] = value if isinstance(
            value, (str, int, float, type(None))) else repr(value)
    echo["fanout"] = list(getattr(config, "fanout", ()))
    return echo


def result_to_record(result):
    """A JSON-serializable dict capturing one training run."""
    curve = result.curve
    return {
        "schema": "repro.training_result.v1",
        "config": _config_echo(result.config),
        "partition_method": result.partition_method,
        "partition_seconds": result.partition_seconds,
        "best_val_accuracy": result.best_val_accuracy,
        "test_accuracy": result.test_accuracy,
        "mean_epoch_seconds": result.mean_epoch_seconds,
        "step_breakdown": result.step_breakdown(),
        "curve": {
            "val_accuracies": list(map(float, curve.val_accuracies)),
            "losses": list(map(float, curve.losses)),
            "epoch_seconds": list(map(float, curve.epoch_seconds)),
            "batch_sizes": list(map(int, curve.batch_sizes)),
        },
    }


def save_result(result, path):
    """Write a result record to ``path`` (creates parent dirs)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w") as handle:
        json.dump(result_to_record(result), handle, indent=2)
    return path


def load_record(path):
    """Read a record written by :func:`save_result`."""
    with open(path) as handle:
        record = json.load(handle)
    if record.get("schema") != "repro.training_result.v1":
        raise TrainingError(f"{path} is not a repro training record")
    return record


def compare_records(records, metric="best_val_accuracy"):
    """Rank records by a scalar metric (descending); returns
    ``(label, value)`` pairs where the label names the partitioner and
    batch size."""
    rows = []
    for record in records:
        config = record.get("config", {})
        label = (f"{record.get('partition_method', '?')}/"
                 f"bs={config.get('batch_size', '?')}")
        value = record.get(metric)
        if value is None:
            raise TrainingError(f"record lacks metric {metric!r}")
        rows.append((label, float(value)))
    return sorted(rows, key=lambda pair: -pair[1])
