"""The paper's adaptive batch size training method (§6.3.1, Figure 10).

Start training with a small batch size (large gradient magnitude, fast
descent-direction discovery), then grow the batch as validation accuracy
plateaus (small gradient magnitude, precise convergence).  The paper
reports 1.64x / 1.52x faster convergence on Reddit / Products versus the
best fixed batch size.
"""

from __future__ import annotations

from ..batching.schedule import PlateauAdaptiveBatchSize
from .trainer import Trainer

__all__ = ["adaptive_batch_training", "compare_adaptive_to_fixed"]


def adaptive_batch_training(dataset, config, start_size=128,
                            max_size=2048, factor=2.0, patience=2):
    """Run one training with the plateau-driven adaptive schedule.

    Returns the :class:`~repro.core.trainer.TrainingResult`.
    """
    schedule = PlateauAdaptiveBatchSize(start_size, max_size,
                                        factor=factor, patience=patience)
    adaptive_config = config.with_overrides(batch_size=schedule)
    return Trainer(dataset, adaptive_config).run()


def compare_adaptive_to_fixed(dataset, config, fixed_sizes=(512,),
                              start_size=128, max_size=2048,
                              target_fraction=0.98):
    """Figure 10's comparison: adaptive schedule vs fixed batch sizes.

    Returns a dict mapping run label -> ``(result, convergence_seconds)``
    where convergence time is the simulated time to reach
    ``target_fraction`` of the run's own best accuracy.
    """
    outcomes = {}
    adaptive = adaptive_batch_training(dataset, config,
                                       start_size=start_size,
                                       max_size=max_size)
    outcomes["adaptive"] = (
        adaptive, adaptive.curve.convergence_time(target_fraction))
    for size in fixed_sizes:
        result = Trainer(dataset,
                         config.with_overrides(batch_size=size)).run()
        outcomes[f"fixed-{size}"] = (
            result, result.curve.convergence_time(target_fraction))
    return outcomes
