"""Configuration advisor: the paper's "lessons learned" as code.

The paper closes every section with practical lessons (§5.4, §6.4,
§7.4).  :func:`advise` turns them into an actionable report: it inspects
a dataset's structure (degree skew, density, label coverage, feature
width) and the deployment (worker count) and recommends a partitioner,
batch-size schedule, sampler, transfer method, cache policy, and
pipeline mode — each with the lesson that justifies it.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..graph.metrics import degree_gini, is_power_law

__all__ = ["Recommendation", "AdviceReport", "advise"]


@dataclass(frozen=True)
class Recommendation:
    """One recommended setting plus the paper lesson behind it."""

    topic: str       # e.g. "partitioner"
    choice: str      # e.g. "metis-vet"
    reason: str      # the lesson, with its section reference


@dataclass
class AdviceReport:
    """All recommendations for one dataset/deployment."""

    recommendations: list

    def choice(self, topic):
        """The recommended value for ``topic`` (None if absent)."""
        for recommendation in self.recommendations:
            if recommendation.topic == topic:
                return recommendation.choice
        return None

    def as_config_kwargs(self):
        """Recommendations as ``TrainingConfig`` keyword overrides."""
        mapping = {
            "partitioner": "partitioner",
            "transfer": "transfer",
            "cache_policy": "cache_policy",
            "pipeline": "pipeline",
            "sampler": "sampler",
        }
        kwargs = {}
        for recommendation in self.recommendations:
            key = mapping.get(recommendation.topic)
            if key:
                kwargs[key] = recommendation.choice
        return kwargs


def advise(dataset, num_workers=4, gpu_memory_headroom=0.2):
    """Recommend data-management techniques for ``dataset``.

    Parameters
    ----------
    dataset:
        :class:`~repro.graph.datasets.Dataset`.
    num_workers:
        Planned machine count.
    gpu_memory_headroom:
        Fraction of the feature store assumed to fit in spare GPU
        memory (drives the cache recommendation).
    """
    recommendations = []
    graph = dataset.graph
    skewed = is_power_law(graph)
    gini = degree_gini(graph)

    # Partitioning (§5.4): Metis-extend meets the GNN partitioning
    # goals at acceptable preprocessing cost; more constraints converge
    # faster (less clustering -> more batch randomness).  Streaming's
    # flexibility is not worth its partitioning time (lessons 4, 5).
    if num_workers == 1:
        recommendations.append(Recommendation(
            "partitioner", "hash",
            "Single machine: partitioning quality is irrelevant; hash "
            "is free (§5.3.3)."))
    else:
        recommendations.append(Recommendation(
            "partitioner", "metis-vet",
            "Metis-extend meets the GNN partitioning goals at <10% "
            "preprocessing share, and the most-constrained variant "
            "preserves batch randomness, converging fastest (§5.3.4, "
            "lesson 5)."))

    # Batch preparation (§6.4, lessons 1-2): adaptive batch size,
    # random selection.
    recommendations.append(Recommendation(
        "batch_schedule", "adaptive (start small, grow on plateau)",
        "Small batches find the descent direction fast, large batches "
        "finish precisely; adapting accelerates convergence ~1.5x "
        "(§6.3.1, lesson 1)."))
    recommendations.append(Recommendation(
        "batch_selection", "random",
        "Cluster-based selection shortens epochs but biases batches "
        "and destabilizes training; random wins on accuracy (§6.3.2, "
        "lesson 2)."))

    # Sampling (§6.4, lessons 3-4): hybrid on skewed graphs.
    if skewed:
        recommendations.append(Recommendation(
            "sampler", "hybrid",
            f"Degree skew detected (gini={gini:.2f}): fixed fanouts "
            "serve low- and high-degree vertices badly at once; use "
            "fanout below the degree threshold and a rate above it "
            "(§6.3.3-6.3.4, lessons 3-4)."))
    else:
        recommendations.append(Recommendation(
            "sampler", "fanout",
            f"Flat degree distribution (gini={gini:.2f}): a moderate "
            "fixed fanout is adequate; rate sampling would starve "
            "every vertex equally (§6.3.4)."))

    # Transfer (§7.4, lessons 1-2): zero-copy, never hybrid.
    recommendations.append(Recommendation(
        "transfer", "zero-copy",
        "GNN feature accesses are scattered; UVA direct access removes "
        "the expensive extraction stage (§7.3.1, lesson 1).  Hybrid "
        "block transfer does not help: sampled activity is too "
        "fragmented, especially under caching (lesson 2)."))

    # Cache (§7.4, lesson 4): the biggest lever; pick the policy by
    # whether degree predicts access.
    if gpu_memory_headroom > 0:
        policy = "degree" if skewed else "presample"
        extra = ("degree-based is adequate on power-law graphs and "
                 "costs no pre-sampling pass"
                 if skewed else
                 "degree does not predict access on flat-degree "
                 "graphs; pre-sampling measures the real frequency")
        recommendations.append(Recommendation(
            "cache_policy", policy,
            f"GPU caching is the most significant transfer "
            f"optimization — it removes traffic outright; {extra} "
            f"(§7.3.3, lesson 4)."))

    # Pipeline (§7.4, lesson 3): cheap to enable, bounded benefit.
    recommendations.append(Recommendation(
        "pipeline", "bp+dt",
        "Pipelining overlaps all three stages; expect <50% gain since "
        "data transfer dominates, but it is free to enable (§7.3.2, "
        "lesson 3)."))
    return AdviceReport(recommendations)
