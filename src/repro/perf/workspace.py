"""Reusable scratch-array pool for the batch-preparation kernels.

The fused block-assembly path localizes global vertex ids through a
dense int64 lookup table sized to the largest id it has seen.  Allocating
(and ``-1``-filling) that table per block would erase the win, so a
:class:`Workspace` keeps one table alive across calls and the kernel
restores only the entries it touched — an O(touched) reset instead of an
O(num_vertices) refill.

The table's invariant between borrows is *all entries equal -1*; the
:meth:`Workspace.id_map` context manager enforces it even when the
kernel raises mid-way.
"""

from __future__ import annotations

from contextlib import contextmanager

import numpy as np

from .profiler import PERF

__all__ = ["Workspace", "get_workspace"]


class Workspace:
    """An arena of reusable scratch arrays for hot-path kernels."""

    def __init__(self):
        self._id_map = np.empty(0, dtype=np.int64)
        self._id_map_busy = False

    @property
    def id_map_capacity(self):
        """Current size of the pooled id-lookup table."""
        return len(self._id_map)

    def _grow_id_map(self, capacity):
        # Geometric growth so repeated slightly-larger requests don't
        # reallocate every call.
        new_size = max(int(capacity), 2 * len(self._id_map), 1024)
        self._id_map = np.full(new_size, -1, dtype=np.int64)
        PERF.count("workspace_id_map_grows")

    @contextmanager
    def id_map(self, capacity):
        """Borrow the ``-1``-filled int64 lookup table, at least
        ``capacity`` entries long.

        The caller may write any entries; on exit the caller must have
        restored them to -1 (the usual pattern: assign positions, use,
        then re-assign -1 at the same indices).  Re-entrant borrows fall
        back to a fresh allocation so nested samplers stay correct.
        """
        if self._id_map_busy or capacity > len(self._id_map):
            if self._id_map_busy:
                PERF.count("workspace_id_map_contended")
                yield np.full(int(capacity), -1, dtype=np.int64)
                return
            self._grow_id_map(capacity)
        self._id_map_busy = True
        PERF.count("workspace_id_map_borrows")
        try:
            yield self._id_map
        finally:
            self._id_map_busy = False


#: Process-wide workspace shared by the sampling kernels.
_WORKSPACE = Workspace()


def get_workspace():
    """The process-wide :class:`Workspace`."""
    return _WORKSPACE
