"""Lightweight wall-clock stage profiler for the batch-preparation
hot paths.

Unlike the simulated cost model (``repro.transfer.hardware``), which
converts *counts* into hypothetical cluster seconds, this profiler
measures the *actual* python wall time spent in the hot kernels —
block assembly, aggregation-matrix construction, evaluation sampling —
plus hit/miss counters for the memoization layers.  Engines snapshot the
profiler around an epoch and attach the delta to their
:class:`~repro.dist.engine.EpochStats`, so benchmarks can see real time
next to simulated time.

The module-level :data:`PERF` singleton is what the hot paths write to;
its overhead is two ``perf_counter`` calls per timed region, negligible
next to the numpy work inside.
"""

from __future__ import annotations

import math
import time
from contextlib import contextmanager

__all__ = ["StageProfiler", "PERF", "percentile", "wall_clock"]


def wall_clock():
    """The sanctioned wall-clock read: ``time.perf_counter()``.

    Every real-time measurement in the library flows through this
    module (the determinism linter's RPR002 enforces it), so one grep
    finds every place host timing can enter a result.  Simulated paths
    must never call this — they advance the cost model's clock instead.
    """
    return time.perf_counter()


#: Sentinel distinguishing "no default supplied" from ``default=None``.
_RAISE = object()


def percentile(values, q, default=_RAISE):
    """The ``q``-th percentile of ``values`` with linear interpolation
    between closest ranks (the same definition as
    ``numpy.percentile(..., method="linear")``), implemented directly so
    the serving metrics do not round-trip observation lists through
    numpy for every report.

    ``values`` may be empty only when ``default`` is supplied: the
    default is returned instead of raising.  Report builders that must
    render zero-traffic entities (a fleet replica that received no
    requests) pass ``default=None`` so their latency fields serialize
    as JSON ``null`` rather than a fabricated number.
    """
    if not values:
        if default is not _RAISE:
            return default
        raise ValueError("percentile of an empty observation list")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile q must be in [0, 100], got {q}")
    ordered = sorted(values)
    rank = (len(ordered) - 1) * (q / 100.0)
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high:
        return float(ordered[low])
    fraction = rank - low
    return float(ordered[low] * (1.0 - fraction)
                 + ordered[high] * fraction)


class StageProfiler:
    """Accumulates named counters and named wall-clock timers.

    Counters and timers live in separate namespaces: ``count(name)``
    increments ``counters[name]``; ``timed(name)`` adds elapsed seconds
    to ``seconds[name]`` and bumps ``counters[name + "_calls"]``.
    A third namespace holds *distributions*: ``observe(name, value)``
    records an individual measurement (a request latency, a queue
    depth) so percentiles can be read back with :meth:`percentile` or
    :meth:`summary` — the histogram layer the serving metrics build on.
    """

    def __init__(self):
        self.counters = {}
        self.seconds = {}
        self.observations = {}

    # -- counters ------------------------------------------------------
    def count(self, name, value=1):
        """Add ``value`` to counter ``name``."""
        self.counters[name] = self.counters.get(name, 0) + int(value)

    def add_seconds(self, name, seconds):
        """Add measured ``seconds`` to timer ``name``."""
        self.seconds[name] = self.seconds.get(name, 0.0) + float(seconds)
        self.count(name + "_calls")

    @contextmanager
    def timed(self, name):
        """Time a ``with`` block into timer ``name``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.add_seconds(name, time.perf_counter() - start)

    # -- distributions -------------------------------------------------
    def observe(self, name, value):
        """Record one measurement into distribution ``name`` and bump
        ``counters[name + "_observed"]`` (so :meth:`delta` shows that
        the distribution moved)."""
        self.observations.setdefault(name, []).append(float(value))
        self.count(name + "_observed")

    def percentile(self, name, q, default=_RAISE):
        """The ``q``-th percentile of distribution ``name`` (linear
        interpolation); raises :class:`KeyError` for an unobserved
        name unless ``default`` is supplied (zero-traffic entities then
        report the default instead of raising)."""
        if name not in self.observations:
            if default is not _RAISE:
                return default
            raise KeyError(f"no observations recorded under {name!r}")
        return percentile(self.observations[name], q, default=default)

    def merge(self, other):
        """Fold another profiler's counters, timers, and observations
        into this one (observation lists are concatenated in ``other``'s
        recording order).  The fleet report builder uses this to
        aggregate per-replica histograms into one fleet-wide
        distribution without re-observing every measurement."""
        for name, value in other.counters.items():
            self.counters[name] = self.counters.get(name, 0) + value
        for name, value in other.seconds.items():
            self.seconds[name] = self.seconds.get(name, 0.0) + value
        for name, values in other.observations.items():
            self.observations.setdefault(name, []).extend(values)
        return self

    def summary(self, name):
        """count/mean/p50/p95/p99/max digest of distribution ``name``,
        or ``None`` if nothing was observed under it."""
        values = self.observations.get(name)
        if not values:
            return None
        return {
            "count": len(values),
            "mean": sum(values) / len(values),
            "p50": percentile(values, 50.0),
            "p95": percentile(values, 95.0),
            "p99": percentile(values, 99.0),
            "max": max(values),
        }

    # -- reading -------------------------------------------------------
    def snapshot(self):
        """A flat copy of all counters and timers (timers suffixed
        ``_seconds``)."""
        out = dict(self.counters)
        for name, value in self.seconds.items():
            out[name + "_seconds"] = value
        return out

    def delta(self, before):
        """Counters/timers accumulated since ``before = snapshot()``,
        dropping entries that did not move."""
        now = self.snapshot()
        out = {}
        for name, value in now.items():
            moved = value - before.get(name, 0)
            if moved:
                out[name] = moved
        return out

    def reset(self):
        """Zero every counter, timer, and distribution."""
        self.counters.clear()
        self.seconds.clear()
        self.observations.clear()


#: Process-wide profiler written to by the hot paths.
PERF = StageProfiler()
