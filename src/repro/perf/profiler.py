"""Lightweight wall-clock stage profiler for the batch-preparation
hot paths.

Unlike the simulated cost model (``repro.transfer.hardware``), which
converts *counts* into hypothetical cluster seconds, this profiler
measures the *actual* python wall time spent in the hot kernels —
block assembly, aggregation-matrix construction, evaluation sampling —
plus hit/miss counters for the memoization layers.  Engines snapshot the
profiler around an epoch and attach the delta to their
:class:`~repro.dist.engine.EpochStats`, so benchmarks can see real time
next to simulated time.

The module-level :data:`PERF` singleton is what the hot paths write to;
its overhead is two ``perf_counter`` calls per timed region, negligible
next to the numpy work inside.
"""

from __future__ import annotations

import time
from contextlib import contextmanager

__all__ = ["StageProfiler", "PERF"]


class StageProfiler:
    """Accumulates named counters and named wall-clock timers.

    Counters and timers live in separate namespaces: ``count(name)``
    increments ``counters[name]``; ``timed(name)`` adds elapsed seconds
    to ``seconds[name]`` and bumps ``counters[name + "_calls"]``.
    """

    def __init__(self):
        self.counters = {}
        self.seconds = {}

    # -- counters ------------------------------------------------------
    def count(self, name, value=1):
        """Add ``value`` to counter ``name``."""
        self.counters[name] = self.counters.get(name, 0) + int(value)

    def add_seconds(self, name, seconds):
        """Add measured ``seconds`` to timer ``name``."""
        self.seconds[name] = self.seconds.get(name, 0.0) + float(seconds)
        self.count(name + "_calls")

    @contextmanager
    def timed(self, name):
        """Time a ``with`` block into timer ``name``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.add_seconds(name, time.perf_counter() - start)

    # -- reading -------------------------------------------------------
    def snapshot(self):
        """A flat copy of all counters and timers (timers suffixed
        ``_seconds``)."""
        out = dict(self.counters)
        for name, value in self.seconds.items():
            out[name + "_seconds"] = value
        return out

    def delta(self, before):
        """Counters/timers accumulated since ``before = snapshot()``,
        dropping entries that did not move."""
        now = self.snapshot()
        out = {}
        for name, value in now.items():
            moved = value - before.get(name, 0)
            if moved:
                out[name] = moved
        return out

    def reset(self):
        """Zero every counter and timer."""
        self.counters.clear()
        self.seconds.clear()


#: Process-wide profiler written to by the hot paths.
PERF = StageProfiler()
