"""The perf layer: hot-path instrumentation, scratch-array pooling,
fast-path flags, and prepared-batch caches.

Everything here is about *real* wall time (the python hot paths), not
the simulated cluster seconds of the cost model.  The layer has three
jobs: measure the hot paths (:data:`PERF`), make them fast without
changing their math (:data:`FLAGS`, :class:`Workspace`,
:class:`EvalSubgraphCache`), and prove it (the toggles let tests and
benchmarks run old-vs-new on one build).
"""

from .evalcache import EvalSubgraphCache
from .flags import FLAGS, PerfFlags, perf_overrides
from .profiler import PERF, StageProfiler, percentile, wall_clock
from .workspace import Workspace, get_workspace

__all__ = [
    "PERF", "StageProfiler", "percentile", "wall_clock",
    "FLAGS", "PerfFlags", "perf_overrides",
    "Workspace", "get_workspace",
    "EvalSubgraphCache",
]
