"""Feature flags for the batch-preparation fast paths.

Every optimisation in the perf layer is behaviour-preserving (it changes
wall time, not math), so each one can be toggled off to fall back to the
straightforward reference implementation.  The toggles exist for two
reasons: the hot-path benchmark measures old-vs-new on the same build,
and the equivalence tests prove bit-for-bit identical training results
with the fast paths on and off.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass

__all__ = ["PerfFlags", "FLAGS", "perf_overrides"]


@dataclass
class PerfFlags:
    """Which fast paths are active.

    Attributes
    ----------
    fused_block_assembly:
        Use the single-pass id-map localization in
        :func:`~repro.sampling.block.build_block` instead of the
        sort-based reference path.
    memoize_aggregation:
        Cache each block's normalized aggregation CSR (and GAT edge
        lists) on the block, keyed by ``self_loops``.
    eval_subgraph_cache:
        Let the trainer sample the fixed-seed evaluation mini-batches
        once and replay them across epochs.
    kernel_backend:
        Which sparse-kernel backend :mod:`repro.kernels` dispatches
        aggregations to: ``"auto"`` (first importable accelerated
        backend, reference as the floor), ``"reference"``,
        ``"scipy"``, or ``"numba"``.  Every backend is bit-identical
        to the reference (the conformance suite pins it), so this
        flag changes wall time, never math.
    sanitize:
        Arm the runtime sanitizers (``repro.analysis.sanitize``):
        NaN/Inf scans on activations and gradients, CSR structure
        checks at graph/block construction, and shape/dtype return
        contracts.  Unlike the fast-path toggles above this one
        defaults *off*: the checks are behaviour-preserving but not
        free, so they run in the test suite, under ``repro train
        --sanitize``, and in the CI chaos/serving smokes rather than
        in benchmarked hot loops.
    """

    fused_block_assembly: bool = True
    memoize_aggregation: bool = True
    eval_subgraph_cache: bool = True
    kernel_backend: str = "auto"
    sanitize: bool = False


#: Process-wide flag set read by the hot paths.
FLAGS = PerfFlags()


@contextmanager
def perf_overrides(**overrides):
    """Temporarily override :data:`FLAGS` fields within a ``with``.

    >>> with perf_overrides(fused_block_assembly=False):
    ...     ...  # reference block assembly
    """
    saved = {}
    for name, value in overrides.items():
        if not hasattr(FLAGS, name):
            raise AttributeError(f"unknown perf flag {name!r}")
        saved[name] = getattr(FLAGS, name)
        # Boolean flags coerce; string-valued flags (kernel_backend)
        # pass through unchanged.
        setattr(FLAGS, name,
                bool(value) if isinstance(saved[name], bool) else value)
    try:
        yield FLAGS
    finally:
        for name, value in saved.items():
            setattr(FLAGS, name, value)
