"""Epoch-level cache of evaluation subgraphs.

``Trainer.run`` evaluates validation accuracy every epoch with an rng
reseeded from the *same* fixed seed, so every epoch re-samples
byte-identical validation subgraphs — pure batch-preparation waste, and
exactly the prepared-batch reuse opportunity BGL exploits.  This cache
stores the sampled ``(seeds, subgraph)`` mini-batches the first time a
given evaluation runs and replays them afterwards.

Correctness rests on the key: a stored entry is only replayed for the
same sampler instance *and* configuration, the same vertex set, the same
batch size, and the same rng seed token — any change (adaptive batch
size, a different sampler, a new seed) misses and re-samples.
"""

from __future__ import annotations

import zlib

import numpy as np

from .profiler import PERF

__all__ = ["EvalSubgraphCache"]


class EvalSubgraphCache:
    """Keyed store of fully-prepared evaluation mini-batch lists.

    Parameters
    ----------
    max_entries:
        Distinct keys kept (small: one per evaluated split in
        practice).  Oldest entries are evicted first.
    """

    def __init__(self, max_entries=8):
        self.max_entries = int(max_entries)
        self._entries = {}

    @staticmethod
    def make_key(sampler, vertex_ids, batch_size, seed_token):
        """Cache key capturing everything the sampled batches depend on.

        ``id(sampler)`` guards against a *different* sampler object with
        the same description; ``describe()`` guards against in-place
        reconfiguration of the same object.
        """
        vertex_ids = np.ascontiguousarray(
            np.asarray(vertex_ids, dtype=np.int64))
        return (id(sampler), sampler.describe(), int(batch_size),
                int(seed_token), len(vertex_ids),
                zlib.crc32(vertex_ids.tobytes()))

    def get(self, key):
        """The stored batch list for ``key``, or ``None`` on miss."""
        batches = self._entries.get(key)
        if batches is None:
            PERF.count("eval_subgraph_misses")
            return None
        PERF.count("eval_subgraph_hits")
        return batches

    def put(self, key, batches):
        """Store the prepared ``(seeds, subgraph)`` list for ``key``.

        Re-putting an existing key *replaces* the stored list (last
        write wins) rather than silently keeping the old value or
        raising: the key already encodes everything the sampled batches
        depend on, so two puts under one key carry equivalent payloads
        — replacing is harmless — while a caller that re-prepared after
        a miss-then-race deserves its fresher object to be the one
        served.  Replacement keeps the entry's eviction position and is
        counted under ``eval_subgraph_replacements``.
        """
        if key in self._entries:
            PERF.count("eval_subgraph_replacements")
            self._entries[key] = list(batches)
            return
        while len(self._entries) >= self.max_entries:
            oldest = next(iter(self._entries))
            del self._entries[oldest]
            PERF.count("eval_subgraph_evictions")
        self._entries[key] = list(batches)

    def clear(self):
        """Drop every stored entry."""
        self._entries.clear()

    def __len__(self):
        return len(self._entries)
