"""Compressed sparse row (CSR) graph storage.

:class:`CSRGraph` is the single graph representation used everywhere in the
library.  It stores the *out*-adjacency in CSR form and lazily derives the
*in*-adjacency (CSC of the same matrix) the first time it is needed.  GNN
aggregation reads in-neighbors; samplers and partitioners mostly read
out-neighbors.  For the (common) symmetric graphs produced by our
generators the two coincide and the lazy transpose is skipped.

Vertices are dense integer ids ``0..n-1``.  Edges are directed pairs
``(src, dst)``; an undirected graph is represented by storing both
directions and flagging :attr:`CSRGraph.is_symmetric`.
"""

from __future__ import annotations

import numpy as np

from ..errors import GraphError

__all__ = ["CSRGraph"]


class CSRGraph:
    """An immutable directed graph in CSR form.

    Parameters
    ----------
    indptr:
        ``int64`` array of length ``n + 1``; ``indices[indptr[v]:indptr[v+1]]``
        are the out-neighbors of vertex ``v``.
    indices:
        ``int64`` array of length ``m`` holding destination vertex ids.
    num_vertices:
        Number of vertices ``n``.  Defaults to ``len(indptr) - 1``.
    is_symmetric:
        Declare the adjacency symmetric (undirected).  When true the
        in-adjacency aliases the out-adjacency and no transpose is built.
    validate:
        Run structural validation (sorted indptr, ids in range).  Cheap
        relative to construction; disable only in hot internal paths.
    """

    __slots__ = ("indptr", "indices", "is_symmetric", "_n", "_in_indptr",
                 "_in_indices", "_out_degrees", "_in_degrees")

    def __init__(self, indptr, indices, num_vertices=None,
                 is_symmetric=False, validate=True):
        self.indptr = np.ascontiguousarray(indptr, dtype=np.int64)
        self.indices = np.ascontiguousarray(indices, dtype=np.int64)
        self._n = int(num_vertices if num_vertices is not None
                      else len(self.indptr) - 1)
        self.is_symmetric = bool(is_symmetric)
        self._in_indptr = None
        self._in_indices = None
        self._out_degrees = None
        self._in_degrees = None
        if validate:
            self._validate()

    def _validate(self):
        if self.indptr.ndim != 1 or self.indices.ndim != 1:
            raise GraphError("indptr and indices must be 1-D arrays")
        if len(self.indptr) != self._n + 1:
            raise GraphError(
                f"indptr has length {len(self.indptr)}, expected "
                f"{self._n + 1} for {self._n} vertices")
        if self._n < 0:
            raise GraphError("negative vertex count")
        if len(self.indptr) and self.indptr[0] != 0:
            raise GraphError("indptr[0] must be 0")
        if np.any(np.diff(self.indptr) < 0):
            raise GraphError("indptr must be non-decreasing")
        if len(self.indptr) and self.indptr[-1] != len(self.indices):
            raise GraphError(
                f"indptr[-1]={self.indptr[-1]} does not match "
                f"len(indices)={len(self.indices)}")
        if len(self.indices) and (self.indices.min() < 0
                                  or self.indices.max() >= self._n):
            raise GraphError("edge destination out of range")

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def num_vertices(self):
        """Number of vertices ``n``."""
        return self._n

    @property
    def num_edges(self):
        """Number of directed edges ``m`` (an undirected edge counts twice)."""
        return len(self.indices)

    @property
    def out_degrees(self):
        """``int64`` array of out-degrees, computed once and cached."""
        if self._out_degrees is None:
            self._out_degrees = np.diff(self.indptr)
        return self._out_degrees

    @property
    def in_degrees(self):
        """``int64`` array of in-degrees."""
        if self.is_symmetric:
            return self.out_degrees
        if self._in_degrees is None:
            self._in_degrees = np.bincount(
                self.indices, minlength=self._n).astype(np.int64)
        return self._in_degrees

    # ------------------------------------------------------------------
    # Adjacency access
    # ------------------------------------------------------------------
    def out_neighbors(self, v):
        """Out-neighbors of vertex ``v`` as a (read-only view) array."""
        return self.indices[self.indptr[v]:self.indptr[v + 1]]

    def in_neighbors(self, v):
        """In-neighbors of vertex ``v``; builds the transpose on first use."""
        if self.is_symmetric:
            return self.out_neighbors(v)
        indptr, indices = self._in_adjacency()
        return indices[indptr[v]:indptr[v + 1]]

    def _in_adjacency(self):
        """Return ``(in_indptr, in_indices)``, building them on first use."""
        if self.is_symmetric:
            return self.indptr, self.indices
        if self._in_indptr is None:
            from ..kernels.adjacency import transpose_csr
            self._in_indptr, self._in_indices, _ = transpose_csr(
                self.indptr, self.indices, num_cols=self._n)
        return self._in_indptr, self._in_indices

    def in_csr(self):
        """The in-adjacency as ``(indptr, indices)`` CSR arrays."""
        return self._in_adjacency()

    def edges(self):
        """All edges as ``(src, dst)`` int64 arrays of length ``m``."""
        src = np.repeat(np.arange(self._n, dtype=np.int64), self.out_degrees)
        return src, self.indices.copy()

    def has_edge(self, u, v):
        """True if the directed edge ``(u, v)`` exists."""
        row = self.out_neighbors(u)
        # Rows are not guaranteed sorted; linear scan on a small row.
        return bool(np.any(row == v))

    # ------------------------------------------------------------------
    # Derived graphs
    # ------------------------------------------------------------------
    def induced_subgraph(self, vertices):
        """The subgraph induced on ``vertices``.

        Returns ``(subgraph, local_ids)`` where ``local_ids`` maps the input
        vertices to ``0..k-1`` in the subgraph (position in the sorted
        unique vertex array).
        """
        vertices = np.unique(np.asarray(vertices, dtype=np.int64))
        if len(vertices) and (vertices[0] < 0 or vertices[-1] >= self._n):
            raise GraphError("subgraph vertex id out of range")
        lookup = np.full(self._n, -1, dtype=np.int64)
        lookup[vertices] = np.arange(len(vertices), dtype=np.int64)
        src, dst = self.edges()
        keep = (lookup[src] >= 0) & (lookup[dst] >= 0)
        sub_src = lookup[src[keep]]
        sub_dst = lookup[dst[keep]]
        k = len(vertices)
        order = np.lexsort((sub_dst, sub_src))
        sub_src = sub_src[order]
        sub_dst = sub_dst[order]
        counts = np.bincount(sub_src, minlength=k)
        indptr = np.concatenate(([0], np.cumsum(counts))).astype(np.int64)
        sub = CSRGraph(indptr, sub_dst, num_vertices=k,
                       is_symmetric=self.is_symmetric, validate=False)
        return sub, vertices

    def reverse(self):
        """The graph with every edge reversed."""
        if self.is_symmetric:
            return self
        indptr, indices = self._in_adjacency()
        return CSRGraph(indptr.copy(), indices.copy(), num_vertices=self._n,
                        is_symmetric=False, validate=False)

    # ------------------------------------------------------------------
    # Dunder helpers
    # ------------------------------------------------------------------
    def __repr__(self):
        kind = "undirected" if self.is_symmetric else "directed"
        return (f"CSRGraph(n={self._n}, m={self.num_edges}, {kind})")

    def __eq__(self, other):
        if not isinstance(other, CSRGraph):
            return NotImplemented
        return (self._n == other._n
                and np.array_equal(self.indptr, other.indptr)
                and np.array_equal(self.indices, other.indices))

    def __hash__(self):
        return hash((self._n, self.num_edges,
                     self.indices[:16].tobytes() if self.num_edges else b""))
