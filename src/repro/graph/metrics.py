"""Structural graph metrics used throughout the evaluation.

The paper leans on two metrics repeatedly:

* the **local clustering coefficient** (Watts–Strogatz) — its per-partition
  variance quantifies the density imbalance of streaming partitioners
  (§5.3.1) and of cluster-based batches (§6.3.2);
* **degree skew** — power-law vs. flat degree distributions separate the
  cache-policy regimes of Figure 17.
"""

from __future__ import annotations

import numpy as np

try:  # clustering metrics need scipy; the rest of the package does not.
    import scipy.sparse as sp
except ImportError:  # pragma: no cover - exercised by the no-scipy CI job
    sp = None

__all__ = [
    "to_scipy",
    "local_clustering_coefficients",
    "average_clustering",
    "clustering_variance_across",
    "degree_gini",
    "degree_statistics",
    "is_power_law",
]


def to_scipy(graph):
    """The graph's adjacency as a ``scipy.sparse.csr_matrix`` of 0/1."""
    if sp is None:
        raise ImportError(
            "graph clustering metrics require scipy")
    n = graph.num_vertices
    data = np.ones(graph.num_edges, dtype=np.float64)
    return sp.csr_matrix((data, graph.indices, graph.indptr), shape=(n, n))


def local_clustering_coefficients(graph):
    """Per-vertex local clustering coefficient.

    For vertex ``v`` with degree ``d >= 2``:
    ``c_v = triangles(v) / (d * (d - 1) / 2)``; vertices with ``d < 2``
    get 0.  Directed graphs are treated as their symmetrized version.
    """
    adj = to_scipy(graph)
    if not graph.is_symmetric:
        adj = adj.maximum(adj.T)
    adj.setdiag(0)
    adj.eliminate_zeros()
    adj.data[:] = 1.0
    degrees = np.asarray(adj.sum(axis=1)).ravel()
    # triangles(v) = (A^2 ∘ A) row-sum / 2 for a simple undirected graph.
    paths2 = (adj @ adj).multiply(adj)
    tri = np.asarray(paths2.sum(axis=1)).ravel() / 2.0
    denom = degrees * (degrees - 1) / 2.0
    coeff = np.zeros(graph.num_vertices, dtype=np.float64)
    mask = denom > 0
    coeff[mask] = tri[mask] / denom[mask]
    return coeff


def average_clustering(graph):
    """Mean local clustering coefficient over all vertices."""
    if graph.num_vertices == 0:
        return 0.0
    return float(local_clustering_coefficients(graph).mean())


def clustering_variance_across(graphs):
    """Variance of the average clustering coefficient across a list of
    (sub)graphs — the paper's density-imbalance statistic (§5.3.1)."""
    values = np.array([average_clustering(g) for g in graphs])
    return float(values.var())


def degree_gini(graph):
    """Gini coefficient of the out-degree distribution (0 = flat,
    approaching 1 = extremely skewed)."""
    degrees = np.sort(graph.out_degrees.astype(np.float64))
    n = len(degrees)
    total = degrees.sum()
    if n == 0 or total == 0:
        return 0.0
    ranks = np.arange(1, n + 1)
    return float((2.0 * (ranks * degrees).sum()) / (n * total) - (n + 1) / n)


def degree_statistics(graph):
    """Summary dict of the out-degree distribution."""
    degrees = graph.out_degrees.astype(np.float64)
    if len(degrees) == 0:
        return {"mean": 0.0, "max": 0.0, "std": 0.0, "gini": 0.0}
    return {
        "mean": float(degrees.mean()),
        "max": float(degrees.max()),
        "std": float(degrees.std()),
        "gini": degree_gini(graph),
    }


def is_power_law(graph, gini_threshold=0.30):
    """Heuristic power-law check: a Gini coefficient above the threshold
    marks the degree distribution as skewed/power-law."""
    return degree_gini(graph) >= gini_threshold
