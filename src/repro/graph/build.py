"""Constructing :class:`~repro.graph.csr.CSRGraph` objects from edge lists.

These helpers are the only sanctioned way to turn raw ``(src, dst)`` pairs
into graphs: they sort, deduplicate, optionally symmetrize, and emit clean
CSR arrays.
"""

from __future__ import annotations

import numpy as np

from ..analysis.sanitize import check_csr
from ..errors import GraphError
from ..perf.flags import FLAGS
from .csr import CSRGraph

__all__ = ["from_edges", "symmetrize", "remove_self_loops", "relabel"]


def from_edges(src, dst, num_vertices, symmetrize_edges=False,
               dedup=True, drop_self_loops=True):
    """Build a :class:`CSRGraph` from parallel ``src``/``dst`` arrays.

    Parameters
    ----------
    src, dst:
        Integer arrays of equal length with vertex ids in
        ``[0, num_vertices)``.
    num_vertices:
        Total vertex count ``n`` (isolated vertices allowed).
    symmetrize_edges:
        Also add every reverse edge and mark the graph symmetric.
    dedup:
        Remove duplicate edges.
    drop_self_loops:
        Remove edges with ``src == dst``.
    """
    src = np.asarray(src, dtype=np.int64).ravel()
    dst = np.asarray(dst, dtype=np.int64).ravel()
    if len(src) != len(dst):
        raise GraphError(
            f"src and dst lengths differ: {len(src)} vs {len(dst)}")
    n = int(num_vertices)
    if len(src):
        lo = min(src.min(), dst.min())
        hi = max(src.max(), dst.max())
        if lo < 0 or hi >= n:
            raise GraphError(
                f"edge endpoint out of range [0, {n}): saw [{lo}, {hi}]")

    if drop_self_loops and len(src):
        keep = src != dst
        src, dst = src[keep], dst[keep]
    if symmetrize_edges and len(src):
        src, dst = np.concatenate([src, dst]), np.concatenate([dst, src])

    if len(src):
        order = np.lexsort((dst, src))
        src, dst = src[order], dst[order]
        if dedup:
            keep = np.concatenate(
                ([True], (src[1:] != src[:-1]) | (dst[1:] != dst[:-1])))
            src, dst = src[keep], dst[keep]

    counts = np.bincount(src, minlength=n) if len(src) else np.zeros(
        n, dtype=np.int64)
    indptr = np.concatenate(([0], np.cumsum(counts))).astype(np.int64)
    if FLAGS.sanitize:
        # Loud structural validation at the single sanctioned CSR
        # construction site; rows are sorted by the lexsort above.
        check_csr(indptr, dst, n, name="from_edges",
                  sorted_rows=bool(len(src)))
    return CSRGraph(indptr, dst, num_vertices=n,
                    is_symmetric=symmetrize_edges, validate=False)


def symmetrize(graph):
    """Return the undirected version of ``graph`` (edges in both
    directions, deduplicated)."""
    if graph.is_symmetric:
        return graph
    src, dst = graph.edges()
    return from_edges(src, dst, graph.num_vertices, symmetrize_edges=True)


def remove_self_loops(graph):
    """Return a copy of ``graph`` with self-loop edges removed."""
    src, dst = graph.edges()
    keep = src != dst
    return from_edges(src[keep], dst[keep], graph.num_vertices,
                      symmetrize_edges=False, dedup=False,
                      drop_self_loops=False)


def relabel(graph, permutation):
    """Relabel vertices: new id of old vertex ``v`` is ``permutation[v]``.

    ``permutation`` must be a permutation of ``0..n-1``; raises
    :class:`GraphError` otherwise.
    """
    perm = np.asarray(permutation, dtype=np.int64)
    n = graph.num_vertices
    if len(perm) != n or not np.array_equal(np.sort(perm), np.arange(n)):
        raise GraphError("permutation must be a permutation of 0..n-1")
    src, dst = graph.edges()
    rebuilt = from_edges(perm[src], perm[dst], n, dedup=False,
                         drop_self_loops=False)
    rebuilt.is_symmetric = graph.is_symmetric
    return rebuilt
