"""Graph substrate: CSR storage, builders, generators, datasets, metrics."""

from .build import from_edges, relabel, remove_self_loops, symmetrize
from .csr import CSRGraph
from .datasets import (DATASET_SPECS, Dataset, DatasetSpec, dataset_names,
                       dataset_table, load_dataset)
from .features import (community_features_and_labels,
                       random_features_and_labels)
from .generators import (community_configuration_graph, erdos_renyi_graph,
                         flat_graph, planted_partition_graph,
                         power_law_graph, power_law_weights)
from .io import (dataset_from_arrays, load_dataset_file, load_edge_list,
                 load_graph, save_dataset, save_graph)
from .metrics import (average_clustering, clustering_variance_across,
                      degree_gini, degree_statistics, is_power_law,
                      local_clustering_coefficients, to_scipy)
from .splits import Split, split_vertices

__all__ = [
    "CSRGraph", "from_edges", "symmetrize", "remove_self_loops", "relabel",
    "community_configuration_graph", "power_law_graph", "flat_graph",
    "erdos_renyi_graph", "planted_partition_graph", "power_law_weights",
    "community_features_and_labels", "random_features_and_labels",
    "Dataset", "DatasetSpec", "DATASET_SPECS", "dataset_names",
    "load_dataset", "dataset_table",
    "Split", "split_vertices",
    "to_scipy", "local_clustering_coefficients", "average_clustering",
    "clustering_variance_across", "degree_gini", "degree_statistics",
    "is_power_law",
    "save_graph", "load_graph", "save_dataset", "load_dataset_file",
    "load_edge_list", "dataset_from_arrays",
]
