"""The benchmark dataset suite (synthetic stand-ins for the paper's
Table 2).

The paper evaluates on nine real-world graphs.  Without network access we
generate deterministic synthetic stand-ins that preserve each dataset's
*role* in the evaluation:

* matched feature dimension (#F) and class count (#L) from Table 2;
* power-law degree distributions for the social/co-purchasing graphs and a
  flat distribution for OGB-Papers (the paper's "non-power-law graph" in
  §7.3.3);
* planted communities correlated with features and labels for the labeled
  datasets (Reddit, OGB-Arxiv, OGB-Products, Amazon), so GNN training
  genuinely learns;
* random features/labels for the LiveJournal family and Enwiki, exactly as
  the paper does ("we randomly generate features and labels for them");
* vertex/edge counts scaled down uniformly (default ``scale=1.0`` ≈ 1/40 to
  1/10,000 of the original depending on dataset) so experiments run on one
  machine in seconds.

Every dataset is generated from a seed derived from its name, so two
processes building ``load_dataset("reddit")`` get identical graphs.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field

import numpy as np

from ..errors import DatasetError
from .csr import CSRGraph
from .features import community_features_and_labels, random_features_and_labels
from .generators import flat_graph, power_law_graph
from .splits import Split, split_vertices

__all__ = ["DatasetSpec", "Dataset", "DATASET_SPECS", "dataset_names",
           "load_dataset", "dataset_table"]


@dataclass(frozen=True)
class DatasetSpec:
    """Static description of one dataset stand-in.

    ``paper_vertices``/``paper_edges`` record the original Table 2 sizes
    for documentation; ``num_vertices``/``avg_degree`` control what we
    actually generate.
    """

    name: str
    kind: str                      # e.g. "social network"
    paper_vertices: str            # Table 2 |V| as printed
    paper_edges: str               # Table 2 |E| as printed
    feature_dim: int               # Table 2 #F
    num_classes: int               # Table 2 #L
    num_vertices: int              # generated |V|
    avg_degree: float              # generated average undirected degree
    power_law: bool                # degree skew regime
    labeled: bool                  # ground-truth labels (vs random)
    num_communities: int = 0       # 0 -> use num_classes
    mixing: float = 0.2            # inter-community edge fraction
    exponent: float = 2.05         # degree power-law exponent (skewed sets)

    @property
    def communities(self):
        return self.num_communities or self.num_classes


@dataclass
class Dataset:
    """A fully materialized dataset: graph + features + labels + split."""

    spec: DatasetSpec
    graph: CSRGraph
    features: np.ndarray           # float32 (n, F)
    labels: np.ndarray             # int64 (n,)
    split: Split
    communities: np.ndarray = field(repr=False, default=None)

    @property
    def name(self):
        return self.spec.name

    @property
    def num_vertices(self):
        return self.graph.num_vertices

    @property
    def num_edges(self):
        return self.graph.num_edges

    @property
    def feature_dim(self):
        return self.features.shape[1]

    @property
    def num_classes(self):
        return self.spec.num_classes

    @property
    def train_ids(self):
        return self.split.train_ids

    @property
    def val_ids(self):
        return self.split.val_ids

    @property
    def test_ids(self):
        return self.split.test_ids

    def feature_bytes(self, vertices=None):
        """Bytes of feature data for ``vertices`` (default: all)."""
        count = self.num_vertices if vertices is None else len(vertices)
        return count * self.feature_dim * self.features.itemsize


# ----------------------------------------------------------------------
# Registry mirroring Table 2 (scaled sizes chosen so the full benchmark
# suite runs in minutes on a laptop; relative size ordering preserved).
# ----------------------------------------------------------------------
DATASET_SPECS = {spec.name: spec for spec in [
    DatasetSpec("reddit", "social network", "232.96K", "114.85M",
                feature_dim=602, num_classes=41, num_vertices=2400,
                avg_degree=44.0, power_law=True, labeled=True),
    DatasetSpec("ogb-arxiv", "citation network", "169.34K", "2.48M",
                feature_dim=128, num_classes=40, num_vertices=2200,
                avg_degree=14.0, power_law=True, labeled=True),
    DatasetSpec("ogb-products", "co-purchasing network", "2.45M", "126.17M",
                feature_dim=100, num_classes=47, num_vertices=3600,
                avg_degree=36.0, power_law=True, labeled=True),
    DatasetSpec("ogb-papers", "citation network", "111.06M", "1.6B",
                feature_dim=128, num_classes=172, num_vertices=6000,
                avg_degree=16.0, power_law=False, labeled=True,
                num_communities=172),
    DatasetSpec("amazon", "co-purchasing network", "1.57M", "264.34M",
                feature_dim=200, num_classes=107, num_vertices=3200,
                avg_degree=56.0, power_law=True, labeled=True),
    DatasetSpec("livejournal", "communication network", "4.85M", "90.55M",
                feature_dim=600, num_classes=60, num_vertices=4000,
                avg_degree=24.0, power_law=True, labeled=False),
    DatasetSpec("lj-large", "communication network", "7.49M", "232.1M",
                feature_dim=600, num_classes=60, num_vertices=5000,
                avg_degree=36.0, power_law=True, labeled=False),
    DatasetSpec("lj-links", "communication network", "5.2M", "205.25M",
                feature_dim=600, num_classes=60, num_vertices=4200,
                avg_degree=44.0, power_law=True, labeled=False),
    DatasetSpec("enwiki-links", "wikipedia links network", "13.59M", "1.37B",
                feature_dim=600, num_classes=60, num_vertices=6400,
                avg_degree=56.0, power_law=True, labeled=False),
]}

_CACHE = {}


def dataset_names():
    """Names of all registered datasets, in Table 2 order."""
    return list(DATASET_SPECS)


def _seed_for(name, scale):
    return zlib.crc32(f"{name}:{scale}".encode()) & 0x7FFFFFFF


def load_dataset(name, scale=1.0, seed=None, cache=True):
    """Build (or fetch from the in-process cache) a dataset by name.

    Parameters
    ----------
    name:
        One of :func:`dataset_names` (case-insensitive).
    scale:
        Multiplier on the registered vertex count; lets tests run on tiny
        instances (``scale=0.25``) and stress runs on bigger ones.
    seed:
        Override the deterministic per-name seed.
    cache:
        Reuse a previously built instance with identical parameters.
    """
    key = name.lower()
    if key not in DATASET_SPECS:
        raise DatasetError(
            f"unknown dataset {name!r}; known: {', '.join(DATASET_SPECS)}")
    spec = DATASET_SPECS[key]
    cache_key = (key, float(scale), seed)
    if cache and cache_key in _CACHE:
        return _CACHE[cache_key]

    rng = np.random.default_rng(
        _seed_for(key, scale) if seed is None else seed)
    n = max(64, int(spec.num_vertices * scale))
    if spec.power_law:
        graph, communities = power_law_graph(
            n, spec.avg_degree, rng, exponent=spec.exponent,
            num_communities=spec.communities, mixing=spec.mixing)
    else:
        graph, communities = flat_graph(
            n, spec.avg_degree, rng, num_communities=spec.communities,
            mixing=spec.mixing)

    if spec.labeled:
        features, labels = community_features_and_labels(
            communities, spec.feature_dim, spec.num_classes, rng)
    else:
        features, labels = random_features_and_labels(
            n, spec.feature_dim, spec.num_classes, rng)

    split = split_vertices(n, rng)
    dataset = Dataset(spec=spec, graph=graph, features=features,
                      labels=labels, split=split, communities=communities)
    if cache:
        _CACHE[cache_key] = dataset
    return dataset


def dataset_table(scale=1.0):
    """Rows reproducing Table 2 (plus generated sizes): one dict per
    dataset."""
    rows = []
    for spec in DATASET_SPECS.values():
        rows.append({
            "dataset": spec.name,
            "paper |V|": spec.paper_vertices,
            "paper |E|": spec.paper_edges,
            "#F": spec.feature_dim,
            "#L": spec.num_classes,
            "#hidden": 128,
            "generated |V|": max(64, int(spec.num_vertices * scale)),
            "power-law": spec.power_law,
            "labeled": spec.labeled,
        })
    return rows
