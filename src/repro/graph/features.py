"""Vertex feature and label synthesis.

The paper's accuracy experiments need datasets a GNN can genuinely learn
from.  We plant the signal the same way the graph generators plant
communities: every community has a feature centroid, vertices are noisy
copies of their community's centroid, and the label *is* the community
(with optional label noise).  A GNN then benefits from aggregation
(denoising over neighbors, most of which share the community), so graph
structure carries real information — exactly the regime the paper studies.

For the LiveJournal-family datasets the paper "randomly generate[s]
features and labels"; :func:`random_features_and_labels` mirrors that.
"""

from __future__ import annotations

import numpy as np

from ..analysis.sanitize import check_contract
from ..errors import DatasetError

__all__ = ["community_features_and_labels", "random_features_and_labels"]


@check_contract(shape=(None, None), dtype=np.float32)
def _finalize_features(features):
    """Cast to the library-wide feature dtype.  Every dataset's feature
    matrix leaves through here, so the contract (2-D float32) holds for
    all downstream transfer/cache byte accounting under
    ``FLAGS.sanitize``."""
    return np.ascontiguousarray(features, dtype=np.float32)


def community_features_and_labels(communities, feature_dim, num_classes,
                                  rng, noise=1.0, signal=0.25,
                                  label_noise=0.05):
    """Features/labels correlated with planted communities.

    Parameters
    ----------
    communities:
        Community id per vertex (``0..C-1``).
    feature_dim:
        Output feature dimensionality ``F``.
    num_classes:
        Number of label classes ``L``; community ``c`` maps to class
        ``c % L`` (generators normally use ``C == L``).
    noise:
        Standard deviation of per-vertex Gaussian noise.
    signal:
        Scale of the community centroid component.
    label_noise:
        Fraction of vertices whose label is replaced uniformly at random.

    Returns
    -------
    (features, labels):
        ``float32 (n, F)`` array and ``int64 (n,)`` array.
    """
    communities = np.asarray(communities, dtype=np.int64)
    if feature_dim <= 0 or num_classes <= 0:
        raise DatasetError("feature_dim and num_classes must be positive")
    num_communities = int(communities.max()) + 1 if len(communities) else 0
    centroids = rng.normal(0.0, 1.0, size=(num_communities, feature_dim))
    features = (signal * centroids[communities]
                + noise * rng.normal(0.0, 1.0,
                                     size=(len(communities), feature_dim)))
    labels = communities % num_classes
    if label_noise > 0 and len(labels):
        flip = rng.random(len(labels)) < label_noise
        labels = labels.copy()
        labels[flip] = rng.integers(0, num_classes, size=int(flip.sum()))
    return _finalize_features(features), labels.astype(np.int64)


def random_features_and_labels(num_vertices, feature_dim, num_classes, rng):
    """Uninformative features and labels (the paper's LiveJournal-family
    treatment): Gaussian features, uniform labels."""
    if feature_dim <= 0 or num_classes <= 0:
        raise DatasetError("feature_dim and num_classes must be positive")
    features = rng.normal(0.0, 1.0, size=(num_vertices, feature_dim))
    labels = rng.integers(0, num_classes, size=num_vertices)
    return _finalize_features(features), labels.astype(np.int64)
