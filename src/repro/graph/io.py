"""Saving/loading graphs and datasets, and bring-your-own-data
ingestion.

Besides the ``.npz`` round-trip used by the test-suite, this module is
the door for real data: :func:`load_edge_list` parses the ubiquitous
whitespace-separated edge-list text format (SNAP/KONECT downloads), and
:func:`dataset_from_arrays` wraps any graph + feature/label arrays as a
:class:`Dataset`, so every experiment in the library runs unchanged on
user-supplied graphs.
"""

from __future__ import annotations

import numpy as np

from ..errors import DatasetError, GraphError
from .build import from_edges
from .csr import CSRGraph
from .datasets import DATASET_SPECS, Dataset, DatasetSpec
from .splits import Split, split_vertices

__all__ = ["save_graph", "load_graph", "save_dataset",
           "load_dataset_file", "load_edge_list", "dataset_from_arrays"]


def load_edge_list(path, symmetrize_edges=True, comment_chars="#%"):
    """Parse a whitespace-separated edge-list text file into a graph.

    The format SNAP and KONECT dumps use: one ``src dst`` pair per
    line, ``#``/``%`` comment lines ignored, vertex ids arbitrary
    non-negative integers (compacted to ``0..n-1``).

    Returns ``(graph, original_ids)`` where ``original_ids[i]`` is the
    file's id of compacted vertex ``i``.
    """
    sources, destinations = [], []
    with open(path) as handle:
        for line in handle:
            stripped = line.strip()
            if not stripped or stripped[0] in comment_chars:
                continue
            parts = stripped.split()
            if len(parts) < 2:
                raise GraphError(
                    f"{path}: malformed edge line {stripped!r}")
            sources.append(int(parts[0]))
            destinations.append(int(parts[1]))
    if not sources:
        raise GraphError(f"{path} contains no edges")
    src = np.asarray(sources, dtype=np.int64)
    dst = np.asarray(destinations, dtype=np.int64)
    original_ids = np.unique(np.concatenate([src, dst]))
    lookup = {int(v): i for i, v in enumerate(original_ids)}
    src = np.fromiter((lookup[int(v)] for v in src), dtype=np.int64,
                      count=len(src))
    dst = np.fromiter((lookup[int(v)] for v in dst), dtype=np.int64,
                      count=len(dst))
    graph = from_edges(src, dst, len(original_ids),
                       symmetrize_edges=symmetrize_edges)
    return graph, original_ids


def dataset_from_arrays(graph, features, labels, num_classes=None,
                        name="custom", split=None, rng=None,
                        communities=None):
    """Wrap a graph plus feature/label arrays as a full
    :class:`Dataset`, ready for every experiment in the library.

    Parameters
    ----------
    graph:
        :class:`CSRGraph` (e.g. from :func:`load_edge_list`).
    features:
        ``(n, F)`` float array.
    labels:
        ``(n,)`` integer class labels.
    num_classes:
        Defaults to ``labels.max() + 1``.
    split:
        Optional :class:`~repro.graph.splits.Split`; defaults to the
        paper's 65:10:25 random split.
    """
    features = np.ascontiguousarray(features, dtype=np.float32)
    labels = np.ascontiguousarray(labels, dtype=np.int64)
    n = graph.num_vertices
    if features.ndim != 2 or len(features) != n:
        raise DatasetError(
            f"features must be (n, F) with n={n}, got {features.shape}")
    if labels.shape != (n,):
        raise DatasetError(
            f"labels must be (n,) with n={n}, got {labels.shape}")
    if labels.min(initial=0) < 0:
        raise DatasetError("labels must be non-negative class ids")
    num_classes = int(num_classes if num_classes is not None
                      else labels.max(initial=0) + 1)
    if split is None:
        split = split_vertices(
            n, rng if rng is not None else np.random.default_rng(0))
    split.validate()
    spec = DatasetSpec(
        name=name, kind="user-provided", paper_vertices=str(n),
        paper_edges=str(graph.num_edges),
        feature_dim=features.shape[1], num_classes=num_classes,
        num_vertices=n, avg_degree=graph.num_edges / max(n, 1),
        power_law=False, labeled=True)
    return Dataset(spec=spec, graph=graph, features=features,
                   labels=labels, split=split, communities=communities)


def save_graph(graph, path):
    """Write a :class:`CSRGraph` to ``path`` as a compressed npz archive."""
    np.savez_compressed(
        path, indptr=graph.indptr, indices=graph.indices,
        num_vertices=np.int64(graph.num_vertices),
        is_symmetric=np.bool_(graph.is_symmetric))


def load_graph(path):
    """Read a :class:`CSRGraph` previously written by :func:`save_graph`."""
    with np.load(path) as data:
        try:
            return CSRGraph(data["indptr"], data["indices"],
                            num_vertices=int(data["num_vertices"]),
                            is_symmetric=bool(data["is_symmetric"]))
        except KeyError as exc:
            raise GraphError(f"{path} is not a saved graph: missing {exc}")


def save_dataset(dataset, path):
    """Write a full :class:`Dataset` (graph + features + labels + split)."""
    np.savez_compressed(
        path,
        name=np.str_(dataset.spec.name),
        indptr=dataset.graph.indptr, indices=dataset.graph.indices,
        num_vertices=np.int64(dataset.graph.num_vertices),
        is_symmetric=np.bool_(dataset.graph.is_symmetric),
        features=dataset.features, labels=dataset.labels,
        train_mask=dataset.split.train_mask,
        val_mask=dataset.split.val_mask,
        test_mask=dataset.split.test_mask,
        communities=(dataset.communities if dataset.communities is not None
                     else np.zeros(0, dtype=np.int64)))


def load_dataset_file(path):
    """Read a :class:`Dataset` previously written by :func:`save_dataset`."""
    with np.load(path) as data:
        name = str(data["name"])
        if name not in DATASET_SPECS:
            raise GraphError(f"{path} references unknown dataset {name!r}")
        graph = CSRGraph(data["indptr"], data["indices"],
                         num_vertices=int(data["num_vertices"]),
                         is_symmetric=bool(data["is_symmetric"]))
        split = Split(data["train_mask"], data["val_mask"],
                      data["test_mask"])
        communities = data["communities"]
        return Dataset(
            spec=DATASET_SPECS[name], graph=graph,
            features=data["features"], labels=data["labels"], split=split,
            communities=communities if len(communities) else None)
