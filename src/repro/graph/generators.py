"""Synthetic graph generators.

The dataset suite (``repro.graph.datasets``) needs graphs with controllable
*degree skew* (power-law vs. flat) and *community structure* (clustering,
label locality), because those are the structural properties the paper's
conclusions rest on.  All generators share one engine,
:func:`community_configuration_graph`, which plants both properties:

* each vertex gets a sampling *weight* — power-law weights give skewed
  degrees, constant weights give flat degrees;
* each vertex belongs to a *community*; an edge keeps its destination
  inside the source's community with probability ``1 - mixing``.

All generators return undirected (symmetric) :class:`CSRGraph` objects and
take an explicit :class:`numpy.random.Generator` for reproducibility.
"""

from __future__ import annotations

import numpy as np

from ..errors import GraphError
from .build import from_edges

__all__ = [
    "community_configuration_graph",
    "power_law_graph",
    "flat_graph",
    "erdos_renyi_graph",
    "planted_partition_graph",
    "power_law_weights",
]


def power_law_weights(n, exponent, rng):
    """Vertex sampling weights whose induced degrees follow a power law.

    Uses the Chung–Lu recipe: ``w_i proportional to (i + i0)^(-1/(exponent-1))``
    over a random permutation of ranks, so high-weight vertices are spread
    across vertex ids (and therefore across communities).
    """
    if exponent <= 1.0:
        raise GraphError(f"power-law exponent must exceed 1, got {exponent}")
    ranks = rng.permutation(n) + 1.0
    return ranks ** (-1.0 / (exponent - 1.0))


def community_configuration_graph(num_vertices, num_edges, communities,
                                  weights, mixing, rng):
    """Sample an undirected graph with planted communities and given
    vertex weights.

    Parameters
    ----------
    num_vertices:
        Vertex count ``n``.
    num_edges:
        Target number of *undirected* edges (the result has roughly
        ``2 * num_edges`` directed edges; duplicates and self-loops are
        dropped, so slightly fewer).
    communities:
        ``int`` array of length ``n`` with community ids ``0..C-1``.
    weights:
        Positive sampling weights of length ``n``.
    mixing:
        Probability that an edge leaves its source's community
        (``0`` = perfectly assortative, ``1`` = community-blind).
    rng:
        :class:`numpy.random.Generator`.
    """
    n = int(num_vertices)
    m = int(num_edges)
    communities = np.asarray(communities, dtype=np.int64)
    weights = np.asarray(weights, dtype=np.float64)
    if len(communities) != n or len(weights) != n:
        raise GraphError("communities/weights must have length num_vertices")
    if not 0.0 <= mixing <= 1.0:
        raise GraphError(f"mixing must be in [0, 1], got {mixing}")
    if np.any(weights <= 0):
        raise GraphError("weights must be positive")
    if m <= 0 or n <= 1:
        return from_edges([], [], n, symmetrize_edges=True)

    probs = weights / weights.sum()

    def draw_edges(count):
        """Draw ``count`` candidate edges honoring the mixing parameter."""
        src = rng.choice(n, size=count, p=probs)
        dst = np.empty(count, dtype=np.int64)
        intra = rng.random(count) >= mixing
        n_inter = int((~intra).sum())
        if n_inter:
            # Inter-community (community-blind) destinations.
            dst[~intra] = rng.choice(n, size=n_inter, p=probs)
        if intra.any():
            # Intra-community destinations: per-community weighted choice.
            comm_of_src = communities[src]
            for c in np.unique(comm_of_src[intra]):
                members = np.flatnonzero(communities == c)
                take = intra & (comm_of_src == c)
                picks = int(take.sum())
                if len(members) < 2:
                    dst[take] = rng.choice(n, size=picks, p=probs)
                    continue
                local = weights[members]
                dst[take] = members[rng.choice(
                    len(members), size=picks, p=local / local.sum())]
        return src, dst

    # Hubs collide often, so a single oversampled draw can fall well short
    # of the target after dedup.  Top up until within 5% or out of rounds.
    all_src, all_dst = draw_edges(int(m * 1.15) + 16)
    graph = from_edges(all_src, all_dst, n, symmetrize_edges=True)
    for _round in range(4):
        have = graph.num_edges // 2
        if have >= 0.95 * m:
            break
        retention = max(have / max(len(all_src), 1), 0.05)
        extra_src, extra_dst = draw_edges(
            int((m - have) / retention) + 16)
        all_src = np.concatenate([all_src, extra_src])
        all_dst = np.concatenate([all_dst, extra_dst])
        graph = from_edges(all_src, all_dst, n, symmetrize_edges=True)
    return graph


def power_law_graph(num_vertices, avg_degree, rng, exponent=2.3,
                    num_communities=1, mixing=0.2):
    """Power-law graph (optionally with communities).

    ``avg_degree`` counts undirected incident edges per vertex, so the
    generated directed edge count is roughly ``num_vertices * avg_degree``.
    """
    n = int(num_vertices)
    m = max(1, int(n * avg_degree / 2))
    weights = power_law_weights(n, exponent, rng)
    communities = assign_communities(n, num_communities, rng)
    return community_configuration_graph(n, m, communities, weights,
                                         mixing, rng), communities


def flat_graph(num_vertices, avg_degree, rng, num_communities=1,
               mixing=0.2, weight_jitter=0.1):
    """Graph with a *flat* (low-variance) degree distribution.

    Stand-in for graphs the paper treats as non-power-law (OGB-Papers):
    vertex weights are near-constant, so degree no longer predicts access
    frequency and degree-based caching loses its edge.
    """
    n = int(num_vertices)
    m = max(1, int(n * avg_degree / 2))
    weights = 1.0 + weight_jitter * rng.random(n)
    communities = assign_communities(n, num_communities, rng)
    return community_configuration_graph(n, m, communities, weights,
                                         mixing, rng), communities


def erdos_renyi_graph(num_vertices, avg_degree, rng):
    """Uniform random graph: flat degrees, no communities."""
    graph, _ = flat_graph(num_vertices, avg_degree, rng,
                          num_communities=1, mixing=1.0, weight_jitter=0.0)
    return graph


def planted_partition_graph(num_vertices, num_communities, avg_degree,
                            rng, mixing=0.1):
    """Classic planted-partition (stochastic block) graph with equal-size
    communities and flat degrees; returns ``(graph, communities)``."""
    return flat_graph(num_vertices, avg_degree, rng,
                      num_communities=num_communities, mixing=mixing)


def assign_communities(num_vertices, num_communities, rng,
                       contiguous=True):
    """Assign each vertex a community id in ``0..C-1``.

    ``contiguous=True`` lays communities out as consecutive id blocks —
    mirroring real datasets whose crawl order groups related vertices —
    which matters for the 256 KB-block locality experiments (Figure 15).
    """
    n, c = int(num_vertices), int(num_communities)
    if c <= 0:
        raise GraphError(f"need at least one community, got {c}")
    if contiguous:
        return (np.arange(n, dtype=np.int64) * c) // max(n, 1)
    return rng.integers(0, c, size=n, dtype=np.int64)
