"""Train/validation/test vertex splits.

The paper splits every dataset 65:10:25 (train:val:test); that ratio is the
default here.  Splits are represented as three boolean masks over vertex
ids; exactly one mask is true for every vertex.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import DatasetError

__all__ = ["Split", "split_vertices"]

DEFAULT_RATIOS = (0.65, 0.10, 0.25)


@dataclass(frozen=True)
class Split:
    """Boolean masks selecting train/val/test vertices."""

    train_mask: np.ndarray
    val_mask: np.ndarray
    test_mask: np.ndarray

    @property
    def train_ids(self):
        return np.flatnonzero(self.train_mask)

    @property
    def val_ids(self):
        return np.flatnonzero(self.val_mask)

    @property
    def test_ids(self):
        return np.flatnonzero(self.test_mask)

    @property
    def num_vertices(self):
        return len(self.train_mask)

    def validate(self):
        """Raise :class:`DatasetError` unless the masks partition 0..n-1."""
        total = (self.train_mask.astype(int) + self.val_mask.astype(int)
                 + self.test_mask.astype(int))
        if not np.all(total == 1):
            raise DatasetError("split masks must partition the vertex set")


def split_vertices(num_vertices, rng, ratios=DEFAULT_RATIOS):
    """Randomly split ``0..n-1`` into train/val/test by ``ratios``.

    Ratios must be positive and sum to 1 (within fp tolerance); the split
    is exact up to rounding, with the remainder assigned to test.
    """
    if len(ratios) != 3 or any(r <= 0 for r in ratios):
        raise DatasetError(f"need three positive ratios, got {ratios}")
    if abs(sum(ratios) - 1.0) > 1e-9:
        raise DatasetError(f"ratios must sum to 1, got {sum(ratios)}")
    n = int(num_vertices)
    order = rng.permutation(n)
    n_train = int(round(n * ratios[0]))
    n_val = int(round(n * ratios[1]))
    train_mask = np.zeros(n, dtype=bool)
    val_mask = np.zeros(n, dtype=bool)
    test_mask = np.zeros(n, dtype=bool)
    train_mask[order[:n_train]] = True
    val_mask[order[n_train:n_train + n_val]] = True
    test_mask[order[n_train + n_val:]] = True
    return Split(train_mask, val_mask, test_mask)
