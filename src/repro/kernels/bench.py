"""Per-backend sparse-kernel microbenchmarks.

Times every registered-and-available backend on the registry's three
kernels over one seeded power-law sampled-block workload — the CSR
mean-aggregation SpMM (GCN/SAGE's hot multiply), the COO edge-score
SDDMM and the edge softmax (GAT's attention path) — and verifies on
the same run that each backend's output is *byte-identical* to the
reference, so a speedup row can never hide a numerics change.

Shared by the ``repro kernel-bench`` CLI command and
``benchmarks/bench_kernel_backends.py``; both merge the rows into
``BENCH_hotpath.json`` under the ``kernel_backends`` key (next to the
block-assembly and sampler rows) via :func:`merge_into_hotpath`.

All timing flows through :func:`repro.perf.profiler.wall_clock` — the
one sanctioned real-time read (RPR002).
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from ..errors import KernelError
from ..graph.generators import power_law_graph
from ..perf import PERF
from ..perf.profiler import wall_clock
from ..sampling import build_block
from ..sampling.base import draw_neighbors
from .adjacency import KernelCOO, normalized_block_adjacency
from .registry import (available_backends, edge_softmax_forward,
                       gsddmm_forward, gspmm_forward, resolve_backend)

__all__ = ["run_kernel_bench", "merge_into_hotpath", "HOTPATH_PATH"]

#: The repo-root benchmark ledger the rows are merged into.
HOTPATH_PATH = Path(__file__).resolve().parents[3] / "BENCH_hotpath.json"

#: Full-size workload (matches ``bench_hotpath_kernels``'s scale).
FULL = dict(num_vertices=200_000, avg_degree=16, num_seeds=4096,
            fanout=15, dim=128, rounds=20)

#: Smoke-size workload for CI and ``--quick``.
QUICK = dict(num_vertices=20_000, avg_degree=12, num_seeds=512,
             fanout=10, dim=64, rounds=5)


def _best_of(fn, rounds):
    """Best (minimum) wall time of ``rounds`` calls, in seconds."""
    best = float("inf")
    for _round in range(rounds):
        start = wall_clock()
        fn()
        best = min(best, wall_clock() - start)
    return best


def _workload(params, seed=7):
    """One seeded sampled block plus dense operands.

    Returns ``(csr, coo, x, scores)``: the block's normalized
    aggregation operator, its GAT edge list (self-loops appended),
    float32 source features, and per-edge attention scores.
    """
    rng = np.random.default_rng(seed)
    graph, _ = power_law_graph(params["num_vertices"],
                               params["avg_degree"], rng)
    seeds = rng.choice(params["num_vertices"], params["num_seeds"],
                       replace=False)
    counts = np.full(params["num_seeds"], params["fanout"],
                     dtype=np.int64)
    edge_dst, edge_src = draw_neighbors(graph, seeds, counts, rng)
    block = build_block(seeds, edge_dst, edge_src)
    csr = normalized_block_adjacency(block, self_loops=True)

    dst = np.repeat(np.arange(block.num_dst, dtype=np.int64),
                    block.degrees())
    loops = np.arange(block.num_dst, dtype=np.int64)
    coo = KernelCOO(np.concatenate([dst, loops]),
                    np.concatenate([block.indices, loops]),
                    (block.num_dst, block.num_src))

    x = rng.standard_normal((block.num_src, params["dim"])) \
        .astype(np.float32)
    scores = rng.standard_normal(coo.nnz).astype(np.float32)
    return csr, coo, x, scores


def _time_backends(kernel, run, reference_out, rounds):
    """Per-backend timing rows for one kernel.

    ``run(backend_name)`` must return the kernel's output; each
    backend's bytes are compared against ``reference_out`` so the table
    doubles as a conformance check.
    """
    rows = {}
    reference_ms = None
    for name in available_backends():
        out = run(name)
        identical = bool(np.asarray(out).tobytes()
                         == np.asarray(reference_out).tobytes())
        if not identical:
            raise KernelError(
                f"backend {name!r} diverged from the reference on "
                f"{kernel}")
        before = PERF.snapshot()
        elapsed = _best_of(lambda: run(name), rounds)
        delta = PERF.delta(before)
        rows[name] = {
            "ms": elapsed * 1e3,
            "bit_identical": identical,
            "fallbacks": int(delta.get("kernel_fallbacks", 0)),
        }
        if name == "reference":
            reference_ms = rows[name]["ms"]
    for name, row in rows.items():
        row["speedup"] = reference_ms / row["ms"]
    return rows


def _summarize(kernel, rows, extra):
    accelerated = {name: row for name, row in rows.items()
                   if name != "reference" and row["fallbacks"] == 0}
    best = max(accelerated, key=lambda n: accelerated[n]["speedup"]) \
        if accelerated else "reference"
    summary = {"backends": rows, "best_backend": best,
               "best_speedup": (accelerated[best]["speedup"]
                                if accelerated else 1.0)}
    summary.update(extra)
    return summary


def run_kernel_bench(quick=False, seed=7):
    """Time every available backend on each kernel; returns a
    JSON-serializable dict of per-backend rows.

    Backends whose output is not byte-identical to the reference abort
    the run with :class:`~repro.errors.KernelError` — the bench never
    reports a speedup for different math.
    """
    params = dict(QUICK if quick else FULL)
    csr, coo, x, scores = _workload(params, seed=seed)
    rounds = params["rounds"]

    spmm_ref = gspmm_forward(csr, x, backend="reference")
    spmm = _time_backends(
        "gspmm", lambda name: gspmm_forward(csr, x, backend=name),
        spmm_ref, rounds)

    q = x[:csr.shape[0], :1]
    k = x[:, :1]
    sddmm_ref = gsddmm_forward(coo, q, k, op="add", backend="reference")
    sddmm = _time_backends(
        "gsddmm",
        lambda name: gsddmm_forward(coo, q, k, op="add", backend=name),
        sddmm_ref, rounds)

    softmax_ref = edge_softmax_forward(coo, scores, backend="reference")
    softmax = _time_backends(
        "edge_softmax",
        lambda name: edge_softmax_forward(coo, scores, backend=name),
        softmax_ref, rounds)

    return {
        "workload": {key: int(value) if isinstance(value, int) else value
                     for key, value in params.items()},
        "auto_backend": resolve_backend("auto").name,
        "spmm": _summarize("gspmm", spmm,
                           {"nnz": csr.nnz, "dim": params["dim"]}),
        "sddmm": _summarize("gsddmm", sddmm, {"nnz": coo.nnz}),
        "edge_softmax": _summarize("edge_softmax", softmax,
                                   {"nnz": coo.nnz}),
    }


def merge_into_hotpath(results, path=HOTPATH_PATH):
    """Merge the bench rows into ``BENCH_hotpath.json`` under the
    ``kernel_backends`` key, preserving every other stage's rows."""
    path = Path(path)
    existing = json.loads(path.read_text()) if path.exists() else {}
    existing["kernel_backends"] = results
    path.write_text(json.dumps(existing, indent=2, sort_keys=True)
                    + "\n")
    return path


def format_report(results):
    """Human-readable per-backend table rows (for the CLI)."""
    from ..core import format_table
    rows = []
    for kernel in ("spmm", "sddmm", "edge_softmax"):
        for name, row in results[kernel]["backends"].items():
            rows.append({
                "kernel": kernel,
                "backend": name,
                "ms": round(row["ms"], 3),
                "speedup": round(row["speedup"], 2),
                "bit_identical": row["bit_identical"],
                "fallbacks": row["fallbacks"],
            })
    return format_table(rows, title="Sparse-kernel backends "
                                    "(vs pinned reference)")
