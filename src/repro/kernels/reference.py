"""The pinned numpy reference backend.

Every other backend must reproduce this one bit-for-bit (the
``tests/kernels`` conformance matrix enforces it), so the reference
fixes not just the *values* but the *accumulation order* of every
kernel:

* CSR aggregation scatter-adds stored entries in storage order via
  ``np.add.at`` — the exact per-row sequential order scipy's
  ``csr_matvecs`` uses, which is what makes the scipy backend
  bit-identical rather than merely close.
* COO aggregation scatter-adds edges in list order (GAT's contract:
  block CSR edges first, appended self-loops last).
* ``edge_softmax`` runs the per-segment max/sum in float64 and casts
  the probabilities back, matching the autograd engine's historical
  ``segment_softmax``.

``np.add.at`` is an unbuffered ufunc: repeated indices accumulate
sequentially in element order, which is the property the whole
bit-exactness story rests on.
"""

from __future__ import annotations

import numpy as np

from ..errors import KernelError

__all__ = ["ReferenceBackend"]


def _edge_endpoints(adj):
    """``(edge_dst, edge_src, values_or_None)`` in storage order for
    either adjacency layout."""
    if hasattr(adj, "edge_dst"):
        return adj.edge_dst, adj.edge_src, None
    rows = np.repeat(np.arange(adj.shape[0], dtype=np.int64),
                     adj.row_degrees())
    return rows, adj.indices, adj.data


class ReferenceBackend:
    """Pure-numpy kernels; always available; defines the semantics."""

    name = "reference"

    def available(self):
        return True

    def supports(self, kind, layout, op):
        """The reference implements the full op surface."""
        if kind == "gspmm":
            return op in ("mul", "copy_rhs")
        if kind == "gsddmm":
            return op in ("add", "mul", "dot")
        return kind == "edge_softmax"

    # ------------------------------------------------------------------
    # gspmm: y[i] = reduce over edges (i, j) of values[e] (*) x[j]
    # ------------------------------------------------------------------
    def gspmm(self, adj, x, values, op):
        """Sum-reduce aggregation (mean/max are layered in the registry
        dispatch so every backend shares one normalization/extremum
        code path)."""
        edge_dst, edge_src, stored = _edge_endpoints(adj)
        if values is None:
            values = stored
        if op == "mul" and values is None:
            raise KernelError("gspmm op='mul' needs edge values")
        gathered = x[edge_src]
        contribution = gathered if op == "copy_rhs" \
            else values[:, None] * gathered
        out = np.zeros((adj.shape[0], x.shape[1]), dtype=x.dtype)
        np.add.at(out, edge_dst, contribution)
        return out

    def gspmm_max(self, adj, x, values, op):
        """Max-reduce forward plus the argmax map the backward needs.

        Rows with no stored edges stay 0 (the sum-reduce convention).
        Ties resolve to the first stored edge, matching a sequential
        scan in storage order.
        """
        edge_dst, edge_src, stored = _edge_endpoints(adj)
        if values is None:
            values = stored
        gathered = x[edge_src]
        contribution = gathered if op == "copy_rhs" \
            else values[:, None] * gathered
        num_rows, width = adj.shape[0], x.shape[1]
        out = np.full((num_rows, width), -np.inf, dtype=x.dtype)
        np.maximum.at(out, edge_dst, contribution)
        # First stored edge achieving the max, per (row, feature).
        argmax = np.full((num_rows, width), len(edge_dst),
                         dtype=np.int64)
        if len(edge_dst):
            hit = contribution == out[edge_dst]
            candidates = np.where(
                hit, np.arange(len(edge_dst), dtype=np.int64)[:, None],
                np.int64(len(edge_dst)))
            np.minimum.at(argmax, edge_dst, candidates)
        empty = argmax == len(edge_dst)
        out[empty] = 0.0
        return out, argmax

    # ------------------------------------------------------------------
    # gsddmm: s[e] = op(q[dst_e], k[src_e])
    # ------------------------------------------------------------------
    def gsddmm(self, adj, q, k, op):
        edge_dst, edge_src, _ = _edge_endpoints(adj)
        lhs = q[edge_dst]
        rhs = k[edge_src]
        if op == "add":
            return lhs + rhs
        if op == "mul":
            return lhs * rhs
        if op == "dot":
            return (lhs * rhs).sum(axis=1)
        raise KernelError(f"unknown gsddmm op {op!r}")

    # ------------------------------------------------------------------
    # edge_softmax: per-destination softmax over edge scores
    # ------------------------------------------------------------------
    def edge_softmax(self, adj, scores):
        edge_dst, _edge_src, _ = _edge_endpoints(adj)
        count = adj.shape[0]
        seg_max = np.full(count, -np.inf, dtype=np.float64)
        np.maximum.at(seg_max, edge_dst, scores)
        shifted = scores - seg_max[edge_dst]
        exp = np.exp(shifted)
        seg_sum = np.zeros(count, dtype=np.float64)
        np.add.at(seg_sum, edge_dst, exp)
        seg_sum[seg_sum == 0] = 1.0
        return (exp / seg_sum[edge_dst]).astype(scores.dtype)
