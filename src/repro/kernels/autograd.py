"""The thin autograd boundary over the kernel registry.

Follows the HGL-proto ``GSPMMFunction``/``GSDDMMFunction`` shape: each
public function runs its forward through the registry dispatch and
records a backward closure built from the *same* registry primitives —

* ``gspmm`` backward routes the output gradient source-ward through
  the explicitly materialized, memoized transposed CSR
  (:meth:`KernelCSR.transpose` — the ``rev_sparse`` idiom), and
  recovers the per-edge value gradient with ``gsddmm(adj, grad, x,
  "dot")``;
* ``gsddmm`` backward scatter-adds the edge gradient back to the
  destination- and source-side operands;
* ``edge_softmax`` backward applies the per-segment Jacobian
  ``p * (g - sum_segment(g * p))`` with the same float64 segment
  accumulators as the forward.

Inputs may be plain arrays (forward only, arrays out) or
:class:`~repro.nn.tensor.Tensor` operands (a taped Tensor comes back).
The Tensor class is imported lazily at call time: ``repro.nn.layers``
imports this package at module scope, so a module-level import of the
tensor engine here would cycle.
"""

from __future__ import annotations

import numpy as np

from ..errors import KernelError
from .adjacency import KernelCOO, as_adjacency
from .registry import (edge_softmax_forward, gsddmm_forward,
                       gspmm_forward)

__all__ = ["gspmm", "gsddmm", "edge_softmax"]


def _tensor_cls():
    from ..nn.tensor import Tensor
    return Tensor


def _split(operand, tensor_cls):
    """``(tensor_or_None, array)`` for a Tensor-or-array operand."""
    if isinstance(operand, tensor_cls):
        return operand, operand.data
    return None, (None if operand is None else np.asarray(operand))


def _edges(adj):
    """Destination/source edge endpoints in storage order."""
    if isinstance(adj, KernelCOO):
        return adj.edge_dst, adj.edge_src
    rows = np.repeat(np.arange(adj.shape[0], dtype=np.int64),
                     adj.row_degrees())
    return rows, adj.indices


def _scatter_rows(index, contribution, num_rows):
    """``out[index] += contribution`` into a fresh ``(num_rows, d)``
    buffer, edges in storage order (the pinned accumulation order)."""
    out = np.zeros((num_rows, contribution.shape[1]),
                   dtype=contribution.dtype)
    np.add.at(out, index, contribution)
    return out


def gspmm(adj, x, values=None, op="mul", reduce="sum", backend=None):
    """Differentiable generalized SpMM (see
    :func:`~repro.kernels.registry.gspmm_forward` for semantics).

    Gradients flow into ``x`` and — when given as a Tensor — the
    per-edge ``values`` (GAT's attention coefficients).  The ``max``
    reduction is forward-only.
    """
    tensor_cls = _tensor_cls()
    adj = as_adjacency(adj)
    x_t, x_arr = _split(x, tensor_cls)
    v_t, v_arr = _split(values, tensor_cls)
    out = gspmm_forward(adj, x_arr, v_arr, op=op, reduce=reduce,
                        backend=backend)
    if x_t is None and v_t is None:
        return out
    if reduce == "max" and (x_t is not None and x_t.requires_grad
                            or v_t is not None and v_t.requires_grad):
        raise KernelError("gspmm reduce='max' is forward-only")

    def backward(grad):
        grad = grad if grad.ndim == 2 else grad[:, None]
        if reduce == "mean":
            counts = np.bincount(_edges(adj)[0],
                                 minlength=adj.shape[0]) \
                if isinstance(adj, KernelCOO) else adj.row_degrees()
            counts = counts.astype(grad.dtype)
            counts[counts == 0] = 1
            grad = grad / counts[:, None]
        if x_t is not None and x_t.requires_grad:
            if isinstance(adj, KernelCOO):
                routed = gspmm_forward(adj.reverse(), grad, v_arr,
                                       op=op, backend=backend)
            else:
                # Explicit values ride in the *original* storage order;
                # the transpose's stored edges are permuted, so the
                # values must be permuted alongside them.
                v_routed = None if v_arr is None else \
                    v_arr[adj.transpose_permutation()]
                routed = gspmm_forward(adj.transpose(), grad, v_routed,
                                       op=op, backend=backend)
            x_t._accumulate(routed if x_arr.ndim == 2
                            else routed[:, 0])
        if v_t is not None and v_t.requires_grad:
            features = x_arr if x_arr.ndim == 2 else x_arr[:, None]
            v_t._accumulate(
                gsddmm_forward(adj, grad, features, op="dot",
                               backend=backend))

    parents = tuple(p for p in (x_t, v_t) if p is not None)
    return tensor_cls._result(out, parents, backward)


def gsddmm(adj, q, k, op="add", backend=None):
    """Differentiable generalized SDDMM: per stored edge ``(i, j)``,
    ``s[e] = op(q[i], k[j])`` (``q`` destination-side, ``k``
    source-side).  The backward scatter-adds the edge gradient back to
    both operands."""
    tensor_cls = _tensor_cls()
    adj = as_adjacency(adj)
    q_t, q_arr = _split(q, tensor_cls)
    k_t, k_arr = _split(k, tensor_cls)
    out = gsddmm_forward(adj, q_arr, k_arr, op=op, backend=backend)
    if q_t is None and k_t is None:
        return out

    edge_dst, edge_src = _edges(adj)
    q2 = q_arr if q_arr.ndim == 2 else q_arr[:, None]
    k2 = k_arr if k_arr.ndim == 2 else k_arr[:, None]

    def backward(grad):
        grad2 = grad if grad.ndim == 2 else grad[:, None]
        if k_t is not None and k_t.requires_grad:
            if op == "add":
                contribution = np.broadcast_to(
                    grad2, (adj.nnz, k2.shape[1]))
            elif op == "mul":
                contribution = grad2 * q2[edge_dst]
            else:  # dot
                contribution = grad2 * q2[edge_dst]
            routed = _scatter_rows(edge_src, contribution, k2.shape[0])
            k_t._accumulate(routed if k_arr.ndim == 2
                            else routed[:, 0])
        if q_t is not None and q_t.requires_grad:
            if op == "add":
                contribution = np.broadcast_to(
                    grad2, (adj.nnz, q2.shape[1]))
            elif op == "mul":
                contribution = grad2 * k2[edge_src]
            else:  # dot
                contribution = grad2 * k2[edge_src]
            routed = _scatter_rows(edge_dst, contribution, q2.shape[0])
            q_t._accumulate(routed if q_arr.ndim == 2
                            else routed[:, 0])

    # Parents source-side first: the backward tape then replays the
    # source-side branch before the destination-side one, preserving
    # the gradient accumulation order (and therefore the bits) of the
    # pre-registry gather/add formulation of GAT's score computation.
    parents = tuple(p for p in (k_t, q_t) if p is not None)
    return tensor_cls._result(out, parents, backward)


def edge_softmax(adj, scores, backend=None):
    """Differentiable per-destination softmax over 1-D edge scores
    (GAT's attention normalization)."""
    tensor_cls = _tensor_cls()
    adj = as_adjacency(adj)
    s_t, s_arr = _split(scores, tensor_cls)
    probs = edge_softmax_forward(adj, s_arr, backend=backend)
    if s_t is None:
        return probs

    edge_dst, _ = _edges(adj)
    count = adj.shape[0]

    def backward(grad):
        # dx = p * (g - sum_segment(g * p)), float64 accumulators as
        # in the forward (and the engine's segment_softmax).
        weighted = grad * probs
        seg_dot = np.zeros(count, dtype=np.float64)
        np.add.at(seg_dot, edge_dst, weighted)
        s_t._accumulate(probs * (grad - seg_dot[edge_dst]))

    return tensor_cls._result(probs, (s_t,), backward)
