"""Adjacency containers for the kernel registry.

Two layouts cover every aggregation in the library:

* :class:`KernelCSR` — a weighted ``num_rows x num_cols`` CSR operator
  (the normalized mean-aggregation matrices of GCN/SAGE, the full-graph
  serving operators, and their transposes for the backward pass).
* :class:`KernelCOO` — an explicit edge list in ``(dst, src)`` pairs
  (GAT's attention path, where per-edge values are data-dependent and
  the *edge order* — block CSR edges followed by appended self-loops —
  is part of the numerical contract).

Both are thin, immutable-by-convention wrappers over int64/float32
numpy arrays.  :meth:`KernelCSR.transpose` materializes the transposed
CSR explicitly and memoizes it in both directions, so every backward
pass through a reused operator transposes once — the HGL/DGL
``rev_sparse`` idiom.

Bit-exactness notes (pinned by ``tests/kernels/``):

* :func:`transpose_csr` (stable argsort by column) produces byte-for-
  byte the same ``indptr``/``indices``/``data`` as scipy's
  ``.T.tocsr()``, so the reference and scipy backends share one
  transpose layout.
* :func:`normalized_block_adjacency` reproduces the exact stored
  layout scipy's historical construction emitted — including the
  *descending* per-row column order that scipy's SMMP-based
  ``diags @ csr`` product leaves behind — so reference-backend runs are
  bit-identical to the pre-registry implementation.
"""

from __future__ import annotations

import numpy as np

from ..errors import KernelError
from ..perf import PERF

__all__ = ["KernelCSR", "KernelCOO", "transpose_csr",
           "normalized_block_adjacency", "full_graph_adjacency",
           "as_adjacency"]


def transpose_csr(indptr, indices, data=None, num_cols=None,
                  order=None):
    """Explicitly materialize the transpose of a CSR matrix.

    Returns ``(t_indptr, t_indices, t_data)`` (``t_data`` is ``None``
    when ``data`` is).  The stable argsort by column reproduces scipy's
    ``.T.tocsr()`` arrays byte-for-byte: both bucket entries by column
    in row-major scan order, so each output row lists its entries by
    ascending former row id.  ``order`` may supply that argsort
    precomputed (transposed entry ``p`` is original entry ``order[p]``).
    """
    indptr = np.asarray(indptr, dtype=np.int64)
    indices = np.asarray(indices, dtype=np.int64)
    num_rows = len(indptr) - 1
    if num_cols is None:
        num_cols = int(indices.max()) + 1 if len(indices) else 0
    if order is None:
        order = np.argsort(indices, kind="stable")
    rows = np.repeat(np.arange(num_rows, dtype=np.int64),
                     np.diff(indptr))
    t_indices = rows[order]
    counts = np.bincount(indices, minlength=num_cols)
    t_indptr = np.concatenate(([0], np.cumsum(counts))).astype(np.int64)
    t_data = None if data is None else np.asarray(data)[order]
    return t_indptr, t_indices, t_data


class KernelCSR:
    """A weighted CSR operator with a memoized explicit transpose.

    Quacks enough like ``scipy.sparse.csr_matrix`` (``shape``, ``nnz``,
    ``toarray``, ``sum(axis=1)``) for the operator-consuming tests and
    cost metering, without importing scipy.
    """

    __slots__ = ("indptr", "indices", "data", "shape", "_transpose",
                 "_transpose_perm", "_scipy", "_scipy_ones",
                 "_scipy_weighted")

    def __init__(self, indptr, indices, data, shape):
        self.indptr = np.ascontiguousarray(indptr, dtype=np.int64)
        self.indices = np.ascontiguousarray(indices, dtype=np.int64)
        self.data = np.ascontiguousarray(data, dtype=np.float32)
        self.shape = (int(shape[0]), int(shape[1]))
        if len(self.indptr) != self.shape[0] + 1:
            raise KernelError(
                f"indptr length {len(self.indptr)} does not match "
                f"{self.shape[0]} rows")
        if len(self.indices) != len(self.data):
            raise KernelError("indices and data must align")
        self._transpose = None
        self._transpose_perm = None
        self._scipy = None
        self._scipy_ones = None
        self._scipy_weighted = None

    @property
    def nnz(self):
        return len(self.indices)

    def row_degrees(self):
        """Stored entries per row (int64)."""
        return np.diff(self.indptr)

    def transpose_permutation(self):
        """The stable argsort-by-column permutation relating this
        operator's stored-edge order to its transpose's: transposed
        stored edge ``p`` is original stored edge ``perm[p]``.  Memoized
        (and shared with :meth:`transpose`), so per-edge quantities kept
        in original storage order — GAT's explicit attention values in
        the backward pass — can ride the transposed operator via
        ``values[perm]``."""
        if self._transpose_perm is None:
            self._transpose_perm = np.argsort(self.indices,
                                              kind="stable")
        return self._transpose_perm

    def transpose(self):
        """The transposed operator as another :class:`KernelCSR`.

        Built once and memoized in *both* directions, so
        ``A.transpose().transpose() is A`` and repeated backward passes
        reuse one materialization (``kernel_transpose_hits`` /
        ``kernel_transpose_misses`` count the reuse).
        """
        if self._transpose is not None:
            PERF.count("kernel_transpose_hits")
            return self._transpose
        PERF.count("kernel_transpose_misses")
        t_indptr, t_indices, t_data = transpose_csr(
            self.indptr, self.indices, self.data,
            num_cols=self.shape[1],
            order=self.transpose_permutation())
        transpose = KernelCSR(t_indptr, t_indices, t_data,
                              (self.shape[1], self.shape[0]))
        transpose._transpose = self
        self._transpose = transpose
        return transpose

    def take_rows(self, rows):
        """A new operator holding only ``rows`` (in the given order),
        each row's stored entries in their original order."""
        rows = np.asarray(rows, dtype=np.int64)
        starts = self.indptr[rows]
        lengths = self.indptr[rows + 1] - starts
        indptr = np.concatenate(([0], np.cumsum(lengths))).astype(np.int64)
        gather = np.concatenate(
            [np.arange(s, s + n) for s, n in zip(starts, lengths)]) \
            if len(rows) else np.empty(0, dtype=np.int64)
        return KernelCSR(indptr, self.indices[gather],
                         self.data[gather],
                         (len(rows), self.shape[1]))

    def toarray(self):
        """Dense float32 copy (tests and small-case debugging only)."""
        dense = np.zeros(self.shape, dtype=np.float32)
        rows = np.repeat(np.arange(self.shape[0]), self.row_degrees())
        dense[rows, self.indices] = self.data
        return dense

    def sum(self, axis=None):
        """Row sums (``axis=1``), column sums (``axis=0``) or the total,
        accumulated over stored entries in stored order like scipy."""
        if axis is None:
            return self.data.sum()
        if axis == 1:
            out = np.zeros(self.shape[0], dtype=self.data.dtype)
            rows = np.repeat(np.arange(self.shape[0]),
                             self.row_degrees())
            np.add.at(out, rows, self.data)
            return out
        if axis == 0:
            out = np.zeros(self.shape[1], dtype=self.data.dtype)
            np.add.at(out, self.indices, self.data)
            return out
        raise KernelError(f"unsupported sum axis {axis!r}")

    def to_scipy(self):
        """The same operator as a scipy CSR (cached; the original
        object when this wrapper was built from one, so scipy-backend
        products reuse scipy's own memoized state)."""
        if self._scipy is None:
            import scipy.sparse as sp
            self._scipy = sp.csr_matrix(
                (self.data, self.indices, self.indptr), shape=self.shape)
        return self._scipy

    def __repr__(self):
        return (f"KernelCSR(shape={self.shape}, nnz={self.nnz})")


class KernelCOO:
    """An explicit ``(dst, src)`` edge list (GAT's attention layout).

    The edge *order* is part of the numerical contract: scatter-add
    aggregation visits edges in list order, so two COOs with the same
    edge set but different order are different operators bit-wise.
    """

    __slots__ = ("edge_dst", "edge_src", "shape")

    def __init__(self, edge_dst, edge_src, shape):
        self.edge_dst = np.ascontiguousarray(edge_dst, dtype=np.int64)
        self.edge_src = np.ascontiguousarray(edge_src, dtype=np.int64)
        self.shape = (int(shape[0]), int(shape[1]))
        if len(self.edge_dst) != len(self.edge_src):
            raise KernelError("edge arrays must have equal length")

    @property
    def nnz(self):
        return len(self.edge_dst)

    def reverse(self):
        """The reversed edge list (dst and src swapped) — the COO
        analogue of :meth:`KernelCSR.transpose`, used by the backward
        pass to route gradients source-ward."""
        return KernelCOO(self.edge_src, self.edge_dst,
                         (self.shape[1], self.shape[0]))

    def __repr__(self):
        return (f"KernelCOO(shape={self.shape}, nnz={self.nnz})")


def _mean_aggregation_csr(rows, cols, num_dst, num_src):
    """Row-normalized mean-aggregation operator over raw edges.

    The shared core of :func:`normalized_block_adjacency` and
    :func:`full_graph_adjacency`: canonical CSR with duplicate edges
    summed, each row's entries *reversed* (scipy's SMMP ``diags @ csr``
    row-scaling emits rows in descending column order) and values
    scaled by ``float32(1) / degree`` — bit-for-bit the layout the
    historical scipy construction produced.
    """
    if len(rows):
        # Canonicalize: ascending (row, col) with duplicates summed
        # (a self-loop can duplicate an existing (i, i) edge).
        key = rows * np.int64(max(num_src, 1)) + cols
        key.sort(kind="stable")
        fresh = np.concatenate(([True], key[1:] != key[:-1]))
        unique = key[fresh]
        bounds = np.concatenate((np.flatnonzero(fresh), [len(key)]))
        values = np.diff(bounds).astype(np.float32)
        urows, ucols = np.divmod(unique, np.int64(max(num_src, 1)))
    else:
        urows = ucols = np.empty(0, dtype=np.int64)
        values = np.empty(0, dtype=np.float32)

    row_counts = np.bincount(urows, minlength=num_dst)
    indptr = np.concatenate(([0], np.cumsum(row_counts))).astype(np.int64)

    # Mean normalization: degrees are small exact integers, so the
    # float32 per-row sums the scipy path computed equal these counts.
    degree = np.bincount(urows, weights=values,
                         minlength=num_dst).astype(np.float32)
    degree[degree == 0] = 1.0
    scale = (1.0 / degree).astype(np.float32)

    # Reverse each row in place (position p of row [s, e) maps to
    # s + (e - 1 - p)); elementwise scaling commutes with the permute.
    if len(urows):
        positions = np.arange(len(urows), dtype=np.int64)
        starts = indptr[urows]
        ends = indptr[urows + 1]
        reverse = starts + (ends - 1 - positions)
        ucols = ucols[reverse]
        values = (values * scale[urows])[reverse]

    return KernelCSR(indptr, ucols, values, (num_dst, num_src))


def normalized_block_adjacency(block, self_loops=True):
    """A sampled block's row-normalized mean-aggregation operator.

    Pure-numpy construction of the ``num_dst x num_src`` operator whose
    row ``i`` averages the sampled in-neighbors of destination ``i``
    (plus ``i`` itself when ``self_loops``); layout notes in
    :func:`_mean_aggregation_csr`.
    """
    num_dst, num_src = block.num_dst, block.num_src
    rows = np.repeat(np.arange(num_dst, dtype=np.int64),
                     block.degrees())
    cols = block.indices.astype(np.int64, copy=False)
    if self_loops:
        loops = np.arange(num_dst, dtype=np.int64)
        rows = np.concatenate([rows, loops])
        cols = np.concatenate([cols, loops])
    return _mean_aggregation_csr(rows, cols, num_dst, num_src)


def full_graph_adjacency(graph, self_loops=True):
    """The whole graph's row-normalized mean-aggregation operator.

    The ``n x n`` operator whose row ``v`` averages the in-neighbors of
    vertex ``v`` (plus ``v`` itself when ``self_loops``), built from
    ``graph.in_csr()`` without scipy.  Replaces the historical
    ``diags @ (csr + identity)`` construction in the full-batch engine
    bit-for-bit — same layout notes as :func:`_mean_aggregation_csr` —
    so full-graph training and precomputed serving run identically on
    every kernel backend.
    """
    n = graph.num_vertices
    in_indptr, in_indices = graph.in_csr()
    rows = np.repeat(np.arange(n, dtype=np.int64),
                     np.diff(np.asarray(in_indptr, dtype=np.int64)))
    cols = np.asarray(in_indices, dtype=np.int64)
    if self_loops:
        loops = np.arange(n, dtype=np.int64)
        rows = np.concatenate([rows, loops])
        cols = np.concatenate([cols, loops])
    return _mean_aggregation_csr(rows, cols, n, n)


def as_adjacency(matrix):
    """Coerce ``matrix`` into a kernel adjacency.

    Accepts :class:`KernelCSR`/:class:`KernelCOO` (returned as-is) and
    scipy CSR matrices, which are wrapped once and cached on the scipy
    object so repeated dispatch through a persistent operator (the
    full-batch engine's adjacency, the serving tables' operators)
    reuses one wrapper — and therefore one memoized transpose.
    """
    if isinstance(matrix, (KernelCSR, KernelCOO)):
        return matrix
    if hasattr(matrix, "indptr") and hasattr(matrix, "indices") \
            and hasattr(matrix, "data") and hasattr(matrix, "shape"):
        cached = getattr(matrix, "_kernel_csr", None)
        if cached is not None:
            return cached
        wrapper = KernelCSR(matrix.indptr, matrix.indices, matrix.data,
                            matrix.shape)
        wrapper._scipy = matrix
        try:
            matrix._kernel_csr = wrapper
        except AttributeError:  # foreign objects without attr support
            pass
        return wrapper
    raise KernelError(
        f"cannot interpret {type(matrix).__name__} as a kernel "
        f"adjacency (expected KernelCSR, KernelCOO, or scipy CSR)")
