"""Backend registry and forward-dispatch for the sparse kernels.

One seam for every aggregation in the library.  A backend is an object
with ``name``, ``available()``, ``supports(kind, layout, op)`` and the
kernel methods; :func:`register_backend` adds it, and dispatch resolves
the active one from ``FLAGS.kernel_backend``:

* ``"auto"`` (default) — the first available backend in priority order
  (accelerated backends first, reference last);
* a backend name — that backend, raising :class:`KernelError` if it is
  not importable (an explicit request must not silently degrade);
* per-call ``backend=`` overrides the flag for one dispatch.

A resolved backend that does not support the requested
``(kind, layout, op)`` combination falls back to the reference — the
reference defines the semantics, so fallback changes speed, never bits
— and the fallback is counted (``kernel_fallbacks``) so benchmarks and
tests can see exactly what ran.  Per-backend call and FLOP counters
flow through :data:`repro.perf.PERF`.

``reduce`` is layered here rather than per-backend: every backend
implements the sum reduction, ``mean`` divides the shared sum by the
stored row degrees, and ``max`` always runs the reference extremum
scan (counted as a ``kernel_fallbacks`` detour whenever a
non-reference backend was resolved).  One normalization code path
means backends cannot drift apart on the reductions.
"""

from __future__ import annotations

import numpy as np

from ..analysis.sanitize import check_csr, check_finite
from ..errors import KernelError
from ..perf import FLAGS, PERF
from .adjacency import KernelCOO, as_adjacency
from .reference import ReferenceBackend
from .scipy_backend import ScipyBackend
from .numba_backend import NumbaBackend

__all__ = ["register_backend", "available_backends", "resolve_backend",
           "gspmm_forward", "gsddmm_forward", "edge_softmax_forward",
           "GSPMM_OPS", "GSDDMM_OPS", "REDUCES"]

GSPMM_OPS = ("mul", "copy_rhs")
GSDDMM_OPS = ("add", "mul", "dot")
REDUCES = ("sum", "mean", "max")

#: name -> backend instance, insertion-ordered.
_BACKENDS = {}
#: "auto" resolution order: accelerated first, reference as the floor.
_PRIORITY = []


def register_backend(backend, accelerated=True):
    """Add ``backend`` to the registry.

    ``accelerated`` backends are preferred by ``"auto"`` resolution (in
    registration order); the reference stays the fallback floor.
    """
    name = backend.name
    _BACKENDS[name] = backend
    if name in _PRIORITY:
        _PRIORITY.remove(name)
    if accelerated:
        _PRIORITY.insert(0, name)
    else:
        _PRIORITY.append(name)
    return backend


_REFERENCE = register_backend(ReferenceBackend(), accelerated=False)
register_backend(ScipyBackend())
register_backend(NumbaBackend())


def available_backends():
    """Names of the backends importable in this environment."""
    return [name for name, backend in _BACKENDS.items()
            if backend.available()]


def resolve_backend(backend=None):
    """The backend instance a dispatch will use (before op fallback)."""
    name = backend if backend is not None else FLAGS.kernel_backend
    if name == "auto":
        for candidate in _PRIORITY:
            if _BACKENDS[candidate].available():
                return _BACKENDS[candidate]
        return _REFERENCE  # pragma: no cover - reference is always there
    chosen = _BACKENDS.get(name)
    if chosen is None:
        raise KernelError(
            f"unknown kernel backend {name!r}; registered: "
            f"{', '.join(_BACKENDS)}")
    if not chosen.available():
        raise KernelError(
            f"kernel backend {name!r} was requested but is not "
            f"importable here")
    return chosen


def _pick(kind, layout, op, backend):
    """Resolve, apply capability fallback, count the call."""
    chosen = resolve_backend(backend)
    if chosen is not _REFERENCE \
            and not chosen.supports(kind, layout, op):
        PERF.count("kernel_fallbacks")
        chosen = _REFERENCE
    PERF.count(f"kernel_{kind}_calls")
    PERF.count(f"kernel_{chosen.name}_calls")
    return chosen


def _as_matrix(x):
    """Features as a 2-D array (1-D inputs ride as one column)."""
    x = np.asarray(x)
    if x.ndim == 1:
        return x[:, None], True
    if x.ndim != 2:
        raise KernelError(f"expected 1-D or 2-D operand, got {x.ndim}-D")
    return x, False


def _sanitize_adj(adj, name):
    if hasattr(adj, "indptr"):
        check_csr(adj.indptr, adj.indices, adj.shape[0], name=name,
                  sorted_rows=False, num_cols=adj.shape[1])
        check_finite(adj.data, name=f"{name} values")


def gspmm_forward(adj, x, values=None, op="mul", reduce="sum",
                  backend=None):
    """Generalized SpMM: ``y[i] = reduce over edges (i, j) of
    values[e] (*) x[j]`` over the adjacency's stored edges.

    ``adj`` may be a :class:`~repro.kernels.adjacency.KernelCSR`, a
    :class:`~repro.kernels.adjacency.KernelCOO` (``values`` required
    for ``op='mul'`` unless stored), or a scipy CSR matrix.  Arrays in,
    arrays out; the autograd boundary lives in
    :mod:`repro.kernels.autograd`.
    """
    if op not in GSPMM_OPS:
        raise KernelError(
            f"unknown gspmm op {op!r}; known: {', '.join(GSPMM_OPS)}")
    if reduce not in REDUCES:
        raise KernelError(
            f"unknown gspmm reduce {reduce!r}; known: "
            f"{', '.join(REDUCES)}")
    adj = as_adjacency(adj)
    x, squeeze = _as_matrix(x)
    if x.shape[0] != adj.shape[1]:
        raise KernelError(
            f"gspmm operand has {x.shape[0]} rows but the adjacency "
            f"has {adj.shape[1]} columns")
    if FLAGS.sanitize:
        _sanitize_adj(adj, "kernels.gspmm")
        check_finite(x, name="kernels.gspmm operand")
        if values is not None:
            check_finite(values, name="kernels.gspmm edge values")

    layout = "coo" if isinstance(adj, KernelCOO) else "csr"
    if reduce == "max":
        # The extremum scan (and its argmax map) is reference-only;
        # resolving any other backend — explicitly or via "auto" — is a
        # capability fallback and is counted like every other one, so
        # benchmarks and tests see what actually ran.
        if resolve_backend(backend) is not _REFERENCE:
            PERF.count("kernel_fallbacks")
        PERF.count("kernel_gspmm_calls")
        PERF.count(f"kernel_{_REFERENCE.name}_calls")
        out, _argmax = _REFERENCE.gspmm_max(adj, x, values, op)
    else:
        chosen = _pick("gspmm", layout, op, backend)
        out = chosen.gspmm(adj, x, values, op)
        if reduce == "mean":
            out = out / _row_counts(adj, out.dtype)[:, None]
    PERF.count("kernel_flops", 2 * adj.nnz * x.shape[1])
    return out[:, 0] if squeeze else out


def _row_counts(adj, dtype):
    """Stored edges per destination row, zero-degree rows clamped to 1
    (the mean-reduce divisor every backend shares)."""
    if isinstance(adj, KernelCOO):
        counts = np.bincount(adj.edge_dst, minlength=adj.shape[0])
    else:
        counts = adj.row_degrees()
    counts = counts.astype(dtype)
    counts[counts == 0] = 1
    return counts


def gsddmm_forward(adj, q, k, op="add", backend=None):
    """Generalized SDDMM: ``s[e] = op(q[dst_e], k[src_e])`` per stored
    edge.  ``dot`` contracts the feature axis (returns one scalar per
    edge); ``add``/``mul`` are elementwise."""
    if op not in GSDDMM_OPS:
        raise KernelError(
            f"unknown gsddmm op {op!r}; known: {', '.join(GSDDMM_OPS)}")
    adj = as_adjacency(adj)
    q, squeeze_q = _as_matrix(q)
    k, squeeze_k = _as_matrix(k)
    if q.shape[0] != adj.shape[0] or k.shape[0] != adj.shape[1]:
        raise KernelError(
            f"gsddmm operands ({q.shape[0]}, {k.shape[0]}) do not "
            f"match the adjacency shape {adj.shape}")
    if q.shape[1] != k.shape[1]:
        raise KernelError(
            f"gsddmm feature widths differ: {q.shape[1]} vs "
            f"{k.shape[1]}")
    if FLAGS.sanitize:
        _sanitize_adj(adj, "kernels.gsddmm")
        check_finite(q, name="kernels.gsddmm lhs")
        check_finite(k, name="kernels.gsddmm rhs")

    layout = "coo" if isinstance(adj, KernelCOO) else "csr"
    chosen = _pick("gsddmm", layout, op, backend)
    out = chosen.gsddmm(adj, q, k, op)
    PERF.count("kernel_flops",
               (2 if op == "dot" else 1) * adj.nnz * q.shape[1])
    if op != "dot" and squeeze_q and squeeze_k:
        return out[:, 0]
    return out


def edge_softmax_forward(adj, scores, backend=None):
    """Per-destination softmax over 1-D edge scores."""
    adj = as_adjacency(adj)
    scores = np.asarray(scores)
    if scores.ndim != 1 or len(scores) != adj.nnz:
        raise KernelError(
            f"edge_softmax expects one score per stored edge "
            f"({adj.nnz}), got shape {scores.shape}")
    if FLAGS.sanitize:
        check_finite(scores, name="kernels.edge_softmax scores")
    layout = "coo" if isinstance(adj, KernelCOO) else "csr"
    chosen = _pick("edge_softmax", layout, "softmax", backend)
    out = chosen.edge_softmax(adj, scores)
    PERF.count("kernel_flops", 5 * adj.nnz)
    return out
