"""The scipy.sparse accelerated backend.

Covers the CSR aggregation hot path — ``gspmm`` with ``mul`` /
``copy_rhs`` — by delegating to scipy's compiled ``csr_matvecs``.  That
kernel walks each row's stored entries sequentially, exactly the order
the reference's ``np.add.at`` scatter uses, so the two backends are
bit-identical, not approximately equal (pinned by ``tests/kernels``).

Everything order-sensitive that scipy has no compiled kernel for — the
COO layout (GAT's appended self-loop edge order), ``gsddmm``,
``edge_softmax`` — is declared unsupported, and the registry falls back
to the reference while counting the fallback.  scipy itself is imported
lazily on first use: the package (and the reference backend) must work
on machines without scipy, which the no-scipy CI conformance run
exercises.
"""

from __future__ import annotations

import numpy as np

from ..errors import KernelError

__all__ = ["ScipyBackend"]


class ScipyBackend:
    """CSR gspmm via scipy's compiled sparse-dense product."""

    name = "scipy"

    def __init__(self):
        self._module = None
        self._checked = False

    def available(self):
        if not self._checked:
            self._checked = True
            try:
                import scipy.sparse
            except ImportError:
                pass
            else:
                self._module = scipy.sparse
        return self._module is not None

    def supports(self, kind, layout, op):
        return (kind == "gspmm" and layout == "csr"
                and op in ("mul", "copy_rhs"))

    def gspmm(self, adj, x, values, op):
        sp = self._module
        if sp is None:  # pragma: no cover - registry checks available()
            raise KernelError("scipy backend selected but scipy is "
                              "not importable")
        if op == "copy_rhs":
            matrix = self._structural(adj, x.dtype)
        elif values is not None:
            matrix = self._weighted(adj)
            matrix.data = np.asarray(values)
        else:
            matrix = adj.to_scipy()
        return matrix @ x

    def _structural(self, adj, dtype):
        """The cached all-ones (``copy_rhs``) matrix sharing ``adj``'s
        sparsity; rebuilt only when the operand dtype changes.  Its
        ``data`` is never mutated — the values path has its own cache."""
        cached = adj._scipy_ones
        if cached is None or cached.dtype != dtype:
            cached = self._module.csr_matrix(
                (np.ones(adj.nnz, dtype=dtype), adj.indices,
                 adj.indptr), shape=adj.shape)
            adj._scipy_ones = cached
        return cached

    def _weighted(self, adj):
        """The cached explicit-values matrix sharing ``adj``'s sparsity.
        Each dispatch rebinds its ``data`` to the call's edge values —
        an O(1) swap instead of a fresh ``csr_matrix`` per call."""
        cached = adj._scipy_weighted
        if cached is None:
            cached = self._module.csr_matrix(
                (adj.data, adj.indices, adj.indptr), shape=adj.shape)
            adj._scipy_weighted = cached
        return cached
