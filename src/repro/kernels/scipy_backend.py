"""The scipy.sparse accelerated backend.

Covers the CSR aggregation hot path — ``gspmm`` with ``mul`` /
``copy_rhs`` — by delegating to scipy's compiled ``csr_matvecs``.  That
kernel walks each row's stored entries sequentially, exactly the order
the reference's ``np.add.at`` scatter uses, so the two backends are
bit-identical, not approximately equal (pinned by ``tests/kernels``).

Everything order-sensitive that scipy has no compiled kernel for — the
COO layout (GAT's appended self-loop edge order), ``gsddmm``,
``edge_softmax`` — is declared unsupported, and the registry falls back
to the reference while counting the fallback.  scipy itself is imported
lazily on first use: the package (and the reference backend) must work
on machines without scipy, which the no-scipy CI conformance run
exercises.
"""

from __future__ import annotations

import numpy as np

from ..errors import KernelError

__all__ = ["ScipyBackend"]


class ScipyBackend:
    """CSR gspmm via scipy's compiled sparse-dense product."""

    name = "scipy"

    def __init__(self):
        self._module = None
        self._checked = False

    def available(self):
        if not self._checked:
            self._checked = True
            try:
                import scipy.sparse
            except ImportError:
                pass
            else:
                self._module = scipy.sparse
        return self._module is not None

    def supports(self, kind, layout, op):
        return (kind == "gspmm" and layout == "csr"
                and op in ("mul", "copy_rhs"))

    def gspmm(self, adj, x, values, op):
        sp = self._module
        if sp is None:  # pragma: no cover - registry checks available()
            raise KernelError("scipy backend selected but scipy is "
                              "not importable")
        if op == "copy_rhs" or values is not None:
            data = np.ones(adj.nnz, dtype=x.dtype) \
                if op == "copy_rhs" else values
            matrix = sp.csr_matrix((data, adj.indices, adj.indptr),
                                   shape=adj.shape)
        else:
            matrix = adj.to_scipy()
        return matrix @ x
