"""Pluggable sparse-kernel registry (gspmm/gsddmm).

The one seam every aggregation in the library dispatches through: the
GCN/SAGE mean aggregation, GAT's edge-score SDDMM + edge softmax +
attention-weighted SpMM, the full-batch engine's persistent adjacency,
and the serving tables' full-graph operators.

Layers (top to bottom):

* :mod:`~repro.kernels.autograd` — ``gspmm``/``gsddmm``/
  ``edge_softmax`` with a thin forward/backward boundary (backward
  through the explicitly materialized, memoized transposed CSR);
* :mod:`~repro.kernels.registry` — backend registration, capability
  fallback, ``FLAGS.kernel_backend`` resolution, per-backend call/FLOP
  counters via :data:`repro.perf.PERF`;
* backends — :mod:`~repro.kernels.reference` (pinned numpy semantics),
  :mod:`~repro.kernels.scipy_backend` (compiled CSR SpMM, bit-identical
  to the reference), :mod:`~repro.kernels.numba_backend` (optional);
* :mod:`~repro.kernels.adjacency` — :class:`KernelCSR` /
  :class:`KernelCOO` containers and the shared transpose/normalization
  constructions.

Select a backend globally with ``FLAGS.kernel_backend`` (``"auto"``,
``"reference"``, ``"scipy"``, ``"numba"``) or per call via
``backend=``; see ``docs/architecture.md`` ("Kernel registry").
"""

from .adjacency import (KernelCOO, KernelCSR, as_adjacency,
                        full_graph_adjacency,
                        normalized_block_adjacency, transpose_csr)
from .autograd import edge_softmax, gsddmm, gspmm
from .registry import (GSDDMM_OPS, GSPMM_OPS, REDUCES,
                       available_backends, edge_softmax_forward,
                       gsddmm_forward, gspmm_forward, register_backend,
                       resolve_backend)

__all__ = [
    "gspmm", "gsddmm", "edge_softmax",
    "gspmm_forward", "gsddmm_forward", "edge_softmax_forward",
    "KernelCSR", "KernelCOO", "as_adjacency", "transpose_csr",
    "normalized_block_adjacency", "full_graph_adjacency",
    "register_backend", "available_backends", "resolve_backend",
    "GSPMM_OPS", "GSDDMM_OPS", "REDUCES",
]
