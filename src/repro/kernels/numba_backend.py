"""Optional numba JIT backend.

Registered only when numba is importable (it is not a dependency of
this package); every environment without it silently runs the scipy or
reference backend instead.  The jitted kernels replay the reference's
sequential per-row accumulation order literally — one float32 add per
stored entry, in storage order — so the backend is bit-identical to
the reference by construction, which the conformance matrix verifies
wherever numba is present.
"""

from __future__ import annotations

import importlib.util

import numpy as np

from ..errors import KernelError

__all__ = ["NumbaBackend"]


def _compile_kernels(numba):
    """Build the jitted kernels once (lazy: first dispatch pays the
    compile, later calls reuse the cached machine code)."""

    @numba.njit(cache=True)
    def spmm_csr(indptr, indices, data, x, out, weighted):
        for i in range(len(indptr) - 1):
            for e in range(indptr[i], indptr[i + 1]):
                j = indices[e]
                if weighted:
                    v = data[e]
                    for c in range(x.shape[1]):
                        out[i, c] += v * x[j, c]
                else:
                    for c in range(x.shape[1]):
                        out[i, c] += x[j, c]

    return spmm_csr


class NumbaBackend:
    """CSR gspmm via numba-jitted sequential loops."""

    name = "numba"

    def __init__(self):
        self._spmm = None
        self._checked = False

    def available(self):
        if not self._checked:
            self._checked = True
            try:
                found = importlib.util.find_spec("numba") is not None
            except (ImportError, ValueError):
                found = False
            if found:
                import numba
                self._spmm = _compile_kernels(numba)
        return self._spmm is not None

    def supports(self, kind, layout, op):
        return (kind == "gspmm" and layout == "csr"
                and op in ("mul", "copy_rhs"))

    def gspmm(self, adj, x, values, op):
        if self._spmm is None:  # pragma: no cover - registry gates this
            raise KernelError("numba backend selected but numba is "
                              "not importable")
        data = adj.data if values is None else values
        if op == "mul" and data is None:
            raise KernelError("gspmm op='mul' needs edge values")
        out = np.zeros((adj.shape[0], x.shape[1]), dtype=x.dtype)
        self._spmm(adj.indptr, adj.indices,
                   data if data is not None
                   else np.empty(0, dtype=x.dtype),
                   np.ascontiguousarray(x), out, op == "mul")
        return out
