"""Text and JSON reporters for lint results.

The text reporter is for humans at a terminal; the JSON reporter is the
machine contract (CI uploads it as an artifact).  The JSON schema is
pinned by ``tests/analysis/test_baseline_report.py`` — bump
``REPORT_VERSION`` on any breaking change.
"""

from __future__ import annotations

import json
from pathlib import Path

from .rules import rule_table

__all__ = ["REPORT_VERSION", "render_json", "render_text", "write_json"]

REPORT_VERSION = 1


def _finding_dict(finding, new):
    return {
        "rule": finding.rule,
        "severity": finding.severity,
        "file": finding.path,
        "line": finding.line,
        "col": finding.col,
        "message": finding.message,
        "hint": finding.hint,
        "snippet": finding.snippet,
        "new": bool(new),
    }


def render_json(result, rule_rows=None):
    """The lint report as a JSON-serializable dict (stable schema).

    ``rule_rows`` overrides the embedded rule table — the arch pass
    passes its ARC registry so one schema serves both gates.
    """
    new = set(id(f) for f in result.new_findings)
    stale = list(getattr(result, "stale_baseline", []))
    return {
        "version": REPORT_VERSION,
        "files_scanned": result.files_scanned,
        "summary": {
            "total": len(result.findings),
            "new": len(result.new_findings),
            "baselined": result.baselined,
            "suppressed": result.suppressed,
            "parse_errors": result.parse_errors,
            "stale_baseline": len(stale),
        },
        "clean": result.clean,
        "rules": rule_rows if rule_rows is not None else rule_table(),
        "findings": [_finding_dict(f, id(f) in new)
                     for f in result.findings],
        "stale_baseline": stale,
    }


def render_text(result):
    """Human-readable report: one line per finding, then a summary."""
    new = set(id(f) for f in result.new_findings)
    lines = []
    for finding in result.findings:
        marker = "" if id(finding) in new else " (baselined)"
        lines.append(f"{finding.location()} {finding.rule} "
                     f"{finding.severity}: {finding.message}{marker}")
        if finding.hint and id(finding) in new:
            lines.append(f"    hint: {finding.hint}")
    summary = (f"{result.files_scanned} files scanned: "
               f"{len(result.findings)} findings "
               f"({len(result.new_findings)} new, "
               f"{result.baselined} baselined, "
               f"{result.suppressed} suppressed)")
    if lines:
        lines.append("")
    stale = list(getattr(result, "stale_baseline", []))
    for key in stale:
        lines.append(f"stale baseline entry (no longer matches): "
                     f"{key}")
    if stale:
        lines.append(f"{len(stale)} stale baseline entries — "
                     f"run with --update-baseline to prune")
    lines.append(summary)
    lines.append("lint: " + ("clean" if result.clean else "NEW FINDINGS"))
    return "\n".join(lines)


def write_json(result, path, rule_rows=None):
    """Write the JSON report to ``path``."""
    out = Path(path)
    out.write_text(json.dumps(render_json(result, rule_rows=rule_rows),
                              indent=2) + "\n",
                   encoding="utf-8")
    return out
