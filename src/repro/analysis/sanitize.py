"""Runtime sanitizers: loud failure for silent numeric corruption.

Three checks, all gated on :attr:`repro.perf.flags.PerfFlags.sanitize`
and all **zero-cost when the flag is off** (hot paths guard the call
itself behind ``if FLAGS.sanitize``; the helpers additionally return
immediately):

``check_finite``
    NaN/Inf scan over activations and gradients.
``check_csr``
    Structural validation of CSR arrays — monotone non-decreasing
    ``indptr`` with matching endpoints, ``int64`` dtypes, indices in
    ``[0, n)``, optionally sorted-per-row.
``check_contract``
    Decorator pinning a function's returned array shape/dtype.

They exist because the repo's strongest claims — bit-identical
crash/resume replay, atol=0 serve-path equivalence, the paper's step
breakdowns — are *numeric* invariants: a "faster" kernel that produces
a subtly malformed CSR or an Inf that washes through a softmax does not
crash, it just makes every downstream number quietly wrong.  With
``FLAGS.sanitize`` on (the whole test suite, ``repro train
--sanitize``, the CI chaos/serving smokes) such a regression dies at
the first corrupted array with a named, located error.

Violations raise :class:`~repro.errors.SanitizerError`.  Each check
bumps a ``sanitize_*`` counter on :data:`~repro.perf.profiler.PERF`, so
tests can assert the checks actually ran (or actually did not).
"""

from __future__ import annotations

import functools

import numpy as np

from ..errors import SanitizerError
from ..perf.flags import FLAGS
from ..perf.profiler import PERF

__all__ = ["check_finite", "check_csr", "check_contract",
           "sanitize_active"]


def sanitize_active():
    """True when the sanitizer flag is on (convenience for callers that
    guard larger blocks of checking code)."""
    return FLAGS.sanitize


def check_finite(array, name="array"):
    """Raise :class:`SanitizerError` if ``array`` holds NaN/Inf.

    Returns ``array`` unchanged so it can wrap expressions inline.
    Non-float dtypes pass trivially; a no-op when ``FLAGS.sanitize`` is
    off.
    """
    if not FLAGS.sanitize:
        return array
    data = array.data if hasattr(array, "data") \
        and isinstance(getattr(array, "data"), np.ndarray) else array
    data = np.asarray(data)
    if data.dtype.kind not in "fc":
        return array
    PERF.count("sanitize_finite_checks")
    if not np.isfinite(data).all():
        nans = int(np.isnan(data).sum())
        infs = int(np.isinf(data).sum())
        raise SanitizerError(
            f"{name}: non-finite values ({nans} NaN, {infs} Inf out of "
            f"{data.size} elements, shape {data.shape})")
    return array


def check_csr(indptr, indices, num_rows, name="csr",
              sorted_rows=False, num_cols=None):
    """Validate CSR structure; no-op when ``FLAGS.sanitize`` is off.

    Parameters
    ----------
    indptr, indices:
        The CSR arrays; must be ``int64``.
    num_rows:
        Row count; ``indptr`` must have ``num_rows + 1`` entries.
    name:
        Label for error messages (construction site).
    sorted_rows:
        Additionally require each row's indices to be non-decreasing
        (true for everything the sanctioned builders emit).
    num_cols:
        Column count the indices must lie in (``[0, num_cols)``).
        Defaults to ``num_rows`` — the square adjacency case; sampled
        blocks are rectangular (rows = destinations, columns =
        sources).
    """
    if not FLAGS.sanitize:
        return
    PERF.count("sanitize_csr_checks")
    indptr = np.asarray(indptr)
    indices = np.asarray(indices)
    n = int(num_rows)
    cols = n if num_cols is None else int(num_cols)
    if indptr.dtype != np.int64 or indices.dtype != np.int64:
        raise SanitizerError(
            f"{name}: CSR arrays must be int64, got indptr "
            f"{indptr.dtype}, indices {indices.dtype}")
    if indptr.ndim != 1 or indices.ndim != 1:
        raise SanitizerError(f"{name}: CSR arrays must be 1-D")
    if len(indptr) != n + 1:
        raise SanitizerError(
            f"{name}: indptr has {len(indptr)} entries, expected "
            f"{n + 1} for {n} rows")
    if len(indptr) and indptr[0] != 0:
        raise SanitizerError(f"{name}: indptr[0] must be 0, "
                             f"got {int(indptr[0])}")
    if np.any(np.diff(indptr) < 0):
        raise SanitizerError(f"{name}: indptr must be non-decreasing")
    if len(indptr) and indptr[-1] != len(indices):
        raise SanitizerError(
            f"{name}: indptr[-1]={int(indptr[-1])} does not match "
            f"len(indices)={len(indices)}")
    if len(indices) and (indices.min() < 0 or indices.max() >= cols):
        raise SanitizerError(
            f"{name}: index out of range [0, {cols}): saw "
            f"[{int(indices.min())}, {int(indices.max())}]")
    if sorted_rows and len(indices) > 1:
        # A drop in the global diff is fine only at a row boundary.
        drops = np.diff(indices) < 0
        if drops.any():
            boundary = np.zeros(len(indices) - 1, dtype=bool)
            starts = indptr[1:-1]
            inside = (starts > 0) & (starts < len(indices))
            boundary[starts[inside] - 1] = True
            if np.any(drops & ~boundary):
                raise SanitizerError(
                    f"{name}: per-row indices are not sorted")


def check_contract(shape=None, dtype=None):
    """Decorator asserting the wrapped function's returned array
    satisfies a shape/dtype contract under ``FLAGS.sanitize``.

    Parameters
    ----------
    shape:
        Tuple with ``None`` wildcards, e.g. ``(None, 128)`` = "2-D with
        128 columns".  ``None`` skips the shape check.
    dtype:
        Required dtype (anything ``np.dtype`` accepts).  ``None`` skips
        the dtype check.

    The flag is consulted per call, so tests can toggle sanitizing on a
    decorated function without re-importing.
    """
    expected_dtype = np.dtype(dtype) if dtype is not None else None

    def decorate(fn):
        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            result = fn(*args, **kwargs)
            if FLAGS.sanitize:
                PERF.count("sanitize_contract_checks")
                _check_value(result, fn.__qualname__)
            return result

        def _check_value(value, where):
            data = np.asarray(value)
            if shape is not None:
                if data.ndim != len(shape):
                    raise SanitizerError(
                        f"{where}: returned {data.ndim}-D array, "
                        f"contract requires {len(shape)}-D {shape}")
                for axis, want in enumerate(shape):
                    if want is not None and data.shape[axis] != want:
                        raise SanitizerError(
                            f"{where}: returned shape {data.shape}, "
                            f"contract requires {shape}")
            if expected_dtype is not None \
                    and data.dtype != expected_dtype:
                raise SanitizerError(
                    f"{where}: returned dtype {data.dtype}, contract "
                    f"requires {expected_dtype}")

        return wrapper

    return decorate
