"""Rule registry for the determinism & numerics linter.

Every rule is a small AST check with a stable identifier (``RPRnnn``),
a severity, and a fix hint.  Rules encode the invariants the
reproduction's correctness claims rest on — seeded randomness, no
wall-clock in simulated paths, no iteration-order-dependent numerics —
so refactors that silently break them fail in CI instead of in a
benchmark three PRs later.

A rule yields ``(node, message)`` pairs from :meth:`Rule.check`; the
linter turns them into :class:`Finding` records, applies inline
``# repro: noqa[RPRnnn]`` suppressions, and diffs against the checked-in
baseline.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

__all__ = ["Finding", "Rule", "RuleContext", "all_rules", "dotted_name",
           "register", "rule_table"]

SEVERITIES = ("error", "warning")


@dataclass(frozen=True)
class Finding:
    """One linter hit, pinned to a file position.

    ``snippet`` is the stripped source line — it doubles as the
    line-number-independent part of the baseline fingerprint, so
    unrelated edits above a grandfathered finding do not resurface it.
    """

    rule: str
    severity: str
    path: str
    line: int
    col: int
    message: str
    hint: str
    snippet: str

    def location(self):
        """``path:line:col`` for reports."""
        return f"{self.path}:{self.line}:{self.col}"


@dataclass
class RuleContext:
    """Everything a rule may inspect about one file."""

    path: str
    tree: ast.AST
    lines: list
    _parents: dict = field(default=None, repr=False)

    def parent(self, node):
        """The AST parent of ``node`` (None for the module node)."""
        if self._parents is None:
            self._parents = {}
            for outer in ast.walk(self.tree):
                for inner in ast.iter_child_nodes(outer):
                    self._parents[inner] = outer
        return self._parents.get(node)

    def line_text(self, lineno):
        """Stripped source text of physical line ``lineno`` (1-based)."""
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""

    def in_parts(self, name):
        """True if ``name`` is a path component of this file."""
        return name in self.path.replace("\\", "/").split("/")


def dotted_name(node):
    """``a.b.c`` for an Attribute/Name chain, or None for anything
    dynamic (subscripts, calls) where the chain cannot be read
    statically."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class Rule:
    """Base class: one identifier, one severity, one AST check."""

    rule_id = None
    severity = None
    title = None
    hint = None
    rationale = None

    def check(self, ctx):
        """Yield ``(node, message)`` pairs for violations in ``ctx``."""
        raise NotImplementedError

    def findings(self, ctx):
        """Run :meth:`check` and wrap the hits in :class:`Finding`s."""
        for node, message in self.check(ctx):
            yield Finding(
                rule=self.rule_id, severity=self.severity, path=ctx.path,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0),
                message=message, hint=self.hint,
                snippet=ctx.line_text(getattr(node, "lineno", 1)))


_REGISTRY = {}


def register(cls):
    """Class decorator adding a :class:`Rule` subclass to the registry."""
    if cls.rule_id in _REGISTRY:
        raise ValueError(f"duplicate rule id {cls.rule_id}")
    if cls.severity not in SEVERITIES:
        raise ValueError(f"{cls.rule_id}: bad severity {cls.severity!r}")
    _REGISTRY[cls.rule_id] = cls
    return cls


def all_rules():
    """Fresh instances of every registered rule, ordered by id."""
    return [_REGISTRY[rule_id]() for rule_id in sorted(_REGISTRY)]


def rule_table():
    """id/severity/title/hint/rationale rows for docs and
    ``--format json``."""
    return [{"rule": cls.rule_id, "severity": cls.severity,
             "title": cls.title, "hint": cls.hint,
             "rationale": cls.rationale or ""}
            for _, cls in sorted(_REGISTRY.items())]


# Importing the rule modules populates the registry; they import names
# from this (partially initialized) package, so they must come after
# the definitions above.
from . import determinism, hygiene, numerics  # noqa: E402,F401
