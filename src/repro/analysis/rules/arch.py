"""Architectural rules (ARC001–ARC006) over the project graph.

Unlike the per-file ``RPRnnn`` rules, these run against a whole-program
:class:`~repro.analysis.graphing.ProjectGraph` plus the checked-in
contract (``layers.toml``).  They live in their own registry so the
per-file linter never pays for a project parse; the ``repro arch-lint``
driver (:mod:`repro.analysis.arch`) is the only consumer.

Each rule is a function ``(graph, config) -> iter[Finding]`` registered
with :func:`arch_register`.  Resolution caveats are inherited from
:mod:`repro.analysis.graphing`: the call graph is approximate and
conservative, so ARC004 proves reachability rather than guessing it.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path

from . import Finding, dotted_name

__all__ = ["ArchRule", "arch_register", "arch_rules",
           "arch_rule_table"]

_ARCH_REGISTRY = {}


@dataclass(frozen=True)
class ArchRule:
    """One whole-program rule: identity plus the check function."""

    rule_id: str
    severity: str
    title: str
    hint: str
    rationale: str
    func: object

    def findings(self, graph, config):
        yield from self.func(self, graph, config)


def arch_register(rule_id, severity, title, hint, rationale=""):
    """Decorator registering a check function as an :class:`ArchRule`."""
    def wrap(func):
        if rule_id in _ARCH_REGISTRY:
            raise ValueError(f"duplicate arch rule id {rule_id}")
        _ARCH_REGISTRY[rule_id] = ArchRule(
            rule_id=rule_id, severity=severity, title=title, hint=hint,
            rationale=rationale, func=func)
        return func
    return wrap


def arch_rules():
    """Every registered architectural rule, ordered by id."""
    return [_ARCH_REGISTRY[rule_id]
            for rule_id in sorted(_ARCH_REGISTRY)]


def arch_rule_table():
    """id/severity/title/hint/rationale rows for docs and JSON."""
    rows = [{"rule": "ARC000", "severity": "error",
             "title": "file does not parse",
             "hint": "fix the syntax error",
             "rationale": "a syntax error must fail the gate, not "
                          "the analyzer"}]
    for rule_id in sorted(_ARCH_REGISTRY):
        rule = _ARCH_REGISTRY[rule_id]
        rows.append({"rule": rule.rule_id, "severity": rule.severity,
                     "title": rule.title, "hint": rule.hint,
                     "rationale": rule.rationale})
    return rows


# ----------------------------------------------------------------------
# Shared helpers
# ----------------------------------------------------------------------
def _make(rule, info, node_or_line, message):
    if isinstance(node_or_line, int):
        line, col = node_or_line, 0
    else:
        line = getattr(node_or_line, "lineno", 1)
        col = getattr(node_or_line, "col_offset", 0)
    return Finding(rule=rule.rule_id, severity=rule.severity,
                   path=info.path, line=line, col=col,
                   message=message, hint=rule.hint,
                   snippet=info.line_text(line))


def _path_allowed(info, allow_files):
    path = info.path
    return any(path.endswith(allowed) for allowed in allow_files)


def _scoped_modules(graph, options):
    """Modules selected by a rule's ``packages``/``modules`` options,
    minus its ``allow_files``."""
    packages = set(options.get("packages", []))
    modules = options.get("modules", [])
    allow = options.get("allow_files", [])
    for info in graph.modules.values():
        if _path_allowed(info, allow):
            continue
        if info.package in packages \
                or any(info.path.endswith(m) for m in modules):
            yield info


def _real_functions(graph, module_name):
    """Addressable functions of ``module_name`` (module bodies are
    represented separately as ``<module>`` pseudo-functions)."""
    for fn in graph.functions.values():
        if fn.module == module_name and fn.name != "<module>":
            yield fn


# ----------------------------------------------------------------------
# ARC001 — layering contract
# ----------------------------------------------------------------------
@arch_register(
    "ARC001", "error", "layering contract violation",
    "import downward only; use a function-level (lazy) import to "
    "defer a sanctioned upward edge, or move the code down a layer",
    "the package DAG in layers.toml is what keeps the kernels, "
    "transfer, and serving seams independently testable; one upward "
    "module-level import re-tangles them")
def _check_layering(rule, graph, config):
    allowed = config.allowed_pairs()
    undeclared = set()
    for edge, target in graph.project_imports(include_lazy=False):
        src_pkg = graph.package_of(edge.source)
        dst_pkg = graph.package_of(target)
        if src_pkg == dst_pkg:
            continue
        info = graph.modules[edge.source]
        src_level = config.level_of(src_pkg)
        dst_level = config.level_of(dst_pkg)
        for package, level in ((src_pkg, src_level),
                               (dst_pkg, dst_level)):
            if level is None and package not in undeclared:
                undeclared.add(package)
                yield _make(rule, info, edge.lineno,
                            f"package '{package}' is not declared in "
                            f"any [[layer]] of {config.path}")
        if src_level is None or dst_level is None:
            continue
        if src_level < dst_level:
            yield _make(rule, info, edge.lineno,
                        f"upward import: {src_pkg} (level {src_level}) "
                        f"imports {dst_pkg} (level {dst_level}) at "
                        f"module scope")
        elif src_level == dst_level \
                and (src_pkg, dst_pkg) not in allowed:
            yield _make(rule, info, edge.lineno,
                        f"same-level import: {src_pkg} -> {dst_pkg} "
                        f"(level {src_level}) is not in the allowed "
                        f"list")


# ----------------------------------------------------------------------
# ARC002 — kernel-seam bypass
# ----------------------------------------------------------------------
_SCATTER_UFUNCS = {"add", "subtract", "maximum", "minimum",
                   "multiply"}


def _numpy_binding(info, head):
    sym = info.symbols.get(head)
    if sym is None:
        return None
    kind, payload = sym
    if kind == "module" and payload in ("numpy", "np"):
        return "numpy"
    if kind == "module" and str(payload).startswith("numpy"):
        return str(payload)
    if kind == "object" and str(payload).startswith("numpy."):
        return str(payload)
    return None


def _scipy_binding(info, head):
    sym = info.symbols.get(head)
    if sym is None:
        return None
    kind, payload = sym
    if str(payload).split(".")[0] == "scipy":
        return str(payload)
    return None


@arch_register(
    "ARC002", "error", "kernel-seam bypass",
    "route sparse aggregation through repro.kernels "
    "(gspmm/gsddmm/edge_softmax) so backend selection, autograd, and "
    "bit-identity guarantees apply",
    "PR 9 made repro.kernels the single aggregation seam; a stray "
    "scipy matmul or ufunc-.at scatter silently skips backend "
    "dispatch and the conformance suite")
def _check_kernel_seam(rule, graph, config):
    options = config.rule("ARC002")
    for info in _scoped_modules(graph, options):
        # Any scipy import in a kernel-consuming package is a bypass
        # vector, lazy or not: scipy objects only enter through here.
        for edge in graph.imports:
            if edge.source != info.name:
                continue
            if edge.target.split(".")[0] == "scipy":
                yield _make(rule, info, edge.lineno,
                            f"scipy import in '{info.package}' "
                            f"(outside repro.kernels)")
        for fn in graph.functions.values():
            if fn.module != info.name:
                continue
            for call in fn.calls:
                if call.dotted is None:
                    continue
                parts = call.dotted.split(".")
                # np.add.at(...) / np.maximum.at(...) scatter loops.
                if call.tail == "at":
                    binding = _numpy_binding(info, parts[0])
                    if binding and len(parts) == 3 \
                            and parts[1] in _SCATTER_UFUNCS:
                        yield _make(rule, info, call.node,
                                    f"scatter aggregation "
                                    f"{call.dotted}(...) outside "
                                    f"repro.kernels")
                    elif binding and len(parts) == 2 \
                            and binding.split(".")[-1] \
                            in _SCATTER_UFUNCS:
                        yield _make(rule, info, call.node,
                                    f"scatter aggregation "
                                    f"{call.dotted}(...) outside "
                                    f"repro.kernels")
                # sp.csr_matrix(...) and friends via import aliases.
                elif _scipy_binding(info, parts[0]):
                    yield _make(rule, info, call.node,
                                f"scipy call {call.dotted}(...) in "
                                f"'{info.package}' (outside "
                                f"repro.kernels)")


# ----------------------------------------------------------------------
# ARC003 — billing bypass
# ----------------------------------------------------------------------
@arch_register(
    "ARC003", "error", "feature-fetch billing bypass",
    "fetch rows through TieredCache.lookup / TierBill (or a helper "
    "that does) so the transfer cost model sees the read",
    "the paper's transfer-volume accounting (and every cache bench) "
    "assumes feature reads in the serve/fleet/trainer fetch paths "
    "are billed; a direct store index undercounts transfer seconds")
def _check_billing(rule, graph, config):
    options = config.rule("ARC003")
    store_attrs = set(options.get("store_attrs", []))
    billing = set(options.get("billing_calls", []))
    for info in _scoped_modules(graph, options):
        for fn in _real_functions(graph, info.name):
            bills = any(call.tail in billing for call in fn.calls)
            if bills:
                continue
            for node in ast.walk(fn.node):
                if not isinstance(node, ast.Subscript) \
                        or not isinstance(node.ctx, ast.Load):
                    continue
                value = node.value
                if isinstance(value, ast.Attribute) \
                        and value.attr in store_attrs:
                    yield _make(rule, info, node,
                                f"direct read of "
                                f"'{dotted_name(value) or value.attr}'"
                                f" in {fn.qualname} without a billing "
                                f"call ({', '.join(sorted(billing))})")


# ----------------------------------------------------------------------
# ARC004 — simulated-clock purity
# ----------------------------------------------------------------------
_DATETIME_NOW = {"now", "utcnow", "today"}

#: Deterministic RNG *constructors*: building a generator from an
#: explicit seed is fine on the simulated clock (unseeded construction
#: is RPR001's beat); only ambient *draws* break replay.
_RNG_CONSTRUCTORS = {"default_rng", "SeedSequence", "RandomState",
                     "Generator", "PCG64", "Philox", "Random",
                     "seed"}


def _banned_clock_call(info, call):
    """Message if ``call`` reads the wall clock or a module-level RNG,
    else None."""
    if call.tail == "wall_clock":
        return ("wall_clock() reads the host clock; event-loop code "
                "must use the simulated clock")
    if call.dotted is None:
        return None
    parts = call.dotted.split(".")
    sym = info.symbols.get(parts[0])
    if sym is None:
        return None
    kind, payload = sym
    payload = str(payload)
    if kind == "module":
        if payload == "time" and len(parts) >= 2:
            return f"time.{parts[-1]}() reads the host clock"
        if payload == "datetime" and call.tail in _DATETIME_NOW:
            return f"{call.dotted}() reads the host clock"
        if payload == "random" and len(parts) >= 2 \
                and call.tail not in _RNG_CONSTRUCTORS:
            return (f"random.{parts[-1]}() draws from the module-level "
                    f"RNG; thread a seeded Generator")
        if payload in ("numpy", "np") and len(parts) >= 3 \
                and parts[1] == "random" \
                and call.tail not in _RNG_CONSTRUCTORS:
            return (f"{call.dotted}() draws from numpy's module-level "
                    f"RNG; thread a seeded Generator")
    elif kind == "object":
        if payload.startswith("time."):
            return f"{payload}() reads the host clock"
        if payload.startswith("datetime.") \
                and call.tail in _DATETIME_NOW:
            return f"{payload}.{call.tail}() reads the host clock"
        if payload.startswith("random.") \
                and payload.split(".")[-1] not in _RNG_CONSTRUCTORS:
            return (f"{payload}() draws from the module-level RNG; "
                    f"thread a seeded Generator")
    return None


@arch_register(
    "ARC004", "error", "wall clock / ambient RNG in simulated path",
    "event-loop-reachable code must take time from the engine's "
    "simulated clock and randomness from an injected seeded Generator",
    "fleet/faults benches replay bit-exactly only because every event "
    "is ordered by the simulated clock; one time.time() or ambient "
    "RNG draw in a reachable helper breaks replay nondeterministically")
def _check_simulated_clock(rule, graph, config):
    options = config.rule("ARC004")
    roots = options.get("roots", [])
    allow = options.get("allow_files", [])
    for qualname in sorted(graph.reachable(roots)):
        fn = graph.functions[qualname]
        info = graph.modules.get(fn.module)
        if info is None or _path_allowed(info, allow):
            continue
        for call in fn.calls:
            message = _banned_clock_call(info, call)
            if message is not None:
                yield _make(rule, info, call.node,
                            f"{message} (reachable from "
                            f"{' / '.join(roots)} via {qualname})")


# ----------------------------------------------------------------------
# ARC005 — interprocedural RNG provenance
# ----------------------------------------------------------------------
def _rng_factory(info, dotted):
    """True for ``np.random.default_rng`` / ``RandomState`` /
    ``random.Random`` constructor calls, through import aliases."""
    if dotted is None:
        return False
    parts = dotted.split(".")
    sym = info.symbols.get(parts[0])
    if sym is None:
        return False
    kind, payload = sym
    payload = str(payload)
    rest = parts[1:]
    if kind == "module":
        if payload in ("numpy", "np"):
            return rest in (["random", "default_rng"],
                            ["random", "RandomState"])
        if payload == "numpy.random":
            return rest in (["default_rng"], ["RandomState"])
        if payload == "random":
            return rest == ["Random"]
    elif kind == "object":
        if payload in ("numpy.random.default_rng",
                       "numpy.random.RandomState", "random.Random"):
            return not rest
    return False


@arch_register(
    "ARC005", "error", "RNG not threaded across function boundary",
    "construct the Generator once from the run seed and pass it as a "
    "parameter; never at module scope or in a default argument",
    "RPR001 catches unseeded construction inside one function; this "
    "closes the interprocedural holes — a module-level Generator is "
    "shared mutable stream state across every caller, and a "
    "default-argument Generator is constructed once at def time, so "
    "per-run seeding never reaches the draw sites")
def _check_rng_provenance(rule, graph, config):
    # Pass 1: module-level RNG instances and def-time default args.
    flagged = {}   # "module.name" -> (info, name)
    for info in graph.modules.values():
        for name, (kind, payload) in info.symbols.items():
            if kind != "assign" or not isinstance(payload, ast.Call):
                continue
            if _rng_factory(info, dotted_name(payload.func)):
                flagged[f"{info.name}.{name}"] = (info, name)
                yield _make(rule, info, payload,
                            f"module-level RNG instance '{name}' is "
                            f"shared stream state across all callers")
        for fn in _real_functions(graph, info.name):
            args = fn.node.args
            defaults = list(args.defaults) \
                + [d for d in args.kw_defaults if d is not None]
            for default in defaults:
                if isinstance(default, ast.Call) and _rng_factory(
                        info, dotted_name(default.func)):
                    yield _make(rule, info, default,
                                f"RNG default argument in "
                                f"{fn.qualname} is constructed once "
                                f"at def time")
    # Pass 2: draw sites on a flagged module-level instance, including
    # through from-imports of the global.
    for info in graph.modules.values():
        local = {name for key, (home, name) in flagged.items()
                 if home is info}
        for bound, (kind, payload) in info.symbols.items():
            if kind == "object" and str(payload) in flagged:
                local.add(bound)
        if not local:
            continue
        for fn in _real_functions(graph, info.name):
            for call in fn.calls:
                if call.dotted is None:
                    continue
                parts = call.dotted.split(".")
                if len(parts) >= 2 and parts[0] in local:
                    yield _make(rule, info, call.node,
                                f"{call.dotted}(...) draws from a "
                                f"module-level RNG in {fn.qualname}; "
                                f"thread a Generator parameter")


# ----------------------------------------------------------------------
# ARC006 — public-API drift
# ----------------------------------------------------------------------
def _exported_names(info):
    """String constants of a module-level ``__all__`` list/tuple."""
    sym = info.symbols.get("__all__")
    if sym is None or sym[0] != "assign":
        return None
    node = sym[1]
    if not isinstance(node, (ast.List, ast.Tuple)):
        return None
    names = []
    for element in node.elts:
        if isinstance(element, ast.Constant) \
                and isinstance(element.value, str):
            names.append((element.value, element))
    return names


def _lazy_keys(info):
    """String keys of module-level dict literals — the PEP 562 lazy
    export tables consulted when the module defines ``__getattr__``."""
    keys = set()
    for name, (kind, payload) in info.symbols.items():
        if kind == "assign" and isinstance(payload, ast.Dict):
            for key in payload.keys:
                if isinstance(key, ast.Constant) \
                        and isinstance(key.value, str):
                    keys.add(key.value)
    return keys


@arch_register(
    "ARC006", "error", "public-API drift",
    "make __all__ match reality: export only names defined in (or "
    "re-exported from within) the package, and regenerate docs/api.md "
    "(python tools/gen_api_docs.py)",
    "the API reference is generated from __all__; a phantom or "
    "foreign export turns the docs and the import surface into "
    "different systems")
def _check_api_drift(rule, graph, config):
    options = config.rule("ARC006")
    doc_path = options.get("api_doc", "docs/api.md")
    doc_text = None
    if doc_path:
        path = Path(doc_path)
        if path.exists():
            doc_text = path.read_text(encoding="utf-8")
    doc_warned = False
    for module_name in sorted(graph.modules):
        info = graph.modules[module_name]
        if not info.path.endswith("__init__.py"):
            continue
        exports = _exported_names(info)
        if exports is None:
            continue
        lazy = _lazy_keys(info) if "__getattr__" in info.symbols \
            else set()
        for name, node in exports:
            defined = name in info.symbols or name in lazy
            if not defined:
                yield _make(rule, info, node,
                            f"'{name}' is exported by __all__ but "
                            f"not defined or lazily mapped in "
                            f"{module_name}")
                continue
            if name in info.symbols:
                kind, payload = info.symbols[name]
                if kind in ("object", "module"):
                    target_module = str(payload)
                    if kind == "object":
                        target_module = target_module.rpartition(
                            ".")[0]
                    root = graph.package
                    inside = (target_module == module_name
                              or target_module.startswith(
                                  module_name + "."))
                    if module_name == root:
                        inside = (target_module == root
                                  or target_module.startswith(
                                      root + "."))
                    if not inside:
                        yield _make(
                            rule, info, node,
                            f"'{name}' is re-exported from outside "
                            f"the package ({target_module})")
                        continue
            if name.startswith("__"):
                continue   # dunders are skipped by the doc generator
            if doc_text is None:
                if not doc_warned:
                    doc_warned = True
                    yield _make(rule, info, 1,
                                f"API doc {doc_path} not found; "
                                f"run python tools/gen_api_docs.py")
                continue
            if f"`{name}`" not in doc_text:
                yield _make(rule, info, node,
                            f"'{name}' is not covered by {doc_path}")
