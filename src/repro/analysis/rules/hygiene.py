"""Hygiene rules: failure modes that hide bugs instead of raising them.

Mutable default arguments leak state across calls (a determinism bug
wearing a style-bug costume), and overbroad exception handlers convert
real data-path failures into silently-wrong results — the exact
regression class the sanitizers exist to catch loudly.
"""

from __future__ import annotations

import ast

from . import Rule, register

__all__ = ["MutableDefaultArgument", "OverbroadExcept"]


def _is_mutable_default(node):
    if isinstance(node, (ast.List, ast.Dict, ast.Set)):
        return True
    return (isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in ("list", "dict", "set", "bytearray"))


@register
class MutableDefaultArgument(Rule):
    """RPR004: mutable default argument."""

    rule_id = "RPR004"
    severity = "error"
    title = "mutable default argument"
    hint = "default to None and create the container inside the body"
    rationale = ("the default is evaluated once at def-time and shared "
                 "across calls; state accumulated in one call leaks "
                 "into the next, breaking replayability")

    def check(self, ctx):
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef,
                                     ast.AsyncFunctionDef)):
                continue
            defaults = list(node.args.defaults) \
                + [d for d in node.args.kw_defaults if d is not None]
            for default in defaults:
                if _is_mutable_default(default):
                    yield default, (f"function `{node.name}` has a "
                                    f"mutable default argument")


@register
class OverbroadExcept(Rule):
    """RPR005: bare or overbroad exception handler."""

    rule_id = "RPR005"
    severity = "warning"
    title = "bare or overbroad except"
    hint = ("catch the specific ReproError subclass, or re-raise a "
            "wrapped error so the failure stays loud")
    rationale = ("`except Exception: pass` turns a malformed-CSR or "
                 "NaN failure into a silently wrong number; the paper "
                 "comparisons are only as trustworthy as their loudest "
                 "failure mode")

    def check(self, ctx):
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield node, "bare `except:` swallows every exception"
                continue
            if isinstance(node.type, ast.Name) \
                    and node.type.id in ("Exception", "BaseException"):
                # Wrapping and re-raising is the legitimate use of a
                # broad catch (e.g. CheckpointError around unpickling).
                reraises = any(isinstance(inner, ast.Raise)
                               for inner in ast.walk(node))
                if not reraises:
                    yield node, (f"`except {node.type.id}` without "
                                 f"re-raise hides unrelated failures")
