"""Determinism rules: seeded randomness, simulated time, frozen config.

The whole reproduction is replayable from a seed: training curves,
fault timelines, serving arrivals.  These rules reject the three ways
that property silently dies — module-level RNG state, wall-clock reads
inside simulated paths, and environment-dependent behaviour outside the
one sanctioned flags module.
"""

from __future__ import annotations

import ast

from . import Rule, dotted_name, register

__all__ = ["UnseededRNG", "WallClockInSimulatedPath", "EnvironRead"]

#: numpy legacy module-level sampling/seeding functions (global state).
_NP_GLOBAL_RNG = frozenset({
    "rand", "randn", "randint", "random", "random_sample", "ranf",
    "sample", "choice", "shuffle", "permutation", "normal", "uniform",
    "standard_normal", "seed", "get_state", "set_state", "beta",
    "binomial", "poisson", "exponential", "gamma", "geometric",
    "lognormal", "multinomial", "zipf",
})

#: stdlib ``random`` module-level functions (also global state).
_STDLIB_RANDOM = frozenset({
    "random", "randint", "randrange", "choice", "choices", "shuffle",
    "sample", "uniform", "seed", "gauss", "normalvariate",
    "betavariate", "expovariate", "triangular", "vonmisesvariate",
    "paretovariate", "getrandbits",
})

#: wall-clock reads that must not appear in simulated/numeric paths.
_WALL_CLOCK = frozenset({
    "time.time", "time.time_ns", "time.perf_counter",
    "time.perf_counter_ns", "time.monotonic", "time.monotonic_ns",
    "time.process_time", "time.process_time_ns",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
    # ``from datetime import datetime/date`` spellings.
    "datetime.now", "datetime.utcnow", "datetime.today", "date.today",
})

#: ``time`` functions that stay wall-clock reads when bound by a
#: ``from time import ...`` (matched through the import's alias).
_TIME_FUNCTIONS = frozenset({
    "time", "time_ns", "perf_counter", "perf_counter_ns", "monotonic",
    "monotonic_ns", "process_time", "process_time_ns",
})


@register
class UnseededRNG(Rule):
    """RPR001: randomness not flowing through a seeded Generator."""

    rule_id = "RPR001"
    severity = "error"
    title = "unseeded or global-state RNG"
    hint = ("draw from a seeded np.random.Generator (np.random."
            "default_rng(seed)) threaded in from TrainingConfig.rng()")
    rationale = ("global RNG state breaks seed-replay: checkpoints "
                 "cannot capture it and unrelated call-order changes "
                 "shift every downstream draw")

    def check(self, ctx):
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name is None:
                continue
            parts = name.split(".")
            if len(parts) == 3 and parts[0] in ("np", "numpy") \
                    and parts[1] == "random" and parts[2] in _NP_GLOBAL_RNG:
                yield node, (f"module-level numpy RNG call "
                             f"`{name}()` uses hidden global state")
            elif name in ("np.random.default_rng",
                          "numpy.random.default_rng") \
                    and not node.args and not node.keywords:
                yield node, ("`default_rng()` without a seed draws "
                             "entropy from the OS; pass an explicit "
                             "seed or SeedSequence")
            elif len(parts) == 2 and parts[0] == "random" \
                    and parts[1] in _STDLIB_RANDOM:
                yield node, (f"stdlib `{name}()` uses the process-global "
                             f"Mersenne Twister")


@register
class WallClockInSimulatedPath(Rule):
    """RPR002: wall-clock reads outside the sanctioned perf profiler."""

    rule_id = "RPR002"
    severity = "error"
    title = "wall-clock read in a simulated path"
    hint = ("use repro.perf.profiler.wall_clock() (or PERF.timed) so "
            "real-time reads stay auditable in one module")
    rationale = ("the cost model runs on simulated seconds; a stray "
                 "perf_counter silently mixes host timing into results "
                 "that must replay bit-identically")

    #: Files allowed to read the wall clock directly: the profiler is
    #: the one sanctioned real-time module, and benchmark scripts
    #: measure the host machine on purpose.
    def _allowed(self, ctx):
        path = ctx.path.replace("\\", "/")
        return path.endswith("repro/perf/profiler.py") \
            or ctx.in_parts("benchmarks")

    def check(self, ctx):
        if self._allowed(ctx):
            return
        # Bindings from ``from time import perf_counter [as pc]``: a
        # bare ``pc()`` is still a wall-clock read.
        time_aliases = {}
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ImportFrom) and node.module == "time":
                for alias in node.names:
                    if alias.name in _TIME_FUNCTIONS:
                        time_aliases[alias.asname or alias.name] = \
                            alias.name
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name in _WALL_CLOCK:
                yield node, (f"`{name}()` reads the host wall clock "
                             f"outside repro.perf.profiler")
            elif name in time_aliases:
                yield node, (f"`{name}()` (time.{time_aliases[name]}) "
                             f"reads the host wall clock outside "
                             f"repro.perf.profiler")


@register
class EnvironRead(Rule):
    """RPR007: environment reads outside ``perf/flags.py``."""

    rule_id = "RPR007"
    severity = "warning"
    title = "os.environ read outside perf/flags.py"
    hint = ("surface the knob as a PerfFlags field (repro/perf/"
            "flags.py) so every behaviour toggle is visible and "
            "test-overridable in one place")
    rationale = ("hidden environment dependence makes two 'identical' "
                 "runs diverge across machines without any code diff")

    def _allowed(self, ctx):
        return ctx.path.replace("\\", "/").endswith("perf/flags.py")

    def check(self, ctx):
        if self._allowed(ctx):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                name = dotted_name(node.func)
                if name == "os.getenv" or name == "os.environ.get":
                    yield node, f"`{name}(...)` outside perf/flags.py"
            elif isinstance(node, ast.Subscript):
                if dotted_name(node.value) == "os.environ":
                    yield node, "`os.environ[...]` outside perf/flags.py"
