"""Numerics rules: iteration order and accumulation discipline.

Floating-point addition is not associative, so any float accumulation
whose term order depends on set/dict iteration order (or on the slow
error-compounding of builtin ``sum`` in a hot path) can change results
between runs or python builds without any code diff.
"""

from __future__ import annotations

import ast

from . import Rule, dotted_name, register

__all__ = ["UnsortedIterationAccumulation", "FloatSumComprehension"]

_ORDER_METHODS = frozenset({"keys", "values", "items"})


def _is_unordered_iterable(node):
    """True for ``set(...)``, a set literal, or ``<expr>.keys()/
    .values()/.items()`` — iterables whose order is insertion- or
    hash-dependent rather than an explicit sort."""
    if isinstance(node, ast.Set):
        return True
    if isinstance(node, ast.Call):
        if isinstance(node.func, ast.Name) and node.func.id == "set":
            return True
        if isinstance(node.func, ast.Attribute) \
                and node.func.attr in _ORDER_METHODS and not node.args:
            return True
    return False


@register
class UnsortedIterationAccumulation(Rule):
    """RPR003: accumulating loop over an unordered collection."""

    rule_id = "RPR003"
    severity = "warning"
    title = "accumulation over unsorted set/dict iteration"
    hint = ("wrap the iterable in sorted(...) so the accumulation "
            "order is part of the code, not of hash/insertion history")
    rationale = ("float += is order-sensitive; set order varies with "
                 "PYTHONHASHSEED and dict order with insertion "
                 "history, so the same data can sum to different bits")

    def check(self, ctx):
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.For, ast.AsyncFor)):
                continue
            if not _is_unordered_iterable(node.iter):
                continue
            for stmt in node.body:
                accumulates = any(isinstance(inner, ast.AugAssign)
                                  for inner in ast.walk(stmt))
                if accumulates:
                    yield node, ("loop over an unordered collection "
                                 "accumulates in-place (`+=`); the "
                                 "result depends on iteration order")
                    break


@register
class FloatSumComprehension(Rule):
    """RPR006: builtin ``sum`` over a comprehension in a hot path."""

    rule_id = "RPR006"
    severity = "warning"
    title = "builtin sum() over comprehension in nn/sampling hot path"
    hint = ("accumulate through numpy (np.sum / np.add.reduce) for "
            "pairwise summation, or wrap in int(...) if the terms are "
            "integral")
    rationale = ("builtin sum() adds floats left-to-right, compounding "
                 "rounding error; numpy's pairwise reduction is both "
                 "faster and numerically stabler in hot paths")

    def _applies(self, ctx):
        return ctx.in_parts("nn") or ctx.in_parts("sampling")

    def check(self, ctx):
        if not self._applies(ctx):
            return
        for node in ast.walk(ctx.tree):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Name)
                    and node.func.id == "sum" and node.args
                    and isinstance(node.args[0],
                                   (ast.GeneratorExp, ast.ListComp))):
                continue
            # ``int(sum(...))`` declares integral terms: left-to-right
            # integer addition is exact, so there is nothing to flag.
            parent = ctx.parent(node)
            if isinstance(parent, ast.Call) \
                    and dotted_name(parent.func) == "int":
                continue
            yield node, ("builtin sum() over a comprehension "
                         "accumulates floats left-to-right in a hot "
                         "path")
